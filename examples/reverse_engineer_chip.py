#!/usr/bin/env python3
"""Uncover a vendor's sense amplifiers, end to end (§IV + §V).

The full HiFi-DRAM methodology on a simulated chip, driven through the
campaign runtime (`repro.runtime`):

1. build a MAT / SA-region / MAT strip (the fab's secret);
2. blind ROI identification by cross-section morphology (Fig 6);
3. FIB/SEM volumetric acquisition with noise and drift (§IV-B);
4. TV denoising + mutual-information alignment + planar reslicing (§IV-C);
5. connectivity extraction, transistor classification, topology
   identification, W/L measurement (§V);
6. export the recovered layout masks' provenance as GDSII.

Every stage runs through the content-addressed stage cache, so running
this example twice skips all imaging and pipeline work the second time —
the per-stage table printed at the end shows wall time and cache
disposition for each stage.

Run:  python examples/reverse_engineer_chip.py [classic|ocsa|A4|B4|C4|A5|B5|C5]

Passing a chip ID images that chip's region with the acquisition plan the
paper used for it (detector, dwell, slice thickness — §IV-B).  The
automated classification is tuned for the default 18 nm-class dimensions
and C4; denser sets (B5/C5) or SE-imaged chips (A4/A5) may need per-scan
tuning — exactly the "semi-automatic" caveat of the paper's §IV-C — and
then degrade gracefully to partial measurements.
"""

import sys
import tempfile
from pathlib import Path

from repro.layout import SaRegionSpec, generate_chip_layout, write_gds
from repro.runtime import ChipJob, run_campaign


def main(target: str = "ocsa") -> None:
    from repro.core.chips import CHIPS
    from repro.core.hifi import region_spec_for
    from repro.imaging import FibSemCampaign, SemParameters, plan_for

    if target.upper() in CHIPS:
        chip_id = target.upper()
        spec = region_spec_for(chip_id, n_pairs=2)
        plan = plan_for(chip_id)
        campaign = plan.campaign
        print(f"--- Imaging {chip_id} with its own acquisition plan ---")
        for reason in plan.rationale:
            print(f"  * {reason}")
        name = chip_id
    else:
        name = target
        spec = SaRegionSpec(name=target, topology=target, n_pairs=2)
        campaign = FibSemCampaign(slice_thickness_nm=12.0, sem=SemParameters(dwell_time_us=6.0))
        print(f"--- The vendor secretly fabs a {target} SA region ---")

    # One work order: full MAT/SA/MAT strip, blind ROI search, then the
    # §IV-B acquisition restricted to the found region.  The field of view
    # stays 130 nm inside the ROI: its outer ~300 nm is the MAT transition
    # zone (wires only), and excluding the dense MAT bitline stubs keeps
    # the planar nets cleanly separable.
    job = ChipJob(
        name=name, spec=spec, campaign=campaign,
        mat_rows=8, roi_margin_nm=130.0, validate=True,
    )
    cache_dir = Path(tempfile.gettempdir()) / "hifi_dram_stage_cache"
    print(f"\n--- Campaign (stage cache: {cache_dir}) ---")
    report = run_campaign([job], workers=1, cache_dir=cache_dir)
    result = report.result(name)
    run = report.chips[name]

    roi = next((s for s in run.stages if s.stage == "roi"), None)
    if roi is not None and roi.notes:
        print(f"ROI search: {roi.notes['probes']:.0f} probes, "
              f"~{roi.notes['machine_hours']:.2f} h machine time, "
              f"region {roi.notes['roi_width_nm'] / 1000:.2f} um wide")
    acquire = next((s for s in run.stages if s.stage == "acquire"), None)
    if acquire is not None and acquire.notes:
        print(f"acquisition: {acquire.notes['slices']:.0f} slices, "
              f"beam time ~{acquire.notes['beam_time_hours']:.2f} h, "
              f"worst drift {acquire.notes['worst_drift_px']:.0f} px")

    notes = result.pipeline_notes
    print(f"alignment residual: {notes['alignment_residual_fraction']:.3%} "
          "(budget 0.77%)")
    if result.lanes_matched:
        print(f"recovered topology: {result.topology.value} "
              f"({result.lanes_matched} lanes, exact={result.all_exact})")
    else:
        print("no lane matched a known topology on this acquisition — the "
              "paper's analysts would re-scan (try another seed or a higher "
              "dwell time); partial measurements follow")
    for cls, stats in sorted(result.measurements.per_class.items(), key=lambda kv: kv[0].value):
        print(f"  {cls.value:14s} x{stats.count:<3d} W={stats.mean_w_nm:6.1f} nm  "
              f"L={stats.mean_l_nm:6.1f} nm  W/L={stats.wl_ratio:.2f}")
    if result.validation is not None:
        print(f"validation vs ground truth: complete={result.validation.complete}, "
              f"max class W/L error {result.validation.max_relative_error():.1%}")

    if result.lanes_matched:
        print("\n--- The analyst's account (Fig 8 style) ---")
        from repro.reveng import build_narrative

        print(build_narrative(result).render())

    print("\n--- Step 6: open-source the layout (GDSII) ---")
    chip = generate_chip_layout(spec, mat_rows=8)
    out = Path(tempfile.gettempdir()) / f"hifi_dram_{name}.gds"
    shapes = write_gds(chip, out)
    print(f"wrote {shapes} shapes to {out}")

    print("\n--- Per-stage instrumentation (rerun to see cache hits) ---")
    print(report.render())


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ocsa")
