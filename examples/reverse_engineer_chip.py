#!/usr/bin/env python3
"""Uncover a vendor's sense amplifiers, end to end (§IV + §V).

The full HiFi-DRAM methodology on a simulated chip:

1. build a MAT / SA-region / MAT strip (the fab's secret);
2. blind ROI identification by cross-section morphology (Fig 6);
3. FIB/SEM volumetric acquisition with noise and drift (§IV-B);
4. TV denoising + mutual-information alignment + planar reslicing (§IV-C);
5. connectivity extraction, transistor classification, topology
   identification, W/L measurement (§V);
6. export the recovered layout masks' provenance as GDSII.

Run:  python examples/reverse_engineer_chip.py [classic|ocsa|A4|B4|C4|A5|B5|C5]

Passing a chip ID images that chip's region with the acquisition plan the
paper used for it (detector, dwell, slice thickness — §IV-B).  The
automated classification is tuned for the default 18 nm-class dimensions
and C4; denser sets (B5/C5) or SE-imaged chips (A4/A5) may need per-scan
tuning — exactly the "semi-automatic" caveat of the paper's §IV-C — and
then degrade gracefully to partial measurements.
"""

import sys
import tempfile
from pathlib import Path

from repro.imaging import FibSemCampaign, SemParameters, acquire_stack, identify_roi, voxelize
from repro.layout import SaRegionSpec, generate_chip_layout, write_gds
from repro.reveng import reverse_engineer_stack


def main(target: str = "ocsa") -> None:
    from repro.core.chips import CHIPS
    from repro.core.hifi import region_spec_for
    from repro.imaging import plan_for

    if target.upper() in CHIPS:
        chip_id = target.upper()
        spec = region_spec_for(chip_id, n_pairs=2)
        plan = plan_for(chip_id)
        campaign = plan.campaign
        print(f"--- Imaging {chip_id} with its own acquisition plan ---")
        for reason in plan.rationale:
            print(f"  * {reason}")
        topology = spec.topology
    else:
        topology = target
        spec = SaRegionSpec(topology=topology, n_pairs=2)
        campaign = FibSemCampaign(slice_thickness_nm=12.0, sem=SemParameters(dwell_time_us=6.0))
        print(f"--- The vendor secretly fabs a {topology} SA region ---")
    chip = generate_chip_layout(spec, mat_rows=8)
    volume = voxelize(chip, voxel_nm=6.0)
    print(f"die strip: {volume.shape[0]}x{volume.shape[1]}x{volume.shape[2]} voxels "
          f"at {volume.voxel_nm:.0f} nm")

    print("\n--- Step 1: blind ROI identification (Fig 6) ---")
    roi = identify_roi(volume, probe_step_nm=300.0)
    print(f"probes: {roi.probe_count}, machine time ~{roi.estimated_hours:.2f} h")
    print(f"identified SA region: x = {roi.roi[0]:.0f}..{roi.roi[1]:.0f} nm "
          f"({roi.roi_width_nm / 1000:.2f} um wide)")

    print("\n--- Step 2: FIB/SEM acquisition over the ROI ---")
    # Mill only the identified region (§IV-B scans the area *between* two
    # MATs, never across them).  The field of view stays strictly inside
    # the ROI: its outer ~300 nm is the MAT transition zone (wires only),
    # and excluding the dense MAT bitline stubs keeps the planar nets
    # cleanly separable.
    stack = acquire_stack(
        volume, campaign,
        x_start_nm=roi.roi[0] + 130.0,
        x_stop_nm=roi.roi[1] - 130.0,
    )
    print(f"{len(stack)} slices of {stack.image_shape[0]}x{stack.image_shape[1]} px, "
          f"beam time ~{stack.beam_time_hours():.2f} h, "
          f"worst drift {max(max(abs(a), abs(b)) for a, b in stack.true_drift_px)} px")

    print("\n--- Steps 3-5: post-processing + reverse engineering ---")
    result = reverse_engineer_stack(
        stack,
        origin_x_nm=volume.origin_x_nm + stack.x_offset_nm,
        origin_y_nm=volume.origin_y_nm,
        truth=chip,
    )
    notes = result.pipeline_notes
    print(f"alignment residual: {notes['alignment_residual_fraction']:.3%} "
          "(budget 0.77%)")
    if result.lanes_matched:
        print(f"recovered topology: {result.topology.value} "
              f"({result.lanes_matched} lanes, exact={result.all_exact})")
    else:
        print("no lane matched a known topology on this acquisition — the "
              "paper's analysts would re-scan (try another seed or a higher "
              "dwell time); partial measurements follow")
    for cls, stats in sorted(result.measurements.per_class.items(), key=lambda kv: kv[0].value):
        print(f"  {cls.value:14s} x{stats.count:<3d} W={stats.mean_w_nm:6.1f} nm  "
              f"L={stats.mean_l_nm:6.1f} nm  W/L={stats.wl_ratio:.2f}")
    if result.validation is not None:
        print(f"validation vs ground truth: complete={result.validation.complete}, "
              f"max class W/L error {result.validation.max_relative_error():.1%}")

    if result.lanes_matched:
        print("\n--- The analyst's account (Fig 8 style) ---")
        from repro.reveng import build_narrative

        print(build_narrative(result).render())

    print("\n--- Step 6: open-source the layout (GDSII) ---")
    out = Path(tempfile.gettempdir()) / f"hifi_dram_{topology}.gds"
    shapes = write_gds(chip, out)
    print(f"wrote {shapes} shapes to {out}")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "ocsa")
