#!/usr/bin/env python3
"""Pick analog simulation dimensions with open data (§VI-A).

A researcher about to run SPICE on a sense amplifier must choose
transistor dimensions.  This example compares the two public models (CROW,
REM) against every measured chip, reports the error they would bake into
a simulation, and prints the per-chip measured dimensions to use instead.

Run:  python examples/choose_simulation_model.py
"""

from repro.core.chips import CHIPS
from repro.core.model_accuracy import model_accuracy_report, worst_case_factor
from repro.core.models import public_models
from repro.core.report import render_table
from repro.layout.elements import TransistorKind

ELEMENTS = (
    TransistorKind.NSA,
    TransistorKind.PSA,
    TransistorKind.PRECHARGE,
    TransistorKind.EQUALIZER,
    TransistorKind.COLUMN,
    TransistorKind.ISOLATION,
    TransistorKind.OFFSET_CANCEL,
)


def model_report() -> None:
    print("== How wrong would a public model make my simulation? ==\n")
    rows = []
    for model in public_models().values():
        for generation in ("DDR4", "DDR5"):
            report = model_accuracy_report(model, generation)
            wl_max, who = report.maximum("wl_error")
            rows.append([
                model.name, generation,
                f"{report.average('wl_error'):.0%}",
                f"{wl_max:.0%} ({who.chip_id} {who.kind.value})",
            ])
    print(render_table(["model", "vs", "avg W/L error", "worst W/L error"], rows))
    print(f"\nWorst single-dimension deviation: {worst_case_factor():.1f}x "
          "('up to 9x inaccurate').\n")


def measured_dimensions() -> None:
    print("== Use the measured dimensions instead ==\n")
    header = ["chip"] + [k.value for k in ELEMENTS]
    rows = []
    for c in CHIPS.values():
        row = [c.chip_id]
        for kind in ELEMENTS:
            if c.has(kind):
                rec = c.transistor(kind)
                row.append(f"{rec.w:.0f}/{rec.l:.0f}")
            else:
                row.append("-")
        rows.append(row)
    print(render_table(header, rows))
    print("\n(W/L in nm; '-' = the element does not exist on that chip's "
          "topology. A4/A5/B5 need the OCSA netlist: repro.circuits.build_ocsa.)")


def main() -> None:
    model_report()
    measured_dimensions()


if __name__ == "__main__":
    main()
