#!/usr/bin/env python3
"""Quickstart: the three things HiFi-DRAM gives you.

1. The reverse-engineered chip dataset (Table I + measurements).
2. Reverse engineering a sense-amplifier region from a layout.
3. Auditing DRAM research against the dataset (Table II).

Run:  python examples/quickstart.py
"""

from repro import CHIPS, reverse_engineer_cell, table2_rows
from repro.core.report import percent, render_table
from repro.layout import SaRegionSpec, generate_sa_region
from repro.layout.elements import TransistorKind


def show_dataset() -> None:
    print("== 1. The six studied chips ==")
    rows = []
    for c in CHIPS.values():
        nsa = c.transistor(TransistorKind.NSA)
        rows.append([
            c.chip_id, c.generation, c.topology.value,
            f"{nsa.w:.0f}x{nsa.l:.0f} nm",
            percent(c.mat_area_fraction),
        ])
    print(render_table(["chip", "gen", "SA topology", "nSA WxL", "MAT fraction"], rows))
    ocsa = [c.chip_id for c in CHIPS.values() if c.topology.value == "ocsa"]
    print(f"\nKey finding: {', '.join(ocsa)} deploy offset-cancellation SAs, "
          "not the classical design.\n")


def reverse_engineer_something() -> None:
    print("== 2. Reverse engineering an SA region ==")
    cell = generate_sa_region(SaRegionSpec(name="mystery", topology="ocsa", n_pairs=2))
    result = reverse_engineer_cell(cell)
    print(f"recovered topology : {result.topology.value}")
    print(f"lanes matched      : {result.lanes_matched} (exact: {result.all_exact})")
    stats = result.measurements.per_class
    sizes = ", ".join(
        f"{cls.value}: {s.mean_w_nm:.0f}x{s.mean_l_nm:.0f}"
        for cls, s in sorted(stats.items(), key=lambda kv: kv[0].value)
    )
    print(f"measured W x L (nm): {sizes}\n")


def audit_the_field() -> None:
    print("== 3. Auditing a decade of DRAM research (Table II) ==")
    rows = [[r.paper.title, r.error_str, r.porting_str] for r in table2_rows()]
    print(render_table(["paper", "overhead error", "porting cost"], rows))
    cooldram = next(r for r in table2_rows() if r.paper.key == "cooldram")
    worst_chip = max(cooldram.per_chip, key=cooldram.per_chip.get)
    print(
        f"\nExample: CoolDRAM's reported "
        f"{percent(cooldram.paper.original_overhead, 2)} overhead becomes "
        f"{percent(cooldram.per_chip[worst_chip])} of the {worst_chip} die "
        "once I1/I2 bite."
    )


def main() -> None:
    show_dataset()
    reverse_engineer_something()
    audit_the_field()


if __name__ == "__main__":
    main()
