#!/usr/bin/env python3
"""Produce the open-source data bundle (the paper's published artefact).

Writes, for every studied chip: the Table I record with measured
transistor dimensions (JSON), the SA-region layout (GDSII + SVG), a
SPICE-ready subcircuit card, and the raw measurement samples — plus the
regenerated Table I/Table II/Fig 12 as text.

Run:  python examples/export_data_bundle.py [target_dir]
"""

import sys
import tempfile
from pathlib import Path

from repro.core.bundle import write_bundle


def main(target: str | None = None) -> None:
    target_dir = Path(target) if target else Path(tempfile.gettempdir()) / "hifi_dram_bundle"
    manifest = write_bundle(target_dir)

    print(f"bundle written to {target_dir}\n")
    print("contents:")
    for rel in manifest["tables"]:
        print(f"  {rel}")
    for chip_id, entry in manifest["chips"].items():
        print(f"  chips/{chip_id}/  ({entry['topology']}, {entry['gds_shapes']} GDS shapes)")
    print("\nprovenance:", manifest["provenance"])
    print("\nTry:  cat", target_dir / "tables" / "table2_audit.txt")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else None)
