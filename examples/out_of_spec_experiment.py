#!/usr/bin/env python3
"""Why out-of-spec DRAM experiments break on OCSA chips (§VI-D).

Plays a ComputeDRAM-style researcher: calibrate a violated ACT-PRE-ACT
trick on a classic-SA chip, then run the identical trace on an OCSA chip
(vendor B's B5, say) and watch it silently stop working — because charge
sharing is delayed behind the offset-cancellation phase.

Run:  python examples/out_of_spec_experiment.py
"""

from repro.circuits.topologies import SaTopology
from repro.core.report import render_table
from repro.dram import (
    Bank,
    charge_sharing_window,
    derive_timings,
    multi_row_activation_experiment,
    truncated_activation_experiment,
)
from repro.dram.commands import act_pre_act
from repro.dram.out_of_spec import divergence_sweep


def show_timings() -> None:
    print("== Silicon-true activation milestones (derived from analog sims) ==\n")
    rows = []
    for topology in (SaTopology.CLASSIC, SaTopology.OCSA):
        t = derive_timings(topology)
        rows.append([
            topology.value,
            f"{t.t_charge_share:.1f} ns",
            f"{t.t_rcd:.1f} ns",
            f"{t.t_ras:.1f} ns",
        ])
    print(render_table(["topology", "charge share", "tRCD (sense)", "tRAS (restore)"], rows))
    window = charge_sharing_window()
    print(f"\nThe OCSA's offset-cancellation phase delays charge sharing by "
          f"{window['hazard_window_ns']:.1f} ns.\n")


def calibrate_on_classic() -> float:
    print("== Step 1: calibrate the trick on a classic-SA chip ==\n")
    window = charge_sharing_window()
    t1 = (window["classic_min_t1_ns"] + window["ocsa_min_t1_ns"]) / 2
    bank = Bank(topology=SaTopology.CLASSIC)
    result = bank.execute(act_pre_act(3, 12, t1, 1.0))
    print(f"ACT(row 3) --{t1:.1f}ns--> PRE --1ns--> ACT(row 12)")
    print(f"violations recorded: {len(result.violations)} "
          f"(that's the point of out-of-spec operation)")
    print(f"rows charge-shared: {result.shared_rows}  <- the in-DRAM operation works\n")
    return t1


def replay_on_ocsa(t1: float) -> None:
    print("== Step 2: replay the identical trace on an OCSA chip ==\n")
    result = multi_row_activation_experiment(t1)
    print(f"classic chip: {result.classic_outcome}")
    print(f"OCSA chip   : {result.ocsa_outcome}   <- silently no operation\n")
    probe = truncated_activation_experiment(t1)
    print("And a retention/characterisation probe with the same interval:")
    print(f"classic chip leaves the row {probe.classic_outcome}; "
          f"the OCSA chip leaves it {probe.ocsa_outcome}.\n")


def sweep() -> None:
    print("== Step 3: the full divergence map ==\n")
    rows = [
        [f"{r.parameter_ns:.1f} ns", r.classic_outcome, r.ocsa_outcome,
         "<-- diverges" if r.diverges else ""]
        for r in divergence_sweep()
    ]
    print(render_table(["ACT->PRE", "classic", "OCSA", ""], rows))
    print("\nRecommendation R4: out-of-spec studies must recalibrate per "
          "vendor — half the studied chips are OCSA.")


def main() -> None:
    show_timings()
    t1 = calibrate_on_classic()
    replay_on_ocsa(t1)
    sweep()


if __name__ == "__main__":
    main()
