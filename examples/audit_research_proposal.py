#!/usr/bin/env python3
"""Audit a new DRAM proposal before writing the paper (§VI-E).

Describes a hypothetical PIM proposal ("add one extra bitline per MAT and
a per-SA equalizer control"), runs it through the recommendation engine
(R1-R4), and prices the real overhead on every studied chip the way
Appendix B prices the 13 published papers.

Run:  python examples/audit_research_proposal.py
"""

from repro.circuits.topologies import SaTopology
from repro.core.chips import CHIPS
from repro.core.recommendations import ProposalDescription, audit_proposal
from repro.core.report import percent, render_table


def price_extra_bitlines() -> list[list[str]]:
    """An extra-bitline proposal pays the I1/I2 price: MAT + SA doubling."""
    rows = []
    for c in CHIPS.values():
        overhead = c.mat_plus_sa_fraction
        rows.append([c.chip_id, percent(c.mat_area_fraction),
                     percent(c.sa_area_fraction), percent(overhead)])
    return rows


def main() -> None:
    proposal = ProposalDescription(
        name="BitlinePIM-2026",
        adds_bitlines_in_mat=True,
        adds_bitlines_in_sa=True,
        assumes_independent_control_gates=True,  # per-SA equalizer control
        evaluated_topologies=(SaTopology.CLASSIC,),
    )

    print(f"Auditing proposal: {proposal.name}\n")
    result = audit_proposal(proposal)

    print("Triggered inaccuracies:")
    for inc in result.inaccuracies:
        print(f"  {inc.name}: {inc.value}")

    print("\nViolated recommendations:")
    for rec in result.violated:
        print(f"  {rec.key}: {rec.text}")
        print(f"       why: {rec.rationale}")

    print("\nAnalyst notes:")
    for note in result.notes:
        print(f"  - {note}")

    print("\nReal area price of the extra bitlines (Appendix B, I1+I2):")
    print(render_table(["chip", "MAT ext.", "SA ext.", "total overhead"],
                       price_extra_bitlines()))

    print("\nVerdict:", "clean" if result.clean else
          "revise before submission — the overhead story will not survive "
          "contact with commodity silicon.")


if __name__ == "__main__":
    main()
