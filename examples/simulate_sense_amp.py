#!/usr/bin/env python3
"""Simulate the two deployed SA topologies (Fig 2c vs Fig 9b).

Runs a full activation on the classic SA and the OCSA, renders the bitline
waveforms as ASCII, and sweeps the latch Vt mismatch to find each design's
sensing margin — the property that drove OCSA deployment.

Run:  python examples/simulate_sense_amp.py
"""

import numpy as np

from repro.analog import SenseAmpBench, SenseAmpConfig, worst_case_offset_tolerance
from repro.circuits.topologies import SaTopology


def ascii_waveform(time_ns, volts, vdd: float, width: int = 72, height: int = 10) -> str:
    """Render one trace as a crude ASCII plot."""
    idx = np.linspace(0, len(time_ns) - 1, width).astype(int)
    samples = np.clip(volts[idx] / vdd, 0, 1)
    rows = []
    for level in range(height, -1, -1):
        threshold = level / height
        line = "".join("#" if s >= threshold - 1e-9 else " " for s in samples)
        label = f"{threshold * vdd:4.2f}V |"
        rows.append(label + line)
    rows.append("       +" + "-" * width)
    rows.append(f"        0{'':{width - 10}}{time_ns[-1]:.0f} ns")
    return "\n".join(rows)


def simulate(topology: SaTopology) -> None:
    print(f"\n=== {topology.value.upper()} activation (data=1, Vt mismatch 80 mV) ===")
    bench = SenseAmpBench(SenseAmpConfig(topology=topology))
    out = bench.run(data=1, vt_mismatch=0.08, stop_after_restore=False)
    for event in out.timeline.events:
        print(f"  {event.start_ns:5.1f}-{event.end_ns:5.1f} ns  {event.name}")
    print(f"\nBL (sensed {out.data_sensed}, correct={out.correct}, "
          f"cell restored={out.restored}):")
    print(ascii_waveform(out.result.time_ns, out.result.voltages["BL"], out.config.vdd))
    print("\nBLB:")
    print(ascii_waveform(out.result.time_ns, out.result.voltages["BLB"], out.config.vdd))


def margin_sweep() -> None:
    print("\n=== Sensing margin: worst-case tolerated latch Vt mismatch ===")
    for topology in (SaTopology.CLASSIC, SaTopology.OCSA):
        tol = worst_case_offset_tolerance(topology, resolution=0.01)
        bar = "#" * int(tol * 200)
        print(f"  {topology.value:8s} {tol * 1000:5.0f} mV  {bar}")
    print("\nThe OCSA's offset-cancellation phase buys extra margin — the "
          "reason two of the three vendors deployed it (§V-A).")


def main() -> None:
    simulate(SaTopology.CLASSIC)
    simulate(SaTopology.OCSA)
    margin_sweep()


if __name__ == "__main__":
    main()
