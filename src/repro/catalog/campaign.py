"""Population campaigns: catalog → ``ChipJob``\\ s → scorer → report.

:func:`run_catalog_campaign` lowers every catalog variant to a
:class:`~repro.runtime.campaign.ChipJob` and runs them through the
unchanged pool/shard/cache/dataplane/quarantine substrate of
:func:`~repro.runtime.campaign.run_campaign`.  The population scorer then
compares each recovered chip against its own ground truth and aggregates
the per-variant topology-identification rate and the W/L error
distributions into a versioned ``catalog-report/1`` JSON
(:class:`CatalogReport`).

Results are bit-identical for any ``workers`` value — the substrate's
guarantee — and :meth:`CatalogReport.results_digest` surfaces that as a
single comparable token.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.catalog.grid import CatalogSpec, expand_grid
from repro.catalog.variants import (
    NOISE_REGIMES,
    VENDOR_PROFILES,
    ChipVariantSpec,
    build_region_spec,
)
from repro.core.report import render_table
from repro.errors import CatalogError
from repro.imaging.fib import FibSemCampaign
from repro.imaging.sem import SemParameters
from repro.obs import ObsConfig, current_metrics
from repro.obs.metrics import metric_key
from repro.pipeline.config import PipelineConfig
from repro.runtime.campaign import CampaignReport, ChipJob, ChipRun, run_campaign
from repro.runtime.engine import ResiliencePolicy
from repro.runtime.hashing import stable_hash

#: serialization schema of :meth:`CatalogReport.to_dict`
REPORT_SCHEMA_VERSION = "catalog-report/1"

_READABLE_SCHEMA_VERSIONS = (REPORT_SCHEMA_VERSION,)


def build_job(spec: ChipVariantSpec, *, validate: bool = True, **job_kwargs) -> ChipJob:
    """Lower one catalog variant to a campaign job.

    The acquisition seed derives from the variant's name and ``seed``
    field, so every catalog entry images a distinct but reproducible
    volume; the drift/noise regime picks the SEM dwell time and the FIB
    drift walk, and the vendor profile decides SE friendliness (§IV-B).
    The sampling grid tracks the process: SEM pixel and reconstruction
    voxel scale with the variant's feature size relative to the 18 nm
    baseline — the same per-chip resolution choice the paper made
    (§IV-B), and what keeps minimum-pitch gaps resolvable at any feature
    size.  Extra ``job_kwargs`` pass through to :class:`ChipJob` (e.g. a
    ``y_stop_nm`` crop for smoke tests).
    """
    region = build_region_spec(spec)
    regime = NOISE_REGIMES[spec.noise]
    profile = VENDOR_PROFILES[spec.vendor]
    acq_seed = int(
        stable_hash({"catalog_acquisition": (spec.name, spec.seed)})[:12], 16
    )
    scale = region.feature_nm / 18.0
    campaign = FibSemCampaign(
        slice_thickness_nm=12.0,
        sem=SemParameters(
            dwell_time_us=float(regime["dwell_time_us"]),
            pixel_nm=5.0 * scale,
            se_friendly_process=profile.se_friendly,
        ),
        drift_step_px=float(regime["drift_step_px"]),
        max_drift_px=int(regime["max_drift_px"]),
        seed=acq_seed,
    )
    job_kwargs.setdefault("voxel_nm", 6.0 * scale)
    return ChipJob(
        name=spec.name,
        spec=region,
        campaign=campaign,
        validate=validate,
        fault_plan=spec.fault_plan,
        **job_kwargs,
    )


def catalog_pipeline_config() -> PipelineConfig:
    """The catalog's default pipeline: the demo-grade fast settings.

    Population campaigns trade per-chip polish for coverage — hundreds of
    variants at the published iteration counts would take hours.  Pass an
    explicit ``config`` to :func:`run_catalog_campaign` for the
    full-fidelity pipeline.
    """
    return PipelineConfig().replaced(
        denoise_iterations=10, align_search_px=2, align_baselines=(1, 2)
    )


@dataclass(frozen=True)
class VariantScore:
    """One variant's ground-truth comparison (a row of the population)."""

    name: str
    axes: dict
    expected_topology: str
    recovered_topology: str | None
    identified: bool  #: recovered topology == the generating topology
    lanes_matched: int
    exact: bool  #: every matched lane passed the VF2 isomorphism check
    complete: bool | None  #: all truth classes recovered (None: unvalidated)
    max_wl_error: float | None
    #: per-class relative W/L recovery error, keyed "<class>.w"/"<class>.l"
    wl_errors: dict[str, float]
    retries: int
    fault_events: int
    seconds: float

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "axes": dict(self.axes),
            "expected_topology": self.expected_topology,
            "recovered_topology": self.recovered_topology,
            "identified": self.identified,
            "lanes_matched": self.lanes_matched,
            "exact": self.exact,
            "complete": self.complete,
            "max_wl_error": self.max_wl_error,
            "wl_errors": dict(self.wl_errors),
            "retries": self.retries,
            "fault_events": self.fault_events,
            "seconds": self.seconds,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "VariantScore":
        return cls(
            name=str(data["name"]),
            axes=dict(data.get("axes", {})),
            expected_topology=str(data["expected_topology"]),
            recovered_topology=data.get("recovered_topology"),
            identified=bool(data["identified"]),
            lanes_matched=int(data.get("lanes_matched", 0)),
            exact=bool(data.get("exact", False)),
            complete=data.get("complete"),
            max_wl_error=data.get("max_wl_error"),
            wl_errors={k: float(v) for k, v in data.get("wl_errors", {}).items()},
            retries=int(data.get("retries", 0)),
            fault_events=int(data.get("fault_events", 0)),
            seconds=float(data.get("seconds", 0.0)),
        )


def score_variant(
    spec: ChipVariantSpec, expected_topology: str, run: ChipRun
) -> VariantScore:
    """Compare one completed chip run against its generating spec."""
    result = run.result
    matched = result.lanes_matched if result is not None else 0
    recovered = (
        result.topology.value if result is not None and matched else None
    )
    wl_errors: dict[str, float] = {}
    max_err: float | None = None
    complete: bool | None = None
    validation = result.validation if result is not None else None
    if validation is not None:
        for cls_, err in sorted(
            validation.width_error.items(), key=lambda kv: kv[0].value
        ):
            wl_errors[f"{cls_.value}.w"] = float(err)
        for cls_, err in sorted(
            validation.length_error.items(), key=lambda kv: kv[0].value
        ):
            wl_errors[f"{cls_.value}.l"] = float(err)
        max_err = float(validation.max_relative_error())
        complete = validation.complete
    return VariantScore(
        name=spec.name,
        axes=spec.axes,
        expected_topology=expected_topology,
        recovered_topology=recovered,
        identified=recovered == expected_topology,
        lanes_matched=matched,
        exact=bool(result.all_exact) if result is not None else False,
        complete=complete,
        max_wl_error=max_err,
        wl_errors=wl_errors,
        retries=run.retries,
        fault_events=run.fault_events,
        seconds=run.seconds,
    )


def _percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile over an already-sorted list."""
    idx = int(round(q * (len(sorted_values) - 1)))
    return sorted_values[min(len(sorted_values) - 1, max(0, idx))]


def _distribution(sorted_values: list[float]) -> dict:
    if not sorted_values:
        return {
            "count": 0, "mean": None, "min": None,
            "p50": None, "p95": None, "max": None,
        }
    return {
        "count": len(sorted_values),
        "mean": sum(sorted_values) / len(sorted_values),
        "min": sorted_values[0],
        "p50": _percentile(sorted_values, 0.50),
        "p95": _percentile(sorted_values, 0.95),
        "max": sorted_values[-1],
    }


#: axes the population summary groups identification rates by
_GROUPING_AXES = (
    "variant", "vendor", "generation", "word_size",
    "column_mux", "body_tap", "noise", "faults",
)


def population_summary(scores: list[VariantScore], quarantined: int = 0) -> dict:
    """Aggregate variant scores into the population-level numbers.

    ``identification_rate`` is over *completed* variants; quarantined
    ones count in ``variants`` but score nothing (the partial-report
    contract of the campaign runtime).
    """
    completed = len(scores)
    identified = sum(1 for s in scores if s.identified)
    exact = sum(1 for s in scores if s.exact)
    pooled = sorted(err for s in scores for err in s.wl_errors.values())
    per_variant_max = sorted(
        s.max_wl_error for s in scores if s.max_wl_error is not None
    )
    by_axis: dict[str, dict] = {}
    for axis in _GROUPING_AXES:
        groups: dict[str, dict] = {}
        for s in scores:
            key = str(s.axes.get(axis))
            g = groups.setdefault(key, {"count": 0, "identified": 0})
            g["count"] += 1
            g["identified"] += int(s.identified)
        for g in groups.values():
            g["identification_rate"] = g["identified"] / g["count"]
        by_axis[axis] = dict(sorted(groups.items()))
    return {
        "variants": completed + quarantined,
        "completed": completed,
        "quarantined": quarantined,
        "identification_rate": identified / completed if completed else 0.0,
        "exact_rate": exact / completed if completed else 0.0,
        "by_axis": by_axis,
        "wl_error": _distribution(pooled),
        "max_wl_error": _distribution(per_variant_max),
    }


@dataclass
class CatalogReport:
    """Population-level RE accuracy of one catalog campaign."""

    scores: list[VariantScore]
    population: dict
    workers: int
    wall_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    cache_dir: str | None = None
    seed: int | None = None  #: sampling seed, when the run was sampled
    quarantined: dict[str, dict] = field(default_factory=dict)
    #: the underlying campaign report, carrying its spans / metrics
    #: snapshot / event stream when ``obs`` enabled them.  Never
    #: serialized — deserialized catalog reports carry ``None``.
    campaign: CampaignReport | None = field(
        default=None, repr=False, compare=False
    )

    def _require_campaign(self) -> CampaignReport:
        if self.campaign is None:
            raise CatalogError(
                "this catalog report carries no campaign telemetry "
                "(deserialized reports drop it; run with obs=ObsConfig(...))"
            )
        return self.campaign

    def save_trace(self, path: str | Path) -> Path:
        """Write the underlying campaign trace (see ``CampaignReport.save_trace``)."""
        return self._require_campaign().save_trace(path)

    def save_metrics(self, path: str | Path) -> Path:
        """Write the metrics snapshot (see ``CampaignReport.save_metrics``)."""
        return self._require_campaign().save_metrics(path)

    def save_events(self, path: str | Path) -> Path:
        """Write the lifecycle event JSONL (see ``CampaignReport.save_events``)."""
        return self._require_campaign().save_events(path)

    def results_digest(self) -> str:
        """Stable hash of the deterministic portion (scores + summary).

        Identical for any ``workers`` value and any cache state — the
        bit-identity the campaign substrate guarantees, surfaced as one
        comparable token.  Wall-clock fields (``seconds``) are excluded;
        everything else in the scores and the population summary is
        covered.
        """
        scores = []
        for s in self.scores:
            d = s.to_dict()
            del d["seconds"]
            scores.append(d)
        return stable_hash({
            "schema": REPORT_SCHEMA_VERSION,
            "scores": scores,
            "population": self.population,
        })

    def to_dict(self) -> dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "cache_dir": self.cache_dir,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "seed": self.seed,
            "results": {
                "digest": self.results_digest(),
                "variants": [s.to_dict() for s in self.scores],
                "population": self.population,
            },
            "quarantined": dict(self.quarantined),
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "CatalogReport":
        version = data.get("schema_version")
        if version not in _READABLE_SCHEMA_VERSIONS:
            raise CatalogError(
                f"unreadable catalog report schema {version!r} "
                f"(expected one of {_READABLE_SCHEMA_VERSIONS})"
            )
        results = data.get("results", {})
        return cls(
            scores=[VariantScore.from_dict(s) for s in results.get("variants", [])],
            population=dict(results.get("population", {})),
            workers=int(data.get("workers", 1)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            cache_dir=data.get("cache_dir"),
            seed=data.get("seed"),
            quarantined=dict(data.get("quarantined", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "CatalogReport":
        return cls.from_dict(json.loads(text))

    def render(self) -> str:
        """ASCII population table plus the by-axis identification rates."""
        rows = []
        for s in self.scores:
            a = s.axes
            err = f"{s.max_wl_error:.1%}" if s.max_wl_error is not None else "-"
            rows.append([
                s.name,
                f"{a['vendor']}/{a['generation']}",
                f"w{a['word_size']}m{a['column_mux']}/{a['body_tap']}/{a['noise']}",
                s.expected_topology,
                s.recovered_topology or "-",
                "yes" if s.identified else "NO",
                str(s.lanes_matched),
                err,
                f"{s.seconds:6.2f}s",
            ])
        for name, record in self.quarantined.items():
            rows.append([
                name, "-", "-", "-", "-", "QUAR", "0", "-",
                f"{float(record.get('seconds', 0.0)):6.2f}s",
            ])
        pop = self.population
        title = (
            f"catalog: {pop.get('variants', len(self.scores))} variants, "
            f"workers={self.workers}, identification "
            f"{pop.get('identification_rate', 0.0):.1%}, wall "
            f"{self.wall_seconds:.2f}s, cache {self.cache_hits} hit / "
            f"{self.cache_misses} miss"
        )
        out = [render_table(
            ["variant", "fab/gen", "knobs", "truth", "found", "id",
             "lanes", "maxWLerr", "time"],
            rows, title=title,
        )]
        wl = pop.get("wl_error", {})
        if wl.get("count"):
            out.append(
                f"W/L error (pooled, {wl['count']} class dims): "
                f"mean {wl['mean']:.2%}, p50 {wl['p50']:.2%}, "
                f"p95 {wl['p95']:.2%}, max {wl['max']:.2%}"
            )
        for axis, groups in pop.get("by_axis", {}).items():
            if len(groups) < 2:
                continue
            cells = ", ".join(
                f"{value}={g['identification_rate']:.0%}"
                for value, g in groups.items()
            )
            out.append(f"identification by {axis}: {cells}")
        return "\n".join(out)


def run_catalog_campaign(
    variants: CatalogSpec | Sequence[ChipVariantSpec],
    *,
    config: PipelineConfig | None = None,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    policy: ResiliencePolicy | None = None,
    obs: ObsConfig | None = None,
    seed: int | None = None,
    validate: bool = True,
    job_kwargs: dict | None = None,
    pool=None,
    cancel=None,
    bus=None,
) -> CatalogReport:
    """Image + reverse engineer every variant and score the population.

    ``variants`` is either an explicit variant list (from
    :func:`~repro.catalog.grid.expand_grid` /
    :func:`~repro.catalog.grid.sample`) or a
    :class:`~repro.catalog.grid.CatalogSpec`, whose full grid is
    enumerated.  Ground-truth validation must stay on for W/L error
    distributions; ``validate=False`` still scores topology
    identification.  All the campaign substrate knobs (``workers``,
    ``cache_dir``, ``policy``, ``obs`` — and the serve-daemon seams
    ``pool``/``cancel``/``bus``) pass straight through to
    :func:`~repro.runtime.campaign.run_campaign`.
    """
    if isinstance(variants, CatalogSpec):
        specs = expand_grid(variants)
    else:
        specs = list(variants)
    if not specs:
        raise CatalogError("catalog campaign needs at least one variant")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        seen: set[str] = set()
        dup = next(n for n in names if n in seen or seen.add(n))
        raise CatalogError(f"catalog variant names must be unique (dup: {dup!r})")

    jobs: list[ChipJob] = []
    expected: dict[str, str] = {}
    for spec in specs:
        job = build_job(spec, validate=validate, **(job_kwargs or {}))
        expected[spec.name] = job.spec.topology
        jobs.append(job)

    report = run_campaign(
        jobs,
        config=config if config is not None else catalog_pipeline_config(),
        workers=workers,
        cache_dir=cache_dir,
        policy=policy,
        obs=obs,
        pool=pool,
        cancel=cancel,
        bus=bus,
    )

    scores = [
        score_variant(spec, expected[spec.name], report.chips[spec.name])
        for spec in specs
        if spec.name in report.chips
    ]
    _count_variants(report, completed=len(scores),
                    quarantined=len(report.quarantined))
    return CatalogReport(
        scores=scores,
        population=population_summary(
            scores, quarantined=len(report.quarantined)
        ),
        workers=report.workers,
        wall_seconds=report.wall_seconds,
        cache_hits=report.cache_hits,
        cache_misses=report.cache_misses,
        cache_dir=report.cache_dir,
        seed=seed,
        quarantined={
            name: rec.to_dict() for name, rec in report.quarantined.items()
        },
        campaign=report,
    )


def _count_variants(
    report: CampaignReport, *, completed: int, quarantined: int
) -> None:
    """Record ``repro_catalog_variants_total{outcome=…}`` counters.

    Written both into the campaign report's metrics snapshot (so the
    saved ``--metrics`` JSON carries them) and into any ambient live
    registry (so a ``--serve-obs`` scrape sees them the moment the
    population is scored).
    """
    for outcome, count in (("completed", completed), ("quarantined", quarantined)):
        live = current_metrics()
        if live.enabled:
            live.counter("repro_catalog_variants_total", outcome=outcome).inc(count)
        if report.metrics is not None:
            counters = report.metrics.setdefault("counters", {})
            key = metric_key("repro_catalog_variants_total", {"outcome": outcome})
            counters[key] = counters.get(key, 0.0) + count
