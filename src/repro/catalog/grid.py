"""Deterministic catalog enumeration: full grids and seeded samples.

A :class:`CatalogSpec` declares the population axes as value tuples;
:func:`expand_grid` walks their cartesian product in declared-axis order
and :func:`sample` draws *n* variants with a seeded RNG.  Both are pure
functions of their inputs — the same ``(spec, seed)`` always yields the
same variant list, which is what makes hundred-chip fuzz campaigns
cache-addressable and bit-reproducible.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, fields

from repro.catalog.variants import ChipVariantSpec
from repro.errors import CatalogError
from repro.faults import FaultPlan


@dataclass(frozen=True)
class CatalogSpec:
    """The population axes a fuzz campaign enumerates over.

    Every axis is a non-empty tuple of admissible values.  Axis values
    are validated eagerly (each must survive
    :class:`~repro.catalog.variants.ChipVariantSpec` construction), so a
    typo fails at spec construction rather than mid-campaign.  Variant
    *names* resolve lazily at lowering time so dynamically registered
    builders work.
    """

    variants: tuple[str, ...] = ("classic", "ocsa")
    vendors: tuple[str, ...] = ("fab-a", "fab-b", "fab-c")
    generations: tuple[str, ...] = ("ddr4", "ddr5")
    word_sizes: tuple[int, ...] = (1, 2)
    column_muxes: tuple[int, ...] = (4,)
    body_taps: tuple[str, ...] = ("none", "edge")
    noises: tuple[str, ...] = ("nominal",)
    fault_plans: tuple[FaultPlan | None, ...] = (None,)

    def __post_init__(self) -> None:
        for f in fields(self):
            axis = getattr(self, f.name)
            if not isinstance(axis, tuple) or not axis:
                raise CatalogError(
                    f"catalog axis {f.name!r} needs a non-empty tuple"
                )
        for vendor in self.vendors:
            ChipVariantSpec(name="axis-check", vendor=vendor)
        for generation in self.generations:
            ChipVariantSpec(name="axis-check", generation=generation)
        for word in self.word_sizes:
            ChipVariantSpec(name="axis-check", word_size=word)
        for mux in self.column_muxes:
            ChipVariantSpec(name="axis-check", column_mux=mux)
        for tap in self.body_taps:
            ChipVariantSpec(name="axis-check", body_tap=tap)
        for noise in self.noises:
            ChipVariantSpec(name="axis-check", noise=noise)

    @property
    def grid_size(self) -> int:
        """Number of combinations :func:`expand_grid` enumerates."""
        size = 1
        for f in fields(self):
            size *= len(getattr(self, f.name))
        return size


def _variant_name(
    prefix: str,
    idx: int,
    variant: str,
    vendor: str,
    generation: str,
    word: int,
    mux: int,
    tap: str,
    noise: str,
    plan: FaultPlan | None,
) -> str:
    tag = f"{variant}-{vendor}-{generation}-w{word}m{mux}-{tap}-{noise}"
    if plan is not None and plan.active:
        tag += "-faulty"
    return f"{prefix}{idx:03d}-{tag}"


def expand_grid(spec: CatalogSpec) -> list[ChipVariantSpec]:
    """Every axis combination, in deterministic declared-axis order."""
    out: list[ChipVariantSpec] = []
    combos = itertools.product(
        spec.variants, spec.vendors, spec.generations, spec.word_sizes,
        spec.column_muxes, spec.body_taps, spec.noises, spec.fault_plans,
    )
    for idx, (variant, vendor, generation, word, mux, tap, noise, plan) in (
        enumerate(combos)
    ):
        out.append(ChipVariantSpec(
            name=_variant_name(
                "g", idx, variant, vendor, generation, word, mux, tap, noise, plan
            ),
            variant=variant,
            vendor=vendor,
            generation=generation,
            word_size=word,
            column_mux=mux,
            body_tap=tap,
            noise=noise,
            fault_plan=plan,
        ))
    return out


def sample(spec: CatalogSpec, n: int, seed: int = 0) -> list[ChipVariantSpec]:
    """*n* seeded draws with independently sampled axes.

    Deterministic: the same ``(spec, n, seed)`` always returns the same
    list (``random.Random`` is a stable, platform-independent generator).
    Draw *k* also carries ``seed=k``, so two draws that land on the same
    axis combination still image *distinct* (but reproducible)
    acquisitions — the population spreads even when ``n`` exceeds the
    grid size.
    """
    if n < 1:
        raise CatalogError("sample size must be at least 1")
    rng = random.Random(seed)
    out: list[ChipVariantSpec] = []
    for k in range(n):
        variant = rng.choice(spec.variants)
        vendor = rng.choice(spec.vendors)
        generation = rng.choice(spec.generations)
        word = rng.choice(spec.word_sizes)
        mux = rng.choice(spec.column_muxes)
        tap = rng.choice(spec.body_taps)
        noise = rng.choice(spec.noises)
        plan = rng.choice(spec.fault_plans)
        out.append(ChipVariantSpec(
            name=_variant_name(
                "s", k, variant, vendor, generation, word, mux, tap, noise, plan
            ),
            variant=variant,
            vendor=vendor,
            generation=generation,
            word_size=word,
            column_mux=mux,
            body_tap=tap,
            noise=noise,
            seed=k,
            fault_plan=plan,
        ))
    return out
