"""Parametric chip catalog: variant registry + enumerator + population runs.

The catalog turns the single-chip substrate into a *population* tool
(§V studies six real chips; fuzz campaigns want hundreds of synthetic
ones):

* :class:`ChipVariantSpec` names one synthetic chip along the population
  axes (vendor profile, DDR4/DDR5 process preset, topology family, word
  size, column-mux ratio, body-tap placement, noise regime, fault plan);
* :func:`register_variant` / :func:`variant_builder` are the named
  builder registry lowering variants to
  :class:`~repro.layout.generator.SaRegionSpec` ground truth;
* :class:`CatalogSpec` + :func:`expand_grid` / :func:`sample` enumerate
  deterministic variant populations;
* :func:`run_catalog_campaign` runs them through the unchanged campaign
  substrate and scores the population into a ``catalog-report/1``
  :class:`CatalogReport`.

CLI: ``python -m repro catalog``; perf probe: ``python -m repro.perf
--catalog``.
"""

from repro.catalog.variants import (
    NOISE_REGIMES,
    PROCESS_PRESETS,
    VENDOR_PROFILES,
    ChipVariantSpec,
    ProcessPreset,
    VendorProfile,
    build_region_spec,
    chip_variant,
    register_variant,
    registered_variants,
    variant_builder,
)
from repro.catalog.grid import CatalogSpec, expand_grid, sample
from repro.catalog.campaign import (
    REPORT_SCHEMA_VERSION,
    CatalogReport,
    VariantScore,
    build_job,
    catalog_pipeline_config,
    population_summary,
    run_catalog_campaign,
    score_variant,
)

__all__ = [
    "NOISE_REGIMES",
    "PROCESS_PRESETS",
    "VENDOR_PROFILES",
    "ChipVariantSpec",
    "ProcessPreset",
    "VendorProfile",
    "build_region_spec",
    "chip_variant",
    "register_variant",
    "registered_variants",
    "variant_builder",
    "CatalogSpec",
    "expand_grid",
    "sample",
    "REPORT_SCHEMA_VERSION",
    "CatalogReport",
    "VariantScore",
    "build_job",
    "catalog_pipeline_config",
    "population_summary",
    "run_catalog_campaign",
    "score_variant",
]
