"""Chip variant specs and the named variant-builder registry.

The paper's findings (§V) span vendors, DDR4/DDR5 generations and two SA
topologies, but :class:`~repro.layout.generator.SaRegionSpec` describes
exactly one region shape.  This module is the catalog's fab front-end:

* a :class:`ChipVariantSpec` names one synthetic chip along the
  population axes — vendor profile (A/B/C house styles), process
  generation (the 318 nm DDR4 / 275 nm DDR5 transition split of §V-C),
  a topology-family builder, word size, column-mux ratio, body-tap
  placement, drift/noise regime and an optional
  :class:`~repro.faults.FaultPlan`;
* a registry of *named builders* lowers a variant spec to a concrete
  ``SaRegionSpec`` — the OpenNVRAM ``OPTS.sense_amp`` indirection:
  variants are selected dynamically by name, so new chip families plug
  in through :func:`register_variant` (or an entry-point-style
  ``"module:attr"`` reference) without touching the enumerator or the
  campaign code.

Registered out of the box: ``classic`` and ``ocsa`` (the two §III/§V
families under the full axis set) and ``hifi-a4`` … ``hifi-c5`` (the six
Table I chips with their measured dimensions — what
``core.hifi.region_spec_for`` lowers through).
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Callable

from repro.errors import CatalogError, UnknownVariantError
from repro.faults import FaultPlan
from repro.layout.elements import TransistorKind
from repro.layout.generator import (
    TRANSITION_NM_BY_GENERATION,
    DeviceDims,
    SaRegionSpec,
    default_dims,
)


@dataclass(frozen=True)
class ProcessPreset:
    """One DRAM process generation (feature size + MAT→SA transition)."""

    generation: str
    feature_nm: float
    transition_nm: float


#: §V-C presets: the MAT→SA transition averages 318 nm on the DDR4 chips
#: and 275 nm on the DDR5 chips; the feature sizes follow the Table I
#: medians of each generation.
PROCESS_PRESETS: dict[str, ProcessPreset] = {
    "ddr4": ProcessPreset("ddr4", 18.0, TRANSITION_NM_BY_GENERATION["ddr4"]),
    "ddr5": ProcessPreset("ddr5", 16.0, TRANSITION_NM_BY_GENERATION["ddr5"]),
}


@dataclass(frozen=True)
class VendorProfile:
    """A synthetic vendor house style applied on top of a process preset."""

    name: str
    w_scale: float = 1.0  #: transistor width bias vs the generic dims
    l_scale: float = 1.0  #: transistor length bias
    feature_scale: float = 1.0  #: feature-size bias vs the preset
    se_friendly: bool = True  #: §IV-B: vendor B/C processes are not SE friendly


VENDOR_PROFILES: dict[str, VendorProfile] = {
    "fab-a": VendorProfile("fab-a"),
    "fab-b": VendorProfile(
        "fab-b", w_scale=1.15, l_scale=0.9, feature_scale=1.05, se_friendly=False
    ),
    "fab-c": VendorProfile(
        "fab-c", w_scale=0.9, l_scale=1.1, feature_scale=0.95, se_friendly=False
    ),
}


#: Acquisition drift/noise regimes.  Dwell time scales the SEM shot noise
#: (sigma ∝ 1/sqrt(dwell)); the drift knobs feed the FIB-SEM random walk.
#: "nominal" reproduces the demo acquisition of ``ChipJob.synthetic``.
NOISE_REGIMES: dict[str, dict[str, float]] = {
    "quiet": {"dwell_time_us": 8.0, "drift_step_px": 0.15, "max_drift_px": 2},
    "nominal": {"dwell_time_us": 6.0, "drift_step_px": 0.25, "max_drift_px": 4},
    "noisy": {"dwell_time_us": 3.0, "drift_step_px": 0.4, "max_drift_px": 4},
}


@dataclass(frozen=True)
class ChipVariantSpec:
    """One synthetic chip along the catalog's population axes."""

    name: str
    variant: str = "classic"  #: registered builder name (or "module:attr")
    vendor: str = "fab-a"
    generation: str = "ddr4"
    word_size: int = 2  #: bitline pairs per imaged SA tile (region lanes)
    column_mux: int = 4  #: adjacent pairs sharing one column-select Y net
    body_tap: str = "none"  #: substrate taps: "none" | "lane" | "edge"
    noise: str = "nominal"  #: acquisition drift/noise regime
    seed: int = 0  #: per-variant acquisition seed material
    fault_plan: FaultPlan | None = None
    feature_nm: float | None = None  #: override the process preset
    transition_nm: float | None = None  #: override the generation preset

    def __post_init__(self) -> None:
        if not self.name:
            raise CatalogError("chip variant needs a name")
        if self.vendor not in VENDOR_PROFILES:
            raise CatalogError(
                f"unknown vendor profile {self.vendor!r} "
                f"(expected one of {sorted(VENDOR_PROFILES)})"
            )
        if self.generation not in PROCESS_PRESETS:
            raise CatalogError(
                f"unknown process generation {self.generation!r} "
                f"(expected one of {sorted(PROCESS_PRESETS)})"
            )
        if self.noise not in NOISE_REGIMES:
            raise CatalogError(
                f"unknown noise regime {self.noise!r} "
                f"(expected one of {sorted(NOISE_REGIMES)})"
            )
        if self.body_tap not in ("none", "lane", "edge"):
            raise CatalogError(
                f"unknown body tap placement {self.body_tap!r} "
                f"(expected none, lane or edge)"
            )
        if self.word_size < 1:
            raise CatalogError("word size must be at least one bitline pair")
        if self.column_mux < 1:
            raise CatalogError("column mux ratio must be at least 1")

    @property
    def axes(self) -> dict[str, object]:
        """The population axes as a plain dict (report rows, grouping)."""
        return {
            "variant": self.variant,
            "vendor": self.vendor,
            "generation": self.generation,
            "word_size": self.word_size,
            "column_mux": self.column_mux,
            "body_tap": self.body_tap,
            "noise": self.noise,
            "faults": bool(self.fault_plan is not None and self.fault_plan.active),
        }


VariantBuilder = Callable[[ChipVariantSpec], SaRegionSpec]

_VARIANT_BUILDERS: dict[str, VariantBuilder] = {}


def register_variant(name: str, builder: VariantBuilder | None = None):
    """Register a named variant builder; usable as a decorator.

    A builder maps a :class:`ChipVariantSpec` to the
    :class:`~repro.layout.generator.SaRegionSpec` it stands for.
    Re-registering a name replaces the previous builder (latest wins),
    so tests and plug-ins can shadow the stock families.
    """
    if not name:
        raise CatalogError("variant name must be non-empty")
    if builder is None:

        def _decorator(fn: VariantBuilder) -> VariantBuilder:
            register_variant(name, fn)
            return fn

        return _decorator
    _VARIANT_BUILDERS[name] = builder
    return builder


def registered_variants() -> tuple[str, ...]:
    """The registered builder names, sorted."""
    return tuple(sorted(_VARIANT_BUILDERS))


def variant_builder(name: str) -> VariantBuilder:
    """Look up a builder by registry name or ``"module:attr"`` reference.

    Names containing a colon resolve like packaging entry points: the
    module is imported and the attribute fetched — so a catalog spec can
    reference builders that were never registered.  Unknown names raise
    :class:`~repro.errors.UnknownVariantError` listing the registry.
    """
    try:
        return _VARIANT_BUILDERS[name]
    except KeyError:
        pass
    if ":" in name:
        module_name, _, attr = name.partition(":")
        try:
            builder = getattr(importlib.import_module(module_name), attr)
        except (ImportError, AttributeError) as exc:
            raise UnknownVariantError(name, registered_variants()) from exc
        if not callable(builder):
            raise UnknownVariantError(name, registered_variants())
        return builder
    raise UnknownVariantError(name, registered_variants())


def build_region_spec(spec: ChipVariantSpec) -> SaRegionSpec:
    """Lower a variant spec to the ground-truth generator's region spec."""
    region = variant_builder(spec.variant)(spec)
    if not isinstance(region, SaRegionSpec):
        raise CatalogError(
            f"variant builder {spec.variant!r} returned "
            f"{type(region).__name__}, expected SaRegionSpec"
        )
    return region


# ---------------------------------------------------------------------------
# Stock builders: the two §III/§V topology families.

def _family_dims(
    topology: str, profile: VendorProfile
) -> dict[TransistorKind, DeviceDims]:
    return {
        kind: DeviceDims(w=d.w * profile.w_scale, l=d.l * profile.l_scale)
        for kind, d in default_dims(topology).items()
    }


def _family_region(spec: ChipVariantSpec, topology: str) -> SaRegionSpec:
    preset = PROCESS_PRESETS[spec.generation]
    profile = VENDOR_PROFILES[spec.vendor]
    feature = (
        spec.feature_nm
        if spec.feature_nm is not None
        else preset.feature_nm * profile.feature_scale
    )
    transition = (
        spec.transition_nm if spec.transition_nm is not None else preset.transition_nm
    )
    return SaRegionSpec(
        name=spec.name,
        topology=topology,
        n_pairs=spec.word_size,
        feature_nm=feature,
        transition_nm=transition,
        dims=_family_dims(topology, profile),
        column_mux=spec.column_mux,
        body_tap=spec.body_tap,
    )


@register_variant("classic")
def build_classic_variant(spec: ChipVariantSpec) -> SaRegionSpec:
    """The conventional SA family (§III Fig 2) under the catalog axes."""
    return _family_region(spec, "classic")


@register_variant("ocsa")
def build_ocsa_variant(spec: ChipVariantSpec) -> SaRegionSpec:
    """The offset-cancellation family (§V Fig 9) under the catalog axes."""
    return _family_region(spec, "ocsa")


# ---------------------------------------------------------------------------
# Table I chips as catalog variants (what core.hifi lowers through).

def chip_variant(chip_id: str, word_size: int = 2, **overrides) -> ChipVariantSpec:
    """The variant spec of one Table I chip (builder ``hifi-<id>``)."""
    from repro.core.chips import chip as get_chip

    c = get_chip(chip_id)
    return ChipVariantSpec(
        name=f"{c.chip_id.lower()}_region",
        variant=f"hifi-{c.chip_id.lower()}",
        vendor=f"fab-{c.vendor.lower()}",
        generation=c.generation.lower(),
        word_size=word_size,
        **overrides,
    )


def _table1_builder(chip_id: str) -> VariantBuilder:
    def _build(spec: ChipVariantSpec) -> SaRegionSpec:
        from repro.core.chips import chip as get_chip

        c = get_chip(chip_id)
        dims = {
            kind: DeviceDims(w=rec.w, l=rec.l, eff_w=rec.eff_w, eff_l=rec.eff_l)
            for kind, rec in c.transistors.items()
        }
        return SaRegionSpec(
            name=spec.name,
            topology=c.topology.value,
            n_pairs=spec.word_size,
            feature_nm=(
                spec.feature_nm if spec.feature_nm is not None
                else c.geometry.feature_nm
            ),
            transition_nm=(
                spec.transition_nm if spec.transition_nm is not None
                else c.geometry.transition_nm
            ),
            dims=dims,
            column_mux=spec.column_mux,
            body_tap=spec.body_tap,
        )

    _build.__name__ = f"build_hifi_{chip_id.lower()}"
    _build.__doc__ = f"Table I chip {chip_id} with its measured dimensions."
    return _build


for _chip_id in ("A4", "B4", "C4", "A5", "B5", "C5"):
    register_variant(f"hifi-{_chip_id.lower()}", _table1_builder(_chip_id))
del _chip_id
