"""Exception hierarchy for the HiFi-DRAM reproduction library.

Every exception raised intentionally by this package derives from
:class:`ReproError`, so downstream users can catch a single base class.
The sub-hierarchy mirrors the package structure: layout, circuits, analog,
imaging, pipeline, reverse engineering, and the core evaluation framework.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class LayoutError(ReproError):
    """Invalid layout construction or query (bad geometry, unknown layer)."""


class DesignRuleViolation(LayoutError):
    """A DRC check failed (minimum width / spacing / overlap)."""

    def __init__(self, rule: str, detail: str = "") -> None:
        self.rule = rule
        self.detail = detail
        message = f"design rule violated: {rule}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class GdsFormatError(LayoutError):
    """Malformed GDSII stream encountered while reading or writing."""


class NetlistError(ReproError):
    """Invalid netlist construction (dangling terminal, duplicate net...)."""


class TopologyError(NetlistError):
    """A circuit could not be classified as a known SA topology."""


class AnalogError(ReproError):
    """Analog simulation failure."""


class ConvergenceError(AnalogError):
    """The Newton iteration of the MNA solver failed to converge."""

    def __init__(self, time_ns: float, residual: float, iterations: int) -> None:
        self.time_ns = time_ns
        self.residual = residual
        self.iterations = iterations
        super().__init__(
            f"solver did not converge at t={time_ns:.4f} ns "
            f"(residual {residual:.3e} after {iterations} iterations)"
        )


class ImagingError(ReproError):
    """SEM/FIB simulation failure (bad volume, empty ROI, bad parameters)."""


class PipelineError(ReproError):
    """Image post-processing failure (alignment, denoising, reslicing)."""


class AlignmentBudgetExceeded(PipelineError):
    """Residual slice misalignment exceeds the paper's 0.77 % budget."""

    def __init__(self, residual_fraction: float, budget_fraction: float) -> None:
        self.residual_fraction = residual_fraction
        self.budget_fraction = budget_fraction
        super().__init__(
            f"residual alignment noise {residual_fraction:.4%} exceeds "
            f"budget {budget_fraction:.4%}"
        )


class ReverseEngineeringError(ReproError):
    """Feature extraction or connectivity tracing failed."""


class CampaignError(ReproError):
    """The campaign runtime was misconfigured (bad job, unhashable params)."""


class EvaluationError(ReproError):
    """The §VI evaluation framework was asked something inconsistent."""


class UnknownChipError(EvaluationError):
    """A chip ID not present in the Table I database was requested."""

    def __init__(self, chip_id: str) -> None:
        self.chip_id = chip_id
        super().__init__(f"unknown chip id: {chip_id!r} (expected A4/B4/C4/A5/B5/C5)")


class UnknownPaperError(EvaluationError):
    """A paper key not present in the Table II audit set was requested."""

    def __init__(self, key: str) -> None:
        self.key = key
        super().__init__(f"unknown paper key: {key!r}")
