"""Exception hierarchy for the HiFi-DRAM reproduction library.

Every exception raised intentionally by this package derives from
:class:`ReproError`, so downstream users can catch a single base class.
The sub-hierarchy mirrors the package structure: layout, circuits, analog,
imaging, pipeline, reverse engineering, and the core evaluation framework.

Stage failures (the typed failure API)
--------------------------------------
The campaign runtime needs to tell *which chip*, *which stage* and — for
acquisition defects — *which slice* failed, so it can retry, quarantine
and report instead of aborting the pool.  :class:`StageError` carries that
context (``chip_id`` / ``stage`` / ``slice_index`` plus a free-form
``details`` dict), and one subclass exists per pipeline phase:

* :class:`AcquisitionError` — imaging / FIB-SEM simulation failures;
* :class:`AlignmentError` — MI registration failures and busted budgets;
* :class:`SegmentationError` — intensity classification failures;
* :class:`RevEngError` — connectivity / feature extraction failures;
* :class:`StageTimeoutError` — a chip exceeded its campaign time budget.

Each subclass also inherits the legacy module-level error it replaces
(:class:`ImagingError`, :class:`PipelineError`,
:class:`ReverseEngineeringError`), so existing ``except`` clauses keep
working for one deprecation cycle.  The legacy names are deprecated as
catch targets and will stop being ancestors of the stage errors in
repro 2.0 — catch :class:`StageError` or its subclasses instead.
"""

from __future__ import annotations

from typing import Any


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class LayoutError(ReproError):
    """Invalid layout construction or query (bad geometry, unknown layer)."""


class DesignRuleViolation(LayoutError):
    """A DRC check failed (minimum width / spacing / overlap)."""

    def __init__(self, rule: str, detail: str = "") -> None:
        self.rule = rule
        self.detail = detail
        message = f"design rule violated: {rule}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)


class GdsFormatError(LayoutError):
    """Malformed GDSII stream encountered while reading or writing."""


class NetlistError(ReproError):
    """Invalid netlist construction (dangling terminal, duplicate net...)."""


class TopologyError(NetlistError):
    """A circuit could not be classified as a known SA topology."""


class AnalogError(ReproError):
    """Analog simulation failure."""


class ConvergenceError(AnalogError):
    """The Newton iteration of the MNA solver failed to converge."""

    def __init__(self, time_ns: float, residual: float, iterations: int) -> None:
        self.time_ns = time_ns
        self.residual = residual
        self.iterations = iterations
        super().__init__(
            f"solver did not converge at t={time_ns:.4f} ns "
            f"(residual {residual:.3e} after {iterations} iterations)"
        )


class ImagingError(ReproError):
    """SEM/FIB simulation failure (bad volume, empty ROI, bad parameters).

    .. deprecated:: 1.2
        Legacy base kept for one cycle; catch :class:`AcquisitionError`.
    """


class PipelineError(ReproError):
    """Image post-processing failure (alignment, denoising, reslicing).

    .. deprecated:: 1.2 as a catch target for stage failures
        Catch :class:`AlignmentError` / :class:`SegmentationError` (or
        :class:`StageError`) instead; config-validation failures still
        raise :class:`PipelineError` directly.
    """


class ReverseEngineeringError(ReproError):
    """Feature extraction or connectivity tracing failed.

    .. deprecated:: 1.2
        Legacy base kept for one cycle; catch :class:`RevEngError`.
    """


class StageError(ReproError):
    """A pipeline stage failed while processing one chip.

    The campaign runtime's typed failure surface: carries the failing
    ``chip_id``, the ``stage`` name, the offending ``slice_index`` (for
    per-slice acquisition defects) and a ``details`` dict of structured
    telemetry (retry counts, failed slice lists, fault events) that
    quarantine records are built from.  All context fields are optional —
    stages raise with whatever they know.
    """

    def __init__(
        self,
        message: str,
        *,
        chip_id: str | None = None,
        stage: str | None = None,
        slice_index: int | None = None,
        details: dict[str, Any] | None = None,
    ) -> None:
        self.chip_id = chip_id
        self.stage = stage
        self.slice_index = slice_index
        self.details = dict(details) if details else {}
        context = [
            f"chip={chip_id}" if chip_id is not None else "",
            f"stage={stage}" if stage is not None else "",
            f"slice={slice_index}" if slice_index is not None else "",
        ]
        context = [c for c in context if c]
        if context:
            message = f"{message} [{', '.join(context)}]"
        super().__init__(message)


class AcquisitionError(StageError, ImagingError):
    """Acquisition failed: bad imaging parameters, an empty field of view,
    or slices that still fail quality control after the retry budget."""


class AlignmentError(StageError, PipelineError):
    """Slice registration failed or its residual exceeds the drift budget."""


class SegmentationError(StageError, PipelineError):
    """Intensity classification of the planar views failed."""


class RevEngError(StageError, ReverseEngineeringError):
    """Connectivity extraction or topology identification failed."""


class StageTimeoutError(StageError):
    """A chip's stage chain exceeded the campaign's per-chip time budget."""


class JobCancelledError(StageError):
    """A chip's chain was cut short because its campaign was cancelled.

    Raised cooperatively at stage boundaries (and synthesized for chips
    that never started) when a caller trips ``run_campaign``'s ``cancel``
    event — e.g. ``DELETE /jobs/{id}`` against the serve daemon, or a
    SIGTERM drain.  Inherits :class:`StageError` so the chip lands in the
    report's quarantine section instead of aborting the campaign."""


class CharacterizationError(StageError, AnalogError):
    """An analog characterization sweep cell failed.

    Raised when a cell's solver run does not converge (e.g. a too-small
    ``max_newton`` in the spec) or the cell was configured inconsistently;
    inherits :class:`StageError` so the campaign runtime quarantines the
    cell instead of aborting the sweep, and :class:`AnalogError` so
    analog-side callers keep one catch target."""


class AlignmentBudgetExceeded(AlignmentError):
    """Residual slice misalignment exceeds the paper's 0.77 % budget."""

    def __init__(
        self,
        residual_fraction: float,
        budget_fraction: float,
        *,
        chip_id: str | None = None,
    ) -> None:
        self.residual_fraction = residual_fraction
        self.budget_fraction = budget_fraction
        super().__init__(
            f"residual alignment noise {residual_fraction:.4%} exceeds "
            f"budget {budget_fraction:.4%}",
            chip_id=chip_id,
            stage="align",
        )


class CampaignError(ReproError):
    """The campaign runtime was misconfigured (bad job, unhashable params)."""


class CatalogError(ReproError):
    """The chip catalog was asked something inconsistent (bad axis value,
    malformed variant spec, an empty enumeration, a builder returning the
    wrong type)."""


class UnknownVariantError(CatalogError):
    """A chip variant name absent from the builder registry.

    Carries the requested ``name`` and the ``registered`` names at lookup
    time, and puts both in the message so a typo is a one-glance fix.
    """

    def __init__(self, name: str, registered: tuple[str, ...] = ()) -> None:
        self.name = name
        self.registered = tuple(registered)
        known = ", ".join(self.registered) if self.registered else "none"
        super().__init__(
            f"unknown chip variant {name!r} (registered variants: {known})"
        )


class ServeError(ReproError):
    """The campaign-as-a-service daemon was asked something inconsistent."""


class SpecError(ServeError):
    """A submitted ``job-spec/1`` document failed validation.

    Carries ``errors`` — one human-readable string per violation — so the
    HTTP layer can return them all at once instead of one per round trip.
    """

    def __init__(self, errors: list[str] | str) -> None:
        if isinstance(errors, str):
            errors = [errors]
        self.errors = list(errors)
        super().__init__("invalid job spec: " + "; ".join(self.errors))


class QuotaError(ServeError):
    """A tenant's job admission would exceed its queued+running quota."""

    def __init__(self, tenant: str, limit: int) -> None:
        self.tenant = tenant
        self.limit = limit
        super().__init__(
            f"tenant {tenant!r} already has {limit} queued or running "
            "jobs (per-tenant quota)"
        )


class DrainingError(ServeError):
    """A job was submitted while the daemon is draining (shutting down)."""

    def __init__(self) -> None:
        super().__init__("daemon is draining; not admitting new jobs")


class EvaluationError(ReproError):
    """The §VI evaluation framework was asked something inconsistent."""


class UnknownChipError(EvaluationError):
    """A chip ID not present in the Table I database was requested."""

    def __init__(self, chip_id: str) -> None:
        self.chip_id = chip_id
        super().__init__(f"unknown chip id: {chip_id!r} (expected A4/B4/C4/A5/B5/C5)")


class UnknownPaperError(EvaluationError):
    """A paper key not present in the Table II audit set was requested."""

    def __init__(self, key: str) -> None:
        self.key = key
        super().__init__(f"unknown paper key: {key!r}")
