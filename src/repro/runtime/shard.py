"""Slice-shard executor: the second scheduling level of the campaign runtime.

The chip-level pool in :mod:`repro.runtime.campaign` parallelises across
chips; this module parallelises *within* a chip.  The per-slice stages
(acquire imaging, TV denoise, slice QC) are embarrassingly parallel
across slices, so a :class:`~repro.pipeline.config.ShardPlan` partitions
their slices into deterministic batches and :func:`shard_map` fans the
batches out to a process pool shared by every stage running in this
process.  The two levels compose: a six-chip campaign on a 32-core
machine runs six chip workers with five shard workers each, and a
single-chip campaign gives all its workers to shards — either way the
machine is saturated.

Determinism contract
--------------------
Per-slice work is pure per slice (the acquire RNG is a counter-based
per-slice stream, denoise and QC read only their own slice), batches are
a pure function of ``(n_items, plan)``, and the merge reassembles
results by slice index.  Output is therefore bit-identical to the serial
path for **every** batch size, ordering and worker count — the property
the ``parallel-determinism`` CI job and the hypothesis tests in
``tests/test_runtime_shard.py`` pin down.

Backpressure
------------
Submitting a whole stack at once would pickle every slice into the
pool's call queue up front.  ``plan.max_inflight_bytes`` bounds the
payload bytes outstanding at any moment: the submitter blocks on the
*oldest* incomplete batch (completion order is irrelevant — the merge is
by index) before pushing more work.

Observability
-------------
Each batch is wrapped in a ``kind="shard"`` span on the submitting
process's tracer, so shard spans nest under whatever span issued them —
in the pipeline, the stage's ``kernel_scope`` span (``acquire_stack``,
``denoise_stack``, ``qc_stack``), which itself nests under the stage
span.  The batch runs remotely; the span measures the submitter's wait,
which is the schedulable quantity.  Counters:

=====================================  ====================================
``repro_shard_batches_total{stage}``   batches dispatched
``repro_shard_slices_total{stage}``    slices dispatched
``repro_shard_bytes_total{stage}``     estimated payload bytes shipped
``repro_shard_backpressure_total{stage}``  submissions that had to wait
``repro_shard_fallback_total{stage,reason}``  sharding declined (callers
                                       increment, e.g. active fault plan)
=====================================  ====================================
"""

from __future__ import annotations

import atexit
import sys
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

from repro.obs import current_metrics, current_tracer, get_logger
from repro.pipeline.config import ShardPlan

logger = get_logger("repro.runtime.shard")

T = TypeVar("T")
R = TypeVar("R")

# One pool per (process, worker count).  Shared across stages and chips
# running in this process so pool start-up (fork + import) is paid once,
# not once per stage invocation.
_POOLS: dict[int, ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def shared_shard_pool(workers: int) -> ProcessPoolExecutor:
    """The process-wide shard pool for *workers* (created lazily)."""
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=workers)
            _POOLS[workers] = pool
        return pool


def shutdown_shard_pools() -> None:
    """Shut down every shard pool this process created (tests, atexit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_shard_pools)


def payload_nbytes(item: Any) -> int:
    """Estimate the pickled payload size of one shard item.

    Array-bearing items dominate shard traffic, so the estimate walks
    ``nbytes`` over arrays, tuples/lists and dataclass-like objects with
    an ``__dict__``; everything else is charged a nominal 256 bytes.
    """
    if isinstance(item, np.ndarray):
        return int(item.nbytes)
    nbytes = getattr(item, "nbytes", None)
    if nbytes is not None:
        return int(nbytes)
    if isinstance(item, (tuple, list)):
        return sum(payload_nbytes(v) for v in item) + 64
    state = getattr(item, "__dict__", None)
    if state:
        return sum(payload_nbytes(v) for v in state.values()) + 64
    return 256


def _canonical_result(value: Any) -> Any:
    """Re-intern shared objects on results that crossed the pool boundary.

    An unpickled array carries a fresh ``dtype`` instance instead of the
    process-wide singleton, and unpickled dict keys are fresh string
    objects instead of the interned literals the serial path shares
    across every slice.  Values compare equal either way, but
    ``pickle.dumps`` of a result *list* then differs from the serial
    run's bytes (a shared object is memo-referenced once, a fresh
    instance is re-serialized per occurrence) — breaking the
    bit-identity contract at the byte level.  A zero-copy ``view`` with
    the canonical dtype and ``sys.intern`` on string keys restore both.
    """
    if isinstance(value, np.ndarray):
        return value.view(np.dtype(value.dtype.str))
    if isinstance(value, tuple):
        return tuple(_canonical_result(v) for v in value)
    if isinstance(value, list):
        return [_canonical_result(v) for v in value]
    if isinstance(value, dict):
        return {
            sys.intern(k) if isinstance(k, str) else k: _canonical_result(v)
            for k, v in value.items()
        }
    return value


def shard_map(
    stage: str,
    fn: Callable[[list[T]], list[R]],
    items: Sequence[T],
    plan: ShardPlan,
    bytes_of: Callable[[T], int] = payload_nbytes,
) -> list[R]:
    """Apply batch function *fn* to *items*, sharded per *plan*.

    *fn* must be a picklable top-level callable mapping a list of items
    to the list of their results (same length, same order) with each
    result depending only on its own item — that per-item purity is what
    makes the batching invisible in the output.  Results come back in
    item order regardless of batch completion order.

    With the plan not engaged (sharding off, one worker, or a single
    item) the batches run in-process in index order — the same ``fn`` on
    the same batches, so the output is identical by construction.
    """
    n = len(items)
    if n == 0:
        return []
    batches = plan.batches(n)
    tracer = current_tracer()
    metrics = current_metrics()
    out: list[R | None] = [None] * n

    def _merge(index_batch: tuple[int, ...], results: list[R]) -> None:
        if len(results) != len(index_batch):
            raise RuntimeError(
                f"shard batch for stage {stage!r} returned {len(results)} "
                f"results for {len(index_batch)} items"
            )
        for i, result in zip(index_batch, results):
            out[i] = result

    if not plan.engaged(n):
        for k, idx in enumerate(batches):
            with tracer.span(
                f"shard[{k}]", kind="shard", stage=stage, slices=len(idx),
                inline=True,
            ):
                _merge(idx, fn([items[i] for i in idx]))
        return out  # type: ignore[return-value]

    pool = shared_shard_pool(plan.resolved_workers)
    if metrics.enabled:
        metrics.counter("repro_shard_batches_total", stage=stage).inc(len(batches))
        metrics.counter("repro_shard_slices_total", stage=stage).inc(n)

    # Submit with backpressure: block on the oldest outstanding batch
    # once the estimated in-flight payload exceeds the plan's ceiling.
    inflight: list[tuple[int, tuple[int, ...], Any, int]] = []  # (k, idx, future, bytes)
    inflight_bytes = 0
    pending: list[tuple[int, tuple[int, ...], Any]] = []

    def _retire_oldest() -> None:
        nonlocal inflight_bytes
        k, idx, future, nbytes = inflight.pop(0)
        with tracer.span(
            f"shard[{k}]", kind="shard", stage=stage, slices=len(idx),
            payload_bytes=nbytes,
        ):
            results = _canonical_result(future.result())
        inflight_bytes -= nbytes
        pending.append((k, idx, results))

    for k, idx in enumerate(batches):
        payload = [items[i] for i in idx]
        nbytes = sum(bytes_of(item) for item in payload)
        while inflight and inflight_bytes + nbytes > plan.max_inflight_bytes:
            if metrics.enabled:
                metrics.counter(
                    "repro_shard_backpressure_total", stage=stage
                ).inc()
            _retire_oldest()
        inflight.append((k, idx, pool.submit(fn, payload), nbytes))
        inflight_bytes += nbytes
        if metrics.enabled:
            metrics.counter("repro_shard_bytes_total", stage=stage).inc(nbytes)
    while inflight:
        _retire_oldest()
    for _, idx, results in pending:
        _merge(idx, results)
    return out  # type: ignore[return-value]


def note_shard_fallback(stage: str, reason: str) -> None:
    """Record that a stage declined to shard (serial fallback)."""
    metrics = current_metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_shard_fallback_total", stage=stage, reason=reason
        ).inc()
    logger.debug(
        "slice sharding fell back to serial",
        extra={"fields": {"stage": stage, "reason": reason}},
    )
