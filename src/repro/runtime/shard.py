"""Slice-shard executor: the second scheduling level of the campaign runtime.

The chip-level pool in :mod:`repro.runtime.campaign` parallelises across
chips; this module parallelises *within* a chip.  The per-slice stages
(acquire imaging, TV denoise, slice QC) are embarrassingly parallel
across slices, so a :class:`~repro.pipeline.config.ShardPlan` partitions
their slices into deterministic batches and :func:`shard_map` fans the
batches out to a process pool shared by every stage running in this
process.  The two levels compose: a six-chip campaign on a 32-core
machine runs six chip workers with five shard workers each, and a
single-chip campaign gives all its workers to shards — either way the
machine is saturated.

Determinism contract
--------------------
Per-slice work is pure per slice (the acquire RNG is a counter-based
per-slice stream, denoise and QC read only their own slice), batches are
a pure function of ``(n_items, plan)``, and the merge reassembles
results by slice index.  Output is therefore bit-identical to the serial
path for **every** batch size, ordering and worker count — the property
the ``parallel-determinism`` CI job and the hypothesis tests in
``tests/test_runtime_shard.py`` pin down.

Backpressure
------------
Submitting a whole stack at once would pickle every slice into the
pool's call queue up front.  ``plan.max_inflight_bytes`` bounds the
payload bytes outstanding at any moment: the submitter blocks on the
*oldest* incomplete batch (completion order is irrelevant — the merge is
by index) before pushing more work.

Data plane
----------
With ``plan.data_plane == "shm"`` (the default) batch payloads cross the
pool boundary through :mod:`repro.runtime.dataplane`: large ndarrays are
published into shared-memory segments and only tiny headers ride the
pickle pipe, in both directions.  The submitter owns the input segments
of every in-flight batch and the (transferred) result segments of every
completed one; the ``try/finally`` around the submit loop releases all
of them on any exit — normal completion, a worker exception, or a
quarantine/timeout propagating through this frame.  When shared memory
is unavailable the call transparently degrades to the pickle plane and
counts ``repro_dataplane_fallback_total``.

Observability
-------------
Each batch is wrapped in a ``kind="shard"`` span on the submitting
process's tracer, so shard spans nest under whatever span issued them —
in the pipeline, the stage's ``kernel_scope`` span (``acquire_stack``,
``denoise_stack``, ``qc_stack``), which itself nests under the stage
span.  The batch runs remotely; the span measures the submitter's wait,
which is the schedulable quantity.  Counters:

=====================================  ====================================
``repro_shard_batches_total{stage}``   batches dispatched
``repro_shard_slices_total{stage}``    slices dispatched
``repro_shard_bytes_total{stage}``     estimated payload bytes shipped
``repro_shard_backpressure_total{stage}``  submissions that had to wait
``repro_shard_fallback_total{stage,reason}``  sharding declined (callers
                                       increment, e.g. active fault plan)
=====================================  ====================================
"""

from __future__ import annotations

import atexit
import dataclasses
import sys
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Sequence, TypeVar

import numpy as np

from repro.obs import current_events, current_metrics, current_tracer, get_logger
from repro.pipeline.config import ShardPlan
from repro.runtime import dataplane

logger = get_logger("repro.runtime.shard")

T = TypeVar("T")
R = TypeVar("R")

# One pool per (process, worker count).  Shared across stages and chips
# running in this process so pool start-up (fork + import) is paid once,
# not once per stage invocation.
_POOLS: dict[int, ProcessPoolExecutor] = {}
_POOLS_LOCK = threading.Lock()


def shared_shard_pool(workers: int) -> ProcessPoolExecutor:
    """The process-wide shard pool for *workers* (created lazily)."""
    with _POOLS_LOCK:
        pool = _POOLS.get(workers)
        if pool is None:
            pool = ProcessPoolExecutor(max_workers=workers)
            _POOLS[workers] = pool
        return pool


def shutdown_shard_pools() -> None:
    """Shut down every shard pool this process created (tests, atexit)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=True, cancel_futures=True)


atexit.register(shutdown_shard_pools)


def payload_nbytes(item: Any) -> int:
    """Estimate the payload size of one shard item **without serializing**.

    This runs per item on the submit hot path purely to drive
    backpressure, so it must never fall back to ``pickle.dumps`` (a
    serialization per item would cost as much as the transport it is
    budgeting — ``tests/test_runtime_shard.py`` pins the no-serialize
    contract with an object whose ``__reduce__`` raises).  Array-bearing
    items dominate shard traffic, so the estimate walks ``nbytes`` over
    arrays, buffers, tuples/lists, dicts and dataclass-like objects;
    everything else is charged a nominal 256 bytes.
    """
    if isinstance(item, np.ndarray):
        return int(item.nbytes)
    if isinstance(item, (bytes, bytearray, memoryview)):
        return len(item)
    nbytes = getattr(item, "nbytes", None)
    if isinstance(nbytes, (int, np.integer)):
        return int(nbytes)
    if isinstance(item, (tuple, list)):
        return sum(payload_nbytes(v) for v in item) + 64
    if isinstance(item, dict):
        return sum(payload_nbytes(v) for v in item.values()) + 64
    state = getattr(item, "__dict__", None)
    if state:
        return sum(payload_nbytes(v) for v in state.values()) + 64
    if dataclasses.is_dataclass(item) and not isinstance(item, type):
        # frozen/slotted dataclasses (e.g. _SliceShot) have no __dict__
        return sum(
            payload_nbytes(getattr(item, f.name, None))
            for f in dataclasses.fields(item)
        ) + 64
    return 256


def _canonical_result(value: Any) -> Any:
    """Re-intern shared objects on results that crossed the pool boundary.

    An unpickled array carries a fresh ``dtype`` instance instead of the
    process-wide singleton, and unpickled dict keys are fresh string
    objects instead of the interned literals the serial path shares
    across every slice.  Values compare equal either way, but
    ``pickle.dumps`` of a result *list* then differs from the serial
    run's bytes (a shared object is memo-referenced once, a fresh
    instance is re-serialized per occurrence) — breaking the
    bit-identity contract at the byte level.  A zero-copy ``view`` with
    the canonical dtype and ``sys.intern`` on string keys restore both.
    """
    if isinstance(value, np.ndarray):
        return value.view(np.dtype(value.dtype.str))
    if isinstance(value, tuple):
        return tuple(_canonical_result(v) for v in value)
    if isinstance(value, list):
        return [_canonical_result(v) for v in value]
    if isinstance(value, dict):
        return {
            sys.intern(k) if isinstance(k, str) else k: _canonical_result(v)
            for k, v in value.items()
        }
    return value


def shard_map(
    stage: str,
    fn: Callable[[list[T]], list[R]],
    items: Sequence[T],
    plan: ShardPlan,
    bytes_of: Callable[[T], int] = payload_nbytes,
) -> list[R]:
    """Apply batch function *fn* to *items*, sharded per *plan*.

    *fn* must be a picklable top-level callable mapping a list of items
    to the list of their results (same length, same order) with each
    result depending only on its own item — that per-item purity is what
    makes the batching invisible in the output.  Results come back in
    item order regardless of batch completion order.

    With the plan not engaged (sharding off, one worker, or a single
    item) the batches run in-process in index order — the same ``fn`` on
    the same batches, so the output is identical by construction.
    """
    n = len(items)
    if n == 0:
        return []
    batches = plan.batches(n)
    tracer = current_tracer()
    metrics = current_metrics()
    out: list[R | None] = [None] * n

    def _merge(index_batch: tuple[int, ...], results: list[R]) -> None:
        if len(results) != len(index_batch):
            raise RuntimeError(
                f"shard batch for stage {stage!r} returned {len(results)} "
                f"results for {len(index_batch)} items"
            )
        for i, result in zip(index_batch, results):
            out[i] = result

    if not plan.engaged(n):
        for k, idx in enumerate(batches):
            with tracer.span(
                f"shard[{k}]", kind="shard", stage=stage, slices=len(idx),
                inline=True,
            ):
                _merge(idx, fn([items[i] for i in idx]))
        return out  # type: ignore[return-value]

    pool = shared_shard_pool(plan.resolved_workers)
    if metrics.enabled:
        metrics.counter("repro_shard_batches_total", stage=stage).inc(len(batches))
        metrics.counter("repro_shard_slices_total", stage=stage).inc(n)

    use_shm = plan.data_plane == "shm"
    if use_shm and not dataplane.available():
        use_shm = False
        if metrics.enabled:
            metrics.counter(
                "repro_dataplane_fallback_total", reason="shm-unavailable"
            ).inc()

    # Submit with backpressure: block on the oldest outstanding batch
    # once the estimated in-flight payload exceeds the plan's ceiling.
    # Each inflight record carries the headers of the input segments the
    # submitter published for that batch (empty on the pickle plane).
    inflight: list[tuple[int, tuple[int, ...], Any, int, list]] = []
    inflight_bytes = 0
    pending: list[tuple[int, tuple[int, ...], Any]] = []

    def _decode(raw: Any) -> Any:
        if not use_shm:
            return _canonical_result(raw)
        out_blob, out_headers = raw
        try:
            results, _ = dataplane.loads(out_blob, materialize=True, unlink=True)
        except BaseException:
            dataplane.release_headers(out_headers)
            raise
        dataplane._count_transport("back", out_headers)
        return _canonical_result(results)

    def _retire_oldest() -> None:
        nonlocal inflight_bytes
        k, idx, future, nbytes, in_headers = inflight.pop(0)
        with tracer.span(
            f"shard[{k}]", kind="shard", stage=stage, slices=len(idx),
            payload_bytes=nbytes,
        ):
            try:
                raw = future.result()
            finally:
                # The worker is done with the inputs either way.
                dataplane.release_headers(in_headers)
            results = _decode(raw)
        inflight_bytes -= nbytes
        pending.append((k, idx, results))

    def _abandon_inflight() -> None:
        # Error teardown: every outstanding batch's segments — the
        # inputs the submitter owns and any results a finished worker
        # already transferred — must be unlinked before the exception
        # (quarantine, timeout, worker crash) propagates past us.
        for _, _, future, _, in_headers in inflight:
            raw = None
            try:
                raw = future.result()
            except BaseException:
                pass
            dataplane.release_headers(in_headers)
            if use_shm and isinstance(raw, tuple) and len(raw) == 2:
                dataplane.release_headers(raw[1])
        inflight.clear()

    try:
        for k, idx in enumerate(batches):
            payload = [items[i] for i in idx]
            nbytes = sum(bytes_of(item) for item in payload)
            while inflight and inflight_bytes + nbytes > plan.max_inflight_bytes:
                if metrics.enabled:
                    metrics.counter(
                        "repro_shard_backpressure_total", stage=stage
                    ).inc()
                current_events().emit(
                    "shard_backpressure", stage=stage,
                    inflight_bytes=inflight_bytes, batch_bytes=nbytes,
                )
                _retire_oldest()
            if use_shm:
                blob, in_headers = dataplane.dumps(
                    payload, min_bytes=plan.shm_min_bytes
                )
                dataplane._count_transport("out", in_headers)
                future = pool.submit(
                    dataplane.shm_batch_call, fn, blob, plan.shm_min_bytes
                )
            else:
                in_headers = []
                future = pool.submit(fn, payload)
            inflight.append((k, idx, future, nbytes, in_headers))
            inflight_bytes += nbytes
            if metrics.enabled:
                metrics.counter("repro_shard_bytes_total", stage=stage).inc(nbytes)
        while inflight:
            _retire_oldest()
    except BaseException:
        _abandon_inflight()
        raise
    for _, idx, results in pending:
        _merge(idx, results)
    return out  # type: ignore[return-value]


def note_shard_fallback(stage: str, reason: str) -> None:
    """Record that a stage declined to shard (serial fallback)."""
    metrics = current_metrics()
    if metrics.enabled:
        metrics.counter(
            "repro_shard_fallback_total", stage=stage, reason=reason
        ).inc()
    logger.debug(
        "slice sharding fell back to serial",
        extra={"fields": {"stage": stage, "reason": reason}},
    )
