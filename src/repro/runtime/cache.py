"""Content-addressed on-disk stage cache.

Every pipeline stage stores ``(payload, notes)`` under the SHA-256 chain
key of everything that determines its output: the region spec, the
acquisition parameters, the stage version, the stage's own parameters and
— transitively, through the parent key — every upstream stage.  Re-running
a campaign after changing one stage's parameters therefore re-executes
only that stage and everything downstream of it; a warm re-run touches
nothing but the final entry.

Entries are pickles written atomically (tmp file + ``os.replace``) so
concurrent campaign workers can share one cache directory; a corrupt or
truncated entry reads as a miss, never as an error.
"""

from __future__ import annotations

import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any

from repro.errors import CampaignError
from repro.obs import current_metrics, get_logger

logger = get_logger("repro.runtime.cache")


class StageCache:
    """Pickle-per-key store under a root directory.

    ``root=None`` disables the cache entirely (every lookup misses, every
    store is a no-op) so callers need no conditional wiring.
    """

    def __init__(self, root: str | Path | None) -> None:
        self.root = Path(root) if root is not None else None

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def path_for(self, key: str) -> Path:
        """Entry path: two-level fan-out to keep directories small."""
        if self.root is None:
            raise CampaignError("cache is disabled")
        return self.root / key[:2] / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        return self.enabled and self.path_for(key).is_file()

    def entry_bytes(self, key: str) -> int:
        """Size of the stored entry (0 when absent/disabled)."""
        if not self.enabled:
            return 0
        try:
            return self.path_for(key).stat().st_size
        except OSError:
            return 0

    def load(self, key: str) -> tuple[dict[str, Any], dict[str, float]] | None:
        """Return ``(payload, notes)`` or ``None`` on miss/corruption.

        A plain missing file is a silent miss; a file that *exists* but
        will not unpickle (or has the wrong shape) is corruption — still
        returned as a miss, but logged and counted, because silent
        corruption turns into unexplained recomputation storms.
        """
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            with path.open("rb") as fh:
                entry = pickle.load(fh)
        except FileNotFoundError:
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, TypeError, KeyError,
                UnicodeDecodeError) as exc:
            # The extra-wide net is deliberate: a truncated or hostile
            # pickle raises whatever its mangled opcodes happen to hit
            # (TypeError from bad constructor args, KeyError from a
            # missing memo slot, UnicodeDecodeError from a torn string),
            # and every one of those must read as a logged miss, not a
            # crash that takes the campaign worker with it.
            self._note_corrupt(key, type(exc).__name__)
            return None
        if not isinstance(entry, dict) or "payload" not in entry:
            self._note_corrupt(key, "bad-entry-shape")
            return None
        return entry["payload"], dict(entry.get("notes", {}))

    @staticmethod
    def _note_corrupt(key: str, reason: str) -> None:
        logger.warning(
            "corrupt stage-cache entry read as a miss",
            extra={"fields": {"key": key, "reason": reason}},
        )
        current_metrics().counter("repro_cache_corrupt_total").inc()

    def sweep_stale_tmp(self, max_age_s: float = 3600.0) -> int:
        """Remove abandoned ``*.tmp`` files; returns how many were removed.

        :meth:`store` writes through ``mkstemp`` + ``os.replace``; a
        worker killed between the two (OOM, SIGKILL, power loss) leaves
        its tmp file behind forever — invisible to lookups but leaking
        disk on every crash.  Campaigns call this once at start-up.

        ``max_age_s`` guards live writers: a *concurrent* campaign
        sharing the cache directory may have in-flight tmp files, so only
        files older than the threshold are removed.  Races with a writer
        finishing (``os.replace`` already consumed the tmp) or another
        sweeper are benign — a vanished file is skipped silently.
        """
        if not self.enabled:
            return 0
        cutoff = time.time() - max_age_s
        removed = 0
        for tmp in self.root.glob("*/*.tmp"):
            try:
                if tmp.stat().st_mtime > cutoff:
                    continue
                tmp.unlink()
            except OSError:
                continue
            removed += 1
        if removed:
            logger.warning(
                "swept stale stage-cache tmp files",
                extra={"fields": {"removed": removed, "root": str(self.root)}},
            )
            current_metrics().counter("repro_cache_tmp_swept_total").inc(removed)
        return removed

    def store(self, key: str, payload: dict[str, Any], notes: dict[str, float]) -> int:
        """Persist an entry; returns its size in bytes (0 when disabled)."""
        if not self.enabled:
            return 0
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        blob = pickle.dumps(
            {"payload": payload, "notes": notes}, protocol=pickle.HIGHEST_PROTOCOL
        )
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return len(blob)
