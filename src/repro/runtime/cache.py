"""Content-addressed on-disk stage cache.

Every pipeline stage stores ``(payload, notes)`` under the SHA-256 chain
key of everything that determines its output: the region spec, the
acquisition parameters, the stage version, the stage's own parameters and
— transitively, through the parent key — every upstream stage.  Re-running
a campaign after changing one stage's parameters therefore re-executes
only that stage and everything downstream of it; a warm re-run touches
nothing but the final entry.

Storage format
--------------
An entry is a pickle (``<key>.pkl``) plus zero or more ``.npy`` sidecar
blobs (``<key>.b<i>.npy``): large plain ndarrays inside the payload are
extracted out of the pickle stream (the same ``persistent_id`` protocol
the zero-copy shard transport uses — see
:mod:`repro.runtime.dataplane`) and written as raw array files.  A cache
hit then **maps** the heavy bytes — ``np.load(mmap_mode="r")`` — instead
of unpickling them: pages fault in lazily as stages touch the data, and
a deep warm hit on a multi-hundred-MB stack costs milliseconds.  Loaded
arrays are read-only plain ``ndarray`` views over the mapping; they
pickle byte-identically to the in-band arrays they replace, so the
campaign bit-identity contract is unaffected by the format.

Writers emit sidecars first and the pickle last (readers key existence
off the pickle, so a half-written entry is invisible), each through
``mkstemp`` + ``os.replace`` so concurrent campaign workers can share
one cache directory.  A corrupt, truncated or zero-length entry — pickle
*or* sidecar, including a failed mmap open — reads as a miss, never as
an error, and is **evicted** so the recompute rewrites it cleanly and
``contains()`` stays honest.  Entries written by older releases (plain
pickles, no sidecars) still load; old readers see new-format entries as
a clean miss.
"""

from __future__ import annotations

import io
import os
import pickle
import tempfile
import time
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.errors import CampaignError
from repro.obs import current_metrics, get_logger

logger = get_logger("repro.runtime.cache")

#: arrays below this byte count stay inline in the entry pickle
DEFAULT_BLOB_MIN_BYTES = 16 * 1024


class _BlobCorruption(Exception):
    """A sidecar blob failed to load — distinguishes a torn entry from a
    plain missing pickle so the loader can evict instead of just miss."""


class _BlobPickler(pickle.Pickler):
    """Pickler that diverts large plain ndarrays into ``.npy`` sidecars."""

    def __init__(self, file: io.BytesIO, min_bytes: int) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._min_bytes = min_bytes
        self.arrays: list[np.ndarray] = []

    def persistent_id(self, obj: Any) -> Any:
        if (
            type(obj) is np.ndarray
            and not obj.dtype.hasobject
            and obj.nbytes >= self._min_bytes
        ):
            self.arrays.append(obj)
            return ("repro-npy", len(self.arrays) - 1)
        return None


class _BlobUnpickler(pickle.Unpickler):
    """Unpickler resolving sidecar references via lazy mmap loads."""

    def __init__(
        self, file: Any, blob_path: Callable[[int], Path]
    ) -> None:
        super().__init__(file)
        self._blob_path = blob_path

    def persistent_load(self, pid: Any) -> Any:
        if not (isinstance(pid, tuple) and len(pid) == 2 and pid[0] == "repro-npy"):
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        path = self._blob_path(pid[1])
        try:
            arr = np.load(path, mmap_mode="r")
        except Exception as exc:
            # Missing, zero-length, truncated (mmap shorter than the
            # header's shape promises) or garbage sidecars all land here.
            raise _BlobCorruption(
                f"sidecar {path.name}: {type(exc).__name__}: {exc}"
            ) from exc
        if not isinstance(arr, np.ndarray):
            raise _BlobCorruption(f"sidecar {path.name}: not an array")
        # Plain-ndarray view: pickles identically to the stored array
        # (the memmap base keeps the mapping alive); read-only by mode.
        return arr.view(np.ndarray)


class StageCache:
    """Pickle-plus-sidecar store under a root directory.

    ``root=None`` disables the cache entirely (every lookup misses, every
    store is a no-op) so callers need no conditional wiring.
    ``blob_min_bytes`` sets the sidecar-extraction threshold;
    ``blob_min_bytes=None`` disables sidecars and stores classic
    all-in-one pickles (the pre-dataplane format).
    """

    def __init__(
        self,
        root: str | Path | None,
        blob_min_bytes: int | None = DEFAULT_BLOB_MIN_BYTES,
    ) -> None:
        self.root = Path(root) if root is not None else None
        if blob_min_bytes is not None and blob_min_bytes < 1:
            raise CampaignError("blob_min_bytes must be >= 1 (or None to disable)")
        self.blob_min_bytes = blob_min_bytes

    @property
    def enabled(self) -> bool:
        return self.root is not None

    def path_for(self, key: str) -> Path:
        """Entry path: two-level fan-out to keep directories small."""
        if self.root is None:
            raise CampaignError("cache is disabled")
        return self.root / key[:2] / f"{key}.pkl"

    def blob_path(self, key: str, index: int) -> Path:
        """Path of one entry's ``.npy`` sidecar blob."""
        return self.path_for(key).with_name(f"{key}.b{index}.npy")

    def contains(self, key: str) -> bool:
        return self.enabled and self.path_for(key).is_file()

    def entry_bytes(self, key: str) -> int:
        """Size of the stored entry, sidecars included (0 when absent)."""
        if not self.enabled:
            return 0
        path = self.path_for(key)
        try:
            total = path.stat().st_size
        except OSError:
            return 0
        for blob in path.parent.glob(f"{key}.b*.npy"):
            try:
                total += blob.stat().st_size
            except OSError:
                continue
        return total

    def load(self, key: str) -> tuple[dict[str, Any], dict[str, float]] | None:
        """Return ``(payload, notes)`` or ``None`` on miss/corruption.

        A plain missing pickle is a silent miss; an entry that *exists*
        but will not decode — bad pickle, missing/zero-length/truncated
        sidecar, failed mmap open — is corruption: logged, counted,
        **evicted** (so ``contains()`` stops advertising it) and still
        returned as a miss so the caller recomputes.
        """
        if not self.enabled:
            return None
        path = self.path_for(key)
        try:
            with path.open("rb") as fh:
                entry = _BlobUnpickler(
                    fh, lambda i: self.blob_path(key, i)
                ).load()
        except FileNotFoundError:
            return None
        except _BlobCorruption as exc:
            self._note_corrupt(key, str(exc))
            self.evict(key)
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, TypeError, KeyError, ValueError,
                UnicodeDecodeError) as exc:
            # The extra-wide net is deliberate: a truncated or hostile
            # pickle raises whatever its mangled opcodes happen to hit
            # (TypeError from bad constructor args, KeyError from a
            # missing memo slot, UnicodeDecodeError from a torn string),
            # and every one of those must read as a logged miss, not a
            # crash that takes the campaign worker with it.
            self._note_corrupt(key, type(exc).__name__)
            self.evict(key)
            return None
        if not isinstance(entry, dict) or "payload" not in entry:
            self._note_corrupt(key, "bad-entry-shape")
            self.evict(key)
            return None
        metrics = current_metrics()
        if metrics.enabled:
            metrics.counter("repro_cache_mmap_loads_total").inc()
        return entry["payload"], dict(entry.get("notes", {}))

    @staticmethod
    def _note_corrupt(key: str, reason: str) -> None:
        logger.warning(
            "corrupt stage-cache entry read as a miss",
            extra={"fields": {"key": key, "reason": reason}},
        )
        current_metrics().counter("repro_cache_corrupt_total").inc()

    def evict(self, key: str) -> int:
        """Delete an entry and its sidecars; returns files removed.

        Racing a concurrent writer is benign: the writer replaces
        atomically, so the entry ends up either gone or fully rewritten.
        """
        if not self.enabled:
            return 0
        removed = 0
        path = self.path_for(key)
        targets = [path, *path.parent.glob(f"{key}.b*.npy")]
        for target in targets:
            try:
                target.unlink()
            except OSError:
                continue
            removed += 1
        if removed:
            current_metrics().counter("repro_cache_evictions_total").inc()
        return removed

    def sweep_stale_tmp(self, max_age_s: float = 3600.0) -> int:
        """Remove abandoned ``*.tmp`` files and orphaned sidecar blobs.

        :meth:`store` writes sidecars first and the pickle last, each
        through ``mkstemp`` + ``os.replace``; a worker killed mid-store
        (OOM, SIGKILL, power loss) leaves tmp files — or fully-written
        sidecars with no pickle — behind forever: invisible to lookups
        but leaking disk on every crash.  Campaigns call this once at
        start-up; returns how many files were removed.

        ``max_age_s`` guards live writers: a *concurrent* campaign
        sharing the cache directory may have in-flight tmp files (or
        sidecars whose pickle is about to land), so only files older
        than the threshold are removed.  Races with a writer finishing
        (``os.replace`` already consumed the tmp) or another sweeper are
        benign — a vanished file is skipped silently.
        """
        if not self.enabled:
            return 0
        cutoff = time.time() - max_age_s
        removed = 0
        for tmp in self.root.glob("*/*.tmp"):
            try:
                if tmp.stat().st_mtime > cutoff:
                    continue
                tmp.unlink()
            except OSError:
                continue
            removed += 1
        for blob in self.root.glob("*/*.b*.npy"):
            key = blob.name.split(".b", 1)[0]
            try:
                if blob.with_name(f"{key}.pkl").is_file():
                    continue
                if blob.stat().st_mtime > cutoff:
                    continue
                blob.unlink()
            except OSError:
                continue
            removed += 1
        if removed:
            logger.warning(
                "swept stale stage-cache files",
                extra={"fields": {"removed": removed, "root": str(self.root)}},
            )
            current_metrics().counter("repro_cache_tmp_swept_total").inc(removed)
        return removed

    def _write_atomic(self, path: Path, write: Callable[[Any], None]) -> None:
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                write(fh)
            os.replace(tmp, path)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def store(self, key: str, payload: dict[str, Any], notes: dict[str, float]) -> int:
        """Persist an entry; returns its total size in bytes (0 when disabled)."""
        if not self.enabled:
            return 0
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        buf = io.BytesIO()
        if self.blob_min_bytes is None:
            pickle.dump(
                {"payload": payload, "notes": notes}, buf,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            arrays: list[np.ndarray] = []
        else:
            pickler = _BlobPickler(buf, self.blob_min_bytes)
            pickler.dump({"payload": payload, "notes": notes})
            arrays = pickler.arrays
        blob = buf.getvalue()
        total = len(blob)
        written: list[Path] = []
        try:
            # Sidecars first, pickle last: readers key off the pickle,
            # so a crash mid-store leaves only orphans for the sweeper.
            for i, arr in enumerate(arrays):
                blob_path = self.blob_path(key, i)
                self._write_atomic(
                    blob_path,
                    lambda fh, a=arr: np.lib.format.write_array(
                        fh, a, allow_pickle=False
                    ),
                )
                written.append(blob_path)
                total += blob_path.stat().st_size
            self._write_atomic(path, lambda fh: fh.write(blob))
        except OSError:
            for blob_path in written:
                try:
                    blob_path.unlink()
                except OSError:
                    pass
            raise
        return total
