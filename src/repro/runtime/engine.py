"""The per-chip stage-graph executor.

One chip's imaging → pipeline → reverse-engineering campaign is a linear
chain of content-addressed stages::

    layout → voxelize → [roi] → acquire → denoise → align → assemble → reveng

Each stage declares a version (bump it when its implementation changes
behaviour), a parameter token (hashed together with the parent stage's key
— see :mod:`repro.runtime.hashing`) and a run function that reads earlier
artefacts from a context dict and returns ``(payload, notes)``.  The
executor finds the *deepest* stage whose key is already in the
:class:`~repro.runtime.cache.StageCache`, restores context up to there,
and executes only the remainder:

* warm re-run (nothing changed): the final ``reveng`` entry hits, the
  :class:`ReversedChip` is loaded, and every upstream stage is *skipped* —
  not even its cache entry is read;
* changed segmentation parameters: everything through ``assemble`` hits,
  only ``reveng`` re-executes;
* changed acquisition parameters: the chain re-executes from ``acquire``.

Every stage — executed, loaded or skipped — contributes a
:class:`StageMetrics` record (wall seconds, cache disposition, payload
bytes, stage notes) to the chip's run result.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import CampaignError
from repro.imaging.fib import acquire_stack
from repro.imaging.roi import identify_roi
from repro.imaging.voxel import voxelize
from repro.layout.generator import generate_chip_layout, generate_sa_region
from repro.pipeline.config import (
    AlignStage,
    AssembleStage,
    DenoiseStage,
    PipelineConfig,
    PlanarViewStage,
    SegmentStage,
)
from repro.reveng.connectivity import extract_circuit
from repro.reveng.workflow import ReversedChip, finish_extraction
from repro.runtime.cache import StageCache
from repro.runtime.hashing import canonicalize, chain_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.runtime.campaign import ChipJob

#: Stage implementation versions.  Bumping one invalidates that stage's
#: cache entries *and* (through key chaining) everything downstream of it.
STAGE_VERSIONS: dict[str, str] = {
    "layout": "1",
    "voxelize": "1",
    "roi": "1",
    "acquire": "1",
    "denoise": "1",
    "align": "1",
    "assemble": "1",
    "reveng": "1",
}


@dataclass
class StageMetrics:
    """Instrumentation for one stage of one chip's run."""

    stage: str
    seconds: float
    cache_hit: bool
    skipped: bool  #: satisfied by a *deeper* cache hit; never even loaded
    payload_bytes: int
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def disposition(self) -> str:
        if self.skipped:
            return "skip"
        return "hit" if self.cache_hit else "run"


@dataclass(frozen=True)
class _StageDef:
    name: str
    params: Any
    run: Callable[[dict[str, Any]], tuple[dict[str, Any], dict[str, float]]]

    @property
    def version(self) -> str:
        return STAGE_VERSIONS[self.name]


def build_stage_chain(job: "ChipJob", config: PipelineConfig) -> list[_StageDef]:
    """The content-addressed stage chain for one chip job."""

    def run_layout(ctx: dict) -> tuple[dict, dict[str, float]]:
        if job.mat_rows is not None:
            cell = generate_chip_layout(job.spec, mat_rows=job.mat_rows)
        else:
            cell = generate_sa_region(job.spec)
        return {"cell": cell}, {"n_pairs": float(job.spec.n_pairs)}

    def run_voxelize(ctx: dict) -> tuple[dict, dict[str, float]]:
        volume = voxelize(ctx["cell"], voxel_nm=job.voxel_nm, margin_nm=job.margin_nm)
        return {"volume": volume}, {
            "voxels": float(volume.data.size),
            "array_bytes": float(volume.data.nbytes),
        }

    def run_roi(ctx: dict) -> tuple[dict, dict[str, float]]:
        roi = identify_roi(ctx["volume"], probe_step_nm=job.roi_probe_step_nm)
        margin = job.roi_margin_nm or 0.0
        return (
            {"x_start_nm": roi.roi[0] + margin, "x_stop_nm": roi.roi[1] - margin},
            {
                "probes": float(roi.probe_count),
                "roi_width_nm": float(roi.roi_width_nm),
                "machine_hours": float(roi.estimated_hours),
            },
        )

    def run_acquire(ctx: dict) -> tuple[dict, dict[str, float]]:
        stack = acquire_stack(
            ctx["volume"],
            job.campaign,
            y_start_nm=job.y_start_nm,
            y_stop_nm=job.y_stop_nm,
            x_start_nm=ctx.get("x_start_nm", job.x_start_nm),
            x_stop_nm=ctx.get("x_stop_nm", job.x_stop_nm),
        )
        worst = max((max(abs(a), abs(b)) for a, b in stack.true_drift_px), default=0)
        return {"stack": stack}, {
            "slices": float(len(stack)),
            "beam_time_hours": stack.beam_time_hours(),
            "worst_drift_px": float(worst),
            "array_bytes": float(sum(img.nbytes for img in stack.images)),
        }

    def run_denoise(ctx: dict) -> tuple[dict, dict[str, float]]:
        denoised, notes = DenoiseStage(config)(ctx["stack"].images)
        notes["array_bytes"] = float(sum(img.nbytes for img in denoised))
        return {"denoised": denoised}, notes

    def run_align(ctx: dict) -> tuple[dict, dict[str, float]]:
        stage = AlignStage(config, true_drift_px=ctx["stack"].true_drift_px)
        aligned, notes = stage(ctx["denoised"])
        return {"aligned": aligned}, notes

    def run_assemble(ctx: dict) -> tuple[dict, dict[str, float]]:
        stack = ctx["stack"]
        volume = ctx["volume"]
        origin_x_nm = volume.origin_x_nm + stack.x_offset_nm
        origin_y_nm = volume.origin_y_nm
        assembled, a_notes = AssembleStage(
            pixel_nm=stack.pixel_nm,
            slice_thickness_nm=stack.slice_thickness_nm,
            origin_x_nm=origin_x_nm,
            origin_y_nm=origin_y_nm,
        )(ctx["aligned"])
        views, v_notes = PlanarViewStage()(assembled)
        # Everything the final stage needs, so a cached `assemble` entry is
        # self-sufficient even when upstream entries are never loaded.
        meta = {
            "pixel_nm": stack.pixel_nm,
            "sem": stack.sem,
            "origin_x_nm": origin_x_nm,
            "origin_y_nm": origin_y_nm,
        }
        notes_base = {
            "alignment_max_residual_px": ctx["align_notes"]["max_residual_px"],
            "alignment_residual_fraction": ctx["align_notes"].get("residual_fraction", 0.0),
            "slices": float(len(stack)),
            "beam_time_hours": stack.beam_time_hours(),
        }
        return (
            {"views": views, "view_meta": meta, "notes_base": notes_base},
            {**a_notes, "layers": v_notes["layers"]},
        )

    def run_reveng(ctx: dict) -> tuple[dict, dict[str, float]]:
        meta = ctx["view_meta"]
        features, seg_notes = SegmentStage(
            config,
            pixel_nm=meta["pixel_nm"],
            sem=meta["sem"],
            origin_x_nm=meta["origin_x_nm"],
            origin_y_nm=meta["origin_y_nm"],
        )(ctx["views"])
        extracted = extract_circuit(features, name=f"{job.name}_re")
        truth = ctx["cell"] if job.validate else None
        result = finish_extraction(extracted, truth, pipeline_notes=dict(ctx["notes_base"]))
        notes = dict(seg_notes)
        notes.update({
            "devices_extracted": result.pipeline_notes["devices_extracted"],
            "lanes_matched": result.pipeline_notes["lanes_matched"],
        })
        return {"result": result}, notes

    spec_token = canonicalize(job.spec)
    stages = [
        _StageDef("layout", {"spec": spec_token, "mat_rows": job.mat_rows}, run_layout),
        _StageDef("voxelize", {"voxel_nm": job.voxel_nm, "margin_nm": job.margin_nm},
                  run_voxelize),
    ]
    if job.roi_margin_nm is not None:
        stages.append(_StageDef(
            "roi",
            {"probe_step_nm": job.roi_probe_step_nm, "margin_nm": job.roi_margin_nm},
            run_roi,
        ))
    stages.extend([
        _StageDef("acquire", {
            "campaign": canonicalize(job.campaign),
            "x_start_nm": job.x_start_nm, "x_stop_nm": job.x_stop_nm,
            "y_start_nm": job.y_start_nm, "y_stop_nm": job.y_stop_nm,
        }, run_acquire),
        # Stage params carry every result-affecting knob and nothing else:
        # execution-only settings (config.chunk_workers) are deliberately
        # absent so a re-run with more threads still hits the cache, while
        # the exactness-trading knobs (denoise_tol, shift penalty, search
        # strategy) are keyed so flipping them invalidates downstream
        # artefacts.
        _StageDef("denoise", {
            "method": config.denoise_method,
            "weight": config.denoise_weight,
            "iterations": config.denoise_iterations,
            "tol": config.denoise_tol,
        }, run_denoise),
        _StageDef("align", {
            "search_px": config.align_search_px,
            "bins": config.align_bins,
            "baselines": list(config.align_baselines),
            "shift_penalty": config.align_shift_penalty,
            "search_strategy": config.align_search_strategy,
        }, run_align),
        _StageDef("assemble", {}, run_assemble),
        _StageDef("reveng", {
            "segment_tolerance": config.segment_tolerance,
            "validate": job.validate,
        }, run_reveng),
    ])
    return stages


def execute_chain(
    stages: list[_StageDef],
    cache: StageCache,
) -> tuple[dict[str, Any], list[StageMetrics]]:
    """Run a stage chain against a cache; return (final context, metrics)."""
    keys: list[str] = []
    parent: str | None = None
    for stage in stages:
        parent = chain_key(parent, stage.name, stage.version, stage.params)
        keys.append(parent)

    deepest = -1
    for i in reversed(range(len(stages))):
        if cache.contains(keys[i]):
            deepest = i
            break

    ctx: dict[str, Any] = {}
    metrics: list[StageMetrics] = []
    for i, stage in enumerate(stages):
        t0 = time.perf_counter()
        if i < deepest and deepest == len(stages) - 1:
            # The final stage is cached: upstream artefacts are never needed.
            metrics.append(StageMetrics(
                stage=stage.name, seconds=0.0, cache_hit=True, skipped=True,
                payload_bytes=cache.entry_bytes(keys[i]),
            ))
            continue
        if i <= deepest:
            entry = cache.load(keys[i])
            if entry is not None:
                payload, notes = entry
                ctx.update(payload)
                if stage.name == "align":
                    ctx["align_notes"] = notes
                metrics.append(StageMetrics(
                    stage=stage.name,
                    seconds=time.perf_counter() - t0,
                    cache_hit=True,
                    skipped=False,
                    payload_bytes=cache.entry_bytes(keys[i]),
                    notes=notes,
                ))
                continue
            # Entry vanished between contains() and load(): fall through and
            # recompute this stage.
        payload, notes = stage.run(ctx)
        ctx.update(payload)
        if stage.name == "align":
            ctx["align_notes"] = notes
        nbytes = cache.store(keys[i], payload, notes)
        metrics.append(StageMetrics(
            stage=stage.name,
            seconds=time.perf_counter() - t0,
            cache_hit=False,
            skipped=False,
            payload_bytes=nbytes,
            notes=notes,
        ))
    return ctx, metrics


def run_chip_stages(
    job: "ChipJob",
    config: PipelineConfig,
    cache: StageCache,
) -> tuple[ReversedChip, list[StageMetrics]]:
    """Execute one chip's full chain and return its recovered circuit."""
    ctx, metrics = execute_chain(build_stage_chain(job, config), cache)
    result = ctx.get("result")
    if not isinstance(result, ReversedChip):
        raise CampaignError(f"chip job {job.name!r} produced no result")
    return result, metrics
