"""The per-chip stage-graph executor.

One chip's imaging → pipeline → reverse-engineering campaign is a linear
chain of content-addressed stages::

    layout → voxelize → [roi] → acquire → denoise → align → assemble → reveng

Each stage declares a version (bump it when its implementation changes
behaviour), a parameter token (hashed together with the parent stage's key
— see :mod:`repro.runtime.hashing`) and a run function that reads earlier
artefacts from a context dict and returns ``(payload, notes)``.  The
executor finds the *deepest* stage whose key is already in the
:class:`~repro.runtime.cache.StageCache`, restores context up to there,
and executes only the remainder:

* warm re-run (nothing changed): the final ``reveng`` entry hits, the
  :class:`ReversedChip` is loaded, and every upstream stage is *skipped* —
  not even its cache entry is read;
* changed segmentation parameters: everything through ``assemble`` hits,
  only ``reveng`` re-executes;
* changed acquisition parameters: the chain re-executes from ``acquire``.

Every stage — executed, loaded or skipped — contributes a
:class:`StageMetrics` record (wall seconds, cache disposition, payload
bytes, stage notes) to the chip's run result.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

from repro.errors import (
    AcquisitionError,
    AlignmentBudgetExceeded,
    CampaignError,
    JobCancelledError,
    StageTimeoutError,
)
from repro.faults import FaultInjector
from repro.imaging.fib import FusedSliceWork, acquire_stack
from repro.obs import bind, current_events, current_metrics, current_tracer, get_logger
from repro.imaging.roi import identify_roi
from repro.imaging.voxel import voxelize
from repro.layout.generator import generate_chip_layout, generate_sa_region
from repro.pipeline.config import (
    AlignStage,
    AssembleStage,
    DenoiseStage,
    PipelineConfig,
    PlanarViewStage,
    SegmentStage,
)
from repro.pipeline.stack import QcThresholds, qc_stack
from repro.reveng.connectivity import extract_circuit
from repro.reveng.workflow import ReversedChip, finish_extraction
from repro.runtime.cache import StageCache
from repro.runtime.hashing import canonicalize, chain_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.runtime.campaign import ChipJob

logger = get_logger("repro.runtime.engine")

#: Stage implementation versions.  Bumping one invalidates that stage's
#: cache entries *and* (through key chaining) everything downstream of it.
#: All bumped 1 → 2 together with the type-prefixed cache-key encoding
#: (see :mod:`repro.runtime.hashing`) so entries written under the old,
#: collision-prone key scheme miss cleanly instead of aliasing; acquire's
#: bump also covers its counter-based per-slice RNG rework
#: (:mod:`repro.imaging.fib`), which changes the acquired bits.
STAGE_VERSIONS: dict[str, str] = {
    "layout": "2",
    "voxelize": "2",
    "roi": "2",
    "acquire": "2",
    "denoise": "2",
    "align": "2",
    "assemble": "2",
    "reveng": "2",
}


def register_stage_versions(versions: dict[str, str]) -> None:
    """Register stage versions contributed by another subsystem.

    Job families outside the imaging chain (e.g. the analog
    characterizer) bring their own stages; registering at import time
    keeps every version in the one table the cache keys read, and makes
    conflicting registrations (same stage, different version) a hard
    error instead of a silent cache split.
    """
    for name, version in versions.items():
        existing = STAGE_VERSIONS.get(name)
        if existing is not None and existing != version:
            raise CampaignError(
                f"stage {name!r} already registered at version {existing!r} "
                f"(attempted re-registration at {version!r})"
            )
        STAGE_VERSIONS[name] = version


@dataclass(frozen=True)
class ResiliencePolicy:
    """Campaign-level resilience knobs.

    ``max_retries`` bounds re-acquisitions for a stack that fails QC
    (each retry re-runs the whole acquisition with the fault RNG advanced
    to the next attempt — clean content identical, faults re-rolled).
    ``chip_timeout_s`` is a cooperative per-chip deadline checked between
    stages; a chip that blows it raises :class:`StageTimeoutError` and is
    quarantined by the campaign.  ``qc`` gates acquired slices; QC runs
    when the chip has an active fault plan or when ``force_qc`` is set,
    so the clean path's cache keys (and its cost) stay untouched by
    default.  ``max_residual_fraction`` optionally gates the alignment
    stage on the §IV-C residual budget.
    """

    max_retries: int = 2
    chip_timeout_s: float | None = None
    qc: QcThresholds = field(default_factory=QcThresholds)
    force_qc: bool = False
    max_residual_fraction: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise CampaignError("max_retries must be >= 0")
        if self.chip_timeout_s is not None and self.chip_timeout_s <= 0:
            raise CampaignError("chip_timeout_s must be positive (or None)")

    def qc_engaged(self, job: "ChipJob") -> bool:
        """Whether acquisitions of *job* go through the QC/retry gate."""
        return self.force_qc or (job.fault_plan is not None and job.fault_plan.active)


@dataclass
class StageMetrics:
    """Instrumentation for one stage of one chip's run."""

    stage: str
    seconds: float
    cache_hit: bool
    skipped: bool  #: satisfied by a *deeper* cache hit; never even loaded
    payload_bytes: int
    notes: dict[str, float] = field(default_factory=dict)

    @property
    def disposition(self) -> str:
        if self.skipped:
            return "skip"
        return "hit" if self.cache_hit else "run"


@dataclass(frozen=True)
class _StageDef:
    name: str
    params: Any
    run: Callable[[dict[str, Any]], tuple[dict[str, Any], dict[str, float]]]

    @property
    def version(self) -> str:
        return STAGE_VERSIONS[self.name]


def build_stage_chain(
    job: "ChipJob",
    config: PipelineConfig,
    policy: ResiliencePolicy | None = None,
) -> list[_StageDef]:
    """The content-addressed stage chain for one chip job.

    With a fault plan on the job (or ``policy.force_qc``), the acquire
    stage wraps the acquisition in the QC → retry loop and its cache
    params grow the fault/QC tokens; without one the chain is exactly the
    clean chain of earlier releases, so existing caches stay valid.

    Jobs that define their own ``build_stages(config, policy)`` (e.g.
    :class:`repro.analog.characterizer.CharacterizationJob`) supply their
    chain directly; the imaging chain below is the default for plain
    :class:`~repro.runtime.campaign.ChipJob` instances.
    """
    policy = policy or ResiliencePolicy()
    builder = getattr(job, "build_stages", None)
    if builder is not None:
        return builder(config, policy)

    def run_layout(ctx: dict) -> tuple[dict, dict[str, float]]:
        if job.mat_rows is not None:
            cell = generate_chip_layout(job.spec, mat_rows=job.mat_rows)
        else:
            cell = generate_sa_region(job.spec)
        return {"cell": cell}, {"n_pairs": float(job.spec.n_pairs)}

    def run_voxelize(ctx: dict) -> tuple[dict, dict[str, float]]:
        volume = voxelize(ctx["cell"], voxel_nm=job.voxel_nm, margin_nm=job.margin_nm)
        return {"volume": volume}, {
            "voxels": float(volume.data.size),
            "array_bytes": float(volume.data.nbytes),
        }

    def run_roi(ctx: dict) -> tuple[dict, dict[str, float]]:
        roi = identify_roi(ctx["volume"], probe_step_nm=job.roi_probe_step_nm)
        margin = job.roi_margin_nm or 0.0
        return (
            {"x_start_nm": roi.roi[0] + margin, "x_stop_nm": roi.roi[1] - margin},
            {
                "probes": float(roi.probe_count),
                "roi_width_nm": float(roi.roi_width_nm),
                "machine_hours": float(roi.estimated_hours),
            },
        )

    def run_acquire(ctx: dict) -> tuple[dict, dict[str, float]]:
        plan = job.fault_plan
        engaged = policy.qc_engaged(job)
        attempt = 0
        events = []
        tracer = current_tracer()
        metrics = current_metrics()
        bus = current_events()
        # Stage fusion: when the sharded imaging path will run anyway
        # (shard engaged, no active fault plan forcing serial), the same
        # pool trip also computes the denoised slices — and the QC
        # metric filter pass when the gate is engaged — so each slice
        # crosses the pool boundary once.  The fused results ride the
        # FusedSliceWork side channel and the ctx (never the acquire
        # cache entry: acquire's key knows nothing about denoise
        # parameters, so caching them there would poison the cache).
        fuse_wanted = (
            config.shard.slices
            and config.shard.fuse
            and config.shard.resolved_workers > 1
            and (plan is None or not plan.active)
        )
        fuse = None
        while True:
            bus.emit("attempt_start", chip=job.name, attempt=attempt)
            with tracer.span(
                f"attempt {attempt}", kind="attempt", attempt=attempt
            ) as att_span, bind(attempt=attempt):
                injector = None
                if plan is not None and plan.active:
                    injector = FaultInjector(plan, attempt=attempt)
                fuse = None
                if fuse_wanted:
                    dk = config.denoise_kwargs()
                    fuse = FusedSliceWork(
                        denoise={
                            "method": dk.pop("method"),
                            "weight": dk.pop("weight"),
                            "kwargs": dk,
                        },
                        qc=engaged,
                    )
                stack = acquire_stack(
                    ctx["volume"],
                    job.campaign,
                    y_start_nm=job.y_start_nm,
                    y_stop_nm=job.y_stop_nm,
                    x_start_nm=ctx.get("x_start_nm", job.x_start_nm),
                    x_stop_nm=ctx.get("x_stop_nm", job.x_stop_nm),
                    injector=injector,
                    shard=config.shard,
                    fuse=fuse,
                )
                events.extend(stack.fault_events)
                att_span.set(slices=len(stack), faults=len(stack.fault_events))
                if not engaged:
                    bus.emit(
                        "attempt_finish", chip=job.name, attempt=attempt,
                        slices=len(stack),
                    )
                    break
                qc = qc_stack(stack.images, policy.qc,
                              true_drift_px=stack.true_drift_px, shard=config.shard,
                              precomputed=fuse.qc_metrics if fuse is not None else None)
                if fuse is not None and fuse.qc_metrics is not None:
                    metrics.counter("repro_dataplane_fused_total", stage="qc").inc()
                failed = qc.failed_indices
                att_span.set(qc_passed=qc.passed, qc_failed_slices=len(failed))
                if metrics.enabled:
                    metrics.counter("repro_qc_slices_total", result="pass").inc(
                        len(stack) - len(failed)
                    )
                    metrics.counter("repro_qc_slices_total", result="fail").inc(
                        len(failed)
                    )
                    for verdict in qc.slices:
                        for check in verdict.failures:
                            metrics.counter("repro_qc_failures_total", check=check).inc()
                if qc.passed:
                    bus.emit(
                        "attempt_finish", chip=job.name, attempt=attempt,
                        slices=len(stack), qc_passed=True,
                    )
                    break
                if attempt >= policy.max_retries:
                    logger.error(
                        "QC retry budget exhausted; quarantining chip",
                        extra={"fields": {
                            "failed_slices": list(failed),
                            "failure_kinds": list(qc.failure_kinds),
                            "attempts": attempt + 1,
                        }},
                    )
                    raise AcquisitionError(
                        f"{len(failed)} slice(s) still fail QC "
                        f"({', '.join(qc.failure_kinds)}) after "
                        f"{policy.max_retries} re-acquisition(s)",
                        chip_id=job.name,
                        stage="acquire",
                        slice_index=failed[0] if failed else None,
                        details={
                            "failed_slices": list(failed),
                            "failure_kinds": list(qc.failure_kinds),
                            "attempts": attempt + 1,
                            "fault_events": [e.to_dict() for e in events],
                        },
                    )
                logger.warning(
                    "acquired stack failed QC; re-acquiring",
                    extra={"fields": {
                        "failed_slices": list(failed),
                        "failure_kinds": list(qc.failure_kinds),
                        "attempt": attempt,
                    }},
                )
                metrics.counter("repro_acquire_retries_total").inc()
                bus.emit(
                    "attempt_retry", chip=job.name, attempt=attempt,
                    failed_slices=len(failed),
                )
            attempt += 1
        worst = max((max(abs(a), abs(b)) for a, b in stack.true_drift_px), default=0)
        if fuse is not None and fuse.denoised is not None:
            # Side channel for the accepted attempt only — consumed (and
            # cached under the *denoise* key) by run_denoise.
            ctx["_fused_denoised"] = fuse.denoised
        return {"stack": stack}, {
            "slices": float(len(stack)),
            "beam_time_hours": stack.beam_time_hours(),
            "worst_drift_px": float(worst),
            "retries": float(attempt),
            "fault_events": float(len(stack.fault_events)),
            "array_bytes": float(sum(img.nbytes for img in stack.images)),
        }

    def run_denoise(ctx: dict) -> tuple[dict, dict[str, float]]:
        fused = ctx.pop("_fused_denoised", None)
        if fused is not None:
            # Computed by the fused acquire pool trip with the exact
            # per-slice kernel DenoiseStage runs — bit-identical, one
            # fewer trip across the pool boundary per slice.
            denoised = fused
            notes: dict[str, float] = {"slices": float(len(denoised))}
            current_metrics().counter(
                "repro_dataplane_fused_total", stage="denoise"
            ).inc()
        else:
            denoised, notes = DenoiseStage(config)(ctx["stack"].images)
        notes["array_bytes"] = float(sum(img.nbytes for img in denoised))
        return {"denoised": denoised}, notes

    def run_align(ctx: dict) -> tuple[dict, dict[str, float]]:
        stage = AlignStage(config, true_drift_px=ctx["stack"].true_drift_px)
        aligned, notes = stage(ctx["denoised"])
        budget = policy.max_residual_fraction
        if budget is not None and notes.get("residual_fraction", 0.0) > budget:
            raise AlignmentBudgetExceeded(
                notes["residual_fraction"], budget, chip_id=job.name
            )
        return {"aligned": aligned}, notes

    def run_assemble(ctx: dict) -> tuple[dict, dict[str, float]]:
        stack = ctx["stack"]
        volume = ctx["volume"]
        origin_x_nm = volume.origin_x_nm + stack.x_offset_nm
        origin_y_nm = volume.origin_y_nm
        assembled, a_notes = AssembleStage(
            pixel_nm=stack.pixel_nm,
            slice_thickness_nm=stack.slice_thickness_nm,
            origin_x_nm=origin_x_nm,
            origin_y_nm=origin_y_nm,
        )(ctx["aligned"])
        views, v_notes = PlanarViewStage()(assembled)
        # Everything the final stage needs, so a cached `assemble` entry is
        # self-sufficient even when upstream entries are never loaded.
        meta = {
            "pixel_nm": stack.pixel_nm,
            "sem": stack.sem,
            "origin_x_nm": origin_x_nm,
            "origin_y_nm": origin_y_nm,
        }
        notes_base = {
            "alignment_max_residual_px": ctx["align_notes"]["max_residual_px"],
            "alignment_residual_fraction": ctx["align_notes"].get("residual_fraction", 0.0),
            "slices": float(len(stack)),
            "beam_time_hours": stack.beam_time_hours(),
        }
        return (
            {"views": views, "view_meta": meta, "notes_base": notes_base},
            {**a_notes, "layers": v_notes["layers"]},
        )

    def run_reveng(ctx: dict) -> tuple[dict, dict[str, float]]:
        meta = ctx["view_meta"]
        features, seg_notes = SegmentStage(
            config,
            pixel_nm=meta["pixel_nm"],
            sem=meta["sem"],
            origin_x_nm=meta["origin_x_nm"],
            origin_y_nm=meta["origin_y_nm"],
        )(ctx["views"])
        extracted = extract_circuit(features, name=f"{job.name}_re")
        truth = ctx["cell"] if job.validate else None
        result = finish_extraction(extracted, truth, pipeline_notes=dict(ctx["notes_base"]))
        notes = dict(seg_notes)
        notes.update({
            "devices_extracted": result.pipeline_notes["devices_extracted"],
            "lanes_matched": result.pipeline_notes["lanes_matched"],
        })
        return {"result": result}, notes

    spec_token = canonicalize(job.spec)
    stages = [
        _StageDef("layout", {"spec": spec_token, "mat_rows": job.mat_rows}, run_layout),
        _StageDef("voxelize", {"voxel_nm": job.voxel_nm, "margin_nm": job.margin_nm},
                  run_voxelize),
    ]
    if job.roi_margin_nm is not None:
        stages.append(_StageDef(
            "roi",
            {"probe_step_nm": job.roi_probe_step_nm, "margin_nm": job.roi_margin_nm},
            run_roi,
        ))
    acquire_params: dict[str, Any] = {
        "campaign": canonicalize(job.campaign),
        "x_start_nm": job.x_start_nm, "x_stop_nm": job.x_stop_nm,
        "y_start_nm": job.y_start_nm, "y_stop_nm": job.y_stop_nm,
    }
    # Fault/QC knobs join the acquire key only when they can change the
    # acquired stack: an active plan injects defects, and an engaged QC
    # gate changes which stack survives (retry count + failure point).
    # An inert plan (all rates 0, QC off) keys identically to no plan, so
    # it hits the clean path's cache entries — matching its bit-identical
    # output.  The *rest* of the policy (timeouts) is execution-only and
    # never keyed.
    if job.fault_plan is not None and job.fault_plan.active:
        acquire_params["fault_plan"] = job.fault_plan.cache_token()
    if policy.qc_engaged(job):
        acquire_params["qc"] = canonicalize(policy.qc)
        acquire_params["max_retries"] = policy.max_retries
    stages.extend([
        _StageDef("acquire", acquire_params, run_acquire),
        # Stage params carry every result-affecting knob and nothing else:
        # execution-only settings (config.chunk_workers) are deliberately
        # absent so a re-run with more threads still hits the cache, while
        # the exactness-trading knobs (denoise_tol, shift penalty, search
        # strategy) are keyed so flipping them invalidates downstream
        # artefacts.
        _StageDef("denoise", {
            "method": config.denoise_method,
            "weight": config.denoise_weight,
            "iterations": config.denoise_iterations,
            "tol": config.denoise_tol,
        }, run_denoise),
        _StageDef("align", {
            "search_px": config.align_search_px,
            "bins": config.align_bins,
            "baselines": list(config.align_baselines),
            "shift_penalty": config.align_shift_penalty,
            "search_strategy": config.align_search_strategy,
        }, run_align),
        _StageDef("assemble", {}, run_assemble),
        _StageDef("reveng", {
            "segment_tolerance": config.segment_tolerance,
            "validate": job.validate,
        }, run_reveng),
    ])
    return stages


def chain_keys(stages: list[_StageDef]) -> list[str]:
    """The content-addressed cache key of every stage in the chain."""
    keys: list[str] = []
    parent: str | None = None
    for stage in stages:
        parent = chain_key(parent, stage.name, stage.version, stage.params)
        keys.append(parent)
    return keys


def cached_depth(
    job: "ChipJob",
    config: PipelineConfig,
    cache: StageCache,
    policy: ResiliencePolicy | None = None,
) -> int:
    """Index of the deepest cached stage for *job* (−1 when none).

    Key computation only — no entry is loaded.  The campaign scheduler
    uses this to order chip jobs deepest-hit-first: near-warm chips
    finish (and free their pool slot) fastest, so cold chips overlap the
    widest stretch of the campaign wall clock.
    """
    if not cache.enabled:
        return -1
    keys = chain_keys(build_stage_chain(job, config, policy))
    for i in reversed(range(len(keys))):
        if cache.contains(keys[i]):
            return i
    return -1


def execute_chain(
    stages: list[_StageDef],
    cache: StageCache,
    deadline: float | None = None,
    chip_id: str | None = None,
    budget_s: float | None = None,
    cancel: "threading.Event | None" = None,
) -> tuple[dict[str, Any], list[StageMetrics]]:
    """Run a stage chain against a cache; return (final context, metrics).

    ``deadline`` (a ``time.monotonic()`` instant) makes the executor
    cooperative about per-chip time budgets: it is checked *between*
    stages, so an over-budget chip stops at the next stage boundary with
    a :class:`StageTimeoutError` instead of being killed mid-stage (which
    would leave a partial cache write — the atomic store makes even that
    safe, but a typed error with the failing stage beats a dead worker).
    With a deadline set, every :class:`StageMetrics` records the
    ``deadline_remaining_s`` left *after* the stage, so timeout proximity
    is observable before it becomes a quarantine; ``budget_s`` (the full
    chip budget behind the deadline) additionally triggers a warning log
    when a single stage consumes more than 80 % of it.

    ``cancel`` (a ``threading.Event``) is the cooperative kill switch the
    serve daemon trips on ``DELETE /jobs/{id}``: like the deadline it is
    honoured *between* stages, raising :class:`JobCancelledError` at the
    next boundary so completed stage artefacts stay cached and the chip
    quarantines cleanly.  It only works for chips running in the caller's
    process (events don't cross the pool).

    Every loop iteration emits exactly one stage span on the active
    tracer — skipped, loaded and executed stages alike — so a trace's
    stage spans match the metrics list one-to-one.
    """
    keys = chain_keys(stages)

    deepest = -1
    for i in reversed(range(len(stages))):
        if cache.contains(keys[i]):
            deepest = i
            break

    tracer = current_tracer()
    obs_metrics = current_metrics()
    bus = current_events()
    ctx: dict[str, Any] = {}
    metrics: list[StageMetrics] = []

    def _push(m: StageMetrics) -> None:
        bus.emit(
            "cache_hit" if m.cache_hit else "cache_miss",
            chip=chip_id, stage=m.stage, disposition=m.disposition,
        )
        bus.emit(
            "stage_finish",
            chip=chip_id, stage=m.stage, disposition=m.disposition,
            seconds=m.seconds, payload_bytes=m.payload_bytes,
        )
        if deadline is not None:
            m.notes["deadline_remaining_s"] = deadline - time.monotonic()
        if budget_s is not None and m.seconds > 0.8 * budget_s:
            logger.warning(
                "stage consumed over 80% of the chip time budget",
                extra={"fields": {
                    "stage": m.stage, "seconds": m.seconds, "budget_s": budget_s,
                }},
            )
        obs_metrics.counter(
            "repro_cache_lookups_total", stage=m.stage, disposition=m.disposition
        ).inc()
        obs_metrics.histogram("repro_stage_seconds", stage=m.stage).observe(m.seconds)
        metrics.append(m)

    for i, stage in enumerate(stages):
        if cancel is not None and cancel.is_set():
            raise JobCancelledError(
                "campaign cancelled; stopping at stage boundary",
                chip_id=chip_id,
                stage=stage.name,
                details={"completed_stages": [m.stage for m in metrics]},
            )
        if deadline is not None and time.monotonic() > deadline:
            logger.error(
                "chip blew its time budget; stopping at stage boundary",
                extra={"fields": {
                    "stage": stage.name,
                    "completed_stages": [m.stage for m in metrics],
                }},
            )
            raise StageTimeoutError(
                "chip exceeded its campaign time budget",
                chip_id=chip_id,
                stage=stage.name,
                details={"completed_stages": [m.stage for m in metrics]},
            )
        bus.emit("stage_start", chip=chip_id, stage=stage.name)
        with tracer.span(stage.name, kind="stage") as span, bind(stage=stage.name):
            t0 = time.perf_counter()
            if i < deepest and deepest == len(stages) - 1:
                # The final stage is cached: upstream artefacts are never
                # needed.
                span.set(disposition="skip")
                _push(StageMetrics(
                    stage=stage.name, seconds=0.0, cache_hit=True, skipped=True,
                    payload_bytes=cache.entry_bytes(keys[i]),
                ))
                continue
            if i <= deepest:
                entry = cache.load(keys[i])
                if entry is not None:
                    payload, notes = entry
                    ctx.update(payload)
                    if stage.name == "align":
                        ctx["align_notes"] = notes
                    span.set(disposition="hit", payload_bytes=cache.entry_bytes(keys[i]))
                    _push(StageMetrics(
                        stage=stage.name,
                        seconds=time.perf_counter() - t0,
                        cache_hit=True,
                        skipped=False,
                        payload_bytes=cache.entry_bytes(keys[i]),
                        notes=notes,
                    ))
                    continue
                # Entry vanished between contains() and load(): fall through
                # and recompute this stage.
                logger.warning(
                    "cache entry vanished between contains() and load(); "
                    "recomputing stage",
                    extra={"fields": {"stage": stage.name, "key": keys[i]}},
                )
            payload, notes = stage.run(ctx)
            ctx.update(payload)
            if stage.name == "align":
                ctx["align_notes"] = notes
            nbytes = cache.store(keys[i], payload, notes)
            if nbytes:
                obs_metrics.counter(
                    "repro_cache_stored_bytes_total", stage=stage.name
                ).inc(nbytes)
            span.set(disposition="run", payload_bytes=nbytes)
            _push(StageMetrics(
                stage=stage.name,
                seconds=time.perf_counter() - t0,
                cache_hit=False,
                skipped=False,
                payload_bytes=nbytes,
                notes=notes,
            ))
    return ctx, metrics


def run_chip_stages(
    job: "ChipJob",
    config: PipelineConfig,
    cache: StageCache,
    policy: ResiliencePolicy | None = None,
    cancel: "threading.Event | None" = None,
) -> tuple[Any, list[StageMetrics]]:
    """Execute one job's full chain and return its final ``result``.

    For imaging :class:`~repro.runtime.campaign.ChipJob` chains that is a
    :class:`ReversedChip`; jobs with their own ``build_stages`` return
    whatever their final stage stores under ``"result"``.  ``policy``
    adds the QC/retry gate, the per-chip deadline and the alignment
    budget; ``None`` keeps the historical clean-path behaviour.
    """
    policy = policy or ResiliencePolicy()
    deadline = None
    if policy.chip_timeout_s is not None:
        deadline = time.monotonic() + policy.chip_timeout_s
    with bind(chip=job.name):
        ctx, metrics = execute_chain(
            build_stage_chain(job, config, policy), cache,
            deadline=deadline, chip_id=job.name,
            budget_s=policy.chip_timeout_s, cancel=cancel,
        )
    result = ctx.get("result")
    if result is None:
        raise CampaignError(f"chip job {job.name!r} produced no result")
    return result, metrics
