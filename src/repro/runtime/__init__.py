"""Campaign runtime: parallel multi-chip RE with stage caching.

The paper's §IV campaigns are serial and expensive (>24 h per scan, six
chips one at a time).  This package gives the reproduction a campaign
engine that is neither:

* :mod:`repro.runtime.campaign` — :class:`ChipJob` work orders,
  process-pool fan-out (:func:`run_campaign`) and the instrumented
  :class:`CampaignReport`;
* :mod:`repro.runtime.engine` — the per-chip stage-graph executor
  (layout → voxelize → [roi] → acquire → denoise → align → assemble →
  reveng) with per-stage wall time / cache / bytes metrics;
* :mod:`repro.runtime.cache` — the content-addressed on-disk stage cache;
* :mod:`repro.runtime.hashing` — stable parameter hashing behind the
  cache keys;
* :mod:`repro.runtime.shard` — the slice-shard executor: the second
  scheduling level that fans per-slice stage work (acquire imaging,
  denoise, QC) out over a shared process pool, bit-identical to the
  serial path (enable via ``PipelineConfig.shard``);
* :mod:`repro.runtime.dataplane` — the zero-copy data plane under the
  shard executor: ndarray payloads cross the pool boundary as
  ``multiprocessing.shared_memory`` segments described by
  :class:`ShmHeader` records, ref-counted per process and unlinked on
  every exit path (select via ``ShardPlan.data_plane``; falls back to
  in-band pickle when shared memory is unavailable).

Resilience (fault plans, QC gates, retry, quarantine) rides on the same
surfaces: :class:`ChipJob.fault_plan`, :class:`ResiliencePolicy` on
:func:`run_campaign`, and :class:`QuarantineRecord` entries on the
(partial) :class:`CampaignReport`.
"""

from repro.runtime.cache import DEFAULT_BLOB_MIN_BYTES, StageCache
from repro.runtime.dataplane import (
    DataPlaneError,
    SegmentRegistry,
    ShmHeader,
    process_registry,
    reap_leaked,
)
from repro.runtime.dataplane import available as dataplane_available
from repro.runtime.campaign import (
    REPORT_SCHEMA_VERSION,
    CampaignReport,
    ChipJob,
    ChipRun,
    QuarantineRecord,
    campaign_config_provenance,
    default_workers,
    run_campaign,
    usable_cpus,
)
from repro.runtime.engine import (
    STAGE_VERSIONS,
    ResiliencePolicy,
    StageMetrics,
    cached_depth,
    run_chip_stages,
)
from repro.runtime.hashing import canonicalize, chain_key, stable_hash
from repro.runtime.shard import payload_nbytes, shard_map, shutdown_shard_pools

__all__ = [
    "DEFAULT_BLOB_MIN_BYTES",
    "DataPlaneError",
    "SegmentRegistry",
    "ShmHeader",
    "StageCache",
    "dataplane_available",
    "process_registry",
    "reap_leaked",
    "CampaignReport",
    "ChipJob",
    "ChipRun",
    "QuarantineRecord",
    "REPORT_SCHEMA_VERSION",
    "ResiliencePolicy",
    "campaign_config_provenance",
    "default_workers",
    "usable_cpus",
    "run_campaign",
    "STAGE_VERSIONS",
    "StageMetrics",
    "cached_depth",
    "run_chip_stages",
    "canonicalize",
    "chain_key",
    "stable_hash",
    "payload_nbytes",
    "shard_map",
    "shutdown_shard_pools",
]
