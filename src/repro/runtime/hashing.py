"""Stable content hashing for stage-cache keys.

A cache key must be identical across processes and Python invocations for
the same logical inputs (``PYTHONHASHSEED`` randomises ``hash()``, so the
built-in is useless here), and must change whenever any result-affecting
parameter changes.  The scheme: convert the parameter object to a
canonical, JSON-serialisable form — dataclasses become ``{class: ...,
fields: {...}}`` maps, enums their values, dict keys *type-prefixed*
strings in sorted order — then SHA-256 the canonical JSON.

Guarantees the canonical form upholds (the cache-key contract):

* **injective over key types** — dict keys carry their Python type in the
  canonical string (``"int:1"`` vs ``"str:1"`` vs ``"bool:True"``), so
  ``{1: x}`` and ``{"1": x}`` never collide.  Historically both collapsed
  to ``"1"`` and two different parameter dicts could silently share a
  digest — a stale cache entry served as a hit.
* **total over floats** — non-finite floats canonicalize to explicit
  string sentinels (``"float:nan"``, ``"float:inf"``, ``"float:-inf"``)
  instead of leaking into ``json.dumps`` as the non-standard
  ``NaN``/``Infinity`` tokens.  NaN-valued numpy scalars used to fall
  through the ``cast(obj) == obj`` check (NaN != NaN) and raise; infinite
  ones raised ``OverflowError`` out of the ``int()`` cast.  Both now
  canonicalize like their builtin-float counterparts.

Changing the canonical form changes every digest, so the stage versions
in :data:`repro.runtime.engine.STAGE_VERSIONS` were bumped with it: old
cache entries miss cleanly instead of ever being misread.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from enum import Enum
from typing import Any

from repro.errors import CampaignError


def _canonical_float(value: float) -> float | str:
    """A float's canonical form: itself, or a sentinel when non-finite."""
    if math.isnan(value):
        return "float:nan"
    if value == math.inf:
        return "float:inf"
    if value == -math.inf:
        return "float:-inf"
    return float(value)


def canonicalize(obj: Any) -> Any:
    """Recursively convert *obj* into canonical JSON-serialisable data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"class": type(obj).__name__, "fields": fields}
    if isinstance(obj, Enum):
        return canonicalize(obj.value)
    if isinstance(obj, dict):
        items = [(_key_str(k), canonicalize(v)) for k, v in obj.items()]
        items.sort(key=lambda kv: kv[0])
        return dict(items)
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (str, bool)) or obj is None:
        return obj
    if isinstance(obj, int):
        return int(obj)
    if isinstance(obj, float):
        return _canonical_float(obj)
    # numpy scalars and other number-likes.  NaN-likes fail the
    # ``cast(obj) == obj`` round-trip below (NaN != NaN), so catch them
    # first; the casts themselves may raise OverflowError on infinities.
    try:
        if obj != obj:
            return "float:nan"
    except (TypeError, ValueError):
        pass
    for cast in (int, float):
        try:
            if cast(obj) == obj:
                return int(obj) if cast is int else _canonical_float(float(obj))
        except (TypeError, ValueError, OverflowError):
            continue
    raise CampaignError(f"cannot canonicalize {type(obj).__name__!r} for hashing")


def _key_str(key: Any) -> str:
    """Canonical dict-key string, with the key's type encoded.

    ``bool`` is checked before ``int`` (it is a subclass) and enums
    canonicalize through their value, so ``Color.RED`` with ``value=1``
    keys exactly like the int ``1``.
    """
    if isinstance(key, Enum):
        key = key.value
    if isinstance(key, str):
        return f"str:{key}"
    if isinstance(key, bool):
        return f"bool:{key}"
    if isinstance(key, int):
        return f"int:{key}"
    if isinstance(key, float):
        canonical = _canonical_float(key)
        return canonical if isinstance(canonical, str) else f"float:{canonical!r}"
    raise CampaignError(f"cannot use {type(key).__name__!r} as a hashable dict key")


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of *obj*.

    The byte count feeds the ``repro_hash_bytes_total`` counter (a no-op
    unless a metrics registry is active); the digest itself never
    depends on observability state.  ``allow_nan=False`` makes any
    non-finite float that escapes canonicalization a loud error rather
    than a silently non-standard JSON token.
    """
    from repro.obs import current_metrics

    payload = json.dumps(
        canonicalize(obj), sort_keys=True, separators=(",", ":"), allow_nan=False
    )
    data = payload.encode("utf-8")
    current_metrics().counter("repro_hash_bytes_total").inc(len(data))
    return hashlib.sha256(data).hexdigest()


def chain_key(parent: str | None, stage: str, version: str, params: Any) -> str:
    """Key of a stage given its parent's key and its own parameters."""
    return stable_hash({
        "parent": parent or "",
        "stage": stage,
        "version": version,
        "params": canonicalize(params),
    })
