"""Stable content hashing for stage-cache keys.

A cache key must be identical across processes and Python invocations for
the same logical inputs (``PYTHONHASHSEED`` randomises ``hash()``, so the
built-in is useless here), and must change whenever any result-affecting
parameter changes.  The scheme: convert the parameter object to a
canonical, JSON-serialisable form — dataclasses become ``{class: ...,
fields: {...}}`` maps, enums their values, dict keys strings in sorted
order — then SHA-256 the canonical JSON.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from enum import Enum
from typing import Any

from repro.errors import CampaignError


def canonicalize(obj: Any) -> Any:
    """Recursively convert *obj* into canonical JSON-serialisable data."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = {
            f.name: canonicalize(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        return {"class": type(obj).__name__, "fields": fields}
    if isinstance(obj, Enum):
        return canonicalize(obj.value)
    if isinstance(obj, dict):
        items = [(_key_str(k), canonicalize(v)) for k, v in obj.items()]
        items.sort(key=lambda kv: kv[0])
        return dict(items)
    if isinstance(obj, (list, tuple)):
        return [canonicalize(v) for v in obj]
    if isinstance(obj, (str, bool)) or obj is None:
        return obj
    if isinstance(obj, int):
        return int(obj)
    if isinstance(obj, float):
        # repr() round-trips doubles exactly; json would too, but be explicit
        # that 1.0 and 1 must not collide with each other silently.
        return float(obj)
    # numpy scalars and other number-likes
    for cast in (int, float):
        try:
            if cast(obj) == obj:
                return cast(obj)
        except (TypeError, ValueError):
            continue
    raise CampaignError(f"cannot canonicalize {type(obj).__name__!r} for hashing")


def _key_str(key: Any) -> str:
    if isinstance(key, Enum):
        key = key.value
    if isinstance(key, (str, int, float, bool)):
        return str(key)
    raise CampaignError(f"cannot use {type(key).__name__!r} as a hashable dict key")


def stable_hash(obj: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of *obj*.

    The byte count feeds the ``repro_hash_bytes_total`` counter (a no-op
    unless a metrics registry is active); the digest itself never
    depends on observability state.
    """
    from repro.obs import current_metrics

    payload = json.dumps(canonicalize(obj), sort_keys=True, separators=(",", ":"))
    data = payload.encode("utf-8")
    current_metrics().counter("repro_hash_bytes_total").inc(len(data))
    return hashlib.sha256(data).hexdigest()


def chain_key(parent: str | None, stage: str, version: str, params: Any) -> str:
    """Key of a stage given its parent's key and its own parameters."""
    return stable_hash({
        "parent": parent or "",
        "stage": stage,
        "version": version,
        "params": canonicalize(params),
    })
