"""Multi-chip reverse-engineering campaigns.

The paper imaged and reverse engineered its six chips one at a time, each
scan costing >24 h of machine time.  This module is the reproduction's
answer to that serialism: a campaign is a list of :class:`ChipJob`\\ s
(region spec + acquisition parameters), and :func:`run_campaign` executes
every job's imaging → pipeline → RE chain

* **concurrently** — process-pool fan-out over chips (chips share
  nothing, so this parallelises perfectly), with optional thread-level
  chunk parallelism inside the denoise/align stages
  (``PipelineConfig.chunk_workers``);
* **incrementally** — every stage goes through the content-addressed
  :class:`~repro.runtime.cache.StageCache`, so a re-run recomputes only
  the stages whose parameters (or upstream stages) changed;
* **observably** — the returned :class:`CampaignReport` carries per-stage
  wall time, cache disposition, payload bytes and stage notes for every
  chip;
* **resiliently** — a chip whose chain fails (QC exhaustion under an
  active :class:`~repro.faults.FaultPlan`, an alignment budget bust, a
  blown per-chip deadline, any :class:`~repro.errors.StageError`) is
  **quarantined**: the pool keeps going, the sibling chips finish
  bit-identically to a fault-free run, and the report records a
  :class:`QuarantineRecord` with the failing stage, retry counts and the
  injected fault events.

Results are bit-identical for any ``workers`` value: each chip's chain is
deterministic given its job (all randomness is seeded by the acquisition
campaign and, for faults, by the job's plan), and fan-out only changes
*where* a chain runs.

:class:`CampaignReport` serializes through :meth:`CampaignReport.to_json`
/ :meth:`CampaignReport.from_json` with an explicit ``schema_version``;
deserialized reports are *summary-only* (telemetry without the pickled
:class:`~repro.reveng.workflow.ReversedChip` payloads).
"""

from __future__ import annotations

import json
import os
import threading
import time
import traceback as traceback_module
from contextlib import ExitStack
from dataclasses import dataclass, field, replace
from pathlib import Path

from repro.core.report import render_table
from repro.errors import CampaignError, JobCancelledError, ReproError, StageError
from repro.faults import FaultPlan
from repro.imaging.fib import FibSemCampaign
from repro.imaging.sem import SemParameters
from repro.layout.generator import SaRegionSpec
from repro.obs import (
    Event,
    EventBus,
    MetricsRegistry,
    ObsConfig,
    ObsSession,
    Span,
    Tracer,
    bind,
    configure_logging,
    current_events,
    current_metrics,
    current_tracer,
    events_to_jsonl,
    get_logger,
    merge_snapshots,
    merge_spans,
    render_trace_summary,
    to_chrome_trace,
    to_jsonl,
)
from repro.pipeline.config import PipelineConfig
from repro.reveng.workflow import ReversedChip
from repro.runtime import dataplane
from repro.runtime.cache import StageCache
from repro.runtime.engine import (
    ResiliencePolicy,
    StageMetrics,
    cached_depth,
    run_chip_stages,
)

logger = get_logger("repro.runtime.campaign")

#: serialization schema of :meth:`CampaignReport.to_dict` — bump on any
#: breaking shape change ("campaign-report/1" was the ad-hoc dict layout
#: benchmarks used before the API existed; "/2" added quarantine and
#: fault telemetry; "/3" adds the embedded metrics snapshot and the
#: quarantine traceback)
REPORT_SCHEMA_VERSION = "campaign-report/3"

#: schema versions :meth:`CampaignReport.from_dict` can still read
#: ("/2" reports simply have no metrics snapshot and no tracebacks)
_READABLE_SCHEMA_VERSIONS = ("campaign-report/2", REPORT_SCHEMA_VERSION)


@dataclass(frozen=True)
class ChipJob:
    """One chip's acquisition + reverse-engineering work order."""

    name: str
    spec: SaRegionSpec
    campaign: FibSemCampaign = field(default_factory=FibSemCampaign)
    voxel_nm: float = 6.0
    margin_nm: float = 40.0
    #: build a full MAT/SA/MAT strip instead of a bare SA region
    mat_rows: int | None = None
    #: run blind ROI identification (Fig 6) and crop the field of view to
    #: the found region shrunk by this margin; requires ``mat_rows``
    roi_margin_nm: float | None = None
    roi_probe_step_nm: float = 300.0
    x_start_nm: float | None = None
    x_stop_nm: float | None = None
    y_start_nm: float | None = None
    y_stop_nm: float | None = None
    #: attach a ground-truth validation report to the result
    validate: bool = True
    #: seeded acquisition defects for this chip (None/inert → clean path)
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("chip job needs a name")
        if self.voxel_nm <= 0:
            raise CampaignError("voxel size must be positive")
        if self.roi_margin_nm is not None and self.mat_rows is None:
            raise CampaignError(
                "ROI identification needs the MAT context (set mat_rows)"
            )

    @classmethod
    def synthetic(
        cls,
        name: str,
        topology: str,
        n_pairs: int = 2,
        dwell_time_us: float = 6.0,
        slice_thickness_nm: float = 12.0,
        **kwargs,
    ) -> "ChipJob":
        """A synthetic-vendor job with the demo acquisition parameters."""
        from repro.catalog.variants import ChipVariantSpec, build_region_spec

        return cls(
            name=name,
            spec=build_region_spec(
                ChipVariantSpec(name=name, variant=topology, word_size=n_pairs)
            ),
            campaign=FibSemCampaign(
                slice_thickness_nm=slice_thickness_nm,
                sem=SemParameters(dwell_time_us=dwell_time_us),
            ),
            **kwargs,
        )

    #: a plan whose SEM pixel exceeds this fraction of the chip's feature
    #: size undersamples the latch contacts — re-plan at feature-scaled
    #: resolution instead (see :meth:`for_chip`)
    _UNDERSAMPLED_PIXEL_FRACTION = 0.35

    @classmethod
    def for_chip(cls, chip_id: str, n_pairs: int = 2, **kwargs) -> "ChipJob":
        """A job imaging a Table I chip with its own acquisition plan.

        The assembly voxel is matched to the plan's SEM pixel (1:1) rather
        than fixed: resampling a fine acquisition (B4's 3.4 nm pixels) into
        coarser voxels smears the latch gate-strap clearances until the
        extractor's active-contact guard severs the cross-couple nets and
        the nSA/pSA pairs vanish.  Plans whose pixel *undersamples* the
        feature size (A4: 10.4 nm pixels on a 20.5 nm process) cannot be
        rescued by assembly alone — those are re-planned at the
        population recipe's feature-scaled resolution (pixel ``5*scale``,
        voxel ``6*scale``, 12 nm slices, ``scale = feature/18``), the
        same sampling every catalog variant images with.
        """
        from dataclasses import replace as _dc_replace

        from repro.catalog.variants import build_region_spec, chip_variant
        from repro.core.chips import chip as get_chip
        from repro.imaging.plan import plan_for

        chip_id = chip_id.upper()
        chip = get_chip(chip_id)
        campaign = plan_for(chip_id).campaign
        if "voxel_nm" not in kwargs:
            pixel = campaign.sem.pixel_nm
            limit = chip.geometry.feature_nm * cls._UNDERSAMPLED_PIXEL_FRACTION
            if pixel > limit:
                scale = chip.geometry.feature_nm / 18.0
                campaign = _dc_replace(
                    campaign,
                    slice_thickness_nm=min(campaign.slice_thickness_nm, 12.0),
                    sem=_dc_replace(campaign.sem, pixel_nm=5.0 * scale),
                )
                kwargs["voxel_nm"] = 6.0 * scale
            else:
                kwargs["voxel_nm"] = pixel
        return cls(
            name=chip_id,
            spec=build_region_spec(chip_variant(chip_id, word_size=n_pairs)),
            campaign=campaign,
            **kwargs,
        )


@dataclass
class ChipRun:
    """One chip's outcome plus per-stage instrumentation.

    ``result`` is ``None`` on a *summary-only* run (deserialized from
    JSON); ``summary`` then carries the headline numbers the full result
    would provide.
    """

    name: str
    result: ReversedChip | None
    stages: list[StageMetrics]
    seconds: float
    summary: dict | None = None

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.stages if s.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(1 for s in self.stages if not s.cache_hit)

    @property
    def stages_executed(self) -> list[str]:
        return [s.stage for s in self.stages if not s.cache_hit]

    @property
    def retries(self) -> int:
        """Re-acquisitions the QC gate forced on this chip."""
        return int(sum(s.notes.get("retries", 0.0) for s in self.stages))

    @property
    def fault_events(self) -> int:
        """Injected defects surviving in the final accepted stack."""
        return int(sum(s.notes.get("fault_events", 0.0) for s in self.stages))

    @property
    def degraded(self) -> bool:
        """Completed, but only after retries or with injected defects."""
        return self.retries > 0 or self.fault_events > 0

    def result_summary(self) -> dict:
        """Headline numbers, from the live result or the stored summary.

        Results that provide their own ``campaign_summary()`` (e.g. the
        analog characterizer's :class:`~repro.analog.characterizer.CellResult`)
        are asked for it; otherwise the imaging ``ReversedChip`` shape is
        assumed.  Every summary carries at least a ``"topology"`` key.
        """
        if self.result is not None:
            summarize = getattr(self.result, "campaign_summary", None)
            if callable(summarize):
                return summarize()
            matched = self.result.lanes_matched
            return {
                "topology": self.result.topology.value if matched else None,
                "lanes_matched": matched,
                "exact": self.result.all_exact,
            }
        return dict(self.summary or {"topology": None, "lanes_matched": 0, "exact": False})


@dataclass(frozen=True)
class QuarantineRecord:
    """Why one chip was pulled from the campaign (picklable, JSON-able)."""

    name: str
    stage: str | None  #: failing stage, when the error carried it
    error_type: str  #: exception class name
    message: str
    seconds: float  #: wall time spent on the chip before it failed
    slice_index: int | None = None
    retries: int = 0
    #: structured telemetry off the error (failed slices, fault events...)
    details: dict = field(default_factory=dict)
    #: the full formatted traceback at the point of failure ("" when the
    #: record was built without one, e.g. deserialized from a v2 report)
    traceback: str = ""

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
            "seconds": self.seconds,
            "slice_index": self.slice_index,
            "retries": self.retries,
            "details": self.details,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "QuarantineRecord":
        return cls(
            name=str(data["name"]),
            stage=data.get("stage"),
            error_type=str(data["error_type"]),
            message=str(data["message"]),
            seconds=float(data.get("seconds", 0.0)),
            slice_index=data.get("slice_index"),
            retries=int(data.get("retries", 0)),
            details=dict(data.get("details", {})),
            traceback=str(data.get("traceback", "")),
        )

    @classmethod
    def from_error(
        cls,
        name: str,
        error: ReproError,
        seconds: float,
        tb: str | None = None,
    ) -> "QuarantineRecord":
        """Build a record from a caught error.

        ``tb`` is the formatted traceback (``traceback.format_exc()``)
        captured at the ``except`` site — pass it explicitly because by
        the time the record crosses the process pool the exception's
        ``__traceback__`` is gone.
        """
        stage = getattr(error, "stage", None)
        slice_index = getattr(error, "slice_index", None)
        details = dict(getattr(error, "details", {}) or {})
        return cls(
            name=name,
            stage=stage,
            error_type=type(error).__name__,
            message=str(error),
            seconds=seconds,
            slice_index=slice_index,
            retries=max(0, int(details.get("attempts", 1)) - 1),
            details=details,
            traceback=tb or "",
        )


@dataclass
class CampaignReport:
    """Everything :func:`run_campaign` observed, per chip and per stage.

    ``chips`` holds the completed runs (job order preserved);
    ``quarantined`` the chips whose chain failed.  A campaign where at
    least one chip completed is *partial*, not failed — callers check
    :attr:`degraded` / ``quarantined`` for the bad news.
    """

    chips: dict[str, ChipRun]
    workers: int
    wall_seconds: float
    cache_dir: str | None = None
    quarantined: dict[str, QuarantineRecord] = field(default_factory=dict)
    #: merged span tree of the whole campaign (``obs=ObsConfig(trace=True)``)
    trace: list[Span] | None = None
    #: merged metrics snapshot (``obs=ObsConfig(metrics=True)``); embedded
    #: in :meth:`to_dict` under ``"metrics"``
    metrics: dict | None = None
    #: merged lifecycle event stream (``obs=ObsConfig(events=True)``);
    #: exported as ``obs-event/1`` JSONL via :meth:`save_events`, never
    #: embedded in :meth:`to_dict`
    events: list[Event] | None = None

    def result(self, name: str) -> ReversedChip:
        """The recovered circuit of one chip."""
        try:
            run = self.chips[name]
        except KeyError:
            if name in self.quarantined:
                record = self.quarantined[name]
                raise CampaignError(
                    f"chip {name!r} was quarantined: {record.message}"
                ) from None
            raise CampaignError(f"no chip named {name!r} in this campaign") from None
        if run.result is None:
            raise CampaignError(
                f"chip {name!r} has no payload (summary-only report)"
            )
        return run.result

    def results(self) -> dict[str, ReversedChip]:
        """All recovered circuits, keyed by job name (job order preserved).

        Quarantined chips are absent — that is the partial-report
        contract, not an error.
        """
        return {
            name: run.result for name, run in self.chips.items()
            if run.result is not None
        }

    @property
    def cache_hits(self) -> int:
        return sum(run.cache_hits for run in self.chips.values())

    @property
    def cache_misses(self) -> int:
        return sum(run.cache_misses for run in self.chips.values())

    @property
    def stages_executed(self) -> int:
        return self.cache_misses

    @property
    def cpu_seconds(self) -> float:
        """Summed per-chip wall time (= serial cost of this campaign)."""
        return sum(run.seconds for run in self.chips.values())

    @property
    def degraded(self) -> bool:
        """Any chip quarantined, retried, or carrying injected defects."""
        return bool(self.quarantined) or any(
            run.degraded for run in self.chips.values()
        )

    def render(self) -> str:
        """ASCII stage table (chip × stage: disposition, time, bytes)."""
        rows = []
        for name, run in self.chips.items():
            for s in run.stages:
                note = ", ".join(
                    f"{k}={v:.3g}" for k, v in sorted(s.notes.items())
                    if k != "array_bytes"
                )
                rows.append([
                    name, s.stage, s.disposition, f"{s.seconds:7.2f}s",
                    f"{s.payload_bytes / 1e6:8.2f}MB", note[:48],
                ])
            summary = run.result_summary()
            topo = summary["topology"] or "-"
            extra = f", retries={run.retries}" if run.degraded else ""
            rows.append([name, "(total)", "", f"{run.seconds:7.2f}s", "",
                         f"topology={topo}{extra}"])
        for name, record in self.quarantined.items():
            rows.append([
                name, record.stage or "?", "FAIL", f"{record.seconds:7.2f}s", "",
                f"QUARANTINED: {record.error_type}"[:48],
            ])
        title = (
            f"campaign: {len(self.chips)} chips, workers={self.workers}, "
            f"wall {self.wall_seconds:.2f}s, cache {self.cache_hits} hit / "
            f"{self.cache_misses} miss"
        )
        if self.quarantined:
            title += f", {len(self.quarantined)} quarantined"
        return render_table(
            ["chip", "stage", "cache", "time", "payload", "notes"], rows, title=title
        )

    def to_dict(self) -> dict:
        """The versioned summary payload (no pickled chip results)."""
        chips = {}
        for name, run in self.chips.items():
            chips[name] = {
                "seconds": run.seconds,
                "retries": run.retries,
                "fault_events": run.fault_events,
                "degraded": run.degraded,
                "summary": run.result_summary(),
                "stages": [
                    {
                        "stage": s.stage,
                        "disposition": s.disposition,
                        "seconds": s.seconds,
                        "payload_bytes": s.payload_bytes,
                        "notes": dict(s.notes),
                    }
                    for s in run.stages
                ],
            }
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "cache_dir": self.cache_dir,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "degraded": self.degraded,
            "chips": chips,
            "quarantined": {
                name: record.to_dict() for name, record in self.quarantined.items()
            },
            "metrics": self.metrics,
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignReport":
        """Rebuild a *summary-only* report (``result`` fields are None)."""
        version = data.get("schema_version")
        if version not in _READABLE_SCHEMA_VERSIONS:
            raise CampaignError(
                f"unsupported campaign report schema {version!r} "
                f"(this build reads {', '.join(map(repr, _READABLE_SCHEMA_VERSIONS))})"
            )
        chips: dict[str, ChipRun] = {}
        for name, chip in data.get("chips", {}).items():
            stages = [
                StageMetrics(
                    stage=s["stage"],
                    seconds=float(s.get("seconds", 0.0)),
                    cache_hit=s.get("disposition") in ("hit", "skip"),
                    skipped=s.get("disposition") == "skip",
                    payload_bytes=int(s.get("payload_bytes", 0)),
                    notes=dict(s.get("notes", {})),
                )
                for s in chip.get("stages", [])
            ]
            chips[name] = ChipRun(
                name=name,
                result=None,
                stages=stages,
                seconds=float(chip.get("seconds", 0.0)),
                summary=dict(chip.get("summary", {})),
            )
        return cls(
            chips=chips,
            workers=int(data.get("workers", 1)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            cache_dir=data.get("cache_dir"),
            quarantined={
                name: QuarantineRecord.from_dict(record)
                for name, record in data.get("quarantined", {}).items()
            },
            metrics=data.get("metrics"),
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(f"malformed campaign report JSON: {exc}") from None
        if not isinstance(data, dict):
            raise CampaignError("campaign report JSON must be an object")
        return cls.from_dict(data)

    # --- observability artefacts ------------------------------------------

    def _require_trace(self) -> list[Span]:
        if self.trace is None:
            raise CampaignError(
                "campaign was run without tracing "
                "(pass obs=ObsConfig(trace=True) to run_campaign)"
            )
        return self.trace

    def save_trace(self, path: str | Path) -> Path:
        """Write the campaign trace to *path*.

        ``*.jsonl`` paths get one span JSON object per line; anything
        else gets Chrome ``trace_event`` JSON, loadable directly in
        ``chrome://tracing`` or https://ui.perfetto.dev.
        """
        spans = self._require_trace()
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        if target.suffix == ".jsonl":
            target.write_text(to_jsonl(spans) + "\n")
        else:
            target.write_text(json.dumps(to_chrome_trace(spans)) + "\n")
        return target

    def trace_summary(self, max_depth: int = 5) -> str:
        """Flamegraph-style text tree of the campaign trace."""
        return render_trace_summary(self._require_trace(), max_depth=max_depth)

    def save_metrics(self, path: str | Path) -> Path:
        """Write the merged metrics snapshot to *path* as JSON."""
        if self.metrics is None:
            raise CampaignError(
                "campaign was run without metrics "
                "(pass obs=ObsConfig(metrics=True) to run_campaign)"
            )
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.metrics, indent=2, sort_keys=True) + "\n")
        return target

    def save_events(self, path: str | Path) -> Path:
        """Write the lifecycle event stream to *path* as obs-event/1 JSONL."""
        if self.events is None:
            raise CampaignError(
                "campaign was run without the event bus "
                "(pass obs=ObsConfig(events=True) to run_campaign)"
            )
        target = Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(events_to_jsonl(self.events) + "\n")
        return target


@dataclass
class _JobOutcome:
    """What one worker sends back: the chip outcome plus its telemetry."""

    outcome: ChipRun | QuarantineRecord
    spans: list[Span] = field(default_factory=list)
    metrics: dict | None = None
    events: list[Event] = field(default_factory=list)


def _run_one(
    job: ChipJob,
    config: PipelineConfig,
    cache_dir: str | None,
    policy: ResiliencePolicy | None,
    cancel: "threading.Event | None" = None,
) -> ChipRun | QuarantineRecord:
    """One chip's chain; a failing chip returns a quarantine record.

    The record — not the exception — crosses the process boundary:
    exceptions with rich context pickle unreliably, and a worker that
    raises would poison ``pool.map`` for every chip behind it.  The
    formatted traceback is captured here, at the ``except`` site, because
    it cannot be rebuilt later.
    """
    t0 = time.perf_counter()
    try:
        result, metrics = run_chip_stages(
            job, config, StageCache(cache_dir), policy, cancel=cancel
        )
    except StageError as exc:
        logger.error(
            "chip quarantined",
            extra={"fields": {
                "chip": job.name,
                "stage": getattr(exc, "stage", None),
                "error_type": type(exc).__name__,
            }},
        )
        return QuarantineRecord.from_error(
            job.name, exc, time.perf_counter() - t0,
            tb=traceback_module.format_exc(),
        )
    return ChipRun(
        name=job.name, result=result, stages=metrics,
        seconds=time.perf_counter() - t0,
    )


def _execute_job(
    args: tuple[
        ChipJob, PipelineConfig, str | None, ResiliencePolicy | None, ObsConfig | None
    ],
    cancel: "threading.Event | None" = None,
) -> _JobOutcome:
    """Pool entry point: run one chip under its own observability session.

    Each job gets a fresh tracer / registry (even on the serial path —
    :class:`~repro.obs.ObsSession` saves and restores whatever was
    active), so the chip's spans and metrics travel back to the campaign
    as plain picklable data regardless of which process ran them.

    ``cancel`` only reaches in-process (serial-path) chips: a
    ``threading.Event`` cannot cross the pool boundary, so pooled chips
    are cancelled at the future level before they start and run to
    completion once picked up.
    """
    job, config, cache_dir, policy, obs = args
    try:
        return _execute_job_inner(job, config, cache_dir, policy, obs, cancel)
    finally:
        # Zero-copy data-plane backstop: shard_map releases its segments
        # on every path it controls, but a chip that quarantined or
        # timed out between publish and release must not leave /dev/shm
        # segments behind in this (long-lived pool) process.  Normally a
        # no-op; anything reaped is counted as repro_dataplane_reaped.
        dataplane.reap_leaked("job-teardown")


def _execute_job_inner(
    job: ChipJob,
    config: PipelineConfig,
    cache_dir: str | None,
    policy: ResiliencePolicy | None,
    obs: ObsConfig | None,
    cancel: "threading.Event | None" = None,
) -> _JobOutcome:
    if obs is None or not obs.enabled:
        return _JobOutcome(_run_one(job, config, cache_dir, policy, cancel))
    with ObsSession(obs) as session:
        current_events().emit("chip_start", chip=job.name)
        with current_tracer().span(
            f"chip {job.name}", kind="chip", chip=job.name
        ) as span, bind(chip=job.name):
            outcome = _run_one(job, config, cache_dir, policy, cancel)
            if isinstance(outcome, QuarantineRecord):
                span.set(outcome="quarantined", error_type=outcome.error_type,
                         stage=outcome.stage)
            else:
                span.set(outcome="completed", cache_hits=outcome.cache_hits,
                         cache_misses=outcome.cache_misses)
    return _JobOutcome(
        outcome,
        spans=session.spans(),
        metrics=session.metrics_snapshot() if obs.metrics else None,
        events=session.events(),
    )


def usable_cpus() -> int:
    """CPUs this process may actually schedule on (affinity-aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)


def default_workers(jobs_count: int) -> int:
    """One worker per chip, capped by the usable CPU count."""
    return max(1, min(jobs_count, usable_cpus()))


def run_campaign(
    jobs: list[ChipJob],
    config: PipelineConfig | None = None,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
    policy: ResiliencePolicy | None = None,
    fault_plan: FaultPlan | None = None,
    obs: ObsConfig | None = None,
    *,
    pool: "Executor | None" = None,
    cancel: threading.Event | None = None,
    bus: EventBus | None = None,
) -> CampaignReport:
    """Run every chip job and return the campaign report.

    ``workers`` is the total worker-process budget.  ``None`` resolves to
    one chip worker per job, capped at the usable CPU count — unless
    ``config.shard.slices`` is on, in which case it resolves to the full
    CPU count so slice shards can use the cores the chip fan-out leaves
    idle.  At most ``len(jobs)`` processes run chip chains; with slice
    sharding enabled the *surplus* (``workers // chip_workers``) becomes
    each chip's shard worker count (unless ``config.shard.workers`` was
    pinned explicitly), so a single-chip campaign on an 8-core machine
    runs one chip process feeding 8 shard workers.  ``1`` runs in-process.
    ``cache_dir`` enables the on-disk stage cache; stale ``*.tmp`` files
    abandoned by crashed writers are swept at start-up.  Results are
    identical for any worker/shard configuration; the report's chip order
    always follows the job order.

    When several chips compete for pool slots and the cache is enabled,
    jobs are *scheduled* deepest-cache-hit-first (near-warm chips free
    their slot quickly, overlapping the cold chips with the long tail) —
    an execution-order detail that never leaks into the report.

    ``policy`` sets the resilience knobs (QC thresholds, retry budget,
    per-chip timeout).  ``fault_plan`` is a campaign-level plan applied to
    every job that doesn't already carry one, with a per-chip seed
    derived via :meth:`~repro.faults.FaultPlan.for_chip` so siblings draw
    independent fault streams.  A chip whose chain raises a
    :class:`~repro.errors.StageError` is quarantined — the campaign
    still completes and the report is partial, not absent.

    ``obs`` turns on the observability layer
    (:class:`~repro.obs.ObsConfig`): with ``trace=True`` the report
    carries the merged campaign → chip → attempt → stage → kernel span
    tree (:attr:`CampaignReport.trace`, exportable via
    :meth:`CampaignReport.save_trace`); with ``metrics=True`` the merged
    counter/histogram snapshot (:attr:`CampaignReport.metrics`, embedded
    in the report JSON); with ``events=True`` the typed lifecycle event
    stream (:attr:`CampaignReport.events`, ``obs-event/1`` JSONL via
    :meth:`CampaignReport.save_events`) — published live on any ambient
    :class:`~repro.obs.EventBus` so the ``--serve-obs`` exporter can
    stream progress mid-run; ``log_level`` configures JSON-lines logging
    in the parent and every worker.  Observability never changes results
    or cache keys — it only watches.

    The keyword-only seams exist for the serve daemon (multiplexing many
    campaigns through one process), and none of them changes results:

    * ``pool`` — an externally owned :class:`concurrent.futures.Executor`
      to fan chips out on instead of creating (and tearing down) a
      private ``ProcessPoolExecutor``.  The pool is *not* shut down here,
      and its ``max_workers`` is the real parallelism cap; ``workers``
      keeps its reporting/shard-budget meaning.
    * ``cancel`` — a :class:`threading.Event`; once set, chips that have
      not started are quarantined with :class:`JobCancelledError`
      (pool-backed chips via ``Future.cancel``, in-process chips at the
      next stage boundary) while chips already running on a pool worker
      finish normally.  The report is partial, never absent.
    * ``bus`` — an explicit per-campaign :class:`EventBus` that takes
      precedence over the ambient bus.  The ambient bus is a process
      global, so two campaigns running on different threads of one
      daemon would otherwise interleave their streams.  A campaign that
      *owns* its bus (ambient or private) closes it at campaign end
      (:meth:`EventBus.close`) so follow-mode consumers terminate; an
      injected ``bus`` is left open — its owner decides end-of-stream.
    """
    if not jobs:
        raise CampaignError("campaign needs at least one job")
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise CampaignError(f"duplicate chip job names: {sorted(names)}")
    config = config or PipelineConfig()
    cache_dir = str(cache_dir) if cache_dir is not None else None
    if workers is None:
        # With slice sharding on, the budget is the machine, not the job
        # count: the surplus over the chip fan-out goes to shard workers.
        workers = usable_cpus() if config.shard.slices else default_workers(len(jobs))
    if fault_plan is not None:
        jobs = [
            job if job.fault_plan is not None
            else replace(job, fault_plan=fault_plan.for_chip(job.name))
            for job in jobs
        ]
    if obs is not None and obs.log_level is not None:
        configure_logging(obs.log_level)

    chip_workers = max(1, min(workers, len(jobs)))
    if config.shard.slices and config.shard.workers is None:
        config = config.replaced(
            shard=replace(config.shard, workers=max(1, workers // chip_workers))
        )
    if cache_dir is not None:
        StageCache(cache_dir).sweep_stale_tmp()

    campaign_tracer = Tracer() if obs is not None and obs.trace else None
    # Live telemetry plumbing.  The event bus prefers an ambient bus (one
    # activated by a surrounding ObsSession — e.g. the --serve-obs HTTP
    # exporter) so a scraper watching that bus sees campaign progress the
    # moment it happens; otherwise the campaign owns a private bus and the
    # stream is only visible post-hoc via CampaignReport.events.  The same
    # goes for metrics: worker snapshots are folded into any ambient live
    # registry as outcomes arrive, while the report snapshot is still
    # assembled from scratch below (identically to earlier releases).
    campaign_bus: EventBus | None = None
    owns_bus = True
    if bus is not None:
        campaign_bus = bus
        owns_bus = False
    elif obs is not None and obs.events:
        ambient_bus = current_events()
        campaign_bus = ambient_bus if ambient_bus.enabled else EventBus()
    live_metrics: MetricsRegistry | None = None
    report_registry: MetricsRegistry | None = None
    if obs is not None and obs.metrics:
        report_registry = MetricsRegistry()
        ambient_metrics = current_metrics()
        if ambient_metrics.enabled:
            live_metrics = ambient_metrics

    def _note_outcome(outcome: _JobOutcome) -> None:
        if campaign_bus is not None:
            campaign_bus.absorb(outcome.events)
            run = outcome.outcome
            if isinstance(run, ChipRun):
                campaign_bus.emit(
                    "chip_finish", chip=run.name, seconds=run.seconds,
                    cache_hits=run.cache_hits, cache_misses=run.cache_misses,
                )
            else:
                campaign_bus.emit(
                    "chip_quarantined", chip=run.name, stage=run.stage,
                    error_type=run.error_type,
                )
        if live_metrics is not None and outcome.metrics is not None:
            live_metrics.absorb(outcome.metrics)

    if campaign_bus is not None:
        campaign_bus.emit("campaign_start", jobs=len(jobs), workers=workers)
    t0 = time.perf_counter()
    # Submission order: with contended pool slots and a live cache, run
    # the chips with the deepest cache hit first.  Results are reassembled
    # in job order below, so this is invisible outside the schedule.
    order = list(range(len(jobs)))
    if chip_workers > 1 and cache_dir is not None:
        cache = StageCache(cache_dir)
        depths = [cached_depth(job, config, cache, policy) for job in jobs]
        if any(d >= 0 for d in depths):
            order.sort(key=lambda i: (-depths[i], i))
            logger.debug(
                "cache-aware job ordering engaged",
                extra={"fields": {
                    "order": [jobs[i].name for i in order],
                    "depths": depths,
                }},
            )
    payloads = [(jobs[i], config, cache_dir, policy, obs) for i in order]
    rss_sampler = None
    with ExitStack() as scope:
        if campaign_tracer is not None:
            scope.enter_context(campaign_tracer.span(
                "campaign", kind="campaign", jobs=len(jobs), workers=workers,
                shard_workers=config.shard.resolved_workers if config.shard.slices else 0,
            ))
        if report_registry is not None:
            # Periodic process-tree RSS gauge for the whole campaign
            # (parent + pool workers + shard workers), mirrored into any
            # live registry so a mid-run /metrics scrape sees it.
            from repro.perf.rss import RssSampler

            def _record_rss(sample_bytes: int) -> None:
                report_registry.gauge("repro_campaign_rss_bytes").set(sample_bytes)
                if live_metrics is not None:
                    live_metrics.gauge("repro_campaign_rss_bytes").set(sample_bytes)

            rss_sampler = scope.enter_context(
                RssSampler(interval=0.25, on_sample=_record_rss)
            )
        def _cancelled_outcome(job: ChipJob) -> _JobOutcome:
            return _JobOutcome(QuarantineRecord(
                name=job.name,
                stage=None,
                error_type=JobCancelledError.__name__,
                message="campaign cancelled before this chip started",
                seconds=0.0,
            ))

        def _collect_futures(executor) -> None:
            # Submit everything up front, then collect in submission order
            # so each worker's events/metrics join the live stream as its
            # outcome arrives, not after the whole pool drains.  Once
            # ``cancel`` trips, pending futures are cancelled (chips that
            # never started quarantine instantly); chips a worker already
            # picked up run to completion — the daemon's drain contract is
            # "finish or quarantine in-flight work", never kill mid-stage.
            futures = [
                (p, executor.submit(_execute_job, p)) for p in payloads
            ]
            for payload, future in futures:
                if cancel is not None and cancel.is_set() and future.cancel():
                    outcome = _cancelled_outcome(payload[0])
                else:
                    outcome = future.result()
                _note_outcome(outcome)
                outcomes.append(outcome)

        outcomes = []
        if pool is not None:
            _collect_futures(pool)
        elif workers <= 1 or len(jobs) == 1:
            for p in payloads:
                if cancel is not None and cancel.is_set():
                    outcome = _cancelled_outcome(p[0])
                else:
                    outcome = _execute_job(p, cancel)
                _note_outcome(outcome)
                outcomes.append(outcome)
        else:
            from concurrent.futures import ProcessPoolExecutor

            with ProcessPoolExecutor(max_workers=chip_workers) as executor:
                _collect_futures(executor)
    # Campaign-level data-plane backstop for segments published from this
    # process (serial path, or shard submitters that died mid-flight).
    dataplane.reap_leaked("campaign-teardown")
    wall_seconds = time.perf_counter() - t0
    # Back to job order (outcomes arrive in submission order).
    by_job: list[_JobOutcome | None] = [None] * len(outcomes)
    for position, job_index in enumerate(order):
        by_job[job_index] = outcomes[position]
    outcomes = [o for o in by_job if o is not None]
    runs = [o.outcome for o in outcomes]

    trace: list[Span] | None = None
    if campaign_tracer is not None:
        # The campaign root closed when the ExitStack unwound; hang every
        # worker's chip tree under it.
        root = campaign_tracer.finished_spans()[-1]
        trace = merge_spans(root, [s for o in outcomes for s in o.spans])

    metrics: dict | None = None
    if report_registry is not None:
        registry = report_registry
        for run in runs:
            if isinstance(run, ChipRun):
                registry.counter("repro_chips_total", outcome="completed").inc()
            else:
                registry.counter("repro_chips_total", outcome="quarantined").inc()
                registry.counter(
                    "repro_quarantine_total", stage=run.stage or "unknown"
                ).inc()
        registry.gauge("repro_campaign_wall_seconds").set(wall_seconds)
        registry.gauge("repro_campaign_workers").set(workers)
        if config.shard.slices:
            registry.gauge("repro_campaign_shard_workers").set(
                config.shard.resolved_workers
            )
        if rss_sampler is not None and rss_sampler.peak_bytes:
            registry.gauge("repro_campaign_rss_peak_bytes").set(
                rss_sampler.peak_bytes
            )
        metrics = registry.snapshot()
        for outcome in outcomes:
            if outcome.metrics is not None:
                merge_snapshots(metrics, outcome.metrics)
        if live_metrics is not None:
            # The campaign-level counters/gauges (not the worker
            # snapshots — those were absorbed as outcomes arrived).
            live_metrics.absorb(registry.snapshot())

    events: list[Event] | None = None
    if campaign_bus is not None:
        campaign_bus.emit(
            "campaign_finish",
            wall_seconds=wall_seconds,
            completed=sum(1 for r in runs if isinstance(r, ChipRun)),
            quarantined=sum(1 for r in runs if isinstance(r, QuarantineRecord)),
            dropped=campaign_bus.dropped,
        )
        events = campaign_bus.snapshot()
        if owns_bus:
            # End-of-stream for follow-mode consumers (--serve-obs
            # scrapers).  Injected buses stay open: their owner (the
            # serve scheduler) appends job-level events before closing.
            campaign_bus.close()

    return CampaignReport(
        chips={run.name: run for run in runs if isinstance(run, ChipRun)},
        workers=workers,
        wall_seconds=wall_seconds,
        cache_dir=cache_dir,
        quarantined={
            run.name: run for run in runs if isinstance(run, QuarantineRecord)
        },
        trace=trace,
        metrics=metrics,
        events=events,
    )


def campaign_config_provenance(config: PipelineConfig | None = None) -> dict:
    """Stage versions + config token: the provenance record a data bundle
    stores so consumers can tell which pipeline produced it."""
    from repro.runtime.engine import STAGE_VERSIONS
    from repro.runtime.hashing import stable_hash

    config = config or PipelineConfig()
    token = config.cache_token()
    return {
        "stage_versions": dict(STAGE_VERSIONS),
        "pipeline_config": token,
        "pipeline_config_hash": stable_hash(token),
    }


__all__ = [
    "ChipJob",
    "ChipRun",
    "CampaignReport",
    "QuarantineRecord",
    "REPORT_SCHEMA_VERSION",
    "run_campaign",
    "default_workers",
    "campaign_config_provenance",
]
