"""Multi-chip reverse-engineering campaigns.

The paper imaged and reverse engineered its six chips one at a time, each
scan costing >24 h of machine time.  This module is the reproduction's
answer to that serialism: a campaign is a list of :class:`ChipJob`\\ s
(region spec + acquisition parameters), and :func:`run_campaign` executes
every job's imaging → pipeline → RE chain

* **concurrently** — process-pool fan-out over chips (chips share
  nothing, so this parallelises perfectly), with optional thread-level
  chunk parallelism inside the denoise/align stages
  (``PipelineConfig.chunk_workers``);
* **incrementally** — every stage goes through the content-addressed
  :class:`~repro.runtime.cache.StageCache`, so a re-run recomputes only
  the stages whose parameters (or upstream stages) changed;
* **observably** — the returned :class:`CampaignReport` carries per-stage
  wall time, cache disposition, payload bytes and stage notes for every
  chip.

Results are bit-identical for any ``workers`` value: each chip's chain is
deterministic given its job (all randomness is seeded by the acquisition
campaign), and fan-out only changes *where* a chain runs.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.report import render_table
from repro.errors import CampaignError
from repro.imaging.fib import FibSemCampaign
from repro.imaging.sem import SemParameters
from repro.layout.generator import SaRegionSpec
from repro.pipeline.config import PipelineConfig
from repro.reveng.workflow import ReversedChip
from repro.runtime.cache import StageCache
from repro.runtime.engine import StageMetrics, run_chip_stages


@dataclass(frozen=True)
class ChipJob:
    """One chip's acquisition + reverse-engineering work order."""

    name: str
    spec: SaRegionSpec
    campaign: FibSemCampaign = field(default_factory=FibSemCampaign)
    voxel_nm: float = 6.0
    margin_nm: float = 40.0
    #: build a full MAT/SA/MAT strip instead of a bare SA region
    mat_rows: int | None = None
    #: run blind ROI identification (Fig 6) and crop the field of view to
    #: the found region shrunk by this margin; requires ``mat_rows``
    roi_margin_nm: float | None = None
    roi_probe_step_nm: float = 300.0
    x_start_nm: float | None = None
    x_stop_nm: float | None = None
    y_start_nm: float | None = None
    y_stop_nm: float | None = None
    #: attach a ground-truth validation report to the result
    validate: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("chip job needs a name")
        if self.voxel_nm <= 0:
            raise CampaignError("voxel size must be positive")
        if self.roi_margin_nm is not None and self.mat_rows is None:
            raise CampaignError(
                "ROI identification needs the MAT context (set mat_rows)"
            )

    @classmethod
    def synthetic(
        cls,
        name: str,
        topology: str,
        n_pairs: int = 2,
        dwell_time_us: float = 6.0,
        slice_thickness_nm: float = 12.0,
        **kwargs,
    ) -> "ChipJob":
        """A synthetic-vendor job with the demo acquisition parameters."""
        return cls(
            name=name,
            spec=SaRegionSpec(name=name, topology=topology, n_pairs=n_pairs),
            campaign=FibSemCampaign(
                slice_thickness_nm=slice_thickness_nm,
                sem=SemParameters(dwell_time_us=dwell_time_us),
            ),
            **kwargs,
        )

    @classmethod
    def for_chip(cls, chip_id: str, n_pairs: int = 2, **kwargs) -> "ChipJob":
        """A job imaging a Table I chip with its own acquisition plan."""
        from repro.core.hifi import region_spec_for
        from repro.imaging.plan import plan_for

        chip_id = chip_id.upper()
        return cls(
            name=chip_id,
            spec=region_spec_for(chip_id, n_pairs=n_pairs),
            campaign=plan_for(chip_id).campaign,
            **kwargs,
        )


@dataclass
class ChipRun:
    """One chip's outcome plus per-stage instrumentation."""

    name: str
    result: ReversedChip
    stages: list[StageMetrics]
    seconds: float

    @property
    def cache_hits(self) -> int:
        return sum(1 for s in self.stages if s.cache_hit)

    @property
    def cache_misses(self) -> int:
        return sum(1 for s in self.stages if not s.cache_hit)

    @property
    def stages_executed(self) -> list[str]:
        return [s.stage for s in self.stages if not s.cache_hit]


@dataclass
class CampaignReport:
    """Everything :func:`run_campaign` observed, per chip and per stage."""

    chips: dict[str, ChipRun]
    workers: int
    wall_seconds: float
    cache_dir: str | None = None

    def result(self, name: str) -> ReversedChip:
        """The recovered circuit of one chip."""
        try:
            return self.chips[name].result
        except KeyError:
            raise CampaignError(f"no chip named {name!r} in this campaign") from None

    def results(self) -> dict[str, ReversedChip]:
        """All recovered circuits, keyed by job name (job order preserved)."""
        return {name: run.result for name, run in self.chips.items()}

    @property
    def cache_hits(self) -> int:
        return sum(run.cache_hits for run in self.chips.values())

    @property
    def cache_misses(self) -> int:
        return sum(run.cache_misses for run in self.chips.values())

    @property
    def stages_executed(self) -> int:
        return self.cache_misses

    @property
    def cpu_seconds(self) -> float:
        """Summed per-chip wall time (= serial cost of this campaign)."""
        return sum(run.seconds for run in self.chips.values())

    def render(self) -> str:
        """ASCII stage table (chip × stage: disposition, time, bytes)."""
        rows = []
        for name, run in self.chips.items():
            for s in run.stages:
                note = ", ".join(
                    f"{k}={v:.3g}" for k, v in sorted(s.notes.items())
                    if k != "array_bytes"
                )
                rows.append([
                    name, s.stage, s.disposition, f"{s.seconds:7.2f}s",
                    f"{s.payload_bytes / 1e6:8.2f}MB", note[:48],
                ])
            topo = run.result.topology.value if run.result.lane_matches else "-"
            rows.append([name, "(total)", "", f"{run.seconds:7.2f}s", "",
                         f"topology={topo}"])
        title = (
            f"campaign: {len(self.chips)} chips, workers={self.workers}, "
            f"wall {self.wall_seconds:.2f}s, cache {self.cache_hits} hit / "
            f"{self.cache_misses} miss"
        )
        return render_table(
            ["chip", "stage", "cache", "time", "payload", "notes"], rows, title=title
        )


def _execute_job(args: tuple[ChipJob, PipelineConfig, str | None]) -> ChipRun:
    job, config, cache_dir = args
    t0 = time.perf_counter()
    result, metrics = run_chip_stages(job, config, StageCache(cache_dir))
    return ChipRun(
        name=job.name, result=result, stages=metrics,
        seconds=time.perf_counter() - t0,
    )


def default_workers(jobs_count: int) -> int:
    """One worker per chip, capped by the usable CPU count."""
    try:
        cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        cpus = os.cpu_count() or 1
    return max(1, min(jobs_count, cpus))


def run_campaign(
    jobs: list[ChipJob],
    config: PipelineConfig | None = None,
    workers: int | None = None,
    cache_dir: str | Path | None = None,
) -> CampaignReport:
    """Run every chip job and return the campaign report.

    ``workers`` is the number of chip-level processes (``None`` → one per
    job, capped at the CPU count; ``1`` → run in-process).  ``cache_dir``
    enables the on-disk stage cache.  Results are identical for any
    worker count; the report's chip order always follows the job order.
    """
    if not jobs:
        raise CampaignError("campaign needs at least one job")
    names = [job.name for job in jobs]
    if len(set(names)) != len(names):
        raise CampaignError(f"duplicate chip job names: {sorted(names)}")
    config = config or PipelineConfig()
    cache_dir = str(cache_dir) if cache_dir is not None else None
    if workers is None:
        workers = default_workers(len(jobs))

    t0 = time.perf_counter()
    payloads = [(job, config, cache_dir) for job in jobs]
    if workers <= 1 or len(jobs) == 1:
        runs = [_execute_job(p) for p in payloads]
    else:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=min(workers, len(jobs))) as pool:
            runs = list(pool.map(_execute_job, payloads))
    return CampaignReport(
        chips={run.name: run for run in runs},
        workers=workers,
        wall_seconds=time.perf_counter() - t0,
        cache_dir=cache_dir,
    )


def campaign_config_provenance(config: PipelineConfig | None = None) -> dict:
    """Stage versions + config token: the provenance record a data bundle
    stores so consumers can tell which pipeline produced it."""
    from repro.runtime.engine import STAGE_VERSIONS
    from repro.runtime.hashing import stable_hash

    config = config or PipelineConfig()
    token = config.cache_token()
    return {
        "stage_versions": dict(STAGE_VERSIONS),
        "pipeline_config": token,
        "pipeline_config_hash": stable_hash(token),
    }


__all__ = [
    "ChipJob",
    "ChipRun",
    "CampaignReport",
    "run_campaign",
    "default_workers",
    "campaign_config_provenance",
]
