"""Zero-copy data plane: shared-memory transport for shard payloads.

:func:`repro.runtime.shard.shard_map` historically shipped every slice
batch through the pool's pickle pipe — each ndarray serialized on
submit, copied through a socket, deserialized in the worker, and the
whole dance repeated in reverse for the results.  For the imaging →
denoise → QC chain the arrays *are* the payload, so the pickle bytes
dominate the pool round-trip.  This module moves the array bytes out of
band:

* the submitter publishes each large ndarray into a POSIX shared-memory
  segment (:func:`publish`) and pickles only a tiny :class:`ShmHeader`
  (segment name, dtype, shape, order, nbytes, optional digest) in its
  place — the rest of the payload (dataclasses, tuples, scalars) pickles
  exactly as before, which is what makes the fallback for non-array
  payloads automatic;
* the worker attaches the segments and reconstructs **zero-copy
  read-only views** (:func:`loads` with ``materialize=False``) — no
  byte ever crosses the pool pipe twice;
* results flow back the same way: the worker publishes its output
  arrays into fresh segments and transfers their ownership to the
  submitter, which materializes them into ordinary process-local arrays
  (``materialize=True``) and unlinks the segments.

Bit-identity
------------
Materialized arrays are constructed to pickle byte-identically to
arrays that took the in-band pickle path: C-contiguous and
non-contiguous inputs come back C-contiguous (numpy's own pickle
reduction serializes non-contiguous arrays contiguously), Fortran-order
inputs come back Fortran-order, and dtypes are re-interned through
``np.dtype(str)`` singletons by the shard merge's canonicalization.
The ``tests/test_runtime_dataplane.py`` property tests pin this down,
zero-size and non-contiguous arrays included.

Segment lifecycle
-----------------
Every segment is owned by exactly one process at any time and tracked
in that process's :class:`SegmentRegistry`:

1. submitter :func:`publish` → submitter owns the input segments;
2. worker attaches (never owns) and closes after the batch function ran;
3. worker publishes result segments, then *transfers* them (closes its
   mapping, keeps the file) — the returned headers carry ownership back
   with the future;
4. submitter materializes results, then closes **and unlinks** both the
   result segments and the input segments of the completed batch.

``shard_map`` wraps steps 1–4 in ``try/finally`` so quarantined chips,
timed-out campaigns and worker crashes still release everything they
created, and an ``atexit`` hook unlinks whatever a hard teardown left
behind.  Python's own :mod:`multiprocessing.resource_tracker` is
deliberately opted out per segment (see :func:`_untrack`): on POSIX it
registers every attach and unlinks on the *first* registering process's
exit — exactly wrong for segments whose lifetime spans the submitter
and a long-lived pool worker.

Fallback matrix
---------------
==============================  ============================================
payload has no (large) arrays   headers list is empty; plain pickle rides
                                the same code path at the same cost
``SharedMemory`` unavailable    :func:`available` probes once per process;
(no /dev/shm, sealed sandbox)   ``shard_map`` falls back to the pickle
                                plane and counts
                                ``repro_dataplane_fallback_total``
``plan.data_plane="pickle"``    zero-copy plane off by configuration
plan not engaged                serial in-process execution, no transport
==============================  ============================================

Metrics (``repro_dataplane_*``)
-------------------------------
==========================================  ================================
``repro_dataplane_segments_total{dir}``     segments published (``out`` =
                                            submitter→worker, ``back`` =
                                            worker→submitter)
``repro_dataplane_bytes_total{dir}``        array bytes moved out of band
``repro_dataplane_fallback_total{reason}``  zero-copy declined at runtime
``repro_dataplane_reaped_total{where}``     segments reclaimed by a
                                            teardown backstop (should stay
                                            0; nonzero means a finally
                                            path was skipped)
``repro_dataplane_fused_total{stage}``      stages satisfied by a fused
                                            acquire pool trip
==========================================  ================================
"""

from __future__ import annotations

import atexit
import hashlib
import io
import os
import pickle
import secrets
import threading
from dataclasses import dataclass
from typing import Any

import numpy as np

from repro.errors import CampaignError
from repro.obs import current_metrics, get_logger

logger = get_logger("repro.runtime.dataplane")

#: arrays smaller than this stay inline in the pickle stream — below a
#: few pages the segment setup costs more than the copy it saves
DEFAULT_MIN_BYTES = 16 * 1024

#: /dev/shm name prefix; leak checks glob for it
SEGMENT_PREFIX = "repro_dp_"


class DataPlaneError(CampaignError):
    """A shared-memory transport invariant was violated (e.g. digest
    mismatch, truncated segment).  Never raised by the fallback paths."""


def _untrack(shm: Any) -> None:
    """Opt *shm* out of :mod:`multiprocessing.resource_tracker`.

    On POSIX the tracker registers every ``SharedMemory`` — created *or*
    attached — and unlinks whatever is still registered when the first
    registering process exits.  Our segments outlive single processes by
    design (submitter creates, worker attaches, submitter unlinks), so
    tracker ownership would both unlink live segments under the
    submitter and spam "leaked shared_memory" warnings for segments the
    registry below cleans up itself.
    """
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker API drift / non-POSIX
        pass


def _unlink_quiet(shm: Any) -> None:
    """Unlink the segment file without touching the resource tracker.

    ``SharedMemory.unlink()`` sends its *own* unregister message to the
    tracker — a second one after :func:`_untrack`, which makes the
    tracker process log a ``KeyError`` per segment.  Going through
    ``shm_unlink`` directly skips the duplicate; already-gone segments
    are fine (teardown paths overlap by design).
    """
    try:
        from multiprocessing.shared_memory import _posixshmem

        _posixshmem.shm_unlink(shm._name)
    except FileNotFoundError:
        pass
    except (ImportError, AttributeError, OSError):  # pragma: no cover - non-POSIX
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass


_AVAILABLE: bool | None = None


def available() -> bool:
    """Whether POSIX shared memory works here (probed once per process)."""
    global _AVAILABLE
    if _AVAILABLE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=1)
            _untrack(probe)
            probe.close()
            _unlink_quiet(probe)
            _AVAILABLE = True
        except Exception:
            _AVAILABLE = False
    return _AVAILABLE


@dataclass(frozen=True)
class ShmHeader:
    """Out-of-band array descriptor — the bytes live in a shm segment.

    The header is what actually crosses the pool pipe; it must carry
    everything needed to reconstruct the array exactly.  ``dtype`` is
    the canonical ``np.dtype.str`` (endianness-explicit), ``order`` is
    ``"C"`` or ``"F"`` matching numpy's own pickle reduction (Fortran
    flag preserved, non-contiguous flattened to C), and ``digest`` is an
    optional blake2b-128 of the raw bytes — off on the hot path, on in
    the property tests and anywhere transport integrity is suspect.
    """

    segment: str
    dtype: str
    shape: tuple[int, ...]
    order: str
    nbytes: int
    digest: str | None = None


def _digest(raw: bytes | memoryview) -> str:
    return hashlib.blake2b(raw, digest_size=16).hexdigest()


class SegmentRegistry:
    """Ref-counted ledger of the shm segments this process must unlink.

    ``create``/``adopt`` register ownership; ``release`` closes and
    unlinks; ``transfer`` closes the local mapping but keeps the file
    (ownership moves to another process); ``release_all`` is the atexit
    / teardown backstop.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._owned: dict[str, Any] = {}

    def _remember(self, shm: Any) -> None:
        with self._lock:
            self._owned[shm.name] = shm
            n = len(self._owned)
        metrics = current_metrics()
        if metrics.enabled:
            metrics.gauge("repro_dataplane_active_segments").set(float(n))

    def create(self, size: int) -> Any:
        """A fresh owned segment of at least *size* bytes (min 1)."""
        from multiprocessing import shared_memory

        last: Exception | None = None
        for _ in range(8):
            name = f"{SEGMENT_PREFIX}{os.getpid()}_{secrets.token_hex(6)}"
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(1, size)
                )
            except FileExistsError as exc:  # pragma: no cover - token clash
                last = exc
                continue
            _untrack(shm)
            self._remember(shm)
            return shm
        raise DataPlaneError(f"could not allocate shm segment: {last}")

    def attach(self, name: str) -> Any:
        """Attach to an existing segment *without* taking ownership."""
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        return shm

    def adopt(self, name: str) -> Any:
        """Attach *and* take ownership (the transfer handshake's far end)."""
        shm = self.attach(name)
        self._remember(shm)
        return shm

    def transfer(self, name: str) -> None:
        """Hand ownership away: close our mapping, keep the file alive."""
        with self._lock:
            shm = self._owned.pop(name, None)
        if shm is not None:
            _close_quiet(shm)

    def release(self, name: str) -> None:
        """Close and unlink an owned (or adopted-by-name) segment.

        Tolerant of double release and of segments someone else already
        unlinked — teardown paths overlap by design (finally + atexit).
        """
        with self._lock:
            shm = self._owned.pop(name, None)
        if shm is None:
            try:
                shm = self.attach(name)
            except (FileNotFoundError, OSError):
                return
        _close_quiet(shm)
        _unlink_quiet(shm)

    def active(self) -> list[str]:
        with self._lock:
            return sorted(self._owned)

    def release_all(self) -> int:
        """Release every owned segment; returns how many there were."""
        with self._lock:
            leaked = list(self._owned.items())
            self._owned.clear()
        for _, shm in leaked:
            _close_quiet(shm)
            _unlink_quiet(shm)
        return len(leaked)


def _close_quiet(shm: Any) -> None:
    try:
        shm.close()
    except BufferError:
        # A live array still views the mapping (e.g. a worker result
        # aliasing its zero-copy input).  CPython closes the mmap when
        # the last array drops; unlink below works regardless.
        pass
    except OSError:  # pragma: no cover - already closed
        pass


#: the process-wide registry every transport call goes through
_registry = SegmentRegistry()


def process_registry() -> SegmentRegistry:
    return _registry


def reap_leaked(where: str) -> int:
    """Teardown backstop: release anything still owned by this process.

    Called at campaign/job boundaries and registered atexit.  A nonzero
    return means some ``finally`` path was skipped (hard kill mid-batch)
    — counted so leaks are observable, not silent.
    """
    leaked = _registry.release_all()
    if leaked:
        logger.warning(
            "reaped leaked shm segments",
            extra={"fields": {"where": where, "segments": leaked}},
        )
        metrics = current_metrics()
        if metrics.enabled:
            metrics.counter("repro_dataplane_reaped_total", where=where).inc(leaked)
    return leaked


atexit.register(reap_leaked, "atexit")


def publish(
    arr: np.ndarray,
    registry: SegmentRegistry | None = None,
    digest: bool = False,
) -> ShmHeader:
    """Copy *arr*'s bytes into a fresh owned segment; return its header.

    The byte layout mirrors numpy's pickle reduction so
    :func:`fetch` + canonicalization reproduces the in-band pickle
    result exactly: Fortran-contiguous arrays are stored column-major,
    everything else row-major.
    """
    registry = registry or _registry
    order = "F" if (arr.flags.f_contiguous and not arr.flags.c_contiguous) else "C"
    raw = arr.tobytes(order=order)
    shm = registry.create(len(raw))
    shm.buf[: len(raw)] = raw
    return ShmHeader(
        segment=shm.name,
        dtype=arr.dtype.str,
        shape=tuple(int(n) for n in arr.shape),
        order=order,
        nbytes=len(raw),
        digest=_digest(raw) if digest else None,
    )


def _view_segment(header: ShmHeader, shm: Any) -> np.ndarray:
    if len(shm.buf) < header.nbytes:
        raise DataPlaneError(
            f"segment {header.segment} holds {len(shm.buf)} bytes, "
            f"header promises {header.nbytes}"
        )
    arr = np.ndarray(
        header.shape,
        dtype=np.dtype(header.dtype),
        buffer=shm.buf,
        order=header.order,
    )
    if header.digest is not None:
        got = _digest(arr.tobytes(order=header.order))
        if got != header.digest:
            raise DataPlaneError(
                f"segment {header.segment} digest mismatch "
                f"(expected {header.digest}, got {got})"
            )
    arr.flags.writeable = False
    return arr


def fetch_view(
    header: ShmHeader, registry: SegmentRegistry | None = None
) -> tuple[np.ndarray, Any]:
    """Zero-copy read-only view of a published array.

    Returns ``(array, segment)``; the caller must keep the segment
    handle alive as long as the array (and close it afterwards).
    """
    registry = registry or _registry
    shm = registry.attach(header.segment)
    try:
        return _view_segment(header, shm), shm
    except Exception:
        _close_quiet(shm)
        raise


def fetch(
    header: ShmHeader,
    registry: SegmentRegistry | None = None,
    unlink: bool = False,
) -> np.ndarray:
    """Materialize a published array into ordinary process-local memory.

    With ``unlink=True`` the segment is consumed: closed and unlinked
    after the copy (the submitter-side handshake for transferred result
    segments).
    """
    registry = registry or _registry
    shm = registry.attach(header.segment)
    try:
        view = _view_segment(header, shm)
        out = np.empty(header.shape, dtype=np.dtype(header.dtype), order=header.order)
        out[...] = view
        del view
    finally:
        _close_quiet(shm)
        if unlink:
            registry.release(header.segment)
    return out


class _ShmPickler(pickle.Pickler):
    """Pickler that publishes large plain ndarrays out of band."""

    def __init__(
        self,
        file: io.BytesIO,
        registry: SegmentRegistry,
        min_bytes: int,
        digest: bool,
    ) -> None:
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._registry = registry
        self._min_bytes = min_bytes
        self._digest = digest
        self.headers: list[ShmHeader] = []

    def persistent_id(self, obj: Any) -> Any:
        # Exactly plain ndarrays: subclasses (np.memmap, masked arrays)
        # and object dtypes keep their own pickle semantics in band.
        if (
            type(obj) is np.ndarray
            and not obj.dtype.hasobject
            and obj.nbytes >= self._min_bytes
        ):
            header = publish(obj, self._registry, digest=self._digest)
            self.headers.append(header)
            return ("repro-shm", header)
        return None


class _ShmUnpickler(pickle.Unpickler):
    """Unpickler resolving out-of-band headers back into arrays."""

    def __init__(
        self,
        file: io.BytesIO,
        registry: SegmentRegistry,
        materialize: bool,
        unlink: bool,
    ) -> None:
        super().__init__(file)
        self._registry = registry
        self._materialize = materialize
        self._unlink = unlink
        self.headers: list[ShmHeader] = []
        self.segments: list[Any] = []  # attached handles backing views

    def persistent_load(self, pid: Any) -> Any:
        if not (isinstance(pid, tuple) and len(pid) == 2 and pid[0] == "repro-shm"):
            raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")
        header: ShmHeader = pid[1]
        self.headers.append(header)
        if self._materialize:
            return fetch(header, self._registry, unlink=self._unlink)
        arr, shm = fetch_view(header, self._registry)
        self.segments.append(shm)
        return arr


def dumps(
    obj: Any,
    min_bytes: int = DEFAULT_MIN_BYTES,
    digest: bool = False,
    transfer: bool = False,
    registry: SegmentRegistry | None = None,
) -> tuple[bytes, list[ShmHeader]]:
    """Pickle *obj* with large arrays published out of band.

    Returns ``(blob, headers)``.  On any failure mid-serialization every
    segment published so far is released — a half-encoded batch never
    leaks.  ``transfer=True`` hands segment ownership to whoever decodes
    the blob (the worker→submitter result direction).
    """
    registry = registry or _registry
    buf = io.BytesIO()
    pickler = _ShmPickler(buf, registry, min_bytes, digest)
    try:
        pickler.dump(obj)
    except Exception:
        for header in pickler.headers:
            registry.release(header.segment)
        raise
    if transfer:
        for header in pickler.headers:
            registry.transfer(header.segment)
    return buf.getvalue(), pickler.headers


def loads(
    blob: bytes,
    materialize: bool = True,
    unlink: bool = False,
    registry: SegmentRegistry | None = None,
) -> tuple[Any, list[Any]]:
    """Decode a :func:`dumps` blob.

    ``materialize=True`` copies arrays into process-local memory
    (``unlink=True`` additionally consumes the segments — the submitter
    side); ``materialize=False`` returns zero-copy read-only views plus
    the attached segment handles the caller must close (the worker
    side).
    """
    registry = registry or _registry
    unpickler = _ShmUnpickler(io.BytesIO(blob), registry, materialize, unlink)
    try:
        obj = unpickler.load()
    except Exception:
        for shm in unpickler.segments:
            _close_quiet(shm)
        raise
    return obj, unpickler.segments


def release_headers(
    headers: list[ShmHeader], registry: SegmentRegistry | None = None
) -> None:
    """Unlink every segment named by *headers* (idempotent, tolerant)."""
    registry = registry or _registry
    for header in headers:
        registry.release(header.segment)


def close_segments(segments: list[Any]) -> None:
    """Close attached (non-owned) segment handles; never unlinks."""
    for shm in segments:
        _close_quiet(shm)


def _count_transport(direction: str, headers: list[ShmHeader]) -> None:
    if not headers:
        return
    metrics = current_metrics()
    if metrics.enabled:
        metrics.counter("repro_dataplane_segments_total", dir=direction).inc(
            len(headers)
        )
        metrics.counter("repro_dataplane_bytes_total", dir=direction).inc(
            sum(h.nbytes for h in headers)
        )


def shm_batch_call(
    fn: Any, blob: bytes, min_bytes: int
) -> tuple[bytes, list[ShmHeader]]:
    """Pool entry point for a zero-copy shard batch (runs in workers).

    Decodes the submitter's blob into zero-copy views, applies the batch
    function, publishes the results into fresh segments and transfers
    them back with the returned headers.  Input segments are only ever
    closed here — the submitter owns and unlinks them.
    """
    items, attached = loads(blob, materialize=False)
    try:
        results = fn(items)
        del items
        out_blob, headers = dumps(results, min_bytes=min_bytes, transfer=True)
        del results
        return out_blob, headers
    finally:
        close_segments(attached)
