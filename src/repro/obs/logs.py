"""Structured (JSON-lines) logging with bound campaign context.

Thin sugar over stdlib :mod:`logging` — no new logging framework, just:

* :func:`get_logger` — namespaced ``repro.*`` loggers, so one call to
  :func:`configure_logging` governs the whole package;
* :func:`bind` — a context manager attaching ``chip`` / ``stage`` /
  ``attempt`` / ``slice`` (or any) fields to every record emitted inside
  it, across nested calls, via a contextvar;
* :class:`JsonFormatter` — one JSON object per line: timestamp, level,
  logger, message, the bound context, and any per-call fields passed as
  ``logger.warning("...", extra={"fields": {...}})``;
* :func:`configure_logging` — attach (once) a stream handler with the
  JSON formatter to the ``repro`` logger at a given level.

Without :func:`configure_logging` the package stays quiet below
WARNING (stdlib's default last-resort handler), so library users see
failures but no chatter.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from contextvars import ContextVar
from typing import Any, IO, Iterator

from contextlib import contextmanager

_BOUND: ContextVar[tuple[tuple[str, Any], ...]] = ContextVar(
    "repro_obs_log_context", default=()
)

#: Marker attribute so configure_logging stays idempotent.
_HANDLER_FLAG = "_repro_obs_handler"


def get_logger(name: str) -> logging.Logger:
    """A logger under the ``repro`` namespace (``repro.runtime.engine``...)."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


@contextmanager
def bind(**fields: Any) -> Iterator[None]:
    """Bind *fields* onto every log record emitted inside the block."""
    token = _BOUND.set(_BOUND.get() + tuple(fields.items()))
    try:
        yield
    finally:
        _BOUND.reset(token)


def bound_context() -> dict[str, Any]:
    """The currently bound fields (inner bindings override outer)."""
    return dict(_BOUND.get())


class JsonFormatter(logging.Formatter):
    """One JSON object per record: stable keys, bound context inline."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        payload.update(bound_context())
        fields = getattr(record, "fields", None)
        if isinstance(fields, dict):
            payload.update(fields)
        if record.exc_info and record.exc_info[0] is not None:
            payload["exc_type"] = record.exc_info[0].__name__
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, sort_keys=True, default=str)


def configure_logging(
    level: int | str = "INFO",
    stream: IO[str] | None = None,
) -> logging.Handler:
    """Attach the JSON handler to the ``repro`` logger (idempotent).

    Returns the handler (new or existing) so callers can detach it or
    retarget its stream.  Campaign workers call this with the campaign's
    ``--log-level`` so fresh pool processes log the same way.
    """
    logger = logging.getLogger("repro")
    if isinstance(level, str):
        level = logging.getLevelName(level.upper())
        if not isinstance(level, int):
            raise ValueError(f"unknown log level {level!r}")
    logger.setLevel(level)
    for handler in logger.handlers:
        if getattr(handler, _HANDLER_FLAG, False):
            handler.setLevel(level)
            if stream is not None and isinstance(handler, logging.StreamHandler):
                handler.setStream(stream)  # type: ignore[arg-type]
            return handler
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter())
    handler.setLevel(level)
    setattr(handler, _HANDLER_FLAG, True)
    logger.addHandler(handler)
    logger.propagate = False
    return handler


def reset_logging() -> None:
    """Detach handlers installed by :func:`configure_logging` (tests)."""
    logger = logging.getLogger("repro")
    for handler in list(logger.handlers):
        if getattr(handler, _HANDLER_FLAG, False):
            logger.removeHandler(handler)
    logger.propagate = True


__all__ = [
    "JsonFormatter",
    "bind",
    "bound_context",
    "configure_logging",
    "get_logger",
    "reset_logging",
]
