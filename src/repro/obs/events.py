"""Bounded, drop-counting progress event bus for live campaign telemetry.

Spans and metrics (PR 4) are *post-mortem*: they are collected per
worker and only become visible once the campaign report is assembled.
An :class:`Event` is the live complement — a small, typed, timestamped
lifecycle record (``campaign_start``, ``chip_finish``, ``stage_start``,
``cache_hit``, ``shard_backpressure``, ...) published the moment it
happens, so a scraper or the ``/events`` HTTP endpoint can stream
progress while the campaign is still running.

Design constraints, inherited from :mod:`repro.obs.trace`:

* **Disabled must be free.**  Instrumented code calls
  ``current_events().emit(...)`` unconditionally; with no bus active
  that hits a shared no-op singleton — no clock read, no allocation.
  Events only *observe*: results and cache keys are bit-identical with
  the bus on or off.
* **Bounded, never blocking.**  The bus is a fixed-capacity ring: when
  full, the *oldest* event is dropped and a drop counter incremented.
  Producers never block, so a stalled (or absent) consumer cannot slow
  a campaign down.  Consumers see the gap through ``dropped`` and the
  strictly increasing per-bus ``seq``.
* **Process-pool friendly.**  Each campaign worker records events into
  its own bus; the finished list crosses the pool boundary with the
  chip result (plain picklable dataclasses) and is folded into the
  campaign bus by :meth:`EventBus.absorb` — the analogue of
  ``merge_spans`` — which re-sequences foreign events while preserving
  their wall timestamps, pids and payloads.

Serialization is versioned JSONL (one event dict per line, schema tag
``obs-event/1`` on every line) so logs stay greppable and the ``/events``
endpoint can tail them without framing.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable

#: Schema tag stamped on every serialized event line.
EVENT_SCHEMA = "obs-event/1"

#: Known lifecycle event kinds (descriptive, not enforced — the bus
#: carries any kind, but exporters and ``obs analyze`` know these).
EVENT_KINDS = (
    "campaign_start",
    "campaign_finish",
    "chip_start",
    "chip_finish",
    "chip_quarantined",
    "attempt_start",
    "attempt_finish",
    "attempt_retry",
    "stage_start",
    "stage_finish",
    "cache_hit",
    "cache_miss",
    "shard_backpressure",
)

#: Default ring capacity.  A 2-chip smoke campaign emits ~60 events; a
#: hundred-chip catalog run a few thousand — 8192 keeps hours of
#: progress without unbounded growth.
DEFAULT_CAPACITY = 8192


@dataclass
class Event:
    """One lifecycle event (picklable, JSON-able)."""

    kind: str
    ts_s: float  #: wall-anchored seconds, same clock as Span.start_s
    seq: int  #: strictly increasing per bus; re-assigned by absorb()
    pid: int
    fields: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": EVENT_SCHEMA,
            "kind": self.kind,
            "ts_s": self.ts_s,
            "seq": self.seq,
            "pid": self.pid,
            "fields": dict(self.fields),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Event":
        schema = data.get("schema", EVENT_SCHEMA)
        if schema != EVENT_SCHEMA:
            raise ValueError(f"unsupported event schema {schema!r}")
        return cls(
            kind=str(data["kind"]),
            ts_s=float(data["ts_s"]),
            seq=int(data["seq"]),
            pid=int(data.get("pid", 0)),
            fields=dict(data.get("fields", {})),
        )


class NoopEventBus:
    """Stand-in when the event bus is off: emit costs nothing."""

    enabled = False
    dropped = 0
    closed = False

    def emit(self, kind: str, **fields: Any) -> None:
        pass

    def close(self) -> None:
        pass


class EventBus:
    """Fixed-capacity, thread-safe progress event ring.

    ``emit`` never blocks: at capacity the oldest event is evicted and
    ``dropped`` incremented.  ``seq`` increases monotonically across
    drops, so a consumer tailing with ``drain(since_seq=...)`` can
    detect gaps.  ``wait`` parks a consumer until a newer event arrives
    (the seam the chunked ``/events?follow=1`` endpoint uses).
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("event bus capacity must be >= 1")
        self.capacity = int(capacity)
        self.pid = os.getpid()
        self.dropped = 0
        self._seq = 0
        self._closed = False
        self._ring: deque[Event] = deque()
        self._cond = threading.Condition()
        self._epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()
        #: optional tap called (outside no lock ordering guarantees)
        #: with each appended Event; used by the serve layer to persist
        #: events to disk as they happen.
        self.on_event: Callable[[Event], None] | None = None

    def _wall(self, perf_now: float) -> float:
        return self._epoch_wall + (perf_now - self._epoch_perf)

    def _append(self, event: Event) -> None:
        tap = None
        with self._cond:
            self._closed = False
            self._seq += 1
            event.seq = self._seq
            if len(self._ring) >= self.capacity:
                self._ring.popleft()
                self.dropped += 1
            self._ring.append(event)
            self._cond.notify_all()
            tap = self.on_event
        if tap is not None:
            tap(event)

    def emit(self, kind: str, **fields: Any) -> None:
        """Publish one event; never blocks, never raises on overflow."""
        self._append(
            Event(
                kind=kind,
                ts_s=self._wall(time.perf_counter()),
                seq=0,  # assigned under the lock in _append
                pid=self.pid,
                fields=fields,
            )
        )

    def absorb(self, events: Iterable[Event]) -> None:
        """Fold foreign (worker) events into this bus.

        The analogue of ``merge_spans``: timestamps, pids, kinds and
        payloads are preserved; only ``seq`` is re-assigned so the
        campaign bus stays a single monotonic stream.
        """
        for event in events:
            self._append(
                Event(
                    kind=event.kind,
                    ts_s=event.ts_s,
                    seq=0,
                    pid=event.pid,
                    fields=dict(event.fields),
                )
            )

    @property
    def last_seq(self) -> int:
        with self._cond:
            return self._seq

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def close(self) -> None:
        """Mark end-of-stream and wake every parked ``wait`` caller.

        After ``close()`` a consumer's ``wait`` returns immediately (with
        whatever newer events are buffered, possibly none), which is how
        ``/events?follow=1`` streams learn the run is over instead of
        timing out poll after poll.  The marker is soft: a later ``emit``
        on the same bus (a new run reusing it) reopens the stream.
        """
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def drain(self, since_seq: int = -1) -> list[Event]:
        """Events still buffered with ``seq > since_seq``, oldest first."""
        with self._cond:
            return [e for e in self._ring if e.seq > since_seq]

    def wait(self, since_seq: int, timeout: float | None = None) -> list[Event]:
        """Block until an event newer than *since_seq* exists (or timeout)."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        with self._cond:
            while self._seq <= since_seq:
                if self._closed:
                    return []
                remaining = None
                if deadline is not None:
                    remaining = deadline - time.perf_counter()
                    if remaining <= 0:
                        return []
                self._cond.wait(remaining)
            return [e for e in self._ring if e.seq > since_seq]

    def snapshot(self) -> list[Event]:
        """Every event still buffered, oldest first."""
        with self._cond:
            return list(self._ring)


# --- serialization ----------------------------------------------------------


def events_to_jsonl(events: Iterable[Event]) -> str:
    """One JSON object per line (schema-tagged), in the given order."""
    return "\n".join(json.dumps(e.to_dict(), sort_keys=True) for e in events)


def events_from_jsonl(text: str) -> list[Event]:
    return [
        Event.from_dict(json.loads(line)) for line in text.splitlines() if line.strip()
    ]


# --- active-bus plumbing (mirrors trace._ACTIVE / metrics._ACTIVE) ---------

_NOOP = NoopEventBus()
#: Process-wide active bus.  A module global (not a contextvar) for the
#: same reason as the tracer's: chunk worker threads inside
#: denoise/align must see the bus their chip activated.
_ACTIVE: EventBus | None = None


def current_events() -> EventBus | NoopEventBus:
    """The active event bus, or the shared no-op when events are off."""
    return _ACTIVE if _ACTIVE is not None else _NOOP


class use_events:
    """Context manager activating *bus*, restoring the previous one."""

    def __init__(self, bus: EventBus | None) -> None:
        self._bus = bus
        self._prev: EventBus | None = None

    def __enter__(self) -> EventBus | None:
        global _ACTIVE
        self._prev = _ACTIVE
        _ACTIVE = self._bus
        return self._bus

    def __exit__(self, *exc: Any) -> bool:
        global _ACTIVE
        _ACTIVE = self._prev
        return False


__all__ = [
    "EVENT_SCHEMA",
    "EVENT_KINDS",
    "DEFAULT_CAPACITY",
    "Event",
    "EventBus",
    "NoopEventBus",
    "current_events",
    "use_events",
    "events_to_jsonl",
    "events_from_jsonl",
]
