"""Counters, gauges and histograms for campaign instrumentation.

A tiny, dependency-free metrics surface shaped like the Prometheus
client's, tuned for the campaign runtime's constraints:

* **Disabled must be free** — instrumented code calls
  ``current_metrics().counter(...).inc()`` unconditionally; when no
  registry is active those resolve to shared no-op singletons.
* **Process-pool friendly** — each campaign worker fills its own
  :class:`MetricsRegistry`; the JSON-able :meth:`~MetricsRegistry.
  snapshot` crosses the pool boundary and :func:`merge_snapshots` folds
  worker snapshots into the campaign's (counters and histograms add,
  gauges keep the last write).

Metric identity is ``name`` plus sorted ``key=value`` labels, encoded as
``name{k=v,k2=v2}`` in snapshots so merged output stays a flat dict.
"""

from __future__ import annotations

import threading
from typing import Any

#: Default histogram bucket upper bounds (seconds); the catch-all +inf
#: bucket is implicit (the final counts entry).
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 30.0, 60.0)


def metric_key(name: str, labels: dict[str, Any]) -> str:
    """The snapshot key: ``name`` or ``name{k=v,...}`` with sorted labels."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """A value that goes up and down; last write wins."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Fixed-bound bucketed distribution (cumulative counts not kept:
    ``counts[i]`` is the number of observations in bucket *i*, with the
    final entry counting everything above the last bound)."""

    __slots__ = ("bounds", "counts", "sum", "count")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        self.bounds = tuple(bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        i = 0
        for bound in self.bounds:
            if value <= bound:
                break
            i += 1
        self.counts[i] += 1
        self.sum += value
        self.count += 1


class _NoopInstrument:
    """Shared stand-in for every instrument when metrics are off."""

    __slots__ = ()

    def inc(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NOOP_INSTRUMENT = _NoopInstrument()


class NoopMetrics:
    """Stand-in registry when metrics are off."""

    enabled = False

    def counter(self, name: str, **labels: Any) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def gauge(self, name: str, **labels: Any) -> _NoopInstrument:
        return _NOOP_INSTRUMENT

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS, **labels: Any
    ) -> _NoopInstrument:
        return _NOOP_INSTRUMENT


class MetricsRegistry:
    """One process's (or one chip job's) metric store."""

    enabled = True

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: Any) -> Counter:
        key = metric_key(name, labels)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
        return metric

    def gauge(self, name: str, **labels: Any) -> Gauge:
        key = metric_key(name, labels)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
        return metric

    def histogram(
        self, name: str, bounds: tuple[float, ...] = DEFAULT_BUCKETS, **labels: Any
    ) -> Histogram:
        key = metric_key(name, labels)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(bounds)
        return metric

    def absorb(self, snapshot: dict[str, Any]) -> None:
        """Fold a worker's :meth:`snapshot` into this live registry.

        The in-memory twin of :func:`merge_snapshots`, used by the
        campaign loop to keep the parent's registry (and any live
        ``/metrics`` scrape of it) current as pool outcomes arrive:
        counters and matching-bounds histograms add, gauges take the
        snapshot's value, bounds mismatches replace wholesale.

        Snapshot keys are already ``metric_key``-encoded strings, so
        they index the internal dicts directly.
        """
        with self._lock:
            for key, value in snapshot.get("counters", {}).items():
                metric = self._counters.get(key)
                if metric is None:
                    metric = self._counters[key] = Counter()
                metric.value += value
            for key, value in snapshot.get("gauges", {}).items():
                gauge = self._gauges.get(key)
                if gauge is None:
                    gauge = self._gauges[key] = Gauge()
                gauge.value = float(value)
            for key, hist in snapshot.get("histograms", {}).items():
                bounds = tuple(float(b) for b in hist["bounds"])
                mine = self._histograms.get(key)
                if mine is None or mine.bounds != bounds:
                    mine = self._histograms[key] = Histogram(bounds)
                mine.counts = [a + b for a, b in zip(mine.counts, hist["counts"])]
                mine.sum += hist["sum"]
                mine.count += hist["count"]

    def snapshot(self) -> dict[str, Any]:
        """A JSON-able, mergeable view of everything recorded so far."""
        with self._lock:
            return {
                "counters": {k: c.value for k, c in sorted(self._counters.items())},
                "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
                "histograms": {
                    k: {
                        "bounds": list(h.bounds),
                        "counts": list(h.counts),
                        "sum": h.sum,
                        "count": h.count,
                    }
                    for k, h in sorted(self._histograms.items())
                },
            }


def empty_snapshot() -> dict[str, Any]:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def merge_snapshots(base: dict[str, Any], other: dict[str, Any]) -> dict[str, Any]:
    """Fold *other* into *base* (in place) and return *base*.

    Counters and histograms add; gauges take *other*'s value (last
    writer wins — workers finish after the campaign sets its own).
    """
    for key, value in other.get("counters", {}).items():
        base["counters"][key] = base["counters"].get(key, 0.0) + value
    for key, value in other.get("gauges", {}).items():
        base["gauges"][key] = value
    for key, hist in other.get("histograms", {}).items():
        mine = base["histograms"].get(key)
        if mine is None or list(mine["bounds"]) != list(hist["bounds"]):
            base["histograms"][key] = {
                "bounds": list(hist["bounds"]),
                "counts": list(hist["counts"]),
                "sum": hist["sum"],
                "count": hist["count"],
            }
        else:
            mine["counts"] = [a + b for a, b in zip(mine["counts"], hist["counts"])]
            mine["sum"] += hist["sum"]
            mine["count"] += hist["count"]
    return base


_NOOP = NoopMetrics()
#: Process-wide active registry (module global for the same reason as
#: the tracer's: chunk worker threads must see their chip's registry).
_ACTIVE: MetricsRegistry | None = None


def current_metrics() -> MetricsRegistry | NoopMetrics:
    """The active registry, or the shared no-op when metrics are off."""
    return _ACTIVE if _ACTIVE is not None else _NOOP


class use_metrics:
    """Context manager activating *registry*, restoring the previous."""

    def __init__(self, registry: MetricsRegistry | None) -> None:
        self._registry = registry
        self._prev: MetricsRegistry | None = None

    def __enter__(self) -> MetricsRegistry | None:
        global _ACTIVE
        self._prev = _ACTIVE
        _ACTIVE = self._registry
        return self._registry

    def __exit__(self, *exc: Any) -> bool:
        global _ACTIVE
        _ACTIVE = self._prev
        return False


__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopMetrics",
    "current_metrics",
    "use_metrics",
    "metric_key",
    "empty_snapshot",
    "merge_snapshots",
]
