"""Hierarchical span tracing for campaign runs.

A *span* is one timed unit of work — the whole campaign, one chip's
chain, one acquisition attempt, one pipeline stage, one kernel call —
with a parent link, so a campaign run produces a tree::

    campaign
    └── chip fab-classic
        ├── stage acquire
        │   ├── attempt 0
        │   │   └── kernel acquire_stack
        │   └── kernel qc_stack
        ├── stage denoise
        │   └── kernel denoise_stack
        └── ...

Design constraints (they shape everything below):

* **Disabled must be free.**  Instrumented code calls
  ``current_tracer().span(...)`` unconditionally; with no tracer active
  that returns a shared, stateless null context manager — no timestamp
  is read, no object allocated, no attribute stored.  Results are
  bit-identical with tracing on or off because spans only *observe*.
* **Process-pool friendly.**  Each campaign worker records spans into
  its own :class:`Tracer`; the finished :class:`Span` list is a plain
  picklable dataclass list that crosses the pool boundary with the chip
  result and is merged (re-parented under the campaign root) by
  :func:`merge_spans`.
* **Wall-anchored, perf-resolved clocks.**  Span timestamps are
  ``epoch_wall + (perf_counter() - epoch_perf)``: comparable across
  processes (wall anchor) with ``perf_counter`` resolution inside one.

Exports: JSONL (one span dict per line) and the Chrome ``trace_event``
JSON that ``chrome://tracing`` and https://ui.perfetto.dev load
directly, plus a terminal tree summary (:func:`render_trace_summary`).
"""

from __future__ import annotations

import json
import os
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Any, Iterable

#: Span kinds, outermost first.  Purely descriptive — nesting is defined
#: by parent links, not by kind — but exporters use it for colouring.
SPAN_KINDS = ("campaign", "chip", "attempt", "stage", "shard", "kernel")


@dataclass
class Span:
    """One finished timed unit of work (picklable, JSON-able)."""

    name: str
    kind: str
    start_s: float  #: wall-anchored seconds (see module docstring)
    duration_s: float
    span_id: str
    parent_id: str | None
    pid: int
    attrs: dict[str, Any] = field(default_factory=dict)
    status: str = "ok"  #: "ok" or "error"

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "pid": self.pid,
            "attrs": dict(self.attrs),
            "status": self.status,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Span":
        return cls(
            name=str(data["name"]),
            kind=str(data.get("kind", "stage")),
            start_s=float(data["start_s"]),
            duration_s=float(data["duration_s"]),
            span_id=str(data["span_id"]),
            parent_id=data.get("parent_id"),
            pid=int(data.get("pid", 0)),
            attrs=dict(data.get("attrs", {})),
            status=str(data.get("status", "ok")),
        )


class _NullSpanHandle:
    """The do-nothing span: shared, stateless, reentrant."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanHandle":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpanHandle()


class NoopTracer:
    """Stand-in when tracing is off; every span is the shared null span."""

    enabled = False

    def span(self, name: str, kind: str = "stage", **attrs: Any) -> _NullSpanHandle:
        return _NULL_SPAN


class _SpanHandle:
    """A live span; finishes (and records itself) on ``__exit__``."""

    __slots__ = ("_tracer", "_span", "_t0", "_token")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (last write per key wins)."""
        self._span.attrs.update(attrs)

    def __enter__(self) -> "_SpanHandle":
        self._token = self._tracer._stack.set(
            self._tracer._stack.get() + (self._span.span_id,)
        )
        self._t0 = time.perf_counter()
        self._span.start_s = self._tracer._wall(self._t0)
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self._span.duration_s = time.perf_counter() - self._t0
        if exc_type is not None:
            self._span.status = "error"
            self._span.attrs.setdefault("error_type", exc_type.__name__)
        self._tracer._stack.reset(self._token)
        self._tracer._record(self._span)
        return False


#: Distinguishes tracers created in the same process so span ids never
#: collide even when every chip job builds a fresh tracer.
_TRACER_SEQ = 0
_TRACER_SEQ_LOCK = threading.Lock()


class Tracer:
    """Collects spans for one process (or one chip job).

    ``span()`` is a context manager; nesting follows the call structure
    through a contextvar stack.  Recording is thread-safe, but a span
    parents onto the innermost open span *of its own thread* — chunk
    worker threads inside denoise/align do not open spans, so in
    practice every span lands under the chip chain that opened it.
    """

    enabled = True

    def __init__(self) -> None:
        global _TRACER_SEQ
        with _TRACER_SEQ_LOCK:
            _TRACER_SEQ += 1
            self._seq = _TRACER_SEQ
        self.pid = os.getpid()
        self.spans: list[Span] = []
        self._counter = 0
        self._lock = threading.Lock()
        self._stack: ContextVar[tuple[str, ...]] = ContextVar(
            f"repro_obs_span_stack_{self._seq}", default=()
        )
        self._epoch_wall = time.time()
        self._epoch_perf = time.perf_counter()

    def _wall(self, perf_now: float) -> float:
        return self._epoch_wall + (perf_now - self._epoch_perf)

    def _next_id(self) -> str:
        with self._lock:
            self._counter += 1
            return f"{self.pid:x}-{self._seq:x}-{self._counter:x}"

    def _record(self, span: Span) -> None:
        with self._lock:
            self.spans.append(span)

    def span(self, name: str, kind: str = "stage", **attrs: Any) -> _SpanHandle:
        """Open a span; attributes may be passed now or via ``.set()``."""
        stack = self._stack.get()
        span = Span(
            name=name,
            kind=kind,
            start_s=0.0,
            duration_s=0.0,
            span_id=self._next_id(),
            parent_id=stack[-1] if stack else None,
            pid=self.pid,
            attrs=dict(attrs),
        )
        return _SpanHandle(self, span)

    def finished_spans(self) -> list[Span]:
        """Spans recorded so far, in completion order."""
        with self._lock:
            return list(self.spans)


_NOOP = NoopTracer()
#: The process-wide active tracer.  A module global (not a contextvar):
#: worker threads inside denoise/align must see the tracer their chip
#: activated, and one process never runs two chips concurrently.
_ACTIVE: Tracer | None = None


def current_tracer() -> Tracer | NoopTracer:
    """The active tracer, or the shared no-op when tracing is off."""
    return _ACTIVE if _ACTIVE is not None else _NOOP


class use_tracer:
    """Context manager activating *tracer*, restoring the previous one."""

    def __init__(self, tracer: Tracer | None) -> None:
        self._tracer = tracer
        self._prev: Tracer | None = None

    def __enter__(self) -> Tracer | None:
        global _ACTIVE
        self._prev = _ACTIVE
        _ACTIVE = self._tracer
        return self._tracer

    def __exit__(self, *exc: Any) -> bool:
        global _ACTIVE
        _ACTIVE = self._prev
        return False


def merge_spans(root: Span, children: Iterable[Span]) -> list[Span]:
    """Re-parent orphan spans (``parent_id is None``) under *root*.

    This is how per-process chip traces join the campaign trace: each
    worker's chip span is a root in its own tracer; the campaign owns the
    one true root.
    """
    merged = [root]
    for span in children:
        if span.parent_id is None and span.span_id != root.span_id:
            span.parent_id = root.span_id
        merged.append(span)
    return merged


# --- exporters -------------------------------------------------------------


def to_jsonl(spans: Iterable[Span]) -> str:
    """One JSON object per line, in the given order."""
    return "\n".join(json.dumps(s.to_dict(), sort_keys=True) for s in spans)


def from_jsonl(text: str) -> list[Span]:
    return [Span.from_dict(json.loads(line)) for line in text.splitlines() if line.strip()]


def to_chrome_trace(spans: Iterable[Span]) -> dict[str, Any]:
    """The Chrome ``trace_event`` JSON object.

    Complete ("ph": "X") events; one lane per worker pid.  Load the file
    in ``chrome://tracing`` or https://ui.perfetto.dev.
    """
    events = []
    for span in spans:
        events.append({
            "ph": "X",
            "name": span.name,
            "cat": span.kind,
            "ts": round(span.start_s * 1e6, 3),
            "dur": max(round(span.duration_s * 1e6, 3), 0.001),
            "pid": span.pid,
            "tid": span.pid,
            "args": {
                **span.attrs,
                "span_id": span.span_id,
                "parent_id": span.parent_id,
                "status": span.status,
            },
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def span_tree(spans: Iterable[Span]) -> dict[str | None, list[Span]]:
    """Children-by-parent-id index, each child list in start order."""
    tree: dict[str | None, list[Span]] = {}
    for span in spans:
        tree.setdefault(span.parent_id, []).append(span)
    for children in tree.values():
        children.sort(key=lambda s: s.start_s)
    return tree


def render_trace_summary(spans: Iterable[Span], max_depth: int = 5) -> str:
    """A flamegraph-style text tree: name, kind, duration, % of parent."""
    spans = list(spans)
    if not spans:
        return "(empty trace)"
    tree = span_tree(spans)
    lines: list[str] = []

    def _walk(span: Span, depth: int, parent_s: float | None) -> None:
        if depth >= max_depth:
            return
        pct = ""
        if parent_s and parent_s > 0:
            pct = f"  {span.duration_s / parent_s * 100.0:5.1f}%"
        flag = "" if span.status == "ok" else "  [ERROR]"
        lines.append(
            f"{'  ' * depth}{span.name:<{max(28 - 2 * depth, 8)}} "
            f"[{span.kind}]  {span.duration_s * 1e3:10.2f} ms{pct}{flag}"
        )
        for child in tree.get(span.span_id, []):
            _walk(child, depth + 1, span.duration_s)

    for root in tree.get(None, []):
        _walk(root, 0, None)
    return "\n".join(lines)


__all__ = [
    "SPAN_KINDS",
    "Span",
    "Tracer",
    "NoopTracer",
    "current_tracer",
    "use_tracer",
    "merge_spans",
    "to_jsonl",
    "from_jsonl",
    "to_chrome_trace",
    "span_tree",
    "render_trace_summary",
]
