"""Prometheus and OTLP export for the observability layer, plus the
background HTTP exposition server behind ``--serve-obs``.

Three stdlib-only pieces:

* :func:`to_prometheus` — renders a :meth:`MetricsRegistry.snapshot`
  dict in the Prometheus text exposition format (``# TYPE`` headers,
  sorted labels, histograms as cumulative ``_bucket``/``_sum``/
  ``_count`` series with an explicit ``+Inf`` bucket);
* :func:`to_otlp` — renders a span list as OTLP-JSON (the
  ``resourceSpans``/``scopeSpans`` shape OTLP/HTTP collectors accept),
  with deterministic trace/span ids derived from the internal span ids
  and nanosecond string timestamps;
* :class:`ObsServer` — a daemon-thread ``http.server`` exposing
  ``/metrics`` (Prometheus), ``/healthz`` (JSON state), ``/events``
  (``obs-event/1`` JSONL tail, optionally chunked follow mode) and
  ``/trace`` (OTLP-JSON), fed by live references to a metrics
  registry / event bus / tracer, or by saved artefacts re-served via
  ``python -m repro obs serve``.

The server binds loopback by default and never touches the campaign's
hot path: scrapes read lock-protected snapshots, producers never wait
for consumers (the bus drops oldest on overflow).
"""

from __future__ import annotations

import hashlib
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Iterable
from urllib.parse import parse_qs, urlparse

from repro.obs.events import EventBus
from repro.obs.trace import Span

__all__ = [
    "to_prometheus",
    "to_otlp",
    "parse_metric_key",
    "ObsServer",
]


def parse_metric_key(key: str) -> tuple[str, dict[str, str]]:
    """Invert :func:`repro.obs.metrics.metric_key`.

    ``"repro_stage_seconds{stage=align}"`` → ``("repro_stage_seconds",
    {"stage": "align"})``.  Label *values* may contain anything except
    ``,`` and ``=`` (the encoder writes raw ``k=v`` pairs), which holds
    for every metric the runtime emits.
    """
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for pair in inner[:-1].split(","):
        if not pair:
            continue
        k, _, v = pair.partition("=")
        labels[k] = v
    return name, labels


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_str(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{k}="{_escape_label_value(str(labels[k]))}"' for k in sorted(labels)
    )
    return "{" + inner + "}"


def to_prometheus(snapshot: dict[str, Any]) -> str:
    """Prometheus text exposition (version 0.0.4) of a metrics snapshot.

    Series are grouped by metric name with one ``# TYPE`` line each;
    histogram bucket counts are emitted *cumulatively* with ``le``
    labels (the internal snapshot stores per-bucket counts).
    """
    lines: list[str] = []
    by_name: dict[str, list[tuple[dict[str, str], float]]] = {}

    for key, value in snapshot.get("counters", {}).items():
        name, labels = parse_metric_key(key)
        by_name.setdefault(name, []).append((labels, value))
    for name in sorted(by_name):
        lines.append(f"# TYPE {name} counter")
        for labels, value in by_name[name]:
            lines.append(f"{name}{_label_str(labels)} {_format_value(value)}")

    gauges: dict[str, list[tuple[dict[str, str], float]]] = {}
    for key, value in snapshot.get("gauges", {}).items():
        name, labels = parse_metric_key(key)
        gauges.setdefault(name, []).append((labels, value))
    for name in sorted(gauges):
        lines.append(f"# TYPE {name} gauge")
        for labels, value in gauges[name]:
            lines.append(f"{name}{_label_str(labels)} {_format_value(value)}")

    hists: dict[str, list[tuple[dict[str, str], dict[str, Any]]]] = {}
    for key, hist in snapshot.get("histograms", {}).items():
        name, labels = parse_metric_key(key)
        hists.setdefault(name, []).append((labels, hist))
    for name in sorted(hists):
        lines.append(f"# TYPE {name} histogram")
        for labels, hist in hists[name]:
            cumulative = 0
            for bound, count in zip(hist["bounds"], hist["counts"]):
                cumulative += count
                bucket_labels = dict(labels)
                bucket_labels["le"] = _format_value(float(bound))
                lines.append(
                    f"{name}_bucket{_label_str(bucket_labels)} {cumulative}"
                )
            bucket_labels = dict(labels)
            bucket_labels["le"] = "+Inf"
            lines.append(
                f"{name}_bucket{_label_str(bucket_labels)} {hist['count']}"
            )
            lines.append(
                f"{name}_sum{_label_str(labels)} {_format_value(hist['sum'])}"
            )
            lines.append(f"{name}_count{_label_str(labels)} {hist['count']}")
    return "\n".join(lines) + "\n"


# --- OTLP-JSON span export --------------------------------------------------


def _otlp_id(internal_id: str | None, nbytes: int) -> str:
    """A deterministic OTLP hex id derived from an internal span id."""
    if internal_id is None:
        return "0" * (nbytes * 2)
    return hashlib.blake2b(internal_id.encode(), digest_size=nbytes).hexdigest()


def _otlp_value(value: Any) -> dict[str, Any]:
    if isinstance(value, bool):
        return {"boolValue": value}
    if isinstance(value, int):
        return {"intValue": str(value)}
    if isinstance(value, float):
        return {"doubleValue": value}
    return {"stringValue": str(value)}


def to_otlp(spans: Iterable[Span], service_name: str = "repro") -> dict[str, Any]:
    """OTLP-JSON (``ExportTraceServiceRequest`` shape) of a span list.

    One resource + one scope; every span of one export shares a trace id
    (derived from the root span's id, or the first span when no root is
    present).  Ids are stable across exports of the same trace.
    """
    spans = list(spans)
    root_id = next((s.span_id for s in spans if s.parent_id is None), None)
    if root_id is None and spans:
        root_id = spans[0].span_id
    trace_id = _otlp_id(root_id, 16)
    otlp_spans = []
    for span in spans:
        start_ns = int(span.start_s * 1e9)
        end_ns = int((span.start_s + span.duration_s) * 1e9)
        attributes = [
            {"key": "repro.kind", "value": _otlp_value(span.kind)},
            {"key": "repro.pid", "value": _otlp_value(span.pid)},
        ]
        for key, value in sorted(span.attrs.items()):
            attributes.append({"key": key, "value": _otlp_value(value)})
        otlp_spans.append({
            "traceId": trace_id,
            "spanId": _otlp_id(span.span_id, 8),
            "parentSpanId": _otlp_id(span.parent_id, 8) if span.parent_id else "",
            "name": span.name,
            "kind": 1,  # SPAN_KIND_INTERNAL
            "startTimeUnixNano": str(start_ns),
            "endTimeUnixNano": str(end_ns),
            "attributes": attributes,
            "status": {"code": 2 if span.status == "error" else 1},
        })
    return {
        "resourceSpans": [{
            "resource": {
                "attributes": [{
                    "key": "service.name",
                    "value": {"stringValue": service_name},
                }],
            },
            "scopeSpans": [{
                "scope": {"name": "repro.obs", "version": "1"},
                "spans": otlp_spans,
            }],
        }],
    }


# --- the exposition server --------------------------------------------------


class ObsServer:
    """Background-thread HTTP exposition of live (or saved) telemetry.

    Endpoints:

    ``/healthz``
        JSON: ``{"status": "ok", "state": ..., "events_seq": ...,
        "events_dropped": ...}``.  ``state`` starts at ``"running"`` and
        flips to ``"done"`` via :meth:`finish` — scrapers (the CI smoke
        job) poll it to know the final snapshot is complete.
    ``/metrics``
        Prometheus text exposition of the current snapshot.
    ``/events``
        ``obs-event/1`` JSONL of the buffered event stream.  Query
        params: ``since=SEQ`` tails events newer than SEQ;
        ``follow=1`` switches to chunked transfer and streams new
        events until the server finishes (or ``timeout_s`` elapses).
    ``/trace``
        OTLP-JSON of the spans collected so far.

    The server takes *callables* for metrics and spans so the caller
    decides what "current" means (a live registry's ``snapshot``, a
    merged report dict, a loaded JSONL file).  It binds 127.0.0.1 by
    default; ``port=0`` picks a free port (see :attr:`port`).
    """

    def __init__(
        self,
        port: int = 0,
        host: str = "127.0.0.1",
        metrics_fn: Callable[[], dict[str, Any]] | None = None,
        spans_fn: Callable[[], list[Span]] | None = None,
        bus: EventBus | None = None,
    ) -> None:
        self.metrics_fn = metrics_fn
        self.spans_fn = spans_fn
        self.bus = bus
        self._state = "running"
        self._state_lock = threading.Lock()
        obs_server = self

        class _Handler(BaseHTTPRequestHandler):
            # Silence the default stderr request log.
            def log_message(self, fmt: str, *args: Any) -> None:
                pass

            def _send(
                self, body: bytes, content_type: str, status: int = 200
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                parsed = urlparse(self.path)
                try:
                    if parsed.path == "/healthz":
                        self._send(
                            json.dumps(obs_server.health()).encode(),
                            "application/json",
                        )
                    elif parsed.path == "/metrics":
                        self._send(
                            obs_server.render_metrics().encode(),
                            "text/plain; version=0.0.4; charset=utf-8",
                        )
                    elif parsed.path == "/events":
                        self._handle_events(parse_qs(parsed.query))
                    elif parsed.path == "/trace":
                        self._send(
                            json.dumps(obs_server.render_trace()).encode(),
                            "application/json",
                        )
                    else:
                        self._send(b"not found\n", "text/plain", status=404)
                except BrokenPipeError:  # client went away mid-write
                    pass

            def _handle_events(self, query: dict[str, list[str]]) -> None:
                since = int(query.get("since", ["-1"])[0])
                follow = query.get("follow", ["0"])[0] in ("1", "true")
                if not follow:
                    body = obs_server.render_events(since).encode()
                    self._send(body, "application/jsonl")
                    return
                timeout_s = float(query.get("timeout_s", ["30"])[0])
                self.send_response(200)
                self.send_header("Content-Type", "application/jsonl")
                self.send_header("Transfer-Encoding", "chunked")
                self.end_headers()

                def write_chunk(data: bytes) -> None:
                    self.wfile.write(f"{len(data):x}\r\n".encode())
                    self.wfile.write(data + b"\r\n")
                    self.wfile.flush()

                for line in obs_server.follow_events(since, timeout_s):
                    write_chunk(line.encode() + b"\n")
                self.wfile.write(b"0\r\n\r\n")

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread: threading.Thread | None = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # --- content builders (also used headless by tests/CLI) ---------------

    def health(self) -> dict[str, Any]:
        with self._state_lock:
            state = self._state
        payload: dict[str, Any] = {"status": "ok", "state": state}
        if self.bus is not None:
            payload["events_seq"] = self.bus.last_seq
            payload["events_dropped"] = self.bus.dropped
        return payload

    def render_metrics(self) -> str:
        if self.metrics_fn is None:
            return "\n"
        return to_prometheus(self.metrics_fn())

    def render_events(self, since: int = -1) -> str:
        if self.bus is None:
            return ""
        lines = [
            json.dumps(e.to_dict(), sort_keys=True)
            for e in self.bus.drain(since)
        ]
        return "\n".join(lines) + ("\n" if lines else "")

    def render_trace(self) -> dict[str, Any]:
        spans = self.spans_fn() if self.spans_fn is not None else []
        return to_otlp(spans)

    def follow_events(self, since: int, timeout_s: float):
        """Yield event JSON lines until the server finishes or times out."""
        import time as _time

        deadline = _time.perf_counter() + timeout_s
        seq = since
        while True:
            remaining = deadline - _time.perf_counter()
            if remaining <= 0 or self.bus is None:
                return
            fresh = self.bus.wait(seq, timeout=min(remaining, 0.25))
            for event in fresh:
                seq = max(seq, event.seq)
                yield json.dumps(event.to_dict(), sort_keys=True)
            if not fresh and getattr(self.bus, "closed", False):
                return  # end-of-stream marker: the run is over
            with self._state_lock:
                if self._state in ("done", "failed") and not fresh:
                    return

    # --- lifecycle ---------------------------------------------------------

    def start(self) -> "ObsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-server",
            daemon=True,
        )
        self._thread.start()
        return self

    def finish(self, state: str = "done") -> None:
        """Flip ``/healthz`` state (the server keeps serving).

        ``state`` defaults to ``"done"``; a crashed run passes
        ``"failed"`` so scrapers polling during the linger window see an
        explicit terminal state instead of an abrupt connection reset.
        """
        if state not in ("done", "failed"):
            raise ValueError(f"finish state must be 'done' or 'failed', got {state!r}")
        with self._state_lock:
            self._state = state

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "ObsServer":
        return self.start()

    def __exit__(self, *exc: Any) -> bool:
        self.stop()
        return False
