"""Campaign-wide observability: tracing, metrics, structured logging.

``repro.obs`` is the dependency-free (stdlib-only) instrumentation layer
under the campaign runtime.  Three pillars:

* :mod:`repro.obs.trace` — hierarchical span tracing (campaign → chip →
  attempt → stage → kernel) with Chrome ``trace_event`` / JSONL export;
* :mod:`repro.obs.metrics` — counters, gauges and fixed-bucket
  histograms, snapshotted into the campaign report and merged across
  pool workers;
* :mod:`repro.obs.logs` — JSON-lines logging with bound
  ``chip/stage/attempt/slice`` context.

The contract shared by all three: **disabled observability is a no-op**.
Instrumented code calls ``current_tracer()`` / ``current_metrics()`` /
module loggers unconditionally; with nothing activated those hit shared
no-op singletons, read no clock, and allocate nothing — results are
bit-identical (same cache keys, same arrays) with observability on or
off, and the ``repro.perf`` ``obs-overhead`` probe holds the disabled
path under 2 % of the pipeline probe.

Turn it on per campaign::

    from repro import ObsConfig, run_campaign

    report = run_campaign(jobs, obs=ObsConfig(trace=True, metrics=True))
    report.trace          # merged Span list (chrome trace via save_trace)
    report.metrics        # merged metrics snapshot (also in to_json())

or ad hoc around any instrumented code::

    from repro.obs import ObsSession

    with ObsSession(ObsConfig(trace=True)) as session:
        ...
    spans = session.spans()
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.obs.events import (
    DEFAULT_CAPACITY,
    EVENT_KINDS,
    EVENT_SCHEMA,
    Event,
    EventBus,
    NoopEventBus,
    current_events,
    events_from_jsonl,
    events_to_jsonl,
    use_events,
)
from repro.obs.logs import (
    JsonFormatter,
    bind,
    bound_context,
    configure_logging,
    get_logger,
    reset_logging,
)
from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NoopMetrics,
    current_metrics,
    empty_snapshot,
    merge_snapshots,
    metric_key,
    use_metrics,
)
from repro.obs.trace import (
    SPAN_KINDS,
    NoopTracer,
    Span,
    Tracer,
    current_tracer,
    from_jsonl,
    merge_spans,
    render_trace_summary,
    span_tree,
    to_chrome_trace,
    to_jsonl,
    use_tracer,
)


@dataclass(frozen=True)
class ObsConfig:
    """What to observe during a campaign (picklable; crosses the pool).

    Everything defaults to off, which is exactly the pre-observability
    behaviour: no tracer, no registry, loggers quiet below WARNING.
    """

    trace: bool = False
    metrics: bool = False
    #: publish typed lifecycle events (obs-event/1) on a bounded bus.
    events: bool = False
    #: configure JSON logging at this level in every worker ("DEBUG",
    #: "INFO", ...); ``None`` leaves logging untouched.
    log_level: str | None = None

    @property
    def enabled(self) -> bool:
        return (
            self.trace or self.metrics or self.events or self.log_level is not None
        )


class ObsSession:
    """Activates (tracer, registry, logging) per an :class:`ObsConfig`.

    Reentrant-safe: the previously active tracer/registry are restored
    on exit, so the serial campaign path can nest a per-chip session
    inside the campaign's own.
    """

    def __init__(self, config: ObsConfig) -> None:
        self.config = config
        self.tracer: Tracer | None = Tracer() if config.trace else None
        self.registry: MetricsRegistry | None = (
            MetricsRegistry() if config.metrics else None
        )
        self.bus: EventBus | None = EventBus() if config.events else None
        self._tracer_cm: use_tracer | None = None
        self._metrics_cm: use_metrics | None = None
        self._events_cm: use_events | None = None

    def __enter__(self) -> "ObsSession":
        if self.config.log_level is not None:
            configure_logging(self.config.log_level)
        if self.tracer is not None:
            self._tracer_cm = use_tracer(self.tracer)
            self._tracer_cm.__enter__()
        if self.registry is not None:
            self._metrics_cm = use_metrics(self.registry)
            self._metrics_cm.__enter__()
        if self.bus is not None:
            self._events_cm = use_events(self.bus)
            self._events_cm.__enter__()
        return self

    def __exit__(self, *exc: Any) -> bool:
        if self._events_cm is not None:
            self._events_cm.__exit__(*exc)
            self._events_cm = None
        if self._metrics_cm is not None:
            self._metrics_cm.__exit__(*exc)
            self._metrics_cm = None
        if self._tracer_cm is not None:
            self._tracer_cm.__exit__(*exc)
            self._tracer_cm = None
        return False

    def spans(self) -> list[Span]:
        return self.tracer.finished_spans() if self.tracer is not None else []

    def metrics_snapshot(self) -> dict[str, Any]:
        return self.registry.snapshot() if self.registry is not None else empty_snapshot()

    def events(self) -> list[Event]:
        return self.bus.snapshot() if self.bus is not None else []


#: ns-per-pixel histogram bounds for the kernel metrics (``repro.perf``
#: reports the same unit, so trace numbers line up with bench numbers).
NS_PER_PX_BUCKETS = (1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 5000.0)


class kernel_scope:
    """Span + ns/px metric around one kernel call, free when disabled.

    ::

        with kernel_scope("align_stack", pixels=n_px, slices=n) as scope:
            ...
            scope.set(corrections=c)   # extra span attributes

    Opens a ``kind="kernel"`` span on the active tracer and, when a
    metrics registry is active, observes ``repro_kernel_ns_per_px`` and
    ``repro_kernel_pixels_total`` on exit.  With neither active the
    enter/exit path touches no clock and allocates nothing beyond the
    scope object itself.
    """

    __slots__ = ("_name", "_pixels", "_attrs", "_span", "_metrics", "_t0")

    def __init__(self, name: str, pixels: int = 0, **attrs: Any) -> None:
        self._name = name
        self._pixels = pixels
        self._attrs = attrs

    def set_pixels(self, pixels: int) -> None:
        """Set the pixel count when it is only known mid-kernel."""
        self._pixels = pixels

    def set(self, **attrs: Any) -> None:
        self._span.set(**attrs)

    def __enter__(self) -> "kernel_scope":
        self._span = current_tracer().span(self._name, kind="kernel", **self._attrs)
        self._span.__enter__()
        self._metrics = current_metrics()
        if self._metrics.enabled:
            import time

            self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc: Any) -> bool:
        if self._metrics.enabled:
            import time

            seconds = time.perf_counter() - self._t0
            self._metrics.histogram(
                "repro_kernel_ns_per_px", bounds=NS_PER_PX_BUCKETS, kernel=self._name
            ).observe(seconds / max(self._pixels, 1) * 1e9)
            self._metrics.counter(
                "repro_kernel_pixels_total", kernel=self._name
            ).inc(self._pixels)
        self._span.__exit__(*exc)
        return False


__all__ = [
    "ObsConfig",
    "ObsSession",
    "NS_PER_PX_BUCKETS",
    "kernel_scope",
    # trace
    "SPAN_KINDS",
    "Span",
    "Tracer",
    "NoopTracer",
    "current_tracer",
    "use_tracer",
    "merge_spans",
    "to_jsonl",
    "from_jsonl",
    "to_chrome_trace",
    "span_tree",
    "render_trace_summary",
    # metrics
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NoopMetrics",
    "current_metrics",
    "use_metrics",
    "metric_key",
    "empty_snapshot",
    "merge_snapshots",
    # events
    "EVENT_SCHEMA",
    "EVENT_KINDS",
    "DEFAULT_CAPACITY",
    "Event",
    "EventBus",
    "NoopEventBus",
    "current_events",
    "use_events",
    "events_to_jsonl",
    "events_from_jsonl",
    # logs
    "JsonFormatter",
    "bind",
    "bound_context",
    "configure_logging",
    "get_logger",
    "reset_logging",
]
