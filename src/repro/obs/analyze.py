"""Offline analytics over saved campaign traces.

``python -m repro obs analyze`` loads the span JSONL a traced campaign
wrote (``CampaignReport.save_trace("trace.jsonl")``) and answers the
questions a flamegraph answers, without the browser:

* **critical path** — the chain of slowest children from the campaign
  root down to a leaf: the spans that bound the wall clock, with each
  hop's share of its parent;
* **attribution** — total wall seconds per stage and per kernel across
  every chip, the first place to look before touching an optimisation;
* **cache efficiency** — hit/skip/run counts per stage straight from
  the stage spans' ``disposition`` attributes, plus the seconds the
  executed (``run``) stages cost — i.e. what a warm cache would save;
* **diff** — two traces, per-stage wall-time totals side by side with
  absolute and relative deltas: the regression report for "this PR made
  alignment slower".

Everything operates on plain :class:`~repro.obs.trace.Span` lists, so
the same functions serve the CLI, tests and ad-hoc notebook use.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable

from repro.core.report import render_table
from repro.errors import ReproError
from repro.obs.trace import Span, from_jsonl, span_tree

__all__ = [
    "load_trace",
    "critical_path",
    "stage_attribution",
    "kernel_attribution",
    "cache_efficiency",
    "diff_stage_seconds",
    "render_analysis",
    "render_diff",
]


def load_trace(path: str | Path) -> list[Span]:
    """Load a span-JSONL trace file (the ``save_trace(*.jsonl)`` format)."""
    target = Path(path)
    if not target.exists():
        raise ReproError(f"trace file not found: {target}")
    spans = from_jsonl(target.read_text())
    if not spans:
        raise ReproError(f"trace file is empty: {target}")
    return spans


def critical_path(spans: Iterable[Span]) -> list[Span]:
    """Root-to-leaf chain of slowest children.

    Starts at the longest root span and at every level descends into the
    child with the largest duration — the path whose spans bound the
    campaign wall clock.
    """
    spans = list(spans)
    tree = span_tree(spans)
    roots = tree.get(None, [])
    if not roots:
        return []
    path = [max(roots, key=lambda s: s.duration_s)]
    while True:
        children = tree.get(path[-1].span_id, [])
        if not children:
            return path
        path.append(max(children, key=lambda s: s.duration_s))


def _totals_by_name(spans: Iterable[Span], kind: str) -> dict[str, dict[str, float]]:
    totals: dict[str, dict[str, float]] = {}
    for span in spans:
        if span.kind != kind:
            continue
        entry = totals.setdefault(span.name, {"seconds": 0.0, "count": 0.0})
        entry["seconds"] += span.duration_s
        entry["count"] += 1
    return totals


def stage_attribution(spans: Iterable[Span]) -> dict[str, dict[str, float]]:
    """``{stage: {"seconds": total, "count": n}}`` over all chips."""
    return _totals_by_name(spans, "stage")


def kernel_attribution(spans: Iterable[Span]) -> dict[str, dict[str, float]]:
    """``{kernel: {"seconds": total, "count": n}}`` over all chips."""
    return _totals_by_name(spans, "kernel")


def cache_efficiency(spans: Iterable[Span]) -> dict[str, dict[str, float]]:
    """Per-stage cache dispositions and the wall cost of the misses.

    Reads the ``disposition`` attribute the executor sets on every stage
    span (``run`` / ``hit`` / ``skip``); ``run_seconds`` is the summed
    duration of the executed stages — the upper bound on what a warm
    cache saves.
    """
    report: dict[str, dict[str, float]] = {}
    for span in spans:
        if span.kind != "stage":
            continue
        disposition = span.attrs.get("disposition")
        if disposition is None:
            continue
        entry = report.setdefault(
            span.name, {"run": 0.0, "hit": 0.0, "skip": 0.0, "run_seconds": 0.0}
        )
        if disposition in entry:
            entry[disposition] += 1
        if disposition == "run":
            entry["run_seconds"] += span.duration_s
    return report


def diff_stage_seconds(
    a: Iterable[Span], b: Iterable[Span]
) -> dict[str, dict[str, float]]:
    """Per-stage wall-time totals of two traces, with deltas.

    ``{stage: {"a_seconds", "b_seconds", "delta_seconds", "ratio"}}``;
    a stage missing from one trace contributes 0.0 there, and ``ratio``
    is ``b/a`` (``inf`` for a stage new in B).
    """
    a_totals = stage_attribution(a)
    b_totals = stage_attribution(b)
    diff: dict[str, dict[str, float]] = {}
    for stage in sorted(set(a_totals) | set(b_totals)):
        a_s = a_totals.get(stage, {}).get("seconds", 0.0)
        b_s = b_totals.get(stage, {}).get("seconds", 0.0)
        diff[stage] = {
            "a_seconds": a_s,
            "b_seconds": b_s,
            "delta_seconds": b_s - a_s,
            "ratio": (b_s / a_s) if a_s > 0 else float("inf"),
        }
    return diff


def render_analysis(spans: Iterable[Span]) -> str:
    """The full text report: critical path, attribution, cache efficiency."""
    spans = list(spans)
    sections: list[str] = []

    path = critical_path(spans)
    rows = []
    for i, span in enumerate(path):
        parent_s = path[i - 1].duration_s if i > 0 else None
        share = f"{span.duration_s / parent_s * 100.0:5.1f}%" if parent_s else ""
        rows.append([
            "  " * i + span.name, span.kind, f"{span.duration_s * 1e3:10.2f} ms",
            share,
        ])
    sections.append(render_table(
        ["span", "kind", "duration", "of parent"], rows, title="critical path"
    ))

    for title, totals in (
        ("per-stage attribution", stage_attribution(spans)),
        ("per-kernel attribution", kernel_attribution(spans)),
    ):
        grand = sum(t["seconds"] for t in totals.values()) or 1.0
        rows = [
            [name, int(t["count"]), f"{t['seconds'] * 1e3:10.2f} ms",
             f"{t['seconds'] / grand * 100.0:5.1f}%"]
            for name, t in sorted(
                totals.items(), key=lambda kv: -kv[1]["seconds"]
            )
        ]
        sections.append(render_table(
            ["name", "calls", "total", "share"], rows, title=title
        ))

    cache = cache_efficiency(spans)
    if cache:
        rows = [
            [stage, int(e["run"]), int(e["hit"]), int(e["skip"]),
             f"{e['run_seconds'] * 1e3:10.2f} ms"]
            for stage, e in sorted(
                cache.items(), key=lambda kv: -kv[1]["run_seconds"]
            )
        ]
        sections.append(render_table(
            ["stage", "run", "hit", "skip", "run cost"], rows,
            title="cache efficiency",
        ))
    return "\n\n".join(sections)


def render_diff(a: Iterable[Span], b: Iterable[Span]) -> str:
    """The two-trace per-stage delta table."""
    diff = diff_stage_seconds(a, b)
    rows = []
    for stage, d in sorted(diff.items(), key=lambda kv: -abs(kv[1]["delta_seconds"])):
        ratio = "new" if d["ratio"] == float("inf") else f"{d['ratio']:.2f}x"
        rows.append([
            stage,
            f"{d['a_seconds'] * 1e3:10.2f} ms",
            f"{d['b_seconds'] * 1e3:10.2f} ms",
            f"{d['delta_seconds'] * 1e3:+10.2f} ms",
            ratio,
        ])
    total_a = sum(d["a_seconds"] for d in diff.values())
    total_b = sum(d["b_seconds"] for d in diff.values())
    rows.append([
        "(total)", f"{total_a * 1e3:10.2f} ms", f"{total_b * 1e3:10.2f} ms",
        f"{(total_b - total_a) * 1e3:+10.2f} ms",
        f"{total_b / total_a:.2f}x" if total_a > 0 else "-",
    ])
    return render_table(
        ["stage", "A", "B", "delta", "ratio"], rows,
        title="per-stage wall-time diff (B vs A)",
    )
