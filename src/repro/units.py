"""Length, area and time units used throughout the library.

The canonical length unit is the **nanometre** (nm): it is the natural unit
for the features HiFi-DRAM measures (gate lengths of tens of nm, bitline
pitches below 100 nm) and lets every geometric quantity stay an ``int`` or a
small ``float`` without exponent noise.  Areas are therefore nm², and we
provide converters for the µm² and mm² figures the paper quotes (region
areas, die sizes).

The canonical time unit for the analog solver is the **nanosecond** and the
canonical electrical units are volts, amperes and farads (SI); see
:mod:`repro.analog.solver` for the integration conventions.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Length
# ---------------------------------------------------------------------------

NM: float = 1.0
UM: float = 1_000.0
MM: float = 1_000_000.0

#: Number of nm² in one µm².
UM2: float = UM * UM
#: Number of nm² in one mm².
MM2: float = MM * MM


def nm(value: float) -> float:
    """Return *value* nanometres expressed in canonical units (identity)."""
    return value * NM


def um(value: float) -> float:
    """Return *value* micrometres expressed in nanometres."""
    return value * UM


def mm(value: float) -> float:
    """Return *value* millimetres expressed in nanometres."""
    return value * MM


def to_um(value_nm: float) -> float:
    """Convert a length in nanometres to micrometres."""
    return value_nm / UM


def to_mm(value_nm: float) -> float:
    """Convert a length in nanometres to millimetres."""
    return value_nm / MM


def um2(value: float) -> float:
    """Return *value* µm² expressed in nm²."""
    return value * UM2


def mm2(value: float) -> float:
    """Return *value* mm² expressed in nm²."""
    return value * MM2


def to_um2(value_nm2: float) -> float:
    """Convert an area in nm² to µm²."""
    return value_nm2 / UM2


def to_mm2(value_nm2: float) -> float:
    """Convert an area in nm² to mm²."""
    return value_nm2 / MM2


# ---------------------------------------------------------------------------
# Formatting helpers
# ---------------------------------------------------------------------------


def fmt_nm(value_nm: float, digits: int = 1) -> str:
    """Format a length with an adaptive unit (nm / µm / mm).

    >>> fmt_nm(42.0)
    '42.0 nm'
    >>> fmt_nm(2500.0)
    '2.5 um'
    """
    if abs(value_nm) >= MM:
        return f"{value_nm / MM:.{digits}f} mm"
    if abs(value_nm) >= UM:
        return f"{value_nm / UM:.{digits}f} um"
    return f"{value_nm:.{digits}f} nm"


def fmt_area(value_nm2: float, digits: int = 2) -> str:
    """Format an area with an adaptive unit (nm² / µm² / mm²)."""
    if abs(value_nm2) >= MM2:
        return f"{value_nm2 / MM2:.{digits}f} mm^2"
    if abs(value_nm2) >= UM2:
        return f"{value_nm2 / UM2:.{digits}f} um^2"
    return f"{value_nm2:.{digits}f} nm^2"


def fmt_ratio(value: float, digits: int = 2) -> str:
    """Format a multiplicative factor the way the paper does (``175x``)."""
    return f"{value:.{digits}f}x"


def fmt_percent(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string (``0.57`` → ``'57.0%'``)."""
    return f"{value * 100.0:.{digits}f}%"


# ---------------------------------------------------------------------------
# Time (analog simulation)
# ---------------------------------------------------------------------------

NS: float = 1.0
US: float = 1_000.0
PS: float = 0.001


def ns(value: float) -> float:
    """Return *value* nanoseconds in canonical time units (identity)."""
    return value * NS


def us_time(value: float) -> float:
    """Return *value* microseconds in nanoseconds."""
    return value * US


def ps(value: float) -> float:
    """Return *value* picoseconds in nanoseconds."""
    return value * PS
