"""Deterministic, seed-driven acquisition fault injection.

Real FIB/SEM campaigns are messy: detectors saturate or black out, the
stage jumps, the mill overshoots a face, focus drifts for a few frames,
and whole slices are simply lost.  The paper's post-processing pipeline
exists *because* of those defects — so a reproduction that only ever sees
clean-path data cannot exercise the interesting half of the system.

This module injects those defects into :func:`repro.imaging.fib.
acquire_stack` in a way that is **reproducible bit-for-bit**:

* a :class:`FaultPlan` holds a seed plus per-fault rates;
* a :class:`FaultInjector` derives one RNG stream *per slice* from
  ``(plan seed, attempt, slice index)`` — completely separate from the
  acquisition's own RNG, so a plan with every rate at 0 produces output
  bit-identical to running with no plan at all;
* re-acquiring a stack (``attempt + 1``) re-rolls the faults while the
  clean image content stays identical — exactly what a retry gets from
  real hardware;
* every injected defect is recorded as a :class:`FaultEvent`, which
  travels on the :class:`~repro.imaging.fib.SliceStack` and into the
  campaign's quarantine/telemetry records.

The fault taxonomy (one knob each, all rates are per-slice
probabilities):

=================  ======================================================
``drop_rate``      slice lost: the frame is replaced by detector noise
                   around the black level (caught by the QC blackout /
                   spread gates)
``saturation_rate``  detector saturation: the frame is pushed into the
                   white clip rail (QC saturation gate)
``blackout_rate``  detector blackout: the frame collapses toward 0 with
                   only the noise floor left (QC blackout gate)
``drift_spike_rate``  stage jump: a one-off ``drift_spike_px`` kick to
                   the drift random walk (QC drift-step gate)
``overshoot_rate``  milling overshoot: the mill eats one extra slice of
                   material, so the imaged face is a face *deeper* than
                   intended (content defect; recorded, not QC-gated)
``blur_rate``      focus loss: a Gaussian blur **burst** covering
                   ``blur_burst_len`` consecutive slices (QC sharpness
                   gate)
=================  ======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any

import numpy as np
from scipy import ndimage

from repro.errors import CampaignError
from repro.obs import current_metrics, get_logger

logger = get_logger("repro.faults")

#: FaultPlan rate fields, in the (fixed) order their RNG draws happen.
_RATE_FIELDS = (
    "drop_rate",
    "saturation_rate",
    "blackout_rate",
    "drift_spike_rate",
    "overshoot_rate",
    "blur_rate",
)

#: short CLI spec aliases → FaultPlan field names
_SPEC_ALIASES = {
    "drop": "drop_rate",
    "saturate": "saturation_rate",
    "saturation": "saturation_rate",
    "blackout": "blackout_rate",
    "drift": "drift_spike_rate",
    "drift_spike": "drift_spike_rate",
    "spike_px": "drift_spike_px",
    "overshoot": "overshoot_rate",
    "blur": "blur_rate",
    "blur_sigma": "blur_sigma_px",
    "burst": "blur_burst_len",
    "seed": "seed",
}


@dataclass(frozen=True)
class FaultPlan:
    """Seeded fault rates for one chip's acquisition.

    All ``*_rate`` fields are per-slice probabilities in [0, 1].  A plan
    whose rates are all zero is inert: the acquisition output is
    bit-identical to running without a plan (the injector never touches
    the acquisition RNG).
    """

    seed: int = 0
    drop_rate: float = 0.0
    saturation_rate: float = 0.0
    blackout_rate: float = 0.0
    drift_spike_rate: float = 0.0
    #: magnitude of an injected stage jump, px (applied to x; half to z)
    drift_spike_px: float = 9.0
    overshoot_rate: float = 0.0
    blur_rate: float = 0.0
    blur_sigma_px: float = 2.5
    #: consecutive slices covered by one focus-loss burst
    blur_burst_len: int = 3

    def __post_init__(self) -> None:
        for name in _RATE_FIELDS:
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise CampaignError(f"fault rate {name}={rate} outside [0, 1]")
        if self.drift_spike_px < 0:
            raise CampaignError("drift_spike_px must be >= 0")
        if self.blur_sigma_px < 0:
            raise CampaignError("blur_sigma_px must be >= 0")
        if self.blur_burst_len < 1:
            raise CampaignError("blur_burst_len must be >= 1")

    @property
    def active(self) -> bool:
        """True when any fault can actually fire."""
        return any(getattr(self, name) > 0.0 for name in _RATE_FIELDS)

    def for_chip(self, chip_name: str) -> "FaultPlan":
        """The same rates with a per-chip seed derived from *chip_name*.

        Campaign fan-out uses this so sibling chips draw independent
        fault streams from one campaign-level plan.
        """
        from repro.runtime.hashing import stable_hash

        derived = int(stable_hash({"fault_seed": self.seed, "chip": chip_name})[:12], 16)
        return replace(self, seed=derived)

    def cache_token(self) -> dict[str, Any]:
        """Every result-affecting knob, for stage cache keys."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Build a plan from a ``key=value,key=value`` CLI spec.

        Keys accept short aliases (``drop``, ``saturate``, ``blackout``,
        ``drift``, ``spike_px``, ``overshoot``, ``blur``, ``blur_sigma``,
        ``burst``, ``seed``) as well as the full field names.  Example::

            --fault-plan "seed=7,drop=0.1,drift=0.08,spike_px=9"
        """
        kwargs: dict[str, Any] = {}
        valid = {f.name for f in fields(cls)}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise CampaignError(f"bad fault spec item {part!r} (want key=value)")
            key, _, value = part.partition("=")
            key = key.strip().lower()
            name = _SPEC_ALIASES.get(key, key)
            if name not in valid:
                raise CampaignError(
                    f"unknown fault spec key {key!r} "
                    f"(known: {', '.join(sorted(_SPEC_ALIASES))})"
                )
            try:
                parsed: Any = int(value) if name in ("seed", "blur_burst_len") else float(value)
            except ValueError:
                raise CampaignError(f"bad value for fault spec key {key!r}: {value!r}") from None
            kwargs[name] = parsed
        return cls(**kwargs)


@dataclass(frozen=True)
class FaultEvent:
    """One injected defect (picklable, JSON-friendly via :meth:`to_dict`)."""

    kind: str  #: drop / saturation / blackout / drift_spike / overshoot / blur
    slice_index: int
    attempt: int = 0
    magnitude: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "slice_index": self.slice_index,
            "attempt": self.attempt,
            "magnitude": self.magnitude,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultEvent":
        return cls(
            kind=str(data["kind"]),
            slice_index=int(data["slice_index"]),
            attempt=int(data.get("attempt", 0)),
            magnitude=float(data.get("magnitude", 0.0)),
        )


class FaultInjector:
    """Applies one :class:`FaultPlan` to one acquisition attempt.

    The acquisition loop calls, per slice and in this order:

    1. :meth:`overshoot_slices` — before milling, how many extra faces
       the mill eats;
    2. :meth:`drift_spike` — after the clean drift update, the injected
       stage jump (if any);
    3. :meth:`apply` — after imaging + drift, the frame-level defects.

    Each slice draws from its own RNG stream seeded by
    ``(plan.seed, attempt, slice_index)``, so slices are independent and
    a re-acquisition (``attempt + 1``) re-rolls everything while the
    clean content is untouched.  With all rates at zero every draw
    compares against 0 probability, no image is modified, and no event is
    recorded — the inert plan is bit-identical to no plan.
    """

    def __init__(self, plan: FaultPlan, attempt: int = 0) -> None:
        self.plan = plan
        self.attempt = attempt
        self.events: list[FaultEvent] = []
        self._rngs: dict[int, np.random.Generator] = {}
        self._blur_until = -1  #: exclusive end of the current blur burst

    def _rng(self, slice_index: int) -> np.random.Generator:
        rng = self._rngs.get(slice_index)
        if rng is None:
            rng = np.random.default_rng((self.plan.seed, self.attempt, slice_index))
            self._rngs[slice_index] = rng
        return rng

    def _fires(self, slice_index: int, rate: float) -> bool:
        # Always draw so the per-slice stream stays aligned regardless of
        # which rates are zero.
        return self._rng(slice_index).random() < rate

    def _record(self, kind: str, slice_index: int, magnitude: float) -> None:
        """Append a :class:`FaultEvent` and feed the observability layer.

        The single point where injected faults are counted
        (``repro_faults_injected_total``) and logged — call sites in the
        engine must not double count.
        """
        self.events.append(FaultEvent(kind, slice_index, self.attempt, magnitude))
        current_metrics().counter("repro_faults_injected_total", kind=kind).inc()
        logger.debug(
            "injected fault",
            extra={"fields": {
                "kind": kind,
                "slice": slice_index,
                "attempt": self.attempt,
                "magnitude": magnitude,
            }},
        )

    def overshoot_slices(self, slice_index: int) -> int:
        """Extra slice thicknesses milled away before imaging this face."""
        if not self._fires(slice_index, self.plan.overshoot_rate):
            return 0
        self._record("overshoot", slice_index, 1.0)
        return 1

    def drift_spike(self, slice_index: int) -> tuple[float, float] | None:
        """An injected stage jump: (dx, dz) to add to the drift walk."""
        if not self._fires(slice_index, self.plan.drift_spike_rate):
            return None
        sign = 1.0 if self._rng(slice_index).random() < 0.5 else -1.0
        spike = sign * self.plan.drift_spike_px
        self._record("drift_spike", slice_index, spike)
        return spike, spike * 0.5

    def apply(self, image: np.ndarray, slice_index: int) -> np.ndarray:
        """Frame-level defects; returns *image* untouched when none fire."""
        plan = self.plan
        rng = self._rng(slice_index)
        # Burst continuation is checked first so an ongoing focus loss
        # blurs the frame even when no new fault fires on this slice.
        blurring = slice_index < self._blur_until
        if self._fires(slice_index, plan.drop_rate):
            self._record("drop", slice_index, 1.0)
            noise = rng.normal(0.0, 0.01, size=image.shape)
            return np.clip(noise, 0.0, 1.0).astype(np.float32)
        if self._fires(slice_index, plan.saturation_rate):
            self._record("saturation", slice_index, 1.0)
            # A blown detector gain: everything but the near-black floor
            # pins at the white rail.
            image = np.clip(image * 6.0 + 0.9, 0.0, 1.0).astype(np.float32)
        if self._fires(slice_index, plan.blackout_rate):
            self._record("blackout", slice_index, 1.0)
            image = np.clip(image * 0.02, 0.0, 1.0).astype(np.float32)
        if not blurring and self._fires(slice_index, plan.blur_rate):
            self._blur_until = slice_index + plan.blur_burst_len
            blurring = True
        if blurring:
            self._record("blur", slice_index, plan.blur_sigma_px)
            image = ndimage.gaussian_filter(
                image.astype(np.float32), sigma=plan.blur_sigma_px, mode="nearest"
            ).astype(np.float32)
        return image


__all__ = ["FaultPlan", "FaultEvent", "FaultInjector"]
