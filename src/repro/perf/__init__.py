"""Performance measurement for the §IV-C post-processing kernels.

The campaign runtime fans the pipeline kernels out per chip, so every
kernel-level speedup multiplies across the fleet — and every perf PR
needs a recorded trajectory to prove it moved the needle.  This package
provides that record:

* :func:`repro.perf.bench.run_benchmarks` — ``timeit``-style
  micro-benchmarks of each hot kernel (MI registration, the two TV
  denoisers, multi-Otsu, the SEM contrast table) against the retained
  ``_reference`` implementations, plus an end-to-end pipeline run and a
  tiny campaign wall-time probe;
* :func:`repro.perf.bench.write_report` — serialise the results to
  ``BENCH_pipeline.json`` (per-kernel ns/pixel, speedup vs reference,
  campaign wall seconds);
* ``python -m repro.perf`` — the CLI that runs both (``--scale tiny``
  for CI smoke jobs, the default scale for recorded numbers).

Every benchmark also *verifies* the fast kernel against its reference
(``outputs_match``), so a perf regression hunt never chases a kernel
that silently changed semantics.
"""

from repro.perf.bench import (
    DEFAULT_REPORT_PATH,
    BenchReport,
    KernelBench,
    measure_shard_speedup,
    render_report,
    run_benchmarks,
    write_report,
)

__all__ = [
    "DEFAULT_REPORT_PATH",
    "BenchReport",
    "KernelBench",
    "measure_shard_speedup",
    "render_report",
    "run_benchmarks",
    "write_report",
]
