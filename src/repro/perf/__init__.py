"""Performance measurement for the §IV-C post-processing kernels.

The campaign runtime fans the pipeline kernels out per chip, so every
kernel-level speedup multiplies across the fleet — and every perf PR
needs a recorded trajectory to prove it moved the needle.  This package
provides that record:

* :func:`repro.perf.bench.run_benchmarks` — ``timeit``-style
  micro-benchmarks of each hot kernel (MI registration, the two TV
  denoisers, multi-Otsu, the SEM contrast table) against the retained
  ``_reference`` implementations, plus an end-to-end pipeline run and a
  tiny campaign wall-time probe;
* :func:`repro.perf.bench.write_report` — serialise the results to
  ``BENCH_pipeline.json`` (per-kernel ns/pixel, speedup vs reference,
  campaign wall seconds);
* :func:`repro.perf.bench.run_analog_benchmarks` — the analog suite:
  batched :class:`BatchedTransientSolver` vs the scalar loop (with a
  bit-identity gate and a >=5x speedup floor at N=256), batched vs
  reference ``sensing_yield`` parity, and a ``characterize`` sweep's
  cold-vs-cached wall time, recorded to ``BENCH_analog.json``;
* :func:`repro.perf.bench.measure_dataplane` — the zero-copy data-plane
  suite: shm vs pickle shard transport at equal worker counts (byte-level
  ``outputs_match`` across planes), peak process-tree RSS via
  :class:`repro.perf.rss.RssSampler`, warm cache-hit latency of
  mmap-backed ``.npy`` sidecars vs classic pickles, and a
  ``/dev/shm`` leak count — recorded to ``BENCH_dataplane.json``;
* ``python -m repro.perf`` — the CLI that runs them (``--scale tiny``
  for CI smoke jobs, the default scale for recorded numbers;
  ``--analog`` / ``--dataplane`` for the other suites).

Every benchmark also *verifies* the fast kernel against its reference
(``outputs_match``), so a perf regression hunt never chases a kernel
that silently changed semantics.
"""

from repro.perf.bench import (
    ANALOG_REPORT_PATH,
    DATAPLANE_REPORT_PATH,
    DEFAULT_REPORT_PATH,
    MIN_BATCHED_SPEEDUP,
    BenchReport,
    KernelBench,
    analog_gate_failures,
    dataplane_gate_failures,
    measure_dataplane,
    measure_shard_speedup,
    render_analog_report,
    render_dataplane_report,
    render_report,
    run_analog_benchmarks,
    run_benchmarks,
    write_analog_report,
    write_dataplane_report,
    write_report,
)
from repro.perf.history import (
    DEFAULT_HISTORY_PATH,
    HISTORY_SCHEMA,
    check_regression,
    environment_fingerprint,
    key_metrics,
    load_history,
    record_run,
    render_regressions,
)
from repro.perf.rss import RssSampler, tree_rss_bytes

__all__ = [
    "ANALOG_REPORT_PATH",
    "DATAPLANE_REPORT_PATH",
    "DEFAULT_REPORT_PATH",
    "MIN_BATCHED_SPEEDUP",
    "DEFAULT_HISTORY_PATH",
    "HISTORY_SCHEMA",
    "BenchReport",
    "KernelBench",
    "RssSampler",
    "analog_gate_failures",
    "check_regression",
    "dataplane_gate_failures",
    "environment_fingerprint",
    "key_metrics",
    "load_history",
    "record_run",
    "render_regressions",
    "measure_dataplane",
    "measure_shard_speedup",
    "render_analog_report",
    "render_dataplane_report",
    "render_report",
    "run_analog_benchmarks",
    "run_benchmarks",
    "tree_rss_bytes",
    "write_analog_report",
    "write_dataplane_report",
    "write_report",
]
