"""Append-mode performance history and the regression gate.

The committed ``BENCH_*.json`` files are overwrite-in-place snapshots:
each ``repro.perf`` run replaces the last, so the project keeps no
performance *trajectory* and a kernel that quietly got 2x slower
between PRs is invisible.  This module adds the missing axis:

* :func:`record_run` appends every perf report to ``BENCH_history.jsonl``
  as one ``bench-history/1`` line keyed by (probe, git SHA,
  environment fingerprint) with the report's lower-is-better headline
  timings flattened into a ``metrics`` dict;
* :func:`check_regression` compares a fresh report against the trailing
  median of the same probe's history *on the same environment* (python
  + numpy + machine — cross-machine timings never gate each other) and
  flags any metric above ``threshold`` × median;
* ``python -m repro.perf --history PATH --check-regression`` wires both
  into the CLI: history is always appended, and a flagged regression
  exits non-zero so CI can gate on it.

The gate needs at least ``min_history`` prior same-environment entries
before it judges anything — a fresh checkout or a new machine records
history silently instead of failing on an empty baseline.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
from pathlib import Path
from statistics import median
from typing import Any

__all__ = [
    "HISTORY_SCHEMA",
    "DEFAULT_HISTORY_PATH",
    "git_sha",
    "environment_fingerprint",
    "probe_name",
    "key_metrics",
    "record_run",
    "load_history",
    "check_regression",
    "render_regressions",
]

HISTORY_SCHEMA = "bench-history/1"
DEFAULT_HISTORY_PATH = "BENCH_history.jsonl"

#: report ``schema`` → probe name the history entry is keyed by
_PROBE_BY_SCHEMA = {
    "repro-perf/1": "pipeline",
    "repro-perf-analog/1": "analog",
    "repro-perf-dataplane/1": "dataplane",
    "repro-perf-catalog/1": "catalog",
}


def git_sha() -> str:
    """The current commit's SHA, or ``"unknown"`` outside a work tree."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def environment_fingerprint() -> dict[str, str]:
    """What makes two timings comparable: interpreter, numpy, machine."""
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep in practice
        numpy_version = "none"
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "machine": platform.machine(),
    }


def probe_name(report: dict[str, Any]) -> str:
    """The history probe key for one perf report (from its schema tag)."""
    schema = report.get("schema", "")
    return _PROBE_BY_SCHEMA.get(schema, schema or "unknown")


def key_metrics(report: dict[str, Any]) -> dict[str, float]:
    """Flatten a perf report's lower-is-better timings.

    Every value is a wall time or a per-pixel time in which *smaller is
    better*, so the regression check is a single direction everywhere.
    Unknown schemas yield an empty dict (recorded, never gated).
    """
    probe = probe_name(report)
    metrics: dict[str, float] = {}

    def put(name: str, value: Any) -> None:
        if isinstance(value, (int, float)) and value > 0:
            metrics[name] = float(value)

    if probe == "pipeline":
        for kernel in report.get("kernels") or []:
            put(f"kernel:{kernel.get('name')}:ns_per_px", kernel.get("ns_per_pixel"))
        # Skipped probes serialize as explicit None (e.g. --no-campaign),
        # so a plain .get(key, {}) default is not enough.
        pipeline = report.get("pipeline") or {}
        put("pipeline:ns_per_px", pipeline.get("ns_per_pixel"))
        campaign = report.get("campaign") or {}
        put("campaign:wall_seconds", campaign.get("wall_seconds"))
    elif probe == "analog":
        put("solver:fast_seconds", (report.get("solver") or {}).get("fast_seconds"))
        put("sweep:cold_wall_seconds",
            (report.get("sweep") or {}).get("cold_wall_seconds"))
    elif probe == "dataplane":
        put("serial:wall_seconds", (report.get("serial") or {}).get("wall_seconds"))
        for plane in ("pickle_plane", "shm_plane"):
            put(f"{plane}:wall_seconds", (report.get(plane) or {}).get("wall_seconds"))
    elif probe == "catalog":
        put("cold_wall_seconds", report.get("cold_wall_seconds"))
    return metrics


def record_run(
    report: dict[str, Any], path: str | Path = DEFAULT_HISTORY_PATH
) -> dict[str, Any]:
    """Append one history entry for *report*; returns the entry."""
    entry = {
        "schema": HISTORY_SCHEMA,
        "probe": probe_name(report),
        "git_sha": git_sha(),
        "environment": environment_fingerprint(),
        "created_unix": report.get("created_unix"),
        "scale": report.get("scale"),
        "metrics": key_metrics(report),
    }
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    with target.open("a") as fh:
        fh.write(json.dumps(entry, sort_keys=True) + "\n")
    return entry


def load_history(path: str | Path = DEFAULT_HISTORY_PATH) -> list[dict[str, Any]]:
    """Every readable ``bench-history/1`` entry, file order preserved.

    Malformed lines and foreign schemas are skipped, not fatal — an
    append-mode log shared across branches must tolerate the odd torn
    line.
    """
    target = Path(path)
    if not target.exists():
        return []
    entries: list[dict[str, Any]] = []
    for line in target.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            entry = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and entry.get("schema") == HISTORY_SCHEMA:
            entries.append(entry)
    return entries


def check_regression(
    report: dict[str, Any],
    path: str | Path = DEFAULT_HISTORY_PATH,
    threshold: float = 1.5,
    min_history: int = 2,
    window: int = 5,
) -> list[dict[str, Any]]:
    """Compare *report* against its trailing history; return regressions.

    For each key metric, the baseline is the median of the last
    ``window`` prior entries with the same probe, environment
    fingerprint *and* workload scale (a tiny CI smoke run must never
    gate — or baseline — a default-scale run).  A metric is flagged
    when ``current > threshold × median``.  With fewer than
    ``min_history`` comparable entries the gate abstains (empty list):
    new machines and fresh clones bootstrap their baseline instead of
    failing.
    """
    probe = probe_name(report)
    env = environment_fingerprint()
    scale = report.get("scale")
    comparable = [
        entry for entry in load_history(path)
        if entry.get("probe") == probe
        and entry.get("environment") == env
        and entry.get("scale") == scale
    ]
    if len(comparable) < min_history:
        return []
    current = key_metrics(report)
    regressions: list[dict[str, Any]] = []
    for name, value in sorted(current.items()):
        baseline_values = [
            entry["metrics"][name]
            for entry in comparable[-window:]
            if isinstance(entry.get("metrics", {}).get(name), (int, float))
        ]
        if len(baseline_values) < min_history:
            continue
        baseline = median(baseline_values)
        if baseline > 0 and value > threshold * baseline:
            regressions.append({
                "probe": probe,
                "metric": name,
                "current": value,
                "baseline_median": baseline,
                "ratio": value / baseline,
                "threshold": threshold,
                "samples": len(baseline_values),
            })
    return regressions


def render_regressions(regressions: list[dict[str, Any]]) -> str:
    """Human-readable one-liner-per-regression block for the CLI."""
    if not regressions:
        return "no regressions against trailing history"
    lines = [
        f"REGRESSION {r['probe']}:{r['metric']}: "
        f"{r['current']:.4g} vs median {r['baseline_median']:.4g} "
        f"({r['ratio']:.2f}x > {r['threshold']:.2f}x gate, "
        f"n={r['samples']})"
        for r in regressions
    ]
    return "\n".join(lines)


def main_check(
    report: dict[str, Any],
    path: str | Path,
    threshold: float,
) -> int:
    """CLI helper: record *report*, then gate on its regressions.

    History is appended even when the gate fires — the log must reflect
    what actually happened — and the exit code carries the verdict.
    """
    regressions = check_regression(report, path, threshold=threshold)
    record_run(report, path)
    print(render_regressions(regressions), file=sys.stderr)
    return 1 if regressions else 0
