"""Micro- and end-to-end benchmarks for the post-processing kernels.

Each hot kernel is timed (best-of-``repeats`` wall time, ``timeit``
style) against the retained ``_reference`` implementation it replaced,
on a deterministic synthetic workload.  Results are reported as
ns/pixel — the scale-free number that survives workload changes — plus
the speedup factor, and every comparison re-checks that the fast kernel
reproduces the reference output exactly (``outputs_match``).

The ``"default"`` scale mirrors the ``bench_pipeline_alignment``
workload (82 slices of 1339×64 float32); ``"tiny"`` is for CI smoke
jobs and finishes in seconds.
"""

from __future__ import annotations

import json
import os
import platform
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

import numpy as np

from repro.errors import ReproError

#: Where ``python -m repro.perf`` writes its record by default.
DEFAULT_REPORT_PATH = "BENCH_pipeline.json"

_SCALES: dict[str, dict[str, Any]] = {
    # CI smoke: everything in a few seconds.
    "tiny": {"slices": 5, "shape": (96, 48), "otsu_shape": (96, 96),
             "stack_repeats": 1, "micro_repeats": 3},
    # The bench_pipeline_alignment.py-scale workload (§IV-C B5-like stack).
    "default": {"slices": 82, "shape": (1339, 64), "otsu_shape": (512, 512),
                "stack_repeats": 1, "micro_repeats": 2},
}


def _synthetic_stack(
    slices: int, shape: tuple[int, int], seed: int = 1234
) -> list[np.ndarray]:
    """A drifting, noisy rail texture resembling an SA cross-section stack.

    Long vertical rails (nearly translation-invariant along one axis, like
    bitlines) over a blocky background, with per-slice integer drift and
    shot noise — the same structure that makes the real MI search need its
    shift penalty.  Deterministic for a given seed.
    """
    rng = np.random.default_rng(seed)
    nx, nz = shape
    base = np.zeros(shape)
    base[:, :: max(nz // 8, 2)] = 0.75  # rails
    blocks = np.kron(
        rng.random((max(nx // 16, 1), max(nz // 8, 1))),
        np.ones((16, 8)),
    )[:nx, :nz]
    pad_x, pad_z = nx - blocks.shape[0], nz - blocks.shape[1]
    if pad_x or pad_z:
        blocks = np.pad(blocks, ((0, pad_x), (0, pad_z)), mode="edge")
    base = np.clip(0.2 + 0.4 * blocks + base, 0.0, 1.0)
    stack = []
    for i in range(slices):
        drift = int(rng.integers(-1, 2)) * (i % 3 == 0)
        img = np.roll(base, drift * i, axis=0)
        img = img + rng.normal(0.0, 0.05, shape)
        stack.append(np.clip(img, 0.0, 1.0).astype(np.float32))
    return stack


@dataclass
class KernelBench:
    """Timing of one kernel against its retained reference."""

    name: str
    pixels: int
    fast_seconds: float
    reference_seconds: float | None = None
    outputs_match: bool | None = None

    @property
    def speedup(self) -> float | None:
        if self.reference_seconds is None or self.fast_seconds <= 0:
            return None
        return self.reference_seconds / self.fast_seconds

    @property
    def ns_per_pixel(self) -> float:
        return self.fast_seconds / max(self.pixels, 1) * 1e9

    def as_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "pixels": self.pixels,
            "fast_seconds": self.fast_seconds,
            "reference_seconds": self.reference_seconds,
            "speedup": self.speedup,
            "ns_per_pixel": self.ns_per_pixel,
            "outputs_match": self.outputs_match,
        }


@dataclass
class BenchReport:
    """Everything one perf run measured, ready for ``BENCH_pipeline.json``."""

    scale: str
    workload: dict[str, Any]
    kernels: list[KernelBench]
    pipeline: dict[str, Any]
    campaign: dict[str, Any] | None = None
    obs: dict[str, Any] | None = None
    shard: dict[str, Any] | None = None
    environment: dict[str, str] = field(default_factory=dict)

    def kernel(self, name: str) -> KernelBench:
        for k in self.kernels:
            if k.name == name:
                return k
        raise ReproError(f"no kernel benchmark named {name!r}")

    def as_dict(self) -> dict[str, Any]:
        return {
            "schema": "repro-perf/1",
            "created_unix": time.time(),
            "scale": self.scale,
            "workload": self.workload,
            "environment": self.environment,
            "kernels": [k.as_dict() for k in self.kernels],
            "pipeline": self.pipeline,
            "campaign": self.campaign,
            "obs": self.obs,
            "shard": self.shard,
        }


def _time(fn: Callable[[], Any], repeats: int) -> tuple[float, Any]:
    """Best-of-*repeats* wall seconds of ``fn()``, plus its last result."""
    best = float("inf")
    result: Any = None
    for _ in range(max(repeats, 1)):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _stacks_equal(a: list[np.ndarray], b: list[np.ndarray]) -> bool:
    return len(a) == len(b) and all(np.array_equal(x, y) for x, y in zip(a, b))


#: ceiling on the obs disabled-path overhead relative to the pipeline probe
OBS_OVERHEAD_BUDGET = 0.02

#: ceiling on the *additional* cost of the live exporter stack (event bus
#: + HTTP exposition server) over the plain traced path
OBS_EXPORTER_BUDGET = 0.05


def measure_obs_overhead(
    pipeline_fn: Callable[[], Any],
    pipeline_seconds: float,
    noop_calls: int = 20_000,
) -> dict[str, Any]:
    """The ``obs-overhead`` probe: what instrumentation costs when off.

    Every instrumented call site pays one ``current_tracer().span(...)``
    enter/exit plus (at most) one no-op metric touch when observability
    is disabled — that per-call cost is micro-benchmarked here, scaled by
    the number of spans one pipeline run actually opens (counted by
    running the pipeline once under a live tracer), and expressed as a
    fraction of the pipeline probe's wall time.  The probe **fails** (so
    CI fails) when that fraction reaches :data:`OBS_OVERHEAD_BUDGET`.

    The enabled-path slowdown is also measured, informationally — it is
    allowed to cost whatever tracing costs.
    """
    from repro.obs import ObsConfig, ObsSession, current_metrics, current_tracer

    # Disabled path: both singletons are no-ops here (nothing activated).
    tracer = current_tracer()
    metrics = current_metrics()
    t0 = time.perf_counter()
    for _ in range(noop_calls):
        with tracer.span("noop", kind="kernel"):
            pass
        metrics.counter("repro_noop_total").inc()
    noop_per_call = (time.perf_counter() - t0) / noop_calls

    # Best-of-2 for the wall-clock comparisons below: the tiny-scale
    # pipeline probe runs in fractions of a second, where one scheduler
    # hiccup reads as several percent.
    enabled_seconds = float("inf")
    for _ in range(2):
        with ObsSession(ObsConfig(trace=True, metrics=True)) as session:
            t0 = time.perf_counter()
            pipeline_fn()
            enabled_seconds = min(
                enabled_seconds, time.perf_counter() - t0
            )
    span_count = len(session.spans())

    # Exporter-live path: event bus on AND the HTTP exposition server
    # attached (with one concurrent /metrics scrape mid-flight, so the
    # snapshot lock contention is part of the measurement).  Gated
    # against the *enabled* path — the exporter must be nearly free on
    # top of whatever tracing itself costs.
    from repro.obs.export import ObsServer

    exporter_seconds = float("inf")
    for _ in range(2):
        with ObsSession(
            ObsConfig(trace=True, metrics=True, events=True)
        ) as live_session:
            with ObsServer(
                port=0,
                metrics_fn=live_session.metrics_snapshot,
                spans_fn=live_session.spans,
                bus=live_session.bus,
            ) as server:
                import urllib.request

                t0 = time.perf_counter()
                pipeline_fn()
                exporter_seconds = min(
                    exporter_seconds, time.perf_counter() - t0
                )
                with urllib.request.urlopen(
                    server.url + "/metrics", timeout=10.0
                ) as resp:
                    resp.read()

    disabled_fraction = (
        span_count * noop_per_call / max(pipeline_seconds, 1e-9)
    )
    exporter_fraction = (
        exporter_seconds / max(pipeline_seconds, 1e-9) - 1.0
    )
    result = {
        "noop_ns_per_call": noop_per_call * 1e9,
        "spans_per_pipeline": span_count,
        "disabled_overhead_fraction": disabled_fraction,
        "enabled_seconds": enabled_seconds,
        "enabled_overhead_fraction": enabled_seconds / max(pipeline_seconds, 1e-9) - 1.0,
        "budget_fraction": OBS_OVERHEAD_BUDGET,
        "exporter_seconds": exporter_seconds,
        "exporter_overhead_fraction": exporter_fraction,
        "exporter_budget_fraction": OBS_EXPORTER_BUDGET,
    }
    if disabled_fraction >= OBS_OVERHEAD_BUDGET:
        raise ReproError(
            f"obs disabled-path overhead {disabled_fraction:.4%} exceeds "
            f"the {OBS_OVERHEAD_BUDGET:.0%} budget "
            f"({span_count} spans x {noop_per_call * 1e9:.0f} ns/call "
            f"vs {pipeline_seconds:.3f}s pipeline)"
        )
    # Wall-clock baseline: the slower of the bare and traced runs, so
    # tracing's own (allowed) cost and run-to-run noise don't masquerade
    # as exporter overhead.
    baseline = max(pipeline_seconds, enabled_seconds)
    if exporter_seconds > (1.0 + OBS_EXPORTER_BUDGET) * baseline:
        raise ReproError(
            f"obs exporter-live overhead "
            f"{exporter_seconds / baseline - 1.0:.2%} exceeds the "
            f"{OBS_EXPORTER_BUDGET:.0%} budget "
            f"({exporter_seconds:.3f}s vs {baseline:.3f}s baseline)"
        )
    return result


def measure_shard_speedup(seed: int = 1234) -> dict[str, Any]:
    """The ``shard`` probe: one chip, serial vs slice-sharded wall time.

    Runs the same fast-preset single-chip campaign twice — ``workers=1``
    and then with ``ShardPlan(slices=True)`` over every usable core — and
    reports the wall-time ratio.  ``outputs_match`` re-checks the shard
    determinism contract at the byte level (``pickle.dumps`` equality of
    the recovered chips); ``speedup`` approaches the core count on wide
    machines and ~1.0 on a single-core box (the serial fallback).
    """
    import pickle

    from repro.pipeline.config import PipelineConfig, ShardPlan
    from repro.runtime import ChipJob, run_campaign, usable_cpus
    from repro.runtime.shard import shutdown_shard_pools

    cores = usable_cpus()
    job = ChipJob.synthetic("perf_shard", "classic", n_pairs=1, validate=False)
    config = PipelineConfig(
        denoise_iterations=10, align_search_px=2, align_baselines=(1, 2)
    )
    t0 = time.perf_counter()
    serial = run_campaign([job], config=config, workers=1)
    serial_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    sharded = run_campaign(
        [job], config=config.replaced(shard=ShardPlan(slices=True)), workers=cores
    )
    sharded_s = time.perf_counter() - t0
    shutdown_shard_pools()
    return {
        "serial_seconds": serial_s,
        "sharded_seconds": sharded_s,
        "speedup": serial_s / max(sharded_s, 1e-9),
        "cores": cores,
        "shard_workers": cores,
        "outputs_match": pickle.dumps(serial.results()) == pickle.dumps(sharded.results()),
    }


def run_benchmarks(
    scale: str = "default",
    include_campaign: bool = True,
    seed: int = 1234,
) -> BenchReport:
    """Benchmark every rewritten kernel against its retained reference.

    Covers: bincount-MI ``align_pair``/``align_stack`` vs the
    ``histogram2d`` brute force, pooled-buffer ``chambolle_tv`` /
    ``split_bregman_tv`` vs the allocating solvers, vectorised
    ``multi_otsu`` vs the exhaustive search, the memoised
    ``contrast_lookup`` vs a fresh table build, an end-to-end pipeline
    chain, and (optionally) a one-chip fast-mode campaign wall-time probe.
    """
    from repro.imaging.sem import SemParameters, _build_contrast_table, contrast_lookup
    from repro.pipeline.denoise import (
        _reference_denoise_stack,
        chambolle_tv,
        denoise_stack,
        split_bregman_tv,
    )
    from repro.pipeline.register import (
        _reference_align_pair,
        _reference_align_stack,
        align_pair,
        align_stack,
    )
    from repro.pipeline.segment import _reference_multi_otsu, multi_otsu
    from repro.pipeline.stack import assemble_volume, planar_views

    if scale not in _SCALES:
        raise ReproError(f"unknown perf scale {scale!r} (expected one of {sorted(_SCALES)})")
    params = _SCALES[scale]
    slices, shape = params["slices"], tuple(params["shape"])
    stack_repeats, micro_repeats = params["stack_repeats"], params["micro_repeats"]
    stack = _synthetic_stack(slices, shape, seed=seed)
    slice_px = int(np.prod(shape))
    stack_px = slice_px * slices
    kernels: list[KernelBench] = []

    # --- registration -----------------------------------------------------
    pair_s, pair_out = _time(lambda: align_pair(stack[0], stack[1]), micro_repeats)
    pair_ref_s, pair_ref_out = _time(
        lambda: _reference_align_pair(stack[0], stack[1]), micro_repeats
    )
    kernels.append(KernelBench(
        "align_pair", 2 * slice_px, pair_s, pair_ref_s, pair_out == pair_ref_out,
    ))

    stack_s, (aligned, report) = _time(lambda: align_stack(stack), stack_repeats)
    stack_ref_s, (aligned_ref, report_ref) = _time(
        lambda: _reference_align_stack(stack), stack_repeats
    )
    kernels.append(KernelBench(
        "align_stack", stack_px, stack_s, stack_ref_s,
        report.corrections == report_ref.corrections
        and _stacks_equal(aligned, aligned_ref),
    ))

    # --- denoising --------------------------------------------------------
    ch_s, ch_out = _time(lambda: chambolle_tv(stack[0]), micro_repeats)
    kernels.append(KernelBench("chambolle_tv", slice_px, ch_s))
    sb_s, sb_out = _time(lambda: split_bregman_tv(stack[0]), micro_repeats)
    kernels.append(KernelBench("split_bregman_tv", slice_px, sb_s))

    for method in ("chambolle", "split_bregman"):
        fast_s, fast_out = _time(
            lambda m=method: denoise_stack(stack, method=m), stack_repeats
        )
        ref_s, ref_out = _time(
            lambda m=method: _reference_denoise_stack(stack, method=m), stack_repeats
        )
        kernels.append(KernelBench(
            f"denoise_stack[{method}]", stack_px, fast_s, ref_s,
            _stacks_equal(fast_out, ref_out),
        ))

    # --- segmentation -----------------------------------------------------
    rng = np.random.default_rng(seed + 1)
    otsu_shape = tuple(params["otsu_shape"])
    levels = rng.choice([0.1, 0.45, 0.8], size=otsu_shape)
    otsu_img = np.clip(levels + rng.normal(0.0, 0.06, otsu_shape), 0.0, 1.0)
    mo_s, mo_out = _time(lambda: multi_otsu(otsu_img, classes=3), micro_repeats)
    mo_ref_s, mo_ref_out = _time(
        lambda: _reference_multi_otsu(otsu_img, classes=3), micro_repeats
    )
    kernels.append(KernelBench(
        "multi_otsu[3]", int(np.prod(otsu_shape)), mo_s, mo_ref_s, mo_out == mo_ref_out,
    ))

    # --- SEM contrast table ----------------------------------------------
    sem = SemParameters()
    calls = 2000
    lut_s, lut_out = _time(
        lambda: [contrast_lookup(sem) for _ in range(calls)][-1], micro_repeats
    )
    lut_ref_s, lut_ref_out = _time(
        lambda: [_build_contrast_table(sem) for _ in range(calls)][-1], micro_repeats
    )
    kernels.append(KernelBench(
        f"contrast_lookup[x{calls}]", calls * lut_out.size, lut_s, lut_ref_s,
        bool(np.array_equal(lut_out, lut_ref_out)),
    ))

    # --- fault-injection clean-path overhead ------------------------------
    # The resilience layer must be free when unused: acquiring through an
    # inert (all-rates-zero) FaultInjector is timed against the plain
    # acquisition, and outputs_match re-checks the bit-identity contract.
    from repro.catalog.variants import ChipVariantSpec, build_region_spec
    from repro.faults import FaultInjector, FaultPlan
    from repro.imaging.fib import FibSemCampaign, acquire_stack
    from repro.imaging.voxel import voxelize
    from repro.layout.generator import generate_sa_region

    cell = generate_sa_region(build_region_spec(
        ChipVariantSpec(name="perf_faults", variant="classic", word_size=1)
    ))
    volume = voxelize(cell, voxel_nm=6.0, margin_nm=40.0)
    fib = FibSemCampaign()
    y_stop = 300.0 if scale == "tiny" else None
    inert_s, inert_stack = _time(
        lambda: acquire_stack(
            volume, fib, y_stop_nm=y_stop,
            injector=FaultInjector(FaultPlan(seed=seed)),
        ),
        micro_repeats,
    )
    clean_s, clean_stack = _time(
        lambda: acquire_stack(volume, fib, y_stop_nm=y_stop), micro_repeats
    )
    kernels.append(KernelBench(
        "acquire_stack[inert-faults]",
        sum(img.size for img in clean_stack.images),
        inert_s,
        clean_s,
        _stacks_equal(inert_stack.images, clean_stack.images)
        and inert_stack.true_drift_px == clean_stack.true_drift_px,
    ))

    # --- end-to-end pipeline chain ---------------------------------------
    def _pipeline() -> Any:
        denoised = denoise_stack(stack)
        aligned, _report = align_stack(denoised)
        volume = assemble_volume(aligned, pixel_nm=6.0, slice_thickness_nm=12.0)
        return planar_views(volume)

    pipe_s, views = _time(_pipeline, stack_repeats)
    pipeline = {
        "seconds": pipe_s,
        "pixels": stack_px,
        "ns_per_pixel": pipe_s / stack_px * 1e9,
        "layers": len(views),
    }

    # --- observability overhead ------------------------------------------
    obs = measure_obs_overhead(_pipeline, pipe_s)

    # --- campaign wall time ----------------------------------------------
    campaign: dict[str, Any] | None = None
    shard_probe: dict[str, Any] | None = None
    if include_campaign:
        from repro.pipeline.config import PipelineConfig
        from repro.runtime import ChipJob, run_campaign

        job = ChipJob.synthetic("perf_probe", "classic", n_pairs=1, validate=False)
        config = PipelineConfig(
            denoise_iterations=10, align_search_px=2, align_baselines=(1, 2)
        )
        t0 = time.perf_counter()
        run_campaign([job], config=config, workers=1)
        campaign = {
            "wall_seconds": time.perf_counter() - t0,
            "jobs": 1,
            "preset": "fast",
        }
        shard_probe = measure_shard_speedup(seed=seed)

    return BenchReport(
        scale=scale,
        workload={
            "slices": slices,
            "shape": list(shape),
            "otsu_shape": list(otsu_shape),
            "stack_repeats": stack_repeats,
            "micro_repeats": micro_repeats,
            "seed": seed,
        },
        kernels=kernels,
        pipeline=pipeline,
        campaign=campaign,
        obs=obs,
        shard=shard_probe,
        environment={
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    )


# --- analog characterization probes --------------------------------------

#: Where ``python -m repro.perf --analog`` writes its record by default.
ANALOG_REPORT_PATH = "BENCH_analog.json"

#: acceptance floor on the batched-vs-scalar solver speedup at the
#: default scale (N=256 Monte-Carlo trials)
MIN_BATCHED_SPEEDUP = 5.0

_ANALOG_SCALES: dict[str, dict[str, Any]] = {
    # CI smoke: a handful of trials; the batched path is *slower* here
    # (numpy per-op overhead dominates at small N), so tiny runs check
    # only bit-identity, not the speedup floor.
    "tiny": {"trials": 8, "yield_trials": 4, "sweep_trials": 3},
    # The recorded scale: the acceptance gate's N=256 batch.
    "default": {"trials": 256, "yield_trials": 12, "sweep_trials": 6},
}


def measure_batched_solver(scale: str = "default", seed: int = 1234) -> KernelBench:
    """The ``batched_transient`` probe: N activations in one stacked solve.

    Times :meth:`SenseAmpBench.run_batch` over N random latch mismatches
    against the retained scalar path (one :meth:`SenseAmpBench.run` per
    mismatch) and re-checks bit-identity of every recorded trace and
    every latched value (``outputs_match``).  ``pixels`` counts solver
    instance-timesteps, so ns/pixel stays comparable across N.
    """
    from repro.analog.sense_amp import SenseAmpBench

    params = _ANALOG_SCALES[scale]
    trials = params["trials"]
    rng = np.random.default_rng(seed)
    mismatches = [float(m) for m in rng.normal(0.0, 0.08, size=trials)]
    bench = SenseAmpBench()
    fast_s, fast_out = _time(lambda: bench.run_batch(1, mismatches), 1)
    ref_s, ref_out = _time(
        lambda: [bench.run(1, vt_mismatch=m) for m in mismatches], 1
    )
    match = all(
        f.data_sensed == r.data_sensed
        and np.array_equal(f.result.time_ns, r.result.time_ns)
        and all(
            np.array_equal(f.result.voltages[net], r.result.voltages[net])
            for net in f.result.voltages
        )
        for f, r in zip(fast_out, ref_out)
    )
    steps = len(fast_out[0].result.time_ns)
    return KernelBench(
        f"batched_transient[N={trials}]", trials * steps, fast_s, ref_s, match
    )


def measure_batched_yield(scale: str = "default", seed: int = 7) -> dict[str, Any]:
    """The ``sensing_yield`` probe: batched engine vs the scalar reference.

    Runs the same :class:`CharacterizationSpec` through the batched
    :func:`sensing_yield` and the retained
    :func:`_reference_sensing_yield` loop; the failure counts must agree
    exactly (the batched solver is bit-identical per instance, so any
    divergence is a real defect, not tolerance noise).
    """
    from repro.analog.montecarlo import _reference_sensing_yield, sensing_yield
    from repro.analog.spec import CharacterizationSpec
    from repro.circuits.topologies import SaTopology

    trials = _ANALOG_SCALES[scale]["yield_trials"]
    spec = CharacterizationSpec(trials=trials, sigma_mv=120.0, seed=seed)
    batched_s, batched = _time(
        lambda: sensing_yield(SaTopology.CLASSIC, spec=spec), 1
    )
    ref_s, reference = _time(
        lambda: _reference_sensing_yield(SaTopology.CLASSIC, spec=spec), 1
    )
    return {
        "trials": trials,
        "sigma_mv": spec.sigma_mv,
        "batched_seconds": batched_s,
        "reference_seconds": ref_s,
        "speedup": ref_s / max(batched_s, 1e-9),
        "batched_failures": batched.failures,
        "reference_failures": reference.failures,
        "failures_match": batched.failures == reference.failures,
    }


def measure_characterize_cache(scale: str = "default") -> dict[str, Any]:
    """The ``characterize`` probe: sweep wall time, cold vs stage-cached.

    Runs a classic+OCSA TT sweep twice against a throwaway cache
    directory; the warm re-run must satisfy every stage from the cache
    (``all_cached_on_rerun`` — the acceptance criterion that sweeps ride
    the campaign cache).
    """
    import tempfile

    from repro.analog.characterizer import characterize
    from repro.analog.spec import CharacterizationSpec

    spec = CharacterizationSpec(
        topologies=("classic", "ocsa"),
        corners=("TT",),
        trials=_ANALOG_SCALES[scale]["sweep_trials"],
        offset_scan_mv=(0.0, 100.0),
    )
    with tempfile.TemporaryDirectory(prefix="repro-perf-char-") as cache_dir:
        t0 = time.perf_counter()
        cold = characterize(spec, cache_dir=cache_dir, workers=1)
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        warm = characterize(spec, cache_dir=cache_dir, workers=1)
        warm_s = time.perf_counter() - t0
    return {
        "cells": len(cold.cells),
        "trials": spec.trials,
        "cold_wall_seconds": cold_s,
        "warm_wall_seconds": warm_s,
        "warm_cache_hits": warm.cache_hits,
        "warm_cache_misses": warm.cache_misses,
        "all_cached_on_rerun": (
            warm.cache_misses == 0 and warm.cache_hits > 0 and not warm.degraded
        ),
    }


def run_analog_benchmarks(scale: str = "default", seed: int = 1234) -> dict[str, Any]:
    """The analog perf suite, ready for ``BENCH_analog.json``."""
    if scale not in _ANALOG_SCALES:
        raise ReproError(
            f"unknown analog perf scale {scale!r} "
            f"(expected one of {sorted(_ANALOG_SCALES)})"
        )
    solver = measure_batched_solver(scale=scale, seed=seed)
    return {
        "schema": "repro-perf-analog/1",
        "created_unix": time.time(),
        "scale": scale,
        "solver": solver.as_dict(),
        "yield": measure_batched_yield(scale=scale),
        "sweep": measure_characterize_cache(scale=scale),
        "min_speedup_gate": MIN_BATCHED_SPEEDUP if scale == "default" else None,
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }


def analog_gate_failures(data: dict[str, Any]) -> list[str]:
    """The gates a recorded analog perf run must pass (empty = green).

    The speedup floor applies only at the default scale — at tiny N the
    batched path is legitimately slower (numpy per-op overhead), which is
    why the recorded number is the N=256 one.
    """
    failures: list[str] = []
    if data["solver"]["outputs_match"] is not True:
        failures.append("solver outputs_match")
    if not data["yield"]["failures_match"]:
        failures.append("yield failures_match")
    if not data["sweep"]["all_cached_on_rerun"]:
        failures.append("sweep cache-hit re-run")
    gate = data.get("min_speedup_gate")
    if gate is not None and (data["solver"]["speedup"] or 0.0) < gate:
        failures.append(
            f"solver speedup {data['solver']['speedup']:.2f}x < {gate:.0f}x"
        )
    return failures


def write_analog_report(
    data: dict[str, Any], path: str | Path = ANALOG_REPORT_PATH
) -> Path:
    """Serialise an analog perf run to JSON (the recorded artefact)."""
    target = Path(path)
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return target


def render_analog_report(data: dict[str, Any]) -> str:
    """Human-readable summary of one analog perf run."""
    solver = data["solver"]
    yld = data["yield"]
    sweep = data["sweep"]
    match = {True: "yes", False: "NO", None: "-"}
    lines = [
        f"analog perf ({data['scale']} scale)",
        f"  {solver['name']}: {solver['fast_seconds']:.2f}s batched vs "
        f"{solver['reference_seconds']:.2f}s scalar "
        f"({solver['speedup']:.2f}x), bit-identical: "
        f"{match[solver['outputs_match']]}",
        f"  sensing_yield[N={yld['trials']}]: {yld['batched_seconds']:.2f}s vs "
        f"{yld['reference_seconds']:.2f}s ({yld['speedup']:.2f}x), failures "
        f"{yld['batched_failures']} == {yld['reference_failures']}: "
        f"{match[yld['failures_match']]}",
        f"  characterize[{sweep['cells']} cells]: cold "
        f"{sweep['cold_wall_seconds']:.2f}s -> warm "
        f"{sweep['warm_wall_seconds']:.2f}s, re-run cache "
        f"{sweep['warm_cache_hits']} hit / {sweep['warm_cache_misses']} miss, "
        f"fully cached: {match[sweep['all_cached_on_rerun']]}",
    ]
    return "\n".join(lines)


# --- zero-copy data-plane probes ------------------------------------------

#: Where ``python -m repro.perf --dataplane`` writes its record by default.
DATAPLANE_REPORT_PATH = "BENCH_dataplane.json"

_DATAPLANE_SCALES: dict[str, dict[str, Any]] = {
    # CI smoke: the fast preset, still large enough that per-slice
    # payloads clear the 16 KiB shared-memory threshold.
    "tiny": {"n_pairs": 1, "denoise_iterations": 10, "cache_slices": 6,
             "cache_shape": (256, 128)},
    # The recorded scale: heavier denoise so serialization is a visible
    # fraction of the pool round-trip.
    "default": {"n_pairs": 1, "denoise_iterations": 25, "cache_slices": 24,
                "cache_shape": (512, 256)},
}


def _leaked_segments() -> int:
    """Count ``repro_dp_*`` segments still present under ``/dev/shm``."""
    from repro.runtime.dataplane import SEGMENT_PREFIX

    try:
        return sum(
            1 for name in os.listdir("/dev/shm")
            if name.startswith(SEGMENT_PREFIX)
        )
    except OSError:
        return 0


def _measure_cache_hit(scale: str, seed: int) -> dict[str, Any]:
    """Warm-hit latency: mmap-backed sidecar entries vs classic pickles.

    Stores the same stack-of-arrays payload in two throwaway caches —
    one with ``.npy`` sidecars (``blob_min_bytes`` at its default), one
    with the classic single-pickle format (``blob_min_bytes=None``) —
    and times the warm ``load`` best-of-5.  ``outputs_match`` re-checks
    that the mmap-backed payload pickles byte-identically to the
    classic one (the cache's bit-identity contract).
    """
    import pickle
    import tempfile

    from repro.runtime.cache import StageCache

    params = _DATAPLANE_SCALES[scale]
    stack = _synthetic_stack(
        params["cache_slices"], tuple(params["cache_shape"]), seed=seed
    )
    payload = {"images": stack}
    notes = {"slices": float(len(stack))}
    payload_bytes = sum(img.nbytes for img in stack)
    key = "d" * 64
    with tempfile.TemporaryDirectory(prefix="repro-perf-dp-") as root:
        mmap_cache = StageCache(Path(root) / "mmap")
        plain_cache = StageCache(Path(root) / "plain", blob_min_bytes=None)
        mmap_cache.store(key, payload, notes)
        plain_cache.store(key, payload, notes)
        mmap_s, mmap_out = _time(lambda: mmap_cache.load(key), 5)
        plain_s, plain_out = _time(lambda: plain_cache.load(key), 5)
        outputs_match = pickle.dumps(mmap_out) == pickle.dumps(plain_out)
    return {
        "payload_bytes": payload_bytes,
        "slices": len(stack),
        "mmap_hit_seconds": mmap_s,
        "pickle_hit_seconds": plain_s,
        "speedup": plain_s / max(mmap_s, 1e-9),
        "outputs_match": outputs_match,
    }


def measure_dataplane(
    scale: str = "default", seed: int = 1234, shard_workers: int = 4
) -> dict[str, Any]:
    """The ``dataplane`` probe: shm vs pickle shard transport, plus RSS.

    Runs the same fast-preset single-chip campaign three times — serial
    (``workers=1``, no shard), slice-sharded over *shard_workers* on the
    **pickle** plane, and again on the **shm** plane — under
    :class:`repro.perf.rss.RssSampler`, then adds the warm cache-hit
    comparison from :func:`_measure_cache_hit`.

    The planes are compared at *equal* worker counts, so the shm-plane
    speedup isolates serialization cost, not parallel scaling.  Gates
    (:func:`dataplane_gate_failures`) are correctness-only: byte-level
    ``outputs_match`` across all three runs, the cache round-trip, and
    zero leaked ``/dev/shm`` segments.  The speedup and RSS numbers are
    the recorded trajectory.

    On a box with fewer than two usable CPUs the probe **abstains** from
    the plane comparison: a process pool multiplexed onto one core
    measures scheduler contention, not transport cost, so any
    shm-vs-pickle ratio it produced would be noise.  The record says so
    explicitly (``abstained``/``abstain_reason``), carries the serial
    run and the (single-threaded, still meaningful) warm cache-hit
    comparison, and sets both plane records and ``outputs_match`` to
    ``None``; gates skip the plane checks.
    """
    import pickle
    from dataclasses import replace as dc_replace

    from repro.pipeline.config import PipelineConfig, ShardPlan
    from repro.runtime import ChipJob, run_campaign
    from repro.runtime.dataplane import DEFAULT_MIN_BYTES, available
    from repro.runtime.shard import shutdown_shard_pools

    if scale not in _DATAPLANE_SCALES:
        raise ReproError(
            f"unknown dataplane perf scale {scale!r} "
            f"(expected one of {sorted(_DATAPLANE_SCALES)})"
        )
    from repro.perf.rss import RssSampler

    params = _DATAPLANE_SCALES[scale]
    job = ChipJob.synthetic(
        "perf_dataplane", "classic", n_pairs=params["n_pairs"], validate=False
    )
    config = PipelineConfig(
        denoise_iterations=params["denoise_iterations"],
        align_search_px=2,
        align_baselines=(1, 2),
    )
    shard = ShardPlan(slices=True, workers=shard_workers)

    def _run(plan_config: PipelineConfig, workers: int) -> dict[str, Any]:
        shutdown_shard_pools()
        with RssSampler() as rss:
            t0 = time.perf_counter()
            report = run_campaign([job], config=plan_config, workers=workers)
            wall = time.perf_counter() - t0
        shutdown_shard_pools()
        return {
            "wall_seconds": wall,
            "peak_rss_bytes": rss.peak_bytes,
            "blob": pickle.dumps(report.results()),
        }

    from repro.runtime import usable_cpus

    cores = usable_cpus()
    abstained = cores < 2

    serial = _run(config, workers=1)
    record: dict[str, Any] = {
        "schema": "repro-perf-dataplane/1",
        "created_unix": time.time(),
        "scale": scale,
        "shard_workers": shard_workers,
        "usable_cpus": cores,
        "abstained": abstained,
        "abstain_reason": (
            f"usable_cpus()={cores} < 2: a pool multiplexed onto one core "
            "measures scheduler contention, not transport cost — plane "
            "comparison skipped, serial + cache numbers recorded"
            if abstained else None
        ),
        "shm_available": available(),
        "shm_min_bytes": DEFAULT_MIN_BYTES,
        "serial": {
            "wall_seconds": serial["wall_seconds"],
            "peak_rss_bytes": serial["peak_rss_bytes"],
        },
        "cache": _measure_cache_hit(scale, seed),
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }
    if abstained:
        record.update({
            "pickle_plane": None,
            "shm_plane": None,
            "outputs_match": None,
            "leaked_segments": _leaked_segments(),
        })
        return record

    pickle_plane = _run(
        config.replaced(shard=dc_replace(shard, data_plane="pickle")),
        workers=shard_workers,
    )
    shm_plane = _run(
        config.replaced(shard=dc_replace(shard, data_plane="shm")),
        workers=shard_workers,
    )

    def _plane(run: dict[str, Any]) -> dict[str, Any]:
        return {
            "wall_seconds": run["wall_seconds"],
            "peak_rss_bytes": run["peak_rss_bytes"],
            "speedup_vs_serial": serial["wall_seconds"] / max(run["wall_seconds"], 1e-9),
        }

    shm_record = _plane(shm_plane)
    shm_record["speedup_vs_pickle_plane"] = (
        pickle_plane["wall_seconds"] / max(shm_plane["wall_seconds"], 1e-9)
    )
    shm_record["peak_rss_delta_bytes"] = (
        shm_plane["peak_rss_bytes"] - pickle_plane["peak_rss_bytes"]
    )
    record.update({
        "pickle_plane": _plane(pickle_plane),
        "shm_plane": shm_record,
        "outputs_match": (
            serial["blob"] == pickle_plane["blob"]
            and serial["blob"] == shm_plane["blob"]
        ),
        "leaked_segments": _leaked_segments(),
    })
    return record


def dataplane_gate_failures(
    data: dict[str, Any], rss_ceiling_mb: float | None = None
) -> list[str]:
    """The gates a recorded dataplane run must pass (empty = green).

    Correctness gates only — bit-identity across planes, the cache
    round-trip, and segment hygiene.  Wall-time and RSS are recorded,
    not gated (the probe runs on whatever box CI gives it); CI may pass
    an explicit *rss_ceiling_mb* to also bound the shm-plane footprint.
    An *abstained* record (single-CPU box — see :func:`measure_dataplane`)
    has no plane runs, so only the cache and segment gates apply.
    """
    failures: list[str] = []
    abstained = data.get("abstained", False)
    if not abstained and data["outputs_match"] is not True:
        failures.append("campaign outputs_match across planes")
    if data["cache"]["outputs_match"] is not True:
        failures.append("cache mmap-vs-pickle outputs_match")
    if data["leaked_segments"]:
        failures.append(f"{data['leaked_segments']} leaked /dev/shm segments")
    if rss_ceiling_mb is not None and not abstained:
        peak_mb = data["shm_plane"]["peak_rss_bytes"] / (1024 * 1024)
        if peak_mb > rss_ceiling_mb:
            failures.append(
                f"shm-plane peak RSS {peak_mb:.0f} MiB > {rss_ceiling_mb:.0f} MiB ceiling"
            )
    return failures


def write_dataplane_report(
    data: dict[str, Any], path: str | Path = DATAPLANE_REPORT_PATH
) -> Path:
    """Serialise a dataplane perf run to JSON (the recorded artefact)."""
    target = Path(path)
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return target


def render_dataplane_report(data: dict[str, Any]) -> str:
    """Human-readable summary of one dataplane perf run."""
    match = {True: "yes", False: "NO", None: "-"}
    mib = 1024 * 1024
    cache = data["cache"]
    lines = [
        f"dataplane perf ({data['scale']} scale, "
        f"{data['shard_workers']} shard workers, shm available: "
        f"{match[data['shm_available']]})",
        f"  serial:       {data['serial']['wall_seconds']:.2f}s, peak RSS "
        f"{data['serial']['peak_rss_bytes'] / mib:.0f} MiB",
    ]
    if data.get("abstained"):
        lines.append(f"  planes:       abstained — {data['abstain_reason']}")
    else:
        shm = data["shm_plane"]
        pkl = data["pickle_plane"]
        lines += [
            f"  pickle plane: {pkl['wall_seconds']:.2f}s "
            f"({pkl['speedup_vs_serial']:.2f}x vs serial), peak RSS "
            f"{pkl['peak_rss_bytes'] / mib:.0f} MiB",
            f"  shm plane:    {shm['wall_seconds']:.2f}s "
            f"({shm['speedup_vs_serial']:.2f}x vs serial, "
            f"{shm['speedup_vs_pickle_plane']:.2f}x vs pickle plane), peak RSS "
            f"{shm['peak_rss_bytes'] / mib:.0f} MiB "
            f"({shm['peak_rss_delta_bytes'] / mib:+.0f} MiB vs pickle plane)",
        ]
    lines += [
        f"  cache hit [{cache['payload_bytes'] / mib:.1f} MiB]: mmap "
        f"{cache['mmap_hit_seconds'] * 1e3:.1f} ms vs pickle "
        f"{cache['pickle_hit_seconds'] * 1e3:.1f} ms "
        f"({cache['speedup']:.2f}x), bit-identical: "
        f"{match[cache['outputs_match']]}",
        f"  outputs match across planes: {match[data['outputs_match']]}, "
        f"leaked segments: {data['leaked_segments']}",
    ]
    return "\n".join(lines)


def write_report(report: BenchReport, path: str | Path = DEFAULT_REPORT_PATH) -> Path:
    """Serialise a perf run to JSON (the recorded trajectory artefact)."""
    target = Path(path)
    target.write_text(json.dumps(report.as_dict(), indent=2, sort_keys=True) + "\n")
    return target


def render_report(report: BenchReport) -> str:
    """Human-readable table of one perf run."""
    from repro.core.report import render_table

    rows = []
    for k in report.kernels:
        rows.append([
            k.name,
            f"{k.ns_per_pixel:.1f}",
            f"{k.reference_seconds / max(k.pixels, 1) * 1e9:.1f}" if k.reference_seconds else "-",
            f"{k.speedup:.2f}x" if k.speedup else "-",
            {True: "yes", False: "NO", None: "-"}[k.outputs_match],
        ])
    body = render_table(
        ["kernel", "ns/px", "ref ns/px", "speedup", "match"],
        rows,
        title=f"pipeline kernels ({report.scale} scale)",
    )
    lines = [body, f"\nend-to-end pipeline: {report.pipeline['seconds']:.3f}s "
                   f"({report.pipeline['ns_per_pixel']:.1f} ns/px)"]
    if report.obs is not None:
        lines.append(
            f"obs overhead: disabled "
            f"{report.obs['disabled_overhead_fraction']:.5%} of pipeline "
            f"(budget {report.obs['budget_fraction']:.0%}; "
            f"{report.obs['spans_per_pipeline']} spans at "
            f"{report.obs['noop_ns_per_call']:.0f} ns no-op), enabled "
            f"{report.obs['enabled_overhead_fraction']:+.2%}"
        )
        if "exporter_overhead_fraction" in report.obs:
            lines.append(
                f"obs exporter live: "
                f"{report.obs['exporter_overhead_fraction']:+.2%} vs bare "
                f"pipeline (budget "
                f"{report.obs['exporter_budget_fraction']:.0%})"
            )
    if report.campaign is not None:
        lines.append(f"campaign probe ({report.campaign['preset']}): "
                     f"{report.campaign['wall_seconds']:.2f}s wall")
    if report.shard is not None:
        match = "yes" if report.shard["outputs_match"] else "NO"
        lines.append(
            f"shard probe: {report.shard['serial_seconds']:.2f}s serial -> "
            f"{report.shard['sharded_seconds']:.2f}s sharded "
            f"({report.shard['speedup']:.2f}x on {report.shard['cores']} "
            f"cores), outputs match: {match}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Catalog suite: population-campaign throughput (``--catalog``).

CATALOG_REPORT_PATH = "BENCH_catalog.json"

_CATALOG_SCALES: dict[str, dict[str, Any]] = {
    # CI smoke: one chip per topology family, cropped to the first lane.
    "tiny": {"variants": 2, "workers": 2},
    # The recorded scale: both families across all three vendor profiles.
    "default": {"variants": 6, "workers": 2},
}


def measure_catalog(
    scale: str = "default", seed: int = 0, workers: int | None = None
) -> dict[str, Any]:
    """The ``catalog`` probe: variants/sec through the population campaign.

    Enumerates a small grid (classic + OCSA across the vendor profiles,
    word size 1, first-lane crop), runs it cold against a throwaway
    cache, then warm (same cache — every stage must hit), then serial
    (``workers=1``, same cache).  Gates
    (:func:`catalog_gate_failures`) are correctness-only: the results
    digest must be identical across all three runs (the substrate's
    bit-identity contract surfaced at the population level) and the warm
    run must not miss the cache.  Throughput (``variants_per_second``)
    is the recorded trajectory, not a gate.
    """
    import tempfile

    from repro.catalog import CatalogSpec, expand_grid, run_catalog_campaign

    if scale not in _CATALOG_SCALES:
        raise ReproError(
            f"unknown catalog perf scale {scale!r} "
            f"(expected one of {sorted(_CATALOG_SCALES)})"
        )
    params = _CATALOG_SCALES[scale]
    n = params["variants"]
    workers = workers if workers is not None else params["workers"]
    grid = CatalogSpec(
        variants=("classic", "ocsa"),
        vendors=("fab-a", "fab-b", "fab-c"),
        generations=("ddr4",),
        word_sizes=(1,),
        column_muxes=(4,),
        body_taps=("none",),
        noises=("nominal",),
    )
    variants = expand_grid(grid)[:n]
    # Crop to the first lane: the probe measures campaign plumbing, not
    # full-region RE; 400 nm covers lane 0 at every profile's pitch.
    job_kwargs = {"y_stop_nm": 400.0}

    def _run(run_workers: int, cache_dir: str):
        t0 = time.perf_counter()
        report = run_catalog_campaign(
            variants, workers=run_workers, cache_dir=cache_dir,
            seed=seed, job_kwargs=job_kwargs,
        )
        return report, time.perf_counter() - t0

    with tempfile.TemporaryDirectory(prefix="repro-perf-catalog-") as root:
        cold, cold_s = _run(workers, root)
        warm, warm_s = _run(workers, root)
        serial, _serial_s = _run(1, root)

    return {
        "schema": "repro-perf-catalog/1",
        "created_unix": time.time(),
        "scale": scale,
        "variants": len(variants),
        "workers": workers,
        "cold_wall_seconds": cold_s,
        "warm_wall_seconds": warm_s,
        "cold_variants_per_second": len(variants) / max(cold_s, 1e-9),
        "warm_variants_per_second": len(variants) / max(warm_s, 1e-9),
        "identification_rate": cold.population["identification_rate"],
        "results_digest": cold.results_digest(),
        "digests_match": (
            cold.results_digest() == warm.results_digest()
            and cold.results_digest() == serial.results_digest()
        ),
        "warm_cache_misses": warm.cache_misses,
        "environment": {
            "python": sys.version.split()[0],
            "numpy": np.__version__,
            "machine": platform.machine(),
        },
    }


def catalog_gate_failures(data: dict[str, Any]) -> list[str]:
    """The gates a recorded catalog run must pass (empty = green)."""
    failures: list[str] = []
    if data["digests_match"] is not True:
        failures.append("results digest differs across cold/warm/serial runs")
    if data["warm_cache_misses"]:
        failures.append(
            f"warm run missed the stage cache {data['warm_cache_misses']} times"
        )
    return failures


def write_catalog_report(
    data: dict[str, Any], path: str | Path = CATALOG_REPORT_PATH
) -> Path:
    """Serialise a catalog perf run to JSON (the recorded artefact)."""
    target = Path(path)
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return target


def render_catalog_report(data: dict[str, Any]) -> str:
    """Human-readable summary of one catalog perf run."""
    match = {True: "yes", False: "NO", None: "-"}
    return "\n".join([
        f"catalog perf ({data['scale']} scale, {data['variants']} variants, "
        f"{data['workers']} workers)",
        f"  cold: {data['cold_wall_seconds']:.2f}s "
        f"({data['cold_variants_per_second']:.2f} variants/s)",
        f"  warm: {data['warm_wall_seconds']:.2f}s "
        f"({data['warm_variants_per_second']:.2f} variants/s, "
        f"{data['warm_cache_misses']} cache misses)",
        f"  identification rate: {data['identification_rate']:.1%}, digests "
        f"match cold/warm/serial: {match[data['digests_match']]}",
    ])
