"""Lightweight peak-RSS sampling for the perf probes.

The zero-copy data plane's whole point is that shard payloads stop
being duplicated through pickle buffers, so its acceptance evidence is
a *memory* number, not just a wall-time one.  :class:`RssSampler` is a
daemon thread that walks the process tree under ``/proc`` every few
milliseconds and records the peak resident footprint across the
sampled interval:

* ``Pss`` from ``/proc/<pid>/smaps_rollup`` when the kernel provides
  it — proportional set size splits shared pages (including the
  ``/dev/shm`` segments themselves) fairly across the processes that
  map them, so a segment mapped by four shard workers is counted once,
  not four times;
* ``VmRSS`` from ``/proc/<pid>/status`` otherwise;
* ``resource.getrusage`` max-RSS as a last resort on hosts without
  ``/proc`` (that path cannot see live children, so it is a floor, not
  a tree total).

Sampling is best-effort by design: a child that exits between the
tree walk and the read is silently skipped, and the sampler never
raises out of its thread.  Peaks are therefore lower bounds with a
resolution of one ``interval`` — plenty for the BENCH record's
megabyte-scale deltas.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Callable

__all__ = ["RssSampler", "tree_rss_bytes"]


def _children(pid: int) -> list[int]:
    """Direct children of *pid*, via every task's ``children`` file."""
    kids: list[int] = []
    task_dir = f"/proc/{pid}/task"
    try:
        tids = os.listdir(task_dir)
    except OSError:
        return kids
    for tid in tids:
        try:
            with open(f"{task_dir}/{tid}/children") as fh:
                kids.extend(int(tok) for tok in fh.read().split())
        except (OSError, ValueError):
            continue
    return kids


def _tree_pids(root: int) -> list[int]:
    """*root* plus every live descendant, breadth-first."""
    pids = [root]
    seen = {root}
    index = 0
    while index < len(pids):
        for kid in _children(pids[index]):
            if kid not in seen:
                seen.add(kid)
                pids.append(kid)
        index += 1
    return pids


def _pid_rss_bytes(pid: int) -> int:
    """Resident bytes of one process: smaps_rollup Pss, else VmRSS."""
    try:
        with open(f"/proc/{pid}/smaps_rollup") as fh:
            for line in fh:
                if line.startswith("Pss:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    try:
        with open(f"/proc/{pid}/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) * 1024
    except (OSError, ValueError, IndexError):
        pass
    return 0


def _rusage_rss_bytes() -> int:
    """getrusage max-RSS (self + reaped children), for /proc-less hosts."""
    try:
        import resource
    except ImportError:
        return 0
    self_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    child_kb = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    # ru_maxrss is KiB on Linux (bytes on macOS, where /proc sampling is
    # unavailable anyway; the factor error there only inflates the floor).
    return (self_kb + child_kb) * 1024


def tree_rss_bytes(root: int | None = None) -> int:
    """One instantaneous sample: resident bytes of *root* and descendants."""
    root = os.getpid() if root is None else root
    total = sum(_pid_rss_bytes(pid) for pid in _tree_pids(root))
    if total <= 0:
        total = _rusage_rss_bytes()
    return total


class RssSampler:
    """Context manager recording the peak process-tree RSS while open.

    >>> with RssSampler() as rss:
    ...     run_campaign(...)          # doctest: +SKIP
    >>> rss.peak_bytes                 # doctest: +SKIP
    """

    def __init__(
        self,
        interval: float = 0.05,
        root: int | None = None,
        on_sample: "Callable[[int], None] | None" = None,
    ):
        self.interval = max(float(interval), 0.001)
        self.root = os.getpid() if root is None else root
        self.peak_bytes = 0
        self.samples = 0
        #: called with each instantaneous sample (bytes); the campaign
        #: runtime uses this to feed the repro_campaign_rss_bytes gauge.
        #: Same best-effort contract as sampling itself: never raises.
        self.on_sample = on_sample
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def _sample_once(self) -> None:
        sample = tree_rss_bytes(self.root)
        self.peak_bytes = max(self.peak_bytes, sample)
        self.samples += 1
        if self.on_sample is not None:
            self.on_sample(sample)

    def _run(self) -> None:
        while not self._stop.is_set():
            try:
                self._sample_once()
            except Exception:
                pass  # best-effort: never let sampling kill the probe
            self._stop.wait(self.interval)

    def __enter__(self) -> RssSampler:
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-rss-sampler", daemon=True
        )
        self._thread.start()
        return self

    def __exit__(self, *exc: object) -> None:
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        # Guarantee at least one sample even for sub-interval bodies.
        try:
            self._sample_once()
        except Exception:
            pass
