"""CLI: ``python -m repro.perf`` — run the kernel perf harness.

Writes ``BENCH_pipeline.json`` (per-kernel ns/pixel, speedup vs the
retained reference implementations, end-to-end pipeline time, campaign
wall time) and prints the human-readable table.  ``--analog``,
``--dataplane`` and ``--catalog`` run the analog, zero-copy data-plane
and chip-catalog suites instead (``BENCH_analog.json`` /
``BENCH_dataplane.json`` / ``BENCH_catalog.json``).
"""

from __future__ import annotations

import sys

from repro.errors import ReproError
from repro.perf.history import (
    DEFAULT_HISTORY_PATH,
    check_regression,
    record_run,
    render_regressions,
)
from repro.perf.bench import (
    ANALOG_REPORT_PATH,
    CATALOG_REPORT_PATH,
    DATAPLANE_REPORT_PATH,
    DEFAULT_REPORT_PATH,
    _SCALES,
    analog_gate_failures,
    catalog_gate_failures,
    dataplane_gate_failures,
    measure_catalog,
    measure_dataplane,
    render_analog_report,
    render_catalog_report,
    render_dataplane_report,
    render_report,
    run_analog_benchmarks,
    run_benchmarks,
    write_analog_report,
    write_catalog_report,
    write_dataplane_report,
    write_report,
)

_USAGE = f"""\
usage: python -m repro.perf [options]

options:
  --scale S          workload scale: {', '.join(sorted(_SCALES))} (default: default)
  --out PATH         report path (default: {DEFAULT_REPORT_PATH},
                     {ANALOG_REPORT_PATH} with --analog,
                     {DATAPLANE_REPORT_PATH} with --dataplane,
                     {CATALOG_REPORT_PATH} with --catalog)
  --no-campaign      skip the one-chip campaign wall-time probe
  --analog           run the analog suite instead (batched solver vs scalar,
                     sensing_yield parity, characterize cache re-run)
  --dataplane        run the zero-copy data-plane suite instead (shm vs
                     pickle shard transport, peak RSS, cache mmap hits)
  --catalog          run the chip-catalog suite instead (population
                     campaign variants/sec, digest parity, warm cache)
  --workers N        shard workers for --dataplane (default: 4), or
                     campaign workers for --catalog (default: 2)
  --rss-ceiling-mb M with --dataplane: fail if the shm-plane peak RSS
                     exceeds M MiB (default: record only, no ceiling)
  --history PATH     append-mode perf history file (default:
                     {DEFAULT_HISTORY_PATH}); every run is recorded
  --no-history       skip the history append entirely
  --check-regression fail (exit 1) when a key timing exceeds the gate
                     threshold times the trailing same-environment
                     median for this probe
  --regression-threshold X
                     the --check-regression gate multiplier (default: 1.5)
"""


def _finish_history(
    data: dict,
    history: str | None,
    check: bool,
    threshold: float,
) -> int:
    """Record *data* in the history log, then gate on its regressions.

    The comparison runs *before* the append so a run never baselines
    itself; the append happens even when the gate fires, because the
    history must reflect what actually ran.
    """
    if history is None:
        return 0
    regressions = check_regression(data, history, threshold=threshold) if check else []
    record_run(data, history)
    if regressions:
        print(render_regressions(regressions), file=sys.stderr)
        return 1
    return 0


def _run_analog(
    scale: str, out: str | None,
    history: str | None, check: bool, threshold: float,
) -> int:
    try:
        data = run_analog_benchmarks(scale=scale)
    except ReproError as exc:
        print(f"analog perf run failed: {exc}", file=sys.stderr)
        return 1
    path = write_analog_report(data, out or ANALOG_REPORT_PATH)
    print(render_analog_report(data))
    print(f"\nreport written: {path}")
    failures = analog_gate_failures(data)
    if failures:
        print(f"ANALOG GATE FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    return _finish_history(data, history, check, threshold)


def _run_dataplane(
    scale: str, out: str | None, workers: int, rss_ceiling_mb: float | None,
    history: str | None, check: bool, threshold: float,
) -> int:
    try:
        data = measure_dataplane(scale=scale, shard_workers=workers)
    except ReproError as exc:
        print(f"dataplane perf run failed: {exc}", file=sys.stderr)
        return 1
    path = write_dataplane_report(data, out or DATAPLANE_REPORT_PATH)
    print(render_dataplane_report(data))
    print(f"\nreport written: {path}")
    failures = dataplane_gate_failures(data, rss_ceiling_mb=rss_ceiling_mb)
    if failures:
        print(f"DATAPLANE GATE FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    return _finish_history(data, history, check, threshold)


def _run_catalog(
    scale: str, out: str | None, workers: int | None,
    history: str | None, check: bool, threshold: float,
) -> int:
    try:
        data = measure_catalog(scale=scale, workers=workers)
    except ReproError as exc:
        print(f"catalog perf run failed: {exc}", file=sys.stderr)
        return 1
    path = write_catalog_report(data, out or CATALOG_REPORT_PATH)
    print(render_catalog_report(data))
    print(f"\nreport written: {path}")
    failures = catalog_gate_failures(data)
    if failures:
        print(f"CATALOG GATE FAILED: {', '.join(failures)}", file=sys.stderr)
        return 1
    return _finish_history(data, history, check, threshold)


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    scale = "default"
    out: str | None = None
    include_campaign = True
    analog = False
    dataplane = False
    catalog = False
    workers: int | None = None
    rss_ceiling_mb: float | None = None
    history: str | None = DEFAULT_HISTORY_PATH
    check = False
    threshold = 1.5
    i = 0
    while i < len(args):
        arg = args[i]
        if arg == "--scale":
            i += 1
            if i >= len(args):
                print("--scale requires a value", file=sys.stderr)
                return 2
            scale = args[i]
        elif arg == "--out":
            i += 1
            if i >= len(args):
                print("--out requires a value", file=sys.stderr)
                return 2
            out = args[i]
        elif arg == "--workers":
            i += 1
            if i >= len(args):
                print("--workers requires a value", file=sys.stderr)
                return 2
            try:
                workers = int(args[i])
            except ValueError:
                print(f"--workers expects an integer, got {args[i]!r}", file=sys.stderr)
                return 2
        elif arg == "--rss-ceiling-mb":
            i += 1
            if i >= len(args):
                print("--rss-ceiling-mb requires a value", file=sys.stderr)
                return 2
            try:
                rss_ceiling_mb = float(args[i])
            except ValueError:
                print(
                    f"--rss-ceiling-mb expects a number, got {args[i]!r}",
                    file=sys.stderr,
                )
                return 2
        elif arg == "--history":
            i += 1
            if i >= len(args):
                print("--history requires a value", file=sys.stderr)
                return 2
            history = args[i]
        elif arg == "--no-history":
            history = None
        elif arg == "--check-regression":
            check = True
        elif arg == "--regression-threshold":
            i += 1
            if i >= len(args):
                print("--regression-threshold requires a value", file=sys.stderr)
                return 2
            try:
                threshold = float(args[i])
            except ValueError:
                print(
                    f"--regression-threshold expects a number, got {args[i]!r}",
                    file=sys.stderr,
                )
                return 2
        elif arg == "--no-campaign":
            include_campaign = False
        elif arg == "--analog":
            analog = True
        elif arg == "--dataplane":
            dataplane = True
        elif arg == "--catalog":
            catalog = True
        elif arg in ("--help", "-h"):
            print(_USAGE)
            return 0
        else:
            print(f"unknown option {arg!r}", file=sys.stderr)
            print(_USAGE, file=sys.stderr)
            return 2
        i += 1

    if analog + dataplane + catalog > 1:
        print(
            "--analog, --dataplane and --catalog are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if analog:
        return _run_analog(scale, out, history, check, threshold)
    if dataplane:
        return _run_dataplane(scale, out, workers if workers is not None else 4,
                              rss_ceiling_mb, history, check, threshold)
    if catalog:
        return _run_catalog(scale, out, workers, history, check, threshold)

    out = out or DEFAULT_REPORT_PATH
    try:
        report = run_benchmarks(scale=scale, include_campaign=include_campaign)
    except ReproError as exc:
        print(f"perf run failed: {exc}", file=sys.stderr)
        return 1
    path = write_report(report, out)
    print(render_report(report))
    print(f"\nreport written: {path}")
    mismatched = [k.name for k in report.kernels if k.outputs_match is False]
    if report.shard is not None and not report.shard["outputs_match"]:
        mismatched.append("shard[campaign]")
    if mismatched:
        print(f"OUTPUT MISMATCH in: {', '.join(mismatched)}", file=sys.stderr)
        return 1
    return _finish_history(report.as_dict(), history, check, threshold)


if __name__ == "__main__":
    raise SystemExit(main())
