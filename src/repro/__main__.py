"""Command-line entry point: ``python -m repro [command]``.

Commands:

* ``summary`` (default) — the dataset and the audit at a glance;
* ``chips`` — Table I with derived geometry;
* ``audit`` — Table II (overhead errors and porting costs);
* ``models`` — Fig 12 model-inaccuracy statistics;
* ``spice <CHIP>`` — the SPICE card of one chip's reverse-engineered SA;
* ``bundle <DIR>`` — write the open-source data bundle to a directory.
"""

from __future__ import annotations

import sys

from repro.core.chips import CHIPS, total_measurement_count
from repro.core.hifi import spice_card
from repro.core.model_accuracy import all_reports, worst_case_factor
from repro.core.overheads import table2_rows
from repro.core.report import percent, render_table


def cmd_chips() -> None:
    rows = [
        [
            c.chip_id, c.vendor, c.generation, f"{c.storage_gbit}Gb", str(c.year),
            f"{c.die_area_mm2:.0f}mm^2", c.detector, c.topology.value,
            percent(c.mat_area_fraction), f"{c.sa_height_um():.1f}um",
        ]
        for c in CHIPS.values()
    ]
    print(render_table(
        ["ID", "Vendor", "Gen", "Size", "Year", "Die", "Det.", "Topology",
         "MAT frac", "SA height"],
        rows, title="Studied chips (Table I + derived)",
    ))
    print(f"\ntotal size measurements: {total_measurement_count()}")


def cmd_audit() -> None:
    rows = [
        [r.paper.title, ",".join(i.name for i in r.paper.inaccuracies),
         r.error_str, r.porting_str]
        for r in table2_rows()
    ]
    print(render_table(
        ["Research", "Inaccuracies", "Overhead error", "Porting cost"],
        rows, title="Research audit (Table II)",
    ))


def cmd_models() -> None:
    rows = []
    for report in all_reports():
        value, who = report.maximum("wl_error")
        rows.append([
            report.model, report.generation,
            percent(report.average("wl_error")),
            f"{percent(value)} ({who.chip_id} {who.kind.value})",
        ])
    print(render_table(
        ["Model", "vs", "avg W/L error", "worst W/L error"],
        rows, title="Public model inaccuracies (Fig 12)",
    ))
    print(f"\nworst single-dimension deviation: {worst_case_factor():.1f}x")


def cmd_summary() -> None:
    cmd_chips()
    print()
    cmd_models()
    print()
    cmd_audit()


def cmd_spice(chip_id: str) -> None:
    print(spice_card(chip_id))


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    command = args[0] if args else "summary"
    if command == "summary":
        cmd_summary()
    elif command == "chips":
        cmd_chips()
    elif command == "audit":
        cmd_audit()
    elif command == "models":
        cmd_models()
    elif command == "spice":
        if len(args) < 2:
            print("usage: python -m repro spice <CHIP_ID>", file=sys.stderr)
            return 2
        cmd_spice(args[1].upper())
    elif command == "bundle":
        if len(args) < 2:
            print("usage: python -m repro bundle <TARGET_DIR>", file=sys.stderr)
            return 2
        from repro.core.bundle import write_bundle

        manifest = write_bundle(args[1])
        print(f"bundle written: {len(manifest['chips'])} chips, "
              f"{len(manifest['tables'])} tables -> {args[1]}")
    else:
        print(__doc__, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
