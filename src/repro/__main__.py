"""Command-line entry point: ``python -m repro [command]``.

Commands:

* ``summary`` (default) — the dataset and the audit at a glance;
* ``chips`` — Table I with derived geometry;
* ``audit`` — Table II (overhead errors and porting costs);
* ``models`` — Fig 12 model-inaccuracy statistics;
* ``spice <CHIP>`` — the SPICE card of one chip's reverse-engineered SA;
* ``bundle <DIR>`` — write the open-source data bundle to a directory;
* ``campaign [TARGET ...]`` — image + reverse engineer many chips through
  the parallel, stage-cached campaign runtime (``--help`` for options);
* ``characterize`` — sweep sense-amp figures of merit (offset, latency,
  energy, Monte-Carlo yield) across corners × topologies on the batched
  analog solver, through the same campaign runtime (``--help``);
* ``catalog`` — enumerate or sample a parametric chip-variant population
  from the catalog registry, fuzz the full imaging + RE pipeline over it
  and score population identification accuracy (``--help``);
* ``obs serve`` — re-serve saved telemetry artifacts (metrics snapshot,
  span trace, event JSONL) over HTTP as Prometheus text / OTLP JSON /
  event-stream endpoints (``--help``);
* ``obs analyze`` — offline trace analytics: critical path, per-stage /
  per-kernel attribution, cache efficiency, and two-trace diffs
  (``--help``);
* ``serve`` — the campaign-as-a-service daemon: an HTTP job API
  multiplexing many campaign/characterize/catalog jobs onto one shared
  worker pool and stage cache, with per-job event streams, priority
  queueing, tenant quotas and SIGTERM graceful drain (``--help``).

``campaign``, ``characterize`` and ``catalog`` all accept
``--serve-obs PORT`` to expose the same endpoints *live* while the run
is in flight.
"""

from __future__ import annotations

import sys

from repro.core.chips import CHIPS, total_measurement_count
from repro.core.hifi import spice_card
from repro.core.model_accuracy import all_reports, worst_case_factor
from repro.core.overheads import table2_rows
from repro.core.report import percent, render_table


def cmd_chips() -> None:
    rows = [
        [
            c.chip_id, c.vendor, c.generation, f"{c.storage_gbit}Gb", str(c.year),
            f"{c.die_area_mm2:.0f}mm^2", c.detector, c.topology.value,
            percent(c.mat_area_fraction), f"{c.sa_height_um():.1f}um",
        ]
        for c in CHIPS.values()
    ]
    print(render_table(
        ["ID", "Vendor", "Gen", "Size", "Year", "Die", "Det.", "Topology",
         "MAT frac", "SA height"],
        rows, title="Studied chips (Table I + derived)",
    ))
    print(f"\ntotal size measurements: {total_measurement_count()}")


def cmd_audit() -> None:
    rows = [
        [r.paper.title, ",".join(i.name for i in r.paper.inaccuracies),
         r.error_str, r.porting_str]
        for r in table2_rows()
    ]
    print(render_table(
        ["Research", "Inaccuracies", "Overhead error", "Porting cost"],
        rows, title="Research audit (Table II)",
    ))


def cmd_models() -> None:
    rows = []
    for report in all_reports():
        value, who = report.maximum("wl_error")
        rows.append([
            report.model, report.generation,
            percent(report.average("wl_error")),
            f"{percent(value)} ({who.chip_id} {who.kind.value})",
        ])
    print(render_table(
        ["Model", "vs", "avg W/L error", "worst W/L error"],
        rows, title="Public model inaccuracies (Fig 12)",
    ))
    print(f"\nworst single-dimension deviation: {worst_case_factor():.1f}x")


def cmd_summary() -> None:
    cmd_chips()
    print()
    cmd_models()
    print()
    cmd_audit()


def cmd_spice(chip_id: str) -> None:
    print(spice_card(chip_id))


def _with_obs_server(port, linger, obs_config, body):
    """Run ``body()`` with a live telemetry server attached, when asked.

    With ``port`` ``None`` this is a plain ``body()`` call.  Otherwise
    the body runs inside an :class:`~repro.obs.ObsSession` built from
    *obs_config* — making its tracer/registry/bus *ambient*, which the
    campaign runtime feeds live as chips finish — and an
    :class:`~repro.obs.export.ObsServer` exposes them on ``port``
    (``/metrics`` ``/events`` ``/trace`` ``/healthz``).  After the body
    returns the server flips ``/healthz`` to ``"done"`` (``"failed"``
    when the body raises) and keeps serving for ``linger`` seconds so
    scrapers (the CI smoke job) can collect the final snapshot
    deterministically instead of seeing an abrupt connection reset.
    """
    if port is None:
        return body()
    import time

    from repro.obs import ObsSession
    from repro.obs.export import ObsServer

    def _linger() -> None:
        if linger > 0:
            try:
                time.sleep(linger)
            except KeyboardInterrupt:
                pass

    with ObsSession(obs_config) as session:
        with ObsServer(
            port=port,
            metrics_fn=session.metrics_snapshot,
            spans_fn=session.spans,
            bus=session.bus,
        ) as server:
            print(
                f"obs: serving live telemetry on {server.url} "
                "(/metrics /events /trace /healthz)",
                file=sys.stderr,
            )
            try:
                rc = body()
            except BaseException:
                server.finish(state="failed")
                if session.bus is not None:
                    session.bus.close()
                _linger()
                raise
            server.finish()
            if session.bus is not None:
                session.bus.close()
            _linger()
            return rc


_CAMPAIGN_USAGE = """\
usage: python -m repro campaign [TARGET ...] [options]

TARGET   chip IDs (A4/B4/C4/A5/B5/C5) and/or topologies (classic, ocsa);
         default: classic ocsa
options:
  --workers N   worker-process budget (default: one per chip, capped at
                the CPU count — or the full CPU count with --shard-slices;
                1 = serial)
  --cache DIR   content-addressed stage cache directory (reruns reuse it)
  --shard-slices
                also shard per-slice stage work (acquire imaging, TV
                denoise, slice QC) into batches over the worker budget, so
                few-chip campaigns saturate all cores; results are
                bit-identical to --workers 1
  --shard-batch N
                slices per shard batch (default: auto, ~2 batches per
                shard worker); implies --shard-slices
  --data-plane P
                shard payload transport: "shm" (default; zero-copy
                shared-memory segments, falls back to pickle when
                /dev/shm is unavailable) or "pickle" (classic in-band
                serialization); results are bit-identical either way
  --pairs N     bitline pairs per generated region (default 2)
  --fast        cheaper pipeline settings (fewer TV iterations, smaller
                MI search) for demos and smoke tests
  --no-validate skip the ground-truth validation report
  --shift-penalty P
                MI shift regularisation in nats per pixel of shift
                (default 0.01)
  --search-strategy S
                MI search: "exhaustive" (default) or "pyramid"
                (coarse-to-fine, ~4x fewer MI evaluations)
  --tol T       TV denoise early-stop tolerance (default: run the full
                published iteration counts)
  --fault-plan SPEC
                inject seeded acquisition faults; SPEC is key=value pairs,
                e.g. "seed=7,drop=0.1,drift=0.08,spike_px=9" (keys: seed,
                drop, saturate, blackout, drift, spike_px, overshoot,
                blur, blur_sigma, burst).  Each chip derives its own seed
                from the plan seed + chip name.
  --max-retries N
                QC-failed re-acquisitions per chip before quarantine
                (default 2)
  --chip-timeout S
                per-chip wall-clock budget in seconds; an over-budget
                chip is quarantined at the next stage boundary
  --json PATH   also write the versioned campaign report
                (CampaignReport.to_json) to PATH ("-" = stdout)
  --chips N     campaign over N synthetic chips (alternating classic/ocsa
                topologies); mutually exclusive with explicit TARGETs
  --trace PATH  record a hierarchical span trace of the whole campaign;
                written as Chrome trace_event JSON (load in
                chrome://tracing or https://ui.perfetto.dev), or as raw
                span JSONL when PATH ends in .jsonl
  --trace-summary
                print an indented text summary of the span tree
  --metrics PATH
                write the merged metrics snapshot (counters, gauges,
                histograms) as JSON
  --events PATH
                write the lifecycle event stream (obs-event/1 JSONL:
                campaign/chip/attempt/stage start-finish-retry,
                cache hits/misses, shard backpressure)
  --serve-obs PORT
                expose live telemetry over HTTP while the campaign runs:
                /metrics (Prometheus text), /events (JSONL tail,
                ?follow=1), /trace (OTLP JSON), /healthz; implies
                trace + metrics + events collection
  --serve-linger S
                with --serve-obs: keep serving S seconds after the run
                finishes (/healthz state flips to "done"), so scrapers
                can collect the final snapshot (default 0)
  --log-level LEVEL
                emit JSON-lines structured logs at LEVEL (DEBUG, INFO,
                WARNING, ...) on stderr, in every worker

A campaign with quarantined chips still exits 0 as long as at least one
chip completed; it exits 1 only when every chip failed.
"""


def cmd_campaign(args: list[str]) -> int:
    from repro.pipeline import PipelineConfig
    from repro.runtime import ChipJob, run_campaign

    class _UsageError(Exception):
        pass

    def _value(flag: str, i: int) -> str:
        if i >= len(args):
            raise _UsageError(f"{flag} requires a value")
        return args[i]

    def _int_value(flag: str, i: int) -> int:
        raw = _value(flag, i)
        try:
            return int(raw)
        except ValueError:
            raise _UsageError(f"{flag} requires an integer, got {raw!r}") from None

    def _float_value(flag: str, i: int) -> float:
        raw = _value(flag, i)
        try:
            return float(raw)
        except ValueError:
            raise _UsageError(f"{flag} requires a number, got {raw!r}") from None

    targets: list[str] = []
    workers: int | None = None
    cache_dir: str | None = None
    shard_slices = False
    shard_batch: int | None = None
    data_plane: str | None = None
    n_pairs = 2
    fast = False
    validate = True
    shift_penalty: float | None = None
    search_strategy: str | None = None
    tol: float | None = None
    fault_spec: str | None = None
    max_retries: int | None = None
    chip_timeout: float | None = None
    json_path: str | None = None
    n_chips: int | None = None
    trace_path: str | None = None
    metrics_path: str | None = None
    events_path: str | None = None
    serve_obs: int | None = None
    serve_linger = 0.0
    log_level: str | None = None
    trace_summary = False
    try:
        i = 0
        while i < len(args):
            arg = args[i]
            if arg == "--workers":
                i += 1
                workers = _int_value(arg, i)
            elif arg == "--cache":
                i += 1
                cache_dir = _value(arg, i)
            elif arg == "--shard-slices":
                shard_slices = True
            elif arg == "--shard-batch":
                i += 1
                shard_batch = _int_value(arg, i)
                if shard_batch < 1:
                    raise _UsageError("--shard-batch requires a positive count")
            elif arg == "--data-plane":
                i += 1
                data_plane = _value(arg, i)
                if data_plane not in ("pickle", "shm"):
                    raise _UsageError(
                        f"--data-plane must be 'pickle' or 'shm', got {data_plane!r}"
                    )
            elif arg == "--pairs":
                i += 1
                n_pairs = _int_value(arg, i)
            elif arg == "--fast":
                fast = True
            elif arg == "--no-validate":
                validate = False
            elif arg == "--shift-penalty":
                i += 1
                shift_penalty = _float_value(arg, i)
            elif arg == "--search-strategy":
                i += 1
                search_strategy = _value(arg, i)
            elif arg == "--tol":
                i += 1
                tol = _float_value(arg, i)
            elif arg == "--fault-plan":
                i += 1
                fault_spec = _value(arg, i)
            elif arg == "--max-retries":
                i += 1
                max_retries = _int_value(arg, i)
            elif arg == "--chip-timeout":
                i += 1
                chip_timeout = _float_value(arg, i)
            elif arg == "--json":
                i += 1
                json_path = _value(arg, i)
            elif arg == "--chips":
                i += 1
                n_chips = _int_value(arg, i)
                if n_chips < 1:
                    raise _UsageError("--chips requires a positive count")
            elif arg == "--trace":
                i += 1
                trace_path = _value(arg, i)
            elif arg == "--trace-summary":
                trace_summary = True
            elif arg == "--metrics":
                i += 1
                metrics_path = _value(arg, i)
            elif arg == "--events":
                i += 1
                events_path = _value(arg, i)
            elif arg == "--serve-obs":
                i += 1
                serve_obs = _int_value(arg, i)
            elif arg == "--serve-linger":
                i += 1
                serve_linger = _float_value(arg, i)
            elif arg == "--log-level":
                i += 1
                log_level = _value(arg, i).upper()
                import logging as _logging

                if not isinstance(_logging.getLevelName(log_level), int):
                    raise _UsageError(f"unknown log level {log_level!r}")
            elif arg in ("--help", "-h"):
                print(_CAMPAIGN_USAGE)
                return 0
            elif arg.startswith("-"):
                raise _UsageError(f"unknown option {arg!r}")
            else:
                targets.append(arg)
            i += 1
    except _UsageError as exc:
        print(exc, file=sys.stderr)
        print(_CAMPAIGN_USAGE, file=sys.stderr)
        return 2

    if targets and n_chips is not None:
        print("--chips cannot be combined with explicit targets", file=sys.stderr)
        print(_CAMPAIGN_USAGE, file=sys.stderr)
        return 2
    if not targets and n_chips is None:
        targets = ["classic", "ocsa"]

    from repro.errors import ReproError

    fault_plan = None
    if fault_spec is not None:
        from repro.faults import FaultPlan

        try:
            fault_plan = FaultPlan.parse(fault_spec)
        except ReproError as exc:
            print(exc, file=sys.stderr)
            print(_CAMPAIGN_USAGE, file=sys.stderr)
            return 2

    serving = serve_obs is not None
    obs = None
    if (trace_path is not None or trace_summary or metrics_path is not None
            or events_path is not None or log_level is not None or serving):
        from repro.obs import ObsConfig

        obs = ObsConfig(
            trace=trace_path is not None or trace_summary or serving,
            metrics=metrics_path is not None or serving,
            events=events_path is not None or serving,
            log_level=log_level,
        )

    def _run() -> int:
        try:
            jobs = []
            if n_chips is not None:
                # N synthetic chips alternating the two reference topologies:
                # classic, ocsa, classic-2, ocsa-2, ...
                for k in range(n_chips):
                    topo = ("classic", "ocsa")[k % 2]
                    idx = k // 2
                    name = topo if idx == 0 else f"{topo}-{idx + 1}"
                    jobs.append(ChipJob.synthetic(
                        name, topo, n_pairs=n_pairs, validate=validate
                    ))
            for target in targets:
                if target.lower() in ("classic", "ocsa"):
                    jobs.append(ChipJob.synthetic(
                        target.lower(), target.lower(), n_pairs=n_pairs,
                        validate=validate
                    ))
                elif target.upper() in CHIPS:
                    jobs.append(ChipJob.for_chip(
                        target, n_pairs=n_pairs, validate=validate
                    ))
                else:
                    print(f"unknown campaign target {target!r}", file=sys.stderr)
                    return 2

            config = PipelineConfig()
            if fast:
                config = config.replaced(
                    denoise_iterations=10, align_search_px=2, align_baselines=(1, 2)
                )
            if shift_penalty is not None:
                config = config.replaced(align_shift_penalty=shift_penalty)
            if search_strategy is not None:
                config = config.replaced(align_search_strategy=search_strategy)
            if tol is not None:
                config = config.replaced(denoise_tol=tol)
            if shard_slices or shard_batch is not None:
                from repro.pipeline import ShardPlan

                config = config.replaced(
                    shard=ShardPlan(slices=True, batch=shard_batch)
                )
            if data_plane is not None:
                from dataclasses import replace as _dc_replace

                config = config.replaced(
                    shard=_dc_replace(config.shard, data_plane=data_plane)
                )

            policy = None
            if max_retries is not None or chip_timeout is not None:
                from repro.runtime import ResiliencePolicy

                policy = ResiliencePolicy(
                    max_retries=max_retries if max_retries is not None else 2,
                    chip_timeout_s=chip_timeout,
                )
            report = run_campaign(
                jobs, config=config, workers=workers, cache_dir=cache_dir,
                policy=policy, fault_plan=fault_plan, obs=obs,
            )
        except ReproError as exc:
            print(f"campaign failed: {exc}", file=sys.stderr)
            return 1
        print(report.render())
        # The summary printer reads the versioned report dict — the same shape
        # to_json() emits — instead of poking at pickled result objects.
        summary = report.to_dict()
        for name, chip in summary["chips"].items():
            head = chip["summary"]
            topo = head["topology"] or "unidentified"
            line = f"{name}: topology={topo} lanes={head['lanes_matched']}"
            if chip["retries"] or chip["fault_events"]:
                line += (f" degraded(retries={chip['retries']}, "
                         f"faults={chip['fault_events']})")
            reversed_chip = report.chips[name].result
            if reversed_chip is not None and reversed_chip.validation is not None:
                line += (
                    f" validated(complete={reversed_chip.validation.complete}, "
                    f"max W/L err "
                    f"{reversed_chip.validation.max_relative_error():.1%})"
                )
            print(line)
        for name, record in summary["quarantined"].items():
            print(f"{name}: QUARANTINED at {record['stage'] or '?'} "
                  f"after {record['retries']} retries: {record['message']}")
        if json_path is not None:
            text = report.to_json()
            if json_path == "-":
                print(text)
            else:
                with open(json_path, "w", encoding="utf-8") as fh:
                    fh.write(text + "\n")
                print(f"report written: {json_path}")
        if trace_summary:
            print(report.trace_summary())
        if trace_path is not None:
            report.save_trace(trace_path)
            print(f"trace written: {trace_path}")
        if metrics_path is not None:
            report.save_metrics(metrics_path)
            print(f"metrics written: {metrics_path}")
        if events_path is not None:
            report.save_events(events_path)
            print(f"events written: {events_path}")
        if not summary["chips"]:
            print("campaign failed: every chip was quarantined", file=sys.stderr)
            return 1
        return 0

    return _with_obs_server(serve_obs, serve_linger, obs, _run)


_CHARACTERIZE_USAGE = """\
usage: python -m repro characterize [options]

Sweep sense-amp figures of merit (nominal sensing/restore latency,
switched energy, offset tolerance, Monte-Carlo yield) over a
topology x corner x bitline-capacitance grid.  Every sweep cell runs as
a campaign job on the batched MNA solver, so sweeps are parallel,
stage-cached and quarantine failing cells instead of aborting.

options:
  --topologies LIST  comma-separated topologies (default: classic,ocsa)
  --corners LIST     comma-separated corner names TT/FF/SS/FS/SF
                     (default: TT)
  --caps LIST        comma-separated bitline capacitances in fF
                     (default: 90)
  --trials N         Monte-Carlo trials per cell (default 40)
  --sigma MV         latch Vt mismatch sigma in mV (default 60)
  --seed N           mismatch RNG seed (default 7)
  --data {0,1}       stored data value the yield trials sense (default 1)
  --deadline NS      sensing deadline in ns (default: none — only wrong
                     senses count as failures)
  --workers N        worker-process budget (default: one per cell,
                     capped at the CPU count; 1 = serial)
  --data-plane P     shard payload transport when slice sharding is on:
                     "shm" (default, zero-copy) or "pickle"
  --cache DIR        content-addressed stage cache directory
  --json PATH        also write the characterization-report/1 JSON to
                     PATH ("-" = stdout)
  --trace PATH       record a span trace of the sweep (Chrome
                     trace_event JSON, or span JSONL when PATH ends
                     in .jsonl)
  --metrics PATH     write the merged metrics snapshot as JSON
                     (includes the repro_char_cells_total counter)
  --events PATH      write the lifecycle event stream (obs-event/1 JSONL)
  --serve-obs PORT   expose live telemetry over HTTP while the sweep
                     runs (/metrics /events /trace /healthz)
  --serve-linger S   with --serve-obs: keep serving S seconds after the
                     sweep finishes (default 0)

A sweep with quarantined cells still exits 0 as long as at least one
cell completed; it exits 1 only when every cell failed.
"""


def cmd_characterize(args: list[str]) -> int:
    from repro.analog import CharacterizationSpec, characterize
    from repro.errors import ReproError

    class _UsageError(Exception):
        pass

    def _value(flag: str, i: int) -> str:
        if i >= len(args):
            raise _UsageError(f"{flag} requires a value")
        return args[i]

    def _int_value(flag: str, i: int) -> int:
        raw = _value(flag, i)
        try:
            return int(raw)
        except ValueError:
            raise _UsageError(f"{flag} requires an integer, got {raw!r}") from None

    def _float_value(flag: str, i: int) -> float:
        raw = _value(flag, i)
        try:
            return float(raw)
        except ValueError:
            raise _UsageError(f"{flag} requires a number, got {raw!r}") from None

    spec_kwargs: dict = {}
    workers: int | None = None
    cache_dir: str | None = None
    json_path: str | None = None
    data_plane: str | None = None
    trace_path: str | None = None
    metrics_path: str | None = None
    events_path: str | None = None
    serve_obs: int | None = None
    serve_linger = 0.0
    try:
        i = 0
        while i < len(args):
            arg = args[i]
            if arg == "--topologies":
                i += 1
                spec_kwargs["topologies"] = tuple(
                    t.strip() for t in _value(arg, i).split(",") if t.strip()
                )
            elif arg == "--corners":
                i += 1
                spec_kwargs["corners"] = tuple(
                    c.strip() for c in _value(arg, i).split(",") if c.strip()
                )
            elif arg == "--caps":
                i += 1
                try:
                    spec_kwargs["bitline_caps_f"] = tuple(
                        float(c) * 1e-15 for c in _value(arg, i).split(",") if c.strip()
                    )
                except ValueError:
                    raise _UsageError(
                        "--caps requires comma-separated numbers (fF)"
                    ) from None
            elif arg == "--trials":
                i += 1
                spec_kwargs["trials"] = _int_value(arg, i)
            elif arg == "--sigma":
                i += 1
                spec_kwargs["sigma_mv"] = _float_value(arg, i)
            elif arg == "--seed":
                i += 1
                spec_kwargs["seed"] = _int_value(arg, i)
            elif arg == "--data":
                i += 1
                spec_kwargs["data"] = _int_value(arg, i)
            elif arg == "--deadline":
                i += 1
                spec_kwargs["deadline_ns"] = _float_value(arg, i)
            elif arg == "--workers":
                i += 1
                workers = _int_value(arg, i)
            elif arg == "--data-plane":
                i += 1
                data_plane = _value(arg, i)
                if data_plane not in ("pickle", "shm"):
                    raise _UsageError(
                        f"--data-plane must be 'pickle' or 'shm', got {data_plane!r}"
                    )
            elif arg == "--cache":
                i += 1
                cache_dir = _value(arg, i)
            elif arg == "--json":
                i += 1
                json_path = _value(arg, i)
            elif arg == "--trace":
                i += 1
                trace_path = _value(arg, i)
            elif arg == "--metrics":
                i += 1
                metrics_path = _value(arg, i)
            elif arg == "--events":
                i += 1
                events_path = _value(arg, i)
            elif arg == "--serve-obs":
                i += 1
                serve_obs = _int_value(arg, i)
            elif arg == "--serve-linger":
                i += 1
                serve_linger = _float_value(arg, i)
            elif arg in ("--help", "-h"):
                print(_CHARACTERIZE_USAGE)
                return 0
            else:
                raise _UsageError(f"unknown option {arg!r}")
            i += 1
    except _UsageError as exc:
        print(exc, file=sys.stderr)
        print(_CHARACTERIZE_USAGE, file=sys.stderr)
        return 2

    serving = serve_obs is not None
    obs = None
    if (trace_path is not None or metrics_path is not None
            or events_path is not None or serving):
        from repro.obs import ObsConfig

        obs = ObsConfig(
            trace=trace_path is not None or serving,
            metrics=metrics_path is not None or serving,
            events=events_path is not None or serving,
        )

    def _run() -> int:
        try:
            spec = CharacterizationSpec(**spec_kwargs)
            config = None
            if data_plane is not None:
                from dataclasses import replace as _dc_replace

                from repro.pipeline import PipelineConfig

                base = PipelineConfig()
                config = base.replaced(
                    shard=_dc_replace(base.shard, data_plane=data_plane)
                )
            report = characterize(
                spec, workers=workers, cache_dir=cache_dir, config=config,
                obs=obs,
            )
        except ReproError as exc:
            print(f"characterization failed: {exc}", file=sys.stderr)
            return 1
        print(report.render())
        if json_path is not None:
            text = report.to_json()
            if json_path == "-":
                print(text)
            else:
                with open(json_path, "w", encoding="utf-8") as fh:
                    fh.write(text + "\n")
                print(f"report written: {json_path}")
        if trace_path is not None:
            report.campaign.save_trace(trace_path)
            print(f"trace written: {trace_path}")
        if metrics_path is not None:
            report.campaign.save_metrics(metrics_path)
            print(f"metrics written: {metrics_path}")
        if events_path is not None:
            report.campaign.save_events(events_path)
            print(f"events written: {events_path}")
        if not report.cells:
            print("characterization failed: every cell was quarantined",
                  file=sys.stderr)
            return 1
        return 0

    return _with_obs_server(serve_obs, serve_linger, obs, _run)


_CATALOG_USAGE = """\
usage: python -m repro catalog [options]

Enumerate a parametric chip population (vendor profile x process
generation x SA topology x word size x column mux x body taps x noise
regime), image + reverse engineer every variant through the campaign
runtime, and score population-level identification accuracy
(catalog-report/1).

options:
  --variants N  sample N variants from the axis grid with a seeded RNG
                (names s000..., each with its own acquisition seed);
                default: enumerate the full axis grid (g000...)
  --seed N      sampling seed for --variants (default 0)
  --builders LIST
                comma list of variant builders to enumerate (registered
                names or module:attr refs; default classic,ocsa)
  --vendors LIST
                vendor profiles (default fab-a,fab-b,fab-c)
  --generations LIST
                process generations (default ddr4,ddr5)
  --word-sizes LIST
                bitline pairs per region (default 1,2)
  --column-muxes LIST
                column-select mux ratios (default 4)
  --body-taps LIST
                substrate tap placements: none, lane, edge (default
                none,edge)
  --noises LIST
                drift/noise regimes: quiet, nominal, noisy (default
                nominal)
  --fault-plan SPEC
                inject seeded acquisition faults in every variant; same
                key=value SPEC as `campaign --fault-plan`
  --full-pipeline
                run the published pipeline settings instead of the fast
                population preset
  --workers N   worker-process budget (default: one per variant, capped
                at the CPU count; 1 = serial)
  --cache DIR   content-addressed stage cache directory (reruns reuse it)
  --json PATH   write the versioned catalog-report/1 JSON to PATH
                ("-" = stdout)
  --trace PATH  record a span trace of the population campaign (Chrome
                trace_event JSON, or span JSONL when PATH ends in .jsonl)
  --metrics PATH
                write the merged metrics snapshot as JSON (includes the
                repro_catalog_variants_total{outcome=...} counters)
  --events PATH write the lifecycle event stream (obs-event/1 JSONL)
  --serve-obs PORT
                expose live telemetry over HTTP while the population
                runs (/metrics /events /trace /healthz)
  --serve-linger S
                with --serve-obs: keep serving S seconds after the run
                finishes (default 0)

A campaign with quarantined variants still exits 0 as long as at least
one variant completed; it exits 1 only when every variant failed.
"""


def cmd_catalog(args: list[str]) -> int:
    from repro.errors import CatalogError, ReproError

    class _UsageError(Exception):
        pass

    def _value(flag: str, i: int) -> str:
        if i >= len(args):
            raise _UsageError(f"{flag} requires a value")
        return args[i]

    def _int_value(flag: str, i: int) -> int:
        raw = _value(flag, i)
        try:
            return int(raw)
        except ValueError:
            raise _UsageError(f"{flag} requires an integer, got {raw!r}") from None

    def _list_value(flag: str, i: int) -> tuple[str, ...]:
        items = tuple(t.strip() for t in _value(flag, i).split(",") if t.strip())
        if not items:
            raise _UsageError(f"{flag} requires a non-empty comma list")
        return items

    def _int_list_value(flag: str, i: int) -> tuple[int, ...]:
        try:
            return tuple(int(t) for t in _list_value(flag, i))
        except ValueError:
            raise _UsageError(f"{flag} requires comma-separated integers") from None

    n_variants: int | None = None
    seed = 0
    axes: dict[str, tuple] = {}
    fault_spec: str | None = None
    full_pipeline = False
    workers: int | None = None
    cache_dir: str | None = None
    json_path: str | None = None
    trace_path: str | None = None
    metrics_path: str | None = None
    events_path: str | None = None
    serve_obs: int | None = None
    serve_linger = 0.0

    def _float_value(flag: str, i: int) -> float:
        raw = _value(flag, i)
        try:
            return float(raw)
        except ValueError:
            raise _UsageError(f"{flag} requires a number, got {raw!r}") from None

    i = 0
    try:
        while i < len(args):
            arg = args[i]
            if arg == "--variants":
                i += 1
                n_variants = _int_value(arg, i)
            elif arg == "--seed":
                i += 1
                seed = _int_value(arg, i)
            elif arg == "--builders":
                i += 1
                axes["variants"] = _list_value(arg, i)
            elif arg == "--vendors":
                i += 1
                axes["vendors"] = _list_value(arg, i)
            elif arg == "--generations":
                i += 1
                axes["generations"] = _list_value(arg, i)
            elif arg == "--word-sizes":
                i += 1
                axes["word_sizes"] = _int_list_value(arg, i)
            elif arg == "--column-muxes":
                i += 1
                axes["column_muxes"] = _int_list_value(arg, i)
            elif arg == "--body-taps":
                i += 1
                axes["body_taps"] = _list_value(arg, i)
            elif arg == "--noises":
                i += 1
                axes["noises"] = _list_value(arg, i)
            elif arg == "--fault-plan":
                i += 1
                fault_spec = _value(arg, i)
            elif arg == "--full-pipeline":
                full_pipeline = True
            elif arg == "--workers":
                i += 1
                workers = _int_value(arg, i)
            elif arg == "--cache":
                i += 1
                cache_dir = _value(arg, i)
            elif arg == "--json":
                i += 1
                json_path = _value(arg, i)
            elif arg == "--trace":
                i += 1
                trace_path = _value(arg, i)
            elif arg == "--metrics":
                i += 1
                metrics_path = _value(arg, i)
            elif arg == "--events":
                i += 1
                events_path = _value(arg, i)
            elif arg == "--serve-obs":
                i += 1
                serve_obs = _int_value(arg, i)
            elif arg == "--serve-linger":
                i += 1
                serve_linger = _float_value(arg, i)
            elif arg in ("--help", "-h"):
                print(_CATALOG_USAGE)
                return 0
            else:
                raise _UsageError(f"unknown option {arg!r}")
            i += 1

        if fault_spec is not None:
            from repro.faults import FaultPlan

            try:
                axes["fault_plans"] = (FaultPlan.parse(fault_spec),)
            except ReproError as exc:
                raise _UsageError(str(exc)) from None
        if n_variants is not None and n_variants < 1:
            raise _UsageError("--variants must be at least 1")

        from repro.catalog import CatalogSpec, expand_grid, sample

        try:
            spec = CatalogSpec(**axes)
        except CatalogError as exc:
            raise _UsageError(str(exc)) from None
        variants = (
            sample(spec, n_variants, seed=seed)
            if n_variants is not None
            else expand_grid(spec)
        )
    except _UsageError as exc:
        print(exc, file=sys.stderr)
        print(_CATALOG_USAGE, file=sys.stderr)
        return 2

    from repro.catalog import run_catalog_campaign
    from repro.errors import ReproError as _ReproError

    serving = serve_obs is not None
    obs = None
    if (trace_path is not None or metrics_path is not None
            or events_path is not None or serving):
        from repro.obs import ObsConfig

        obs = ObsConfig(
            trace=trace_path is not None or serving,
            metrics=metrics_path is not None or serving,
            events=events_path is not None or serving,
        )

    def _run() -> int:
        try:
            config = None
            if full_pipeline:
                from repro.pipeline import PipelineConfig

                config = PipelineConfig()
            report = run_catalog_campaign(
                variants,
                config=config,
                workers=workers,
                cache_dir=cache_dir,
                seed=seed if n_variants is not None else None,
                obs=obs,
            )
        except _ReproError as exc:
            print(f"catalog campaign failed: {exc}", file=sys.stderr)
            return 1

        print(report.render())
        print(f"results digest: {report.results_digest()}")
        if json_path is not None:
            text = report.to_json()
            if json_path == "-":
                print(text)
            else:
                with open(json_path, "w", encoding="utf-8") as fh:
                    fh.write(text + "\n")
                print(f"report written: {json_path}")
        if trace_path is not None:
            report.save_trace(trace_path)
            print(f"trace written: {trace_path}")
        if metrics_path is not None:
            report.save_metrics(metrics_path)
            print(f"metrics written: {metrics_path}")
        if events_path is not None:
            report.save_events(events_path)
            print(f"events written: {events_path}")
        if not report.scores:
            print("catalog campaign failed: every variant was quarantined",
                  file=sys.stderr)
            return 1
        return 0

    return _with_obs_server(serve_obs, serve_linger, obs, _run)


_OBS_USAGE = """\
usage: python -m repro obs serve [options]
       python -m repro obs analyze TRACE.jsonl
       python -m repro obs analyze --diff A.jsonl B.jsonl

serve — re-serve saved telemetry artifacts over HTTP (the same
endpoints a live --serve-obs run exposes):

  --metrics PATH  metrics snapshot JSON (from --metrics / save_metrics);
                  served as Prometheus text exposition on /metrics
  --trace PATH    span trace JSONL (from --trace foo.jsonl); served as
                  OTLP JSON on /trace
  --events PATH   obs-event/1 JSONL (from --events); served on /events
  --port N        listen port (default 9464; 0 = ephemeral)
  --linger S      serve S seconds then exit (default: until Ctrl-C)

At least one artifact is required.  /healthz reports state "done"
immediately — saved artifacts are already final.

analyze — offline trace analytics over a span-JSONL trace: the
critical path, per-stage and per-kernel wall-time attribution and the
per-stage cache efficiency; with --diff, the per-stage wall-time delta
table between two traces (the "did this PR slow alignment down?"
report).
"""


def cmd_obs(args: list[str]) -> int:
    from repro.errors import ReproError

    class _UsageError(Exception):
        pass

    def _value(flag: str, i: int) -> str:
        if i >= len(args):
            raise _UsageError(f"{flag} requires a value")
        return args[i]

    if not args:
        print(_OBS_USAGE, file=sys.stderr)
        return 2
    if args[0] in ("--help", "-h"):
        print(_OBS_USAGE)
        return 0
    sub, args = args[0], args[1:]

    if sub == "analyze":
        from repro.obs.analyze import load_trace, render_analysis, render_diff

        diff = False
        paths: list[str] = []
        for arg in args:
            if arg == "--diff":
                diff = True
            elif arg in ("--help", "-h"):
                print(_OBS_USAGE)
                return 0
            elif arg.startswith("-"):
                print(f"unknown option {arg!r}", file=sys.stderr)
                print(_OBS_USAGE, file=sys.stderr)
                return 2
            else:
                paths.append(arg)
        if (diff and len(paths) != 2) or (not diff and len(paths) != 1):
            print(
                "obs analyze takes one trace, or two with --diff",
                file=sys.stderr,
            )
            print(_OBS_USAGE, file=sys.stderr)
            return 2
        try:
            if diff:
                print(render_diff(load_trace(paths[0]), load_trace(paths[1])))
            else:
                print(render_analysis(load_trace(paths[0])))
        except ReproError as exc:
            print(f"obs analyze failed: {exc}", file=sys.stderr)
            return 1
        return 0

    if sub != "serve":
        print(f"unknown obs subcommand {sub!r}", file=sys.stderr)
        print(_OBS_USAGE, file=sys.stderr)
        return 2

    import json as _json
    import time

    from repro.obs import EventBus, events_from_jsonl
    from repro.obs.analyze import load_trace
    from repro.obs.export import ObsServer

    metrics_path: str | None = None
    trace_path: str | None = None
    events_path: str | None = None
    port = 9464
    linger: float | None = None
    try:
        i = 0
        while i < len(args):
            arg = args[i]
            if arg == "--metrics":
                i += 1
                metrics_path = _value(arg, i)
            elif arg == "--trace":
                i += 1
                trace_path = _value(arg, i)
            elif arg == "--events":
                i += 1
                events_path = _value(arg, i)
            elif arg == "--port":
                i += 1
                try:
                    port = int(_value(arg, i))
                except ValueError:
                    raise _UsageError(
                        f"--port requires an integer, got {args[i]!r}"
                    ) from None
            elif arg == "--linger":
                i += 1
                try:
                    linger = float(_value(arg, i))
                except ValueError:
                    raise _UsageError(
                        f"--linger requires a number, got {args[i]!r}"
                    ) from None
            elif arg in ("--help", "-h"):
                print(_OBS_USAGE)
                return 0
            else:
                raise _UsageError(f"unknown option {arg!r}")
            i += 1
        if metrics_path is None and trace_path is None and events_path is None:
            raise _UsageError(
                "obs serve needs at least one of --metrics/--trace/--events"
            )
    except _UsageError as exc:
        print(exc, file=sys.stderr)
        print(_OBS_USAGE, file=sys.stderr)
        return 2

    try:
        metrics_fn = None
        if metrics_path is not None:
            snapshot = _json.loads(open(metrics_path, encoding="utf-8").read())
            metrics_fn = lambda: snapshot  # noqa: E731
        spans_fn = None
        if trace_path is not None:
            spans = load_trace(trace_path)
            spans_fn = lambda: spans  # noqa: E731
        bus = None
        if events_path is not None:
            events = events_from_jsonl(
                open(events_path, encoding="utf-8").read()
            )
            bus = EventBus(capacity=max(len(events), 1))
            bus.absorb(events)
    except (OSError, ValueError, ReproError) as exc:
        print(f"obs serve failed: {exc}", file=sys.stderr)
        return 1

    with ObsServer(
        port=port, metrics_fn=metrics_fn, spans_fn=spans_fn, bus=bus
    ) as server:
        server.finish()  # saved artifacts are final from the start
        print(
            f"obs: serving saved telemetry on {server.url} "
            "(/metrics /events /trace /healthz)",
            file=sys.stderr,
        )
        try:
            if linger is not None:
                time.sleep(linger)
            else:
                while True:
                    time.sleep(3600.0)
        except KeyboardInterrupt:
            pass
    return 0


_SERVE_USAGE = """\
usage: python -m repro serve [options]

Run the campaign-as-a-service daemon: a long-lived HTTP job API that
multiplexes many campaign / characterize / catalog jobs onto ONE shared
worker pool and ONE shared stage cache.

  POST   /jobs                submit a job-spec/1 JSON document
  GET    /jobs                list all jobs
  GET    /jobs/{id}           one job's serve-job/1 status
  GET    /jobs/{id}/report    the flushed versioned report JSON
  GET    /jobs/{id}/events    obs-event/1 JSONL (?since=N&follow=1)
  DELETE /jobs/{id}           cancel (running jobs quarantine cleanly)
  GET    /healthz             daemon state + job counts

SIGTERM/SIGINT drain gracefully: admission stops (503), queued jobs are
cancelled, in-flight jobs finish and flush their reports, then the
daemon exits.

options:
  --port N          listen port (default 0 = ephemeral; printed on boot)
  --host ADDR       bind address (default 127.0.0.1)
  --state-dir DIR   reports + shared stage cache root
                    (default .repro-serve)
  --pool-workers N  shared worker-process pool size (default 2)
  --runners N       concurrent jobs in flight (default 2)
  --tenant-quota N  max queued+running jobs per tenant (default 4)
  --job-workers N   per-job runtime worker budget override
"""


def cmd_serve(args: list[str]) -> int:
    class _UsageError(Exception):
        pass

    def _value(flag: str, i: int) -> str:
        if i >= len(args):
            raise _UsageError(f"{flag} requires a value")
        return args[i]

    def _int_value(flag: str, i: int) -> int:
        raw = _value(flag, i)
        try:
            return int(raw)
        except ValueError:
            raise _UsageError(f"{flag} requires an integer, got {raw!r}") from None

    port = 0
    host = "127.0.0.1"
    state_dir = ".repro-serve"
    pool_workers = 2
    runners = 2
    tenant_quota = 4
    job_workers: int | None = None
    try:
        i = 0
        while i < len(args):
            arg = args[i]
            if arg == "--port":
                i += 1
                port = _int_value(arg, i)
            elif arg == "--host":
                i += 1
                host = _value(arg, i)
            elif arg == "--state-dir":
                i += 1
                state_dir = _value(arg, i)
            elif arg == "--pool-workers":
                i += 1
                pool_workers = _int_value(arg, i)
            elif arg == "--runners":
                i += 1
                runners = _int_value(arg, i)
            elif arg == "--tenant-quota":
                i += 1
                tenant_quota = _int_value(arg, i)
            elif arg == "--job-workers":
                i += 1
                job_workers = _int_value(arg, i)
            elif arg in ("--help", "-h"):
                print(_SERVE_USAGE)
                return 0
            else:
                raise _UsageError(f"unknown option {arg!r}")
            i += 1
    except _UsageError as exc:
        print(exc, file=sys.stderr)
        print(_SERVE_USAGE, file=sys.stderr)
        return 2

    from repro.serve import ServeDaemon

    daemon = ServeDaemon(
        state_dir, port=port, host=host, pool_workers=pool_workers,
        runners=runners, tenant_quota=tenant_quota, job_workers=job_workers,
    )
    daemon.install_signal_handlers()
    daemon.start()
    print(f"serving on {daemon.url} (state: {state_dir})", flush=True)
    daemon.wait()
    print("drained; exiting", flush=True)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    command = args[0] if args else "summary"
    if command == "summary":
        cmd_summary()
    elif command == "chips":
        cmd_chips()
    elif command == "audit":
        cmd_audit()
    elif command == "models":
        cmd_models()
    elif command == "spice":
        if len(args) < 2:
            print("usage: python -m repro spice <CHIP_ID>", file=sys.stderr)
            return 2
        cmd_spice(args[1].upper())
    elif command == "bundle":
        if len(args) < 2:
            print("usage: python -m repro bundle <TARGET_DIR>", file=sys.stderr)
            return 2
        from repro.core.bundle import write_bundle

        manifest = write_bundle(args[1])
        print(f"bundle written: {len(manifest['chips'])} chips, "
              f"{len(manifest['tables'])} tables -> {args[1]}")
    elif command == "campaign":
        return cmd_campaign(args[1:])
    elif command == "characterize":
        return cmd_characterize(args[1:])
    elif command == "catalog":
        return cmd_catalog(args[1:])
    elif command == "obs":
        return cmd_obs(args[1:])
    elif command == "serve":
        return cmd_serve(args[1:])
    else:
        print(__doc__, file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
