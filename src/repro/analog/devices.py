"""Device models for the MNA solver.

MOSFETs use the level-1 square-law model with channel-length modulation.
That is deliberately simple — the goal is not SPICE-grade accuracy but a
model in which **W/L matters**, because the paper's model-accuracy argument
(§VI-A) is entirely about W/L ratios: "higher width-to-length ratios
correspond to more optimistic simulations".

All voltages in volts, currents in amperes, lengths in nm (W/L is a ratio,
so the unit cancels), capacitance in farads.

The solver linearises devices by finite differences around the current
Newton guess, so the only thing a model must provide is a smooth(ish)
current function; :func:`mos_current` is that function.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

#: Sub-threshold leak conductance (S): keeps cut-off devices numerically
#: visible so Newton never sees a floating node through a stack of
#: cut-off transistors.
GLEAK = 1e-12

#: Finite-difference step (V) used for device linearisation.
FD_STEP = 1e-6


@dataclass(frozen=True)
class MosModel:
    """Square-law MOSFET parameters.

    ``kp`` is the process transconductance (A/V²), ``vt`` the threshold
    voltage magnitude (V, positive for both channels), ``lam`` the
    channel-length-modulation coefficient (1/V).
    """

    channel: str  # "nmos" | "pmos"
    kp: float
    vt: float
    lam: float = 0.02

    def __post_init__(self) -> None:
        if self.channel not in ("nmos", "pmos"):
            raise ValueError(f"bad channel {self.channel!r}")

    def with_vt_shift(self, delta: float) -> "MosModel":
        """Return a copy with the threshold shifted by *delta* volts.

        Sense-amplifier offset is dominated by Vt mismatch between the two
        latch devices; the sense-margin analysis sweeps this shift.
        """
        return replace(self, vt=self.vt + delta)


#: DRAM-array NMOS at a generic modern node.
NMOS_DEFAULT = MosModel(channel="nmos", kp=220e-6, vt=0.45)
#: DRAM-array PMOS (weaker, as usual).
PMOS_DEFAULT = MosModel(channel="pmos", kp=110e-6, vt=0.45)


def _nmos_forward(kp: float, vt: float, lam: float, wl: float, vgs: float, vds: float) -> float:
    """NMOS current with vds >= 0."""
    vov = vgs - vt
    if vov <= 0.0:
        return GLEAK * vds
    if vds < vov:
        return kp * wl * (vov * vds - 0.5 * vds * vds) * (1.0 + lam * vds) + GLEAK * vds
    return 0.5 * kp * wl * vov * vov * (1.0 + lam * vds) + GLEAK * vds


def mos_current(model: MosModel, w_over_l: float, vg: float, vd: float, vs: float) -> float:
    """Drain-to-source current of a MOSFET at the given terminal voltages.

    The device is treated symmetrically: when the nominal drain sits below
    the nominal source (NMOS frame), the terminals swap roles and the
    current sign flips.  This matters for pass transistors (column, ISO,
    OC) whose conduction direction reverses between events.
    """
    if model.channel == "pmos":
        # A PMOS is an NMOS in a mirrored voltage frame with mirrored
        # current direction.
        return -mos_current(
            MosModel("nmos", model.kp, model.vt, model.lam), w_over_l, -vg, -vd, -vs
        )

    if vd >= vs:
        return _nmos_forward(model.kp, model.vt, model.lam, w_over_l, vg - vs, vd - vs)
    # Swapped frame: terminal at vd acts as source.
    return -_nmos_forward(model.kp, model.vt, model.lam, w_over_l, vg - vd, vs - vd)


def _nmos_forward_vec(
    kp: float | np.ndarray,
    vt: float | np.ndarray,
    lam: float | np.ndarray,
    wl: float,
    vgs: np.ndarray,
    vds: np.ndarray,
) -> np.ndarray:
    """Vectorized :func:`_nmos_forward` over instance arrays.

    Every branch evaluates the *same* IEEE expression, in the same
    operation order, as the scalar path; ``np.where`` only selects which
    branch's value survives.  That is what makes the batched solver
    bit-identical to the scalar one per instance.
    """
    vov = vgs - vt
    leak = GLEAK * vds
    triode = kp * wl * (vov * vds - 0.5 * vds * vds) * (1.0 + lam * vds) + GLEAK * vds
    sat = 0.5 * kp * wl * vov * vov * (1.0 + lam * vds) + GLEAK * vds
    conducting = np.where(vds < vov, triode, sat)
    return np.where(vov <= 0.0, leak, conducting)


def mos_current_vec(
    channel: str,
    kp: float | np.ndarray,
    vt: float | np.ndarray,
    lam: float | np.ndarray,
    w_over_l: float,
    vg: np.ndarray,
    vd: np.ndarray,
    vs: np.ndarray,
) -> np.ndarray:
    """Batched :func:`mos_current`: model params and voltages per instance.

    ``kp``/``vt``/``lam`` may be scalars (one model shared by the batch)
    or ``(N,)`` arrays (per-instance corners/mismatch); the terminal
    voltages are ``(N,)`` arrays.  Elementwise bit-identical to the
    scalar :func:`mos_current` — the pmos mirror and the drain/source
    swap reuse the exact scalar formulation.
    """
    if channel == "pmos":
        return -mos_current_vec("nmos", kp, vt, lam, w_over_l, -vg, -vd, -vs)
    forward = _nmos_forward_vec(kp, vt, lam, w_over_l, vg - vs, vd - vs)
    swapped = -_nmos_forward_vec(kp, vt, lam, w_over_l, vg - vd, vs - vd)
    return np.where(vd >= vs, forward, swapped)


def mos_ids(
    model: MosModel, w_over_l: float, vg: float, vd: float, vs: float
) -> tuple[float, float, float]:
    """Current plus finite-difference ``(ids, gm, gds)`` around a bias point.

    Provided for analysis/tests; the transient solver computes its own
    finite differences against all three terminals.
    """
    ids = mos_current(model, w_over_l, vg, vd, vs)
    gm = (mos_current(model, w_over_l, vg + FD_STEP, vd, vs) - ids) / FD_STEP
    gds = (mos_current(model, w_over_l, vg, vd + FD_STEP, vs) - ids) / FD_STEP
    return ids, gm, gds


def mos_operating_region(
    model: MosModel, vg: float, vd: float, vs: float
) -> str:
    """Classify the operating region ('cutoff' | 'triode' | 'saturation')."""
    if model.channel == "pmos":
        vg, vd, vs = -vg, -vd, -vs
    if vd < vs:
        vd, vs = vs, vd
    vov = vg - vs - model.vt
    if vov <= 0:
        return "cutoff"
    if vd - vs < vov:
        return "triode"
    return "saturation"
