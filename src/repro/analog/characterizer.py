"""The analog characterization sweep engine.

The paper's model-fidelity argument (§VI) needs sense-amp figures of
merit — offset tolerance, sensing/restore latency, switched energy, and
Monte-Carlo yield — across *sweeps*: device corners, topologies
(classic vs OCSA) and bitline geometries.  The related characterizer
subsystems (AMC, OpenNVRAM) run such sweeps as external SPICE job farms;
here each sweep cell is an in-process campaign job:

* a :class:`SweepCell` is one (topology, corner, bitline-cap) grid point
  of a :class:`~repro.analog.spec.CharacterizationSpec`;
* a :class:`CharacterizationJob` wraps it for the campaign runtime by
  providing its own two-stage chain (``char_nominal`` → ``char_mc``)
  via ``build_stages`` — the duck-typed extension point of
  :func:`repro.runtime.engine.build_stage_chain`;
* :func:`characterize` fans the grid out through
  :func:`~repro.runtime.campaign.run_campaign`, so sweeps inherit the
  content-addressed stage cache (re-running a sweep recomputes nothing;
  widening an axis recomputes only the new cells), the process-pool
  fan-out, quarantine-on-failure and the ``repro.obs`` spans/metrics —
  none of which the analog code reimplements.

Inside each cell everything runs on the batched solver: the nominal
activation, the offset-tolerance ladder and all Monte-Carlo trials are
single :meth:`~repro.analog.sense_amp.SenseAmpBench.run_batch` calls.

The result surface is the versioned ``characterization-report/1``
JSON (:class:`CharacterizationReport`), following the same
schema-family conventions as ``campaign-report/3``.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path
from typing import Any

from repro.analog.metrics import (
    latency_stats,
    restore_latency_ns,
    sensing_latency_ns,
    switched_energy_fj,
)
from repro.analog.montecarlo import YieldResult, _yield_for
from repro.analog.sense_amp import ActivationOutcome, SenseAmpBench
from repro.analog.spec import CharacterizationSpec, DeviceCorner
from repro.circuits.topologies import SaTopology
from repro.core.report import render_table
from repro.errors import AnalogError, CampaignError, CharacterizationError
from repro.faults import FaultPlan
from repro.obs import ObsConfig, current_metrics
from repro.pipeline.config import PipelineConfig
from repro.runtime.campaign import CampaignReport, QuarantineRecord, run_campaign
from repro.runtime.engine import ResiliencePolicy, _StageDef, register_stage_versions
from repro.runtime.hashing import canonicalize

#: serialization schema of :meth:`CharacterizationReport.to_dict`
REPORT_SCHEMA_VERSION = "characterization-report/1"

_READABLE_SCHEMA_VERSIONS = (REPORT_SCHEMA_VERSION,)

# The analog stages join the one version table the cache keys read.
# Workers re-register on import (unpickling a CharacterizationJob imports
# this module), which is an idempotent no-op.
register_stage_versions({"char_nominal": "1", "char_mc": "1"})


def _json_float(value: float) -> float | None:
    """A float for JSON: ``None`` replaces non-finite values (NaN marks a
    failed trial / never-separated bitline) so reports stay valid JSON."""
    v = float(value)
    return v if math.isfinite(v) else None


def _from_json_float(value: Any) -> float:
    return float("nan") if value is None else float(value)


@dataclass(frozen=True)
class SweepCell:
    """One grid point of a characterization sweep."""

    name: str
    topology: SaTopology
    corner: DeviceCorner
    bitline_cap_f: float


def sweep_cells(spec: CharacterizationSpec) -> list[SweepCell]:
    """The topology × corner × bitline grid of *spec*, in axis order.

    Cell names are unique (campaign jobs require it): the bitline index
    joins the name only when that axis has more than one point.
    """
    axis = spec.bitline_axis()
    cells: list[SweepCell] = []
    for topology in spec.topologies:
        for corner in spec.corners:
            for i, cap in enumerate(axis):
                name = f"{topology.value}-{corner.name}"
                if len(axis) > 1:
                    name += f"-bl{i}"
                cells.append(SweepCell(name, topology, corner, cap))
    return cells


@dataclass(frozen=True)
class CellResult:
    """Figures of merit of one sweep cell.

    Plain floats, tuples, enums and the :class:`YieldResult` only — the
    result pickles across the campaign pool and canonicalizes for the
    stage cache (NaN latencies become ``"float:nan"`` sentinels there).
    """

    name: str
    topology: SaTopology
    corner: str
    bitline_cap_f: float
    #: mismatch-free figures; NaN when the bitlines never separated /
    #: the cell never restored (e.g. a hopeless corner)
    sensing_latency_ns: float
    restore_latency_ns: float
    switched_energy_fj: float
    #: largest scanned latch Vt mismatch (V) sensed correctly for *both*
    #: data values — the §V-A margin OCSA widens
    offset_tolerance_v: float
    sense_yield: YieldResult

    @property
    def yield_fraction(self) -> float:
        return self.sense_yield.yield_fraction

    def latency_stats(self) -> dict[str, float]:
        """Mean/p95/worst over the Monte-Carlo latency vector."""
        return latency_stats(self.sense_yield.latencies_ns)

    def campaign_summary(self) -> dict:
        """The headline dict :meth:`ChipRun.result_summary` duck-calls."""
        return {
            "topology": self.topology.value,
            "corner": self.corner,
            "bitline_cap_f": self.bitline_cap_f,
            "yield": self.sense_yield.yield_fraction,
            "sensing_latency_ns": _json_float(self.sensing_latency_ns),
            "offset_tolerance_v": self.offset_tolerance_v,
        }

    def to_dict(self) -> dict:
        stats = self.latency_stats()
        return {
            "name": self.name,
            "topology": self.topology.value,
            "corner": self.corner,
            "bitline_cap_f": self.bitline_cap_f,
            "sensing_latency_ns": _json_float(self.sensing_latency_ns),
            "restore_latency_ns": _json_float(self.restore_latency_ns),
            "switched_energy_fj": self.switched_energy_fj,
            "offset_tolerance_v": self.offset_tolerance_v,
            "yield": {
                "sigma_mv": self.sense_yield.sigma_mv,
                "trials": self.sense_yield.samples,
                "failures": self.sense_yield.failures,
                "yield_fraction": self.sense_yield.yield_fraction,
                "deadline_ns": self.sense_yield.deadline_ns,
                "latencies_ns": [
                    _json_float(v) for v in self.sense_yield.latencies_ns
                ],
                "latency_mean_ns": _json_float(stats["mean_ns"]),
                "latency_p95_ns": _json_float(stats["p95_ns"]),
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CellResult":
        y = data.get("yield", {})
        return cls(
            name=str(data["name"]),
            topology=SaTopology(data["topology"]),
            corner=str(data["corner"]),
            bitline_cap_f=float(data["bitline_cap_f"]),
            sensing_latency_ns=_from_json_float(data.get("sensing_latency_ns")),
            restore_latency_ns=_from_json_float(data.get("restore_latency_ns")),
            switched_energy_fj=float(data.get("switched_energy_fj", 0.0)),
            offset_tolerance_v=float(data.get("offset_tolerance_v", 0.0)),
            sense_yield=YieldResult(
                topology=SaTopology(data["topology"]),
                sigma_mv=float(y.get("sigma_mv", 0.0)),
                samples=int(y.get("trials", 1)),
                failures=int(y.get("failures", 0)),
                deadline_ns=y.get("deadline_ns"),
                latencies_ns=tuple(
                    _from_json_float(v) for v in y.get("latencies_ns", [])
                ),
            ),
        )


def _nan_on_analog_error(fn, outcome: ActivationOutcome) -> float:
    try:
        return float(fn(outcome))
    except AnalogError:
        return float("nan")


@dataclass(frozen=True)
class CharacterizationJob:
    """One sweep cell as a campaign job.

    Quacks like :class:`~repro.runtime.campaign.ChipJob` where the
    campaign runtime cares (``name``, ``fault_plan``, ``build_stages``)
    and supplies its own two-stage chain:

    ``char_nominal``
        one mismatch-free activation plus the offset-tolerance ladder
        (cache params: the cell + the bench-affecting spec fields);
    ``char_mc``
        the Monte-Carlo yield batch, keyed on top of the nominal stage
        by the MC-only fields, producing the :class:`CellResult`.

    A converged-less solver raises :class:`CharacterizationError`
    (a :class:`StageError`), so the campaign quarantines the cell and
    the rest of the sweep completes.
    """

    name: str
    cell: SweepCell
    spec: CharacterizationSpec
    fault_plan: FaultPlan | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("characterization job needs a name")

    def _bench(self) -> SenseAmpBench:
        return SenseAmpBench(
            self.spec.bench_config(
                self.cell.topology, self.cell.corner, self.cell.bitline_cap_f
            )
        )

    def build_stages(
        self, config: PipelineConfig, policy: ResiliencePolicy
    ) -> list[_StageDef]:
        cell, spec, plan = self.cell, self.spec, self.fault_plan

        def run_nominal(ctx: dict) -> tuple[dict, dict[str, float]]:
            if plan is not None and plan.active:
                # Fault plans model imaging acquisition defects; there is
                # nothing honest to inject into an analog solve, and
                # silently ignoring the request would misreport the run.
                raise CharacterizationError(
                    "fault plans target the imaging acquisition and do not "
                    "apply to analog characterization cells",
                    chip_id=self.name,
                    stage="char_nominal",
                )
            bench = self._bench()
            try:
                outcome = bench.run_batch(
                    spec.data, [0.0], dt_ns=spec.dt_ns, max_newton=spec.max_newton
                )[0]
                scan = [mv / 1000.0 for mv in spec.offset_scan_mv]
                tolerance = math.inf
                for data in (0, 1):
                    ladder = bench.run_batch(
                        data, scan, dt_ns=spec.dt_ns, max_newton=spec.max_newton
                    )
                    passing = 0.0
                    for level_v, step in zip(scan, ladder):
                        if not step.correct:
                            break
                        passing = level_v
                    tolerance = min(tolerance, passing)
            except AnalogError as exc:
                raise CharacterizationError(
                    f"sweep cell failed to simulate: {exc}",
                    chip_id=self.name,
                    stage="char_nominal",
                    details={"cell": cell.name},
                ) from exc
            nominal = {
                "sensing_latency_ns": _nan_on_analog_error(sensing_latency_ns, outcome),
                "restore_latency_ns": _nan_on_analog_error(restore_latency_ns, outcome),
                "switched_energy_fj": switched_energy_fj(outcome),
                "offset_tolerance_v": tolerance,
            }
            notes = {
                k: v for k, v in nominal.items() if math.isfinite(v)
            }
            notes["offset_ladder_runs"] = float(2 * len(scan) + 1)
            return {"nominal": nominal}, notes

        def run_mc(ctx: dict) -> tuple[dict, dict[str, float]]:
            bench = self._bench()
            try:
                sense_yield = _yield_for(bench, spec, cell.topology)
            except AnalogError as exc:
                raise CharacterizationError(
                    f"Monte-Carlo batch failed to simulate: {exc}",
                    chip_id=self.name,
                    stage="char_mc",
                    details={"cell": cell.name, "trials": spec.trials},
                ) from exc
            result = CellResult(
                name=self.name,
                topology=cell.topology,
                corner=cell.corner.name,
                bitline_cap_f=cell.bitline_cap_f,
                sense_yield=sense_yield,
                **ctx["nominal"],
            )
            return {"result": result}, {
                "yield": sense_yield.yield_fraction,
                "trials": float(sense_yield.samples),
                "failures": float(sense_yield.failures),
            }

        # Cache keys: the nominal stage is keyed by the cell plus every
        # bench-affecting spec field; the MC stage chains on top of it and
        # adds only the MC-only fields — so bumping `trials` re-runs just
        # char_mc, while changing `vdd` re-runs the whole cell.
        token = self.spec.cell_token()
        mc_keys = ("trials", "sigma_mv", "seed", "deadline_ns")
        nominal_params = {
            "cell": canonicalize(cell),
            "spec": {k: v for k, v in token.items() if k not in mc_keys},
        }
        mc_params = {k: token[k] for k in mc_keys}
        return [
            _StageDef("char_nominal", nominal_params, run_nominal),
            _StageDef("char_mc", mc_params, run_mc),
        ]


@dataclass
class CharacterizationReport:
    """Everything one characterization sweep produced.

    ``cells`` holds completed cells in job order; ``quarantined`` the
    cells whose solve failed.  Serializes through :meth:`to_json` /
    :meth:`from_json` under ``characterization-report/1``; deserialized
    reports rebuild full :class:`CellResult` objects (cell results are
    plain data, unlike the imaging campaign's pickled chips) but carry
    ``spec=None`` and ``campaign=None``.
    """

    cells: dict[str, CellResult]
    workers: int
    wall_seconds: float
    cache_dir: str | None = None
    cache_hits: int = 0
    cache_misses: int = 0
    quarantined: dict[str, QuarantineRecord] | None = None
    #: the spec that produced the sweep (None on deserialized reports)
    spec: CharacterizationSpec | None = None
    #: the underlying campaign telemetry — stage metrics, spans, metrics
    #: snapshot (None on deserialized reports)
    campaign: CampaignReport | None = None

    def __post_init__(self) -> None:
        if self.quarantined is None:
            self.quarantined = {}

    def cell(self, name: str) -> CellResult:
        """One cell's result; explains itself when the cell failed."""
        try:
            return self.cells[name]
        except KeyError:
            if name in (self.quarantined or {}):
                record = self.quarantined[name]
                raise CampaignError(
                    f"sweep cell {name!r} was quarantined: {record.message}"
                ) from None
            raise CampaignError(f"no sweep cell named {name!r}") from None

    @property
    def degraded(self) -> bool:
        return bool(self.quarantined)

    def render(self) -> str:
        """ASCII figure-of-merit table, one row per sweep cell."""
        def fmt(v: float, unit: str = "") -> str:
            return "-" if not math.isfinite(v) else f"{v:.3g}{unit}"

        rows = []
        for name, cell in self.cells.items():
            rows.append([
                name,
                cell.corner,
                f"{cell.bitline_cap_f * 1e15:.0f}fF",
                fmt(cell.sensing_latency_ns, "ns"),
                fmt(cell.restore_latency_ns, "ns"),
                fmt(cell.switched_energy_fj, "fJ"),
                fmt(cell.offset_tolerance_v * 1000.0, "mV"),
                f"{cell.yield_fraction:.2%}",
            ])
        for name, record in (self.quarantined or {}).items():
            rows.append([
                name, "?", "", "", "", "", "",
                f"QUARANTINED: {record.error_type}"[:32],
            ])
        title = (
            f"characterization: {len(self.cells)} cells, "
            f"workers={self.workers}, wall {self.wall_seconds:.2f}s, "
            f"cache {self.cache_hits} hit / {self.cache_misses} miss"
        )
        if self.quarantined:
            title += f", {len(self.quarantined)} quarantined"
        return render_table(
            ["cell", "corner", "bl cap", "sense", "restore", "energy",
             "offset", "yield"],
            rows,
            title=title,
        )

    def to_dict(self) -> dict:
        return {
            "schema_version": REPORT_SCHEMA_VERSION,
            "spec": canonicalize(self.spec) if self.spec is not None else None,
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "cache_dir": self.cache_dir,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "degraded": self.degraded,
            "cells": {name: cell.to_dict() for name, cell in self.cells.items()},
            "quarantined": {
                name: record.to_dict()
                for name, record in (self.quarantined or {}).items()
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def save(self, path: "str | Path") -> Path:
        target = Path(path)
        target.write_text(self.to_json() + "\n")
        return target

    @classmethod
    def from_dict(cls, data: dict) -> "CharacterizationReport":
        version = data.get("schema_version")
        if version not in _READABLE_SCHEMA_VERSIONS:
            raise CampaignError(
                f"unsupported characterization report schema {version!r} "
                f"(this build reads {', '.join(map(repr, _READABLE_SCHEMA_VERSIONS))})"
            )
        return cls(
            cells={
                name: CellResult.from_dict(cell)
                for name, cell in data.get("cells", {}).items()
            },
            workers=int(data.get("workers", 1)),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
            cache_dir=data.get("cache_dir"),
            cache_hits=int(data.get("cache_hits", 0)),
            cache_misses=int(data.get("cache_misses", 0)),
            quarantined={
                name: QuarantineRecord.from_dict(record)
                for name, record in data.get("quarantined", {}).items()
            },
        )

    @classmethod
    def from_json(cls, text: str) -> "CharacterizationReport":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CampaignError(
                f"malformed characterization report JSON: {exc}"
            ) from None
        if not isinstance(data, dict):
            raise CampaignError("characterization report JSON must be an object")
        return cls.from_dict(data)


def characterize(
    spec: CharacterizationSpec | None = None,
    *,
    workers: int | None = None,
    cache_dir: "str | Path | None" = None,
    policy: ResiliencePolicy | None = None,
    obs: ObsConfig | None = None,
    config: PipelineConfig | None = None,
    pool=None,
    cancel=None,
    bus=None,
) -> CharacterizationReport:
    """Characterize every sweep cell of *spec* through the campaign runtime.

    Inherits the whole substrate: ``workers`` fans cells across a process
    pool; ``cache_dir`` makes re-runs hit the stage cache (a repeated
    sweep recomputes nothing, a widened axis recomputes only new cells);
    ``policy`` adds per-cell timeouts; ``obs`` records spans/metrics.
    Cells whose solve fails are quarantined, not fatal — check
    :attr:`CharacterizationReport.degraded`.  ``pool``/``cancel``/``bus``
    are the serve-daemon seams, passed straight through to
    :func:`~repro.runtime.campaign.run_campaign`.
    """
    spec = spec or CharacterizationSpec()
    jobs = [
        CharacterizationJob(name=cell.name, cell=cell, spec=spec)
        for cell in sweep_cells(spec)
    ]
    campaign = run_campaign(
        jobs,
        config=config,
        workers=workers,
        cache_dir=cache_dir,
        policy=policy,
        obs=obs,
        pool=pool,
        cancel=cancel,
        bus=bus,
    )
    cells = {
        name: run.result
        for name, run in campaign.chips.items()
        if run.result is not None
    }
    live = current_metrics()
    if live.enabled:
        live.counter("repro_char_cells_total").inc(len(cells))
    if campaign.metrics is not None:
        counters = campaign.metrics.setdefault("counters", {})
        counters["repro_char_cells_total"] = (
            counters.get("repro_char_cells_total", 0.0) + len(cells)
        )
    return CharacterizationReport(
        cells=cells,
        workers=campaign.workers,
        wall_seconds=campaign.wall_seconds,
        cache_dir=campaign.cache_dir,
        cache_hits=campaign.cache_hits,
        cache_misses=campaign.cache_misses,
        quarantined=dict(campaign.quarantined),
        spec=spec,
        campaign=campaign,
    )


__all__ = [
    "REPORT_SCHEMA_VERSION",
    "SweepCell",
    "sweep_cells",
    "CellResult",
    "CharacterizationJob",
    "CharacterizationReport",
    "characterize",
]
