"""Control-event sequences for sense-amplifier operations.

Fig 2c (classic) and Fig 9b (OCSA) describe *events*: named intervals during
a row activation/precharge in which specific control lines move.  This
module turns those figures into :class:`EventTimeline` objects — an ordered
set of events plus the piecewise-linear waveforms for every control source.

The OCSA adds two events to the classic activation (§V-A):

* **offset cancellation** *before* charge sharing — with the bitlines
  floating, the OC diodes let each latch device imprint its strength on its
  bitline, pre-biasing the comparison against the device mismatch;
* **pre-sensing** *before* restore — the latch amplifies onto the internal
  nodes without the bitline load and without recharging the capacitor
  (ISO still off).

§VI-D consequences are visible directly in these timelines: charge sharing
is *delayed* in OCSA chips (it waits for the offset-cancellation phase), and
bitlines transiently connect to diode-connected transistors — the two
behaviours that break out-of-spec experiments designed for classic SAs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analog.solver import Waveform
from repro.circuits.topologies import SaTopology


@dataclass(frozen=True)
class Event:
    """A named interval within an operation."""

    name: str
    start_ns: float
    end_ns: float

    @property
    def duration_ns(self) -> float:
        """Event length."""
        return self.end_ns - self.start_ns


@dataclass
class EventTimeline:
    """Events plus the control waveforms that realise them."""

    topology: SaTopology
    events: list[Event]
    waveforms: dict[str, Waveform]
    vdd: float
    vpre: float
    vpp: float
    t_end_ns: float
    notes: dict[str, str] = field(default_factory=dict)

    def event(self, name: str) -> Event:
        """Look up an event by name."""
        for ev in self.events:
            if ev.name == name:
                return ev
        raise KeyError(f"no event named {name!r} in {self.topology.value} timeline")

    def has_event(self, name: str) -> bool:
        """True if the timeline contains *name*."""
        return any(ev.name == name for ev in self.events)

    def charge_sharing_start(self) -> float:
        """When the wordline opens — delayed on OCSA chips (§VI-D)."""
        return self.event("charge_sharing").start_ns


def _ramp(t: float, v_from: float, v_to: float, rise: float = 0.3) -> tuple[tuple[float, float], ...]:
    return ((t, v_from), (t + rise, v_to))


def classic_activation_timeline(
    vdd: float = 1.1,
    vpre: float | None = None,
    vpp: float = 2.4,
    t_wl_ns: float = 2.0,
    t_latch_ns: float = 5.0,
    t_restore_end_ns: float = 16.0,
    t_precharge_ns: float = 18.0,
    t_end_ns: float = 24.0,
) -> EventTimeline:
    """The classic activation/precharge of Fig 2c.

    Events: (1) charge sharing at wordline rise, (2) latching & restore at
    LA/LAB enable, (3) precharge & equalize at PEQ rise after the wordline
    closes.  Control sources produced: ``WL``, ``PEQ``, ``LA``, ``LAB``
    (plus DC ``VPRE``).
    """
    vpre = vdd / 2 if vpre is None else vpre
    waveforms = {
        "WL": Waveform(
            _ramp(t_wl_ns, 0.0, vpp) + _ramp(t_precharge_ns - 1.0, vpp, 0.0)
        ),
        "PEQ": Waveform(
            _ramp(0.8, vpp, 0.0) + _ramp(t_precharge_ns, 0.0, vpp)
        ),
        "LA": Waveform(
            _ramp(t_latch_ns, vpre, vdd) + _ramp(t_precharge_ns, vdd, vpre)
        ),
        "LAB": Waveform(
            _ramp(t_latch_ns, vpre, 0.0) + _ramp(t_precharge_ns, 0.0, vpre)
        ),
        "VPRE": Waveform.constant(vpre),
    }
    events = [
        Event("charge_sharing", t_wl_ns, t_latch_ns),
        Event("latch_restore", t_latch_ns, t_restore_end_ns),
        Event("precharge_equalize", t_precharge_ns, t_end_ns),
    ]
    return EventTimeline(
        topology=SaTopology.CLASSIC,
        events=events,
        waveforms=waveforms,
        vdd=vdd,
        vpre=vpre,
        vpp=vpp,
        t_end_ns=t_end_ns,
        notes={"figure": "Fig 2c"},
    )


def ocsa_activation_timeline(
    vdd: float = 1.1,
    vpre: float | None = None,
    vpp: float = 2.4,
    t_oc_start_ns: float = 1.0,
    t_oc_end_ns: float = 4.0,
    t_wl_ns: float = 5.0,
    t_presense_ns: float = 8.0,
    t_iso_restore_ns: float = 10.5,
    t_restore_end_ns: float = 20.0,
    t_precharge_ns: float = 22.0,
    t_end_ns: float = 28.0,
    oc_bias: float = 0.5,
) -> EventTimeline:
    """The OCSA activation of Fig 9b.

    Events: (1) offset cancellation — bitlines released, OC diodes on, the
    n-latch tail (LAB) partially pulled so each latch device imprints its
    strength on its bitline; (2) charge sharing — *delayed* relative to the
    classic design; (3) pre-sensing — LA/LAB full swing while ISO is still
    off, latching the internal nodes without bitline load; (4) restore —
    ISO on, bitlines and cell driven to full levels; (5) precharge —
    PRE plus the ISO∧OC equalisation path (no dedicated equalizer exists).

    ``oc_bias`` is how far below Vpre the LAB tail is pulled during offset
    cancellation; it scales the imprinted compensation.
    """
    vpre = vdd / 2 if vpre is None else vpre
    lab_oc = max(0.0, vpre - oc_bias)
    waveforms = {
        "WL": Waveform(
            _ramp(t_wl_ns, 0.0, vpp) + _ramp(t_precharge_ns - 1.0, vpp, 0.0)
        ),
        "PRE": Waveform(
            _ramp(t_oc_start_ns - 0.5, vpp, 0.0) + _ramp(t_precharge_ns, 0.0, vpp)
        ),
        "ISO": Waveform(
            _ramp(t_oc_start_ns - 0.5, vpp, 0.0) + _ramp(t_iso_restore_ns, 0.0, vpp)
        ),
        "OC": Waveform(
            _ramp(t_oc_start_ns, 0.0, vpp)
            + _ramp(t_oc_end_ns, vpp, 0.0)
            + _ramp(t_precharge_ns, 0.0, vpp)
        ),
        "LA": Waveform(
            _ramp(t_presense_ns, vpre, vdd) + _ramp(t_precharge_ns, vdd, vpre)
        ),
        "LAB": Waveform(
            _ramp(t_oc_start_ns, vpre, lab_oc)
            + _ramp(t_oc_end_ns, lab_oc, vpre)
            + _ramp(t_presense_ns, vpre, 0.0)
            + _ramp(t_precharge_ns, 0.0, vpre)
        ),
        "VPRE": Waveform.constant(vpre),
    }
    events = [
        Event("offset_cancellation", t_oc_start_ns, t_oc_end_ns),
        Event("charge_sharing", t_wl_ns, t_presense_ns),
        Event("pre_sensing", t_presense_ns, t_iso_restore_ns),
        Event("latch_restore", t_iso_restore_ns, t_restore_end_ns),
        Event("precharge_equalize", t_precharge_ns, t_end_ns),
    ]
    return EventTimeline(
        topology=SaTopology.OCSA,
        events=events,
        waveforms=waveforms,
        vdd=vdd,
        vpre=vpre,
        vpp=vpp,
        t_end_ns=t_end_ns,
        notes={
            "figure": "Fig 9b",
            "charge_sharing_delay": (
                "charge sharing waits for the offset-cancellation phase "
                "(§VI-D: breaks experiments assuming immediate sharing)"
            ),
        },
    )


def timeline_for(topology: SaTopology, **kwargs) -> EventTimeline:
    """Dispatch to the right builder for *topology*."""
    if topology is SaTopology.CLASSIC:
        return classic_activation_timeline(**kwargs)
    return ocsa_activation_timeline(**kwargs)
