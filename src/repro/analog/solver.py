"""Modified-nodal-analysis transient solver.

A small but genuine circuit simulator:

* **Unknowns** — node voltages (every net except ground) plus one branch
  current per voltage source.
* **Time integration** — backward Euler with a fixed step; capacitors become
  Norton companions ``G = C/h``, ``I = C/h · v_prev``.
* **Nonlinearity** — Newton-Raphson; MOSFETs are linearised by finite
  differences of :func:`repro.analog.devices.mos_current` against all three
  terminals each iteration (a Norton companion with three controlled
  conductances).
* **Robustness** — a ``gmin`` conductance from every node to ground, an
  iteration cap with an informative :class:`~repro.errors.ConvergenceError`,
  and voltage-step damping.

The solver reads a :class:`repro.circuits.netlist.Circuit`; time-varying
stimuli are :class:`Waveform` objects attached to voltage sources by name.
Time is in nanoseconds externally and converted to seconds internally.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from repro.analog.devices import FD_STEP, MosModel, NMOS_DEFAULT, PMOS_DEFAULT, mos_current
from repro.circuits.netlist import Circuit, Device, DeviceType
from repro.errors import AnalogError, ConvergenceError

GROUND_NAMES = ("0", "GND", "gnd", "VSS")


@dataclass(frozen=True)
class Waveform:
    """Piecewise-linear waveform: (time_ns, volts) breakpoints.

    Before the first breakpoint the first value holds; after the last, the
    last value holds.
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        times = [t for t, _v in self.points]
        if not self.points:
            raise AnalogError("empty waveform")
        if times != sorted(times):
            raise AnalogError("waveform breakpoints must be time-sorted")

    @classmethod
    def constant(cls, volts: float) -> "Waveform":
        """A DC waveform."""
        return cls(((0.0, volts),))

    @classmethod
    def step(cls, t_ns: float, before: float, after: float, rise_ns: float = 0.2) -> "Waveform":
        """A single linear-ramp step at *t_ns*."""
        return cls(((t_ns, before), (t_ns + rise_ns, after)))

    def value(self, t_ns: float) -> float:
        """Evaluate at time *t_ns* (linear interpolation)."""
        pts = self.points
        if t_ns <= pts[0][0]:
            return pts[0][1]
        if t_ns >= pts[-1][0]:
            return pts[-1][1]
        times = [p[0] for p in pts]
        i = bisect_right(times, t_ns)
        t0, v0 = pts[i - 1]
        t1, v1 = pts[i]
        if t1 == t0:
            return v1
        frac = (t_ns - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)

    def shifted(self, dt_ns: float) -> "Waveform":
        """Return a copy delayed by *dt_ns*."""
        return Waveform(tuple((t + dt_ns, v) for t, v in self.points))


@dataclass
class TransientResult:
    """Simulation output: time axis plus per-net voltage traces."""

    time_ns: np.ndarray
    voltages: dict[str, np.ndarray]

    def at(self, net: str, t_ns: float) -> float:
        """Voltage of *net* at the sample nearest to *t_ns*."""
        idx = int(np.argmin(np.abs(self.time_ns - t_ns)))
        return float(self.voltages[net][idx])

    def final(self, net: str) -> float:
        """Voltage of *net* at the last sample."""
        return float(self.voltages[net][-1])

    def crossing_time(self, net: str, level: float, after_ns: float = 0.0) -> float | None:
        """First time *net* crosses *level* after *after_ns*, or ``None``."""
        v = self.voltages[net]
        t = self.time_ns
        mask = t >= after_ns
        vs = v[mask]
        ts = t[mask]
        if len(vs) < 2:
            return None
        above = vs >= level
        flips = np.nonzero(above[1:] != above[:-1])[0]
        if len(flips) == 0:
            return None
        i = int(flips[0])
        # Linear interpolation inside the flip interval.
        v0, v1 = float(vs[i]), float(vs[i + 1])
        t0, t1 = float(ts[i]), float(ts[i + 1])
        if v1 == v0:
            return t1
        return t0 + (level - v0) / (v1 - v0) * (t1 - t0)

    def separation(self, net_a: str, net_b: str) -> np.ndarray:
        """Trace of ``V(net_a) − V(net_b)`` (the latched differential)."""
        return self.voltages[net_a] - self.voltages[net_b]


class TransientSolver:
    """Transient simulator over a :class:`Circuit`.

    Parameters
    ----------
    circuit:
        The netlist.  Voltage sources whose names appear in *stimuli* are
        driven by the associated waveform; others hold their ``v`` param.
    stimuli:
        Mapping of voltage-source device name → :class:`Waveform`.
    models:
        Optional override of the NMOS/PMOS models; per-device overrides go
        in ``device_models`` keyed by device name (how Vt mismatch is
        injected for the sense-margin analysis).
    """

    def __init__(
        self,
        circuit: Circuit,
        stimuli: dict[str, Waveform] | None = None,
        nmos: MosModel = NMOS_DEFAULT,
        pmos: MosModel = PMOS_DEFAULT,
        device_models: dict[str, MosModel] | None = None,
        gmin: float = 1e-10,
        max_newton: int = 80,
        tol: float = 1e-6,
    ) -> None:
        self.circuit = circuit
        self.stimuli = dict(stimuli or {})
        self.nmos = nmos
        self.pmos = pmos
        self.device_models = dict(device_models or {})
        self.gmin = gmin
        self.max_newton = max_newton
        self.tol = tol

        self._nodes: list[str] = sorted(
            net for net in circuit.nets() if net not in GROUND_NAMES
        )
        self._node_index = {net: i for i, net in enumerate(self._nodes)}
        self._vsources = [d for d in circuit if d.dtype is DeviceType.VSOURCE]
        self._n_nodes = len(self._nodes)
        self._n_unknowns = self._n_nodes + len(self._vsources)

        unknown_stimuli = set(self.stimuli) - {d.name for d in self._vsources}
        if unknown_stimuli:
            raise AnalogError(f"stimuli target unknown sources: {sorted(unknown_stimuli)}")

    # -- helpers -------------------------------------------------------------

    def _v_of(self, x: np.ndarray, net: str) -> float:
        net = self.circuit.resolve(net)
        if net in GROUND_NAMES:
            return 0.0
        return float(x[self._node_index[net]])

    def _idx(self, net: str) -> int | None:
        net = self.circuit.resolve(net)
        if net in GROUND_NAMES:
            return None
        return self._node_index[net]

    def _model_for(self, dev: Device) -> MosModel:
        if dev.name in self.device_models:
            return self.device_models[dev.name]
        return self.nmos if dev.dtype is DeviceType.NMOS else self.pmos

    def _stamp_conductance(self, g_mat: np.ndarray, a: int | None, b: int | None, g: float) -> None:
        if a is not None:
            g_mat[a, a] += g
        if b is not None:
            g_mat[b, b] += g
        if a is not None and b is not None:
            g_mat[a, b] -= g
            g_mat[b, a] -= g

    def _stamp_current(self, rhs: np.ndarray, into: int | None, out_of: int | None, i: float) -> None:
        """Stamp a current *i* flowing from node *out_of* into node *into*."""
        if into is not None:
            rhs[into] += i
        if out_of is not None:
            rhs[out_of] -= i

    # -- assembly -------------------------------------------------------------

    def _assemble(
        self, x: np.ndarray, v_prev: np.ndarray, h_s: float, t_ns: float
    ) -> tuple[np.ndarray, np.ndarray]:
        n = self._n_unknowns
        g_mat = np.zeros((n, n))
        rhs = np.zeros(n)

        # gmin to ground for every node.
        for i in range(self._n_nodes):
            g_mat[i, i] += self.gmin

        branch = self._n_nodes
        for dev in self.circuit:
            if dev.dtype is DeviceType.RESISTOR:
                a, b = self._idx(dev.nets["p"]), self._idx(dev.nets["n"])
                self._stamp_conductance(g_mat, a, b, 1.0 / dev.params["r"])

            elif dev.dtype is DeviceType.CAPACITOR:
                a, b = self._idx(dev.nets["p"]), self._idx(dev.nets["n"])
                c = dev.params["c"]
                geq = c / h_s
                self._stamp_conductance(g_mat, a, b, geq)
                vp_prev = v_prev[a] if a is not None else 0.0
                vn_prev = v_prev[b] if b is not None else 0.0
                ieq = geq * (vp_prev - vn_prev)
                # Norton companion injects from n into p.
                self._stamp_current(rhs, a, b, ieq)

            elif dev.dtype is DeviceType.VSOURCE:
                a, b = self._idx(dev.nets["p"]), self._idx(dev.nets["n"])
                wave = self.stimuli.get(dev.name)
                v_val = wave.value(t_ns) if wave is not None else dev.params.get("v", 0.0)
                k = branch
                if a is not None:
                    g_mat[a, k] += 1.0
                    g_mat[k, a] += 1.0
                if b is not None:
                    g_mat[b, k] -= 1.0
                    g_mat[k, b] -= 1.0
                rhs[k] += v_val
                branch += 1

            elif dev.dtype.is_mos:
                model = self._model_for(dev)
                wl = dev.params["w"] / dev.params["l"]
                d_i, g_i, s_i = (
                    self._idx(dev.nets["d"]),
                    self._idx(dev.nets["g"]),
                    self._idx(dev.nets["s"]),
                )
                vd = self._v_of(x, dev.nets["d"])
                vg = self._v_of(x, dev.nets["g"])
                vs = self._v_of(x, dev.nets["s"])
                ids = mos_current(model, wl, vg, vd, vs)
                gdd = (mos_current(model, wl, vg, vd + FD_STEP, vs) - ids) / FD_STEP
                gdg = (mos_current(model, wl, vg + FD_STEP, vd, vs) - ids) / FD_STEP
                gds_ = (mos_current(model, wl, vg, vd, vs + FD_STEP) - ids) / FD_STEP
                # Linearised: I = ids + gdd·Δvd + gdg·Δvg + gds·Δvs.
                # KCL: I leaves the drain node and enters the source node.
                i0 = ids - gdd * vd - gdg * vg - gds_ * vs
                for node_idx, gval in ((d_i, gdd), (g_i, gdg), (s_i, gds_)):
                    if node_idx is None:
                        continue
                    if d_i is not None:
                        g_mat[d_i, node_idx] += gval
                    if s_i is not None:
                        g_mat[s_i, node_idx] -= gval
                self._stamp_current(rhs, s_i, d_i, i0)

            elif dev.dtype is DeviceType.SWITCH:
                a, b = self._idx(dev.nets["p"]), self._idx(dev.nets["n"])
                ron = dev.params.get("ron", 1e3)
                self._stamp_conductance(g_mat, a, b, 1.0 / ron)

        return g_mat, rhs

    # -- main entry -------------------------------------------------------------

    def run(
        self,
        t_stop_ns: float,
        dt_ns: float = 0.05,
        ic: dict[str, float] | None = None,
        record: list[str] | None = None,
    ) -> TransientResult:
        """Run a transient simulation from 0 to *t_stop_ns*.

        ``ic`` sets initial node voltages (unspecified nodes start at 0 V);
        ``record`` limits the returned traces (default: every node).
        """
        if t_stop_ns <= 0 or dt_ns <= 0:
            raise AnalogError("t_stop and dt must be positive")
        h_s = dt_ns * 1e-9
        steps = int(round(t_stop_ns / dt_ns))
        record = record or list(self._nodes)
        for net in record:
            if self.circuit.resolve(net) not in self._node_index:
                raise AnalogError(f"cannot record unknown net {net!r}")

        x = np.zeros(self._n_unknowns)
        for net, v0 in (ic or {}).items():
            idx = self._idx(net)
            if idx is None:
                continue
            x[idx] = v0

        times = np.empty(steps + 1)
        traces = {net: np.empty(steps + 1) for net in record}
        times[0] = 0.0
        for net in record:
            traces[net][0] = self._v_of(x, net)

        v_prev = x[: self._n_nodes].copy()
        for step in range(1, steps + 1):
            t_ns = step * dt_ns
            x = self._newton(x, v_prev, h_s, t_ns)
            v_prev = x[: self._n_nodes].copy()
            times[step] = t_ns
            for net in record:
                traces[net][step] = self._v_of(x, net)

        return TransientResult(time_ns=times, voltages=traces)

    def _newton(self, x0: np.ndarray, v_prev: np.ndarray, h_s: float, t_ns: float) -> np.ndarray:
        x = x0.copy()
        residual = float("inf")
        for _iteration in range(self.max_newton):
            g_mat, rhs = self._assemble(x, v_prev, h_s, t_ns)
            try:
                x_new = np.linalg.solve(g_mat, rhs)
            except np.linalg.LinAlgError as exc:
                raise AnalogError(f"singular MNA matrix at t={t_ns:.3f} ns") from exc
            delta = x_new - x
            # Damp large voltage steps to keep square-law Newton stable.
            max_step = 0.5
            biggest = float(np.max(np.abs(delta[: self._n_nodes]))) if self._n_nodes else 0.0
            if biggest > max_step:
                delta *= max_step / biggest
            x = x + delta
            residual = float(np.max(np.abs(delta[: self._n_nodes]))) if self._n_nodes else 0.0
            if residual < self.tol:
                return x
        raise ConvergenceError(t_ns, residual, self.max_newton)


def dc_operating_point(
    circuit: Circuit,
    stimuli: dict[str, Waveform] | None = None,
    **solver_kwargs,
) -> dict[str, float]:
    """Solve the DC operating point (long transient settle at t=0 stimuli).

    Capacitors are open at DC; rather than special-casing the assembly we
    run a short settling transient with a large step, which converges to
    the same point for the circuits this library builds.
    """
    solver = TransientSolver(circuit, stimuli, **solver_kwargs)
    result = solver.run(t_stop_ns=200.0, dt_ns=10.0)
    return {net: result.final(net) for net in result.voltages}
