"""Modified-nodal-analysis transient solver.

A small but genuine circuit simulator:

* **Unknowns** — node voltages (every net except ground) plus one branch
  current per voltage source.
* **Time integration** — backward Euler with a fixed step; capacitors become
  Norton companions ``G = C/h``, ``I = C/h · v_prev``.
* **Nonlinearity** — Newton-Raphson; MOSFETs are linearised by finite
  differences of :func:`repro.analog.devices.mos_current` against all three
  terminals each iteration (a Norton companion with three controlled
  conductances).
* **Robustness** — a ``gmin`` conductance from every node to ground, an
  iteration cap with an informative :class:`~repro.errors.ConvergenceError`,
  and voltage-step damping.

The solver reads a :class:`repro.circuits.netlist.Circuit`; time-varying
stimuli are :class:`Waveform` objects attached to voltage sources by name.
Time is in nanoseconds externally and converted to seconds internally.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

import numpy as np

from typing import Any, Sequence

from repro.analog.devices import (
    FD_STEP,
    MosModel,
    NMOS_DEFAULT,
    PMOS_DEFAULT,
    mos_current,
    mos_current_vec,
)
from repro.circuits.netlist import Circuit, Device, DeviceType
from repro.errors import AnalogError, ConvergenceError

GROUND_NAMES = ("0", "GND", "gnd", "VSS")


@dataclass(frozen=True)
class Waveform:
    """Piecewise-linear waveform: (time_ns, volts) breakpoints.

    Before the first breakpoint the first value holds; after the last, the
    last value holds.
    """

    points: tuple[tuple[float, float], ...]

    def __post_init__(self) -> None:
        times = [t for t, _v in self.points]
        if not self.points:
            raise AnalogError("empty waveform")
        if times != sorted(times):
            raise AnalogError("waveform breakpoints must be time-sorted")

    @classmethod
    def constant(cls, volts: float) -> "Waveform":
        """A DC waveform."""
        return cls(((0.0, volts),))

    @classmethod
    def step(cls, t_ns: float, before: float, after: float, rise_ns: float = 0.2) -> "Waveform":
        """A single linear-ramp step at *t_ns*."""
        return cls(((t_ns, before), (t_ns + rise_ns, after)))

    def value(self, t_ns: float) -> float:
        """Evaluate at time *t_ns* (linear interpolation)."""
        pts = self.points
        if t_ns <= pts[0][0]:
            return pts[0][1]
        if t_ns >= pts[-1][0]:
            return pts[-1][1]
        times = [p[0] for p in pts]
        i = bisect_right(times, t_ns)
        t0, v0 = pts[i - 1]
        t1, v1 = pts[i]
        if t1 == t0:
            return v1
        frac = (t_ns - t0) / (t1 - t0)
        return v0 + frac * (v1 - v0)

    def shifted(self, dt_ns: float) -> "Waveform":
        """Return a copy delayed by *dt_ns*."""
        return Waveform(tuple((t + dt_ns, v) for t, v in self.points))


@dataclass
class TransientResult:
    """Simulation output: time axis plus per-net voltage traces."""

    time_ns: np.ndarray
    voltages: dict[str, np.ndarray]

    def at(self, net: str, t_ns: float) -> float:
        """Voltage of *net* at the sample nearest to *t_ns*."""
        idx = int(np.argmin(np.abs(self.time_ns - t_ns)))
        return float(self.voltages[net][idx])

    def final(self, net: str) -> float:
        """Voltage of *net* at the last sample."""
        return float(self.voltages[net][-1])

    def crossing_time(self, net: str, level: float, after_ns: float = 0.0) -> float | None:
        """First time *net* crosses *level* after *after_ns*, or ``None``."""
        v = self.voltages[net]
        t = self.time_ns
        mask = t >= after_ns
        vs = v[mask]
        ts = t[mask]
        if len(vs) < 2:
            return None
        above = vs >= level
        flips = np.nonzero(above[1:] != above[:-1])[0]
        if len(flips) == 0:
            return None
        i = int(flips[0])
        # Linear interpolation inside the flip interval.
        v0, v1 = float(vs[i]), float(vs[i + 1])
        t0, t1 = float(ts[i]), float(ts[i + 1])
        if v1 == v0:
            return t1
        return t0 + (level - v0) / (v1 - v0) * (t1 - t0)

    def separation(self, net_a: str, net_b: str) -> np.ndarray:
        """Trace of ``V(net_a) − V(net_b)`` (the latched differential)."""
        return self.voltages[net_a] - self.voltages[net_b]


class TransientSolver:
    """Transient simulator over a :class:`Circuit`.

    Parameters
    ----------
    circuit:
        The netlist.  Voltage sources whose names appear in *stimuli* are
        driven by the associated waveform; others hold their ``v`` param.
    stimuli:
        Mapping of voltage-source device name → :class:`Waveform`.
    models:
        Optional override of the NMOS/PMOS models; per-device overrides go
        in ``device_models`` keyed by device name (how Vt mismatch is
        injected for the sense-margin analysis).
    """

    def __init__(
        self,
        circuit: Circuit,
        stimuli: dict[str, Waveform] | None = None,
        nmos: MosModel = NMOS_DEFAULT,
        pmos: MosModel = PMOS_DEFAULT,
        device_models: dict[str, MosModel] | None = None,
        gmin: float = 1e-10,
        max_newton: int = 80,
        tol: float = 1e-6,
    ) -> None:
        self.circuit = circuit
        self.stimuli = dict(stimuli or {})
        self.nmos = nmos
        self.pmos = pmos
        self.device_models = dict(device_models or {})
        self.gmin = gmin
        self.max_newton = max_newton
        self.tol = tol

        self._nodes: list[str] = sorted(
            net for net in circuit.nets() if net not in GROUND_NAMES
        )
        self._node_index = {net: i for i, net in enumerate(self._nodes)}
        self._vsources = [d for d in circuit if d.dtype is DeviceType.VSOURCE]
        self._n_nodes = len(self._nodes)
        self._n_unknowns = self._n_nodes + len(self._vsources)

        unknown_stimuli = set(self.stimuli) - {d.name for d in self._vsources}
        if unknown_stimuli:
            raise AnalogError(f"stimuli target unknown sources: {sorted(unknown_stimuli)}")

    # -- helpers -------------------------------------------------------------

    def _v_of(self, x: np.ndarray, net: str) -> float:
        net = self.circuit.resolve(net)
        if net in GROUND_NAMES:
            return 0.0
        return float(x[self._node_index[net]])

    def _idx(self, net: str) -> int | None:
        net = self.circuit.resolve(net)
        if net in GROUND_NAMES:
            return None
        return self._node_index[net]

    def _model_for(self, dev: Device) -> MosModel:
        if dev.name in self.device_models:
            return self.device_models[dev.name]
        return self.nmos if dev.dtype is DeviceType.NMOS else self.pmos

    def _stamp_conductance(self, g_mat: np.ndarray, a: int | None, b: int | None, g: float) -> None:
        if a is not None:
            g_mat[a, a] += g
        if b is not None:
            g_mat[b, b] += g
        if a is not None and b is not None:
            g_mat[a, b] -= g
            g_mat[b, a] -= g

    def _stamp_current(self, rhs: np.ndarray, into: int | None, out_of: int | None, i: float) -> None:
        """Stamp a current *i* flowing from node *out_of* into node *into*."""
        if into is not None:
            rhs[into] += i
        if out_of is not None:
            rhs[out_of] -= i

    # -- assembly -------------------------------------------------------------

    def _assemble(
        self, x: np.ndarray, v_prev: np.ndarray, h_s: float, t_ns: float
    ) -> tuple[np.ndarray, np.ndarray]:
        n = self._n_unknowns
        g_mat = np.zeros((n, n))
        rhs = np.zeros(n)

        # gmin to ground for every node.
        for i in range(self._n_nodes):
            g_mat[i, i] += self.gmin

        branch = self._n_nodes
        for dev in self.circuit:
            if dev.dtype is DeviceType.RESISTOR:
                a, b = self._idx(dev.nets["p"]), self._idx(dev.nets["n"])
                self._stamp_conductance(g_mat, a, b, 1.0 / dev.params["r"])

            elif dev.dtype is DeviceType.CAPACITOR:
                a, b = self._idx(dev.nets["p"]), self._idx(dev.nets["n"])
                c = dev.params["c"]
                geq = c / h_s
                self._stamp_conductance(g_mat, a, b, geq)
                vp_prev = v_prev[a] if a is not None else 0.0
                vn_prev = v_prev[b] if b is not None else 0.0
                ieq = geq * (vp_prev - vn_prev)
                # Norton companion injects from n into p.
                self._stamp_current(rhs, a, b, ieq)

            elif dev.dtype is DeviceType.VSOURCE:
                a, b = self._idx(dev.nets["p"]), self._idx(dev.nets["n"])
                wave = self.stimuli.get(dev.name)
                v_val = wave.value(t_ns) if wave is not None else dev.params.get("v", 0.0)
                k = branch
                if a is not None:
                    g_mat[a, k] += 1.0
                    g_mat[k, a] += 1.0
                if b is not None:
                    g_mat[b, k] -= 1.0
                    g_mat[k, b] -= 1.0
                rhs[k] += v_val
                branch += 1

            elif dev.dtype.is_mos:
                model = self._model_for(dev)
                wl = dev.params["w"] / dev.params["l"]
                d_i, g_i, s_i = (
                    self._idx(dev.nets["d"]),
                    self._idx(dev.nets["g"]),
                    self._idx(dev.nets["s"]),
                )
                vd = self._v_of(x, dev.nets["d"])
                vg = self._v_of(x, dev.nets["g"])
                vs = self._v_of(x, dev.nets["s"])
                ids = mos_current(model, wl, vg, vd, vs)
                gdd = (mos_current(model, wl, vg, vd + FD_STEP, vs) - ids) / FD_STEP
                gdg = (mos_current(model, wl, vg + FD_STEP, vd, vs) - ids) / FD_STEP
                gds_ = (mos_current(model, wl, vg, vd, vs + FD_STEP) - ids) / FD_STEP
                # Linearised: I = ids + gdd·Δvd + gdg·Δvg + gds·Δvs.
                # KCL: I leaves the drain node and enters the source node.
                i0 = ids - gdd * vd - gdg * vg - gds_ * vs
                for node_idx, gval in ((d_i, gdd), (g_i, gdg), (s_i, gds_)):
                    if node_idx is None:
                        continue
                    if d_i is not None:
                        g_mat[d_i, node_idx] += gval
                    if s_i is not None:
                        g_mat[s_i, node_idx] -= gval
                self._stamp_current(rhs, s_i, d_i, i0)

            elif dev.dtype is DeviceType.SWITCH:
                a, b = self._idx(dev.nets["p"]), self._idx(dev.nets["n"])
                ron = dev.params.get("ron", 1e3)
                self._stamp_conductance(g_mat, a, b, 1.0 / ron)

        return g_mat, rhs

    # -- main entry -------------------------------------------------------------

    def run(
        self,
        t_stop_ns: float,
        dt_ns: float = 0.05,
        ic: dict[str, float] | None = None,
        record: list[str] | None = None,
    ) -> TransientResult:
        """Run a transient simulation from 0 to *t_stop_ns*.

        ``ic`` sets initial node voltages (unspecified nodes start at 0 V);
        ``record`` limits the returned traces (default: every node).
        """
        if t_stop_ns <= 0 or dt_ns <= 0:
            raise AnalogError("t_stop and dt must be positive")
        h_s = dt_ns * 1e-9
        steps = int(round(t_stop_ns / dt_ns))
        record = record or list(self._nodes)
        for net in record:
            if self.circuit.resolve(net) not in self._node_index:
                raise AnalogError(f"cannot record unknown net {net!r}")

        x = np.zeros(self._n_unknowns)
        for net, v0 in (ic or {}).items():
            idx = self._idx(net)
            if idx is None:
                continue
            x[idx] = v0

        times = np.empty(steps + 1)
        traces = {net: np.empty(steps + 1) for net in record}
        times[0] = 0.0
        for net in record:
            traces[net][0] = self._v_of(x, net)

        v_prev = x[: self._n_nodes].copy()
        for step in range(1, steps + 1):
            t_ns = step * dt_ns
            x = self._newton(x, v_prev, h_s, t_ns)
            v_prev = x[: self._n_nodes].copy()
            times[step] = t_ns
            for net in record:
                traces[net][step] = self._v_of(x, net)

        return TransientResult(time_ns=times, voltages=traces)

    def _newton(self, x0: np.ndarray, v_prev: np.ndarray, h_s: float, t_ns: float) -> np.ndarray:
        x = x0.copy()
        residual = float("inf")
        for _iteration in range(self.max_newton):
            g_mat, rhs = self._assemble(x, v_prev, h_s, t_ns)
            try:
                x_new = np.linalg.solve(g_mat, rhs)
            except np.linalg.LinAlgError as exc:
                raise AnalogError(f"singular MNA matrix at t={t_ns:.3f} ns") from exc
            delta = x_new - x
            # Damp large voltage steps to keep square-law Newton stable.
            max_step = 0.5
            biggest = float(np.max(np.abs(delta[: self._n_nodes]))) if self._n_nodes else 0.0
            if biggest > max_step:
                delta *= max_step / biggest
            x = x + delta
            residual = float(np.max(np.abs(delta[: self._n_nodes]))) if self._n_nodes else 0.0
            if residual < self.tol:
                return x
        raise ConvergenceError(t_ns, residual, self.max_newton)


@dataclass
class BatchTransientResult:
    """Batched simulation output: one time axis, ``(N, T)`` voltage traces.

    Instance *i* of the batch is exactly the trace the scalar
    :class:`TransientSolver` would have produced for that instance's
    device models — :meth:`instance` materialises it as a plain
    :class:`TransientResult` for the per-instance analysis helpers.
    """

    time_ns: np.ndarray
    voltages: dict[str, np.ndarray]

    @property
    def batch(self) -> int:
        for trace in self.voltages.values():
            return int(trace.shape[0])
        return 0

    def instance(self, i: int) -> TransientResult:
        """The scalar-shaped result of batch instance *i* (a view)."""
        return TransientResult(
            time_ns=self.time_ns,
            voltages={net: trace[i] for net, trace in self.voltages.items()},
        )

    def final(self, net: str) -> np.ndarray:
        """Per-instance voltage of *net* at the last sample, shape ``(N,)``."""
        return self.voltages[net][:, -1]


class BatchedTransientSolver(TransientSolver):
    """N lock-step instances of one circuit, solved as stacked MNA systems.

    The Monte-Carlo and corner sweeps vary only *device models* between
    instances (Vt mismatch, kp corners); topology, passives and stimuli
    are shared.  That makes every instance's conductance matrix the same
    shape with different entries, so the whole batch assembles into one
    ``(N, nodes, nodes)`` stack and one batched ``numpy.linalg.solve``
    per Newton iteration — amortising the per-device Python overhead
    that dominates the scalar solver over the batch.

    Bit-identity contract: instance *i* of a batched run is bit-identical
    to a scalar :class:`TransientSolver` run with that instance's device
    models.  Three things uphold it: the vectorized device evaluation
    computes the same IEEE expressions in the same order
    (:func:`~repro.analog.devices.mos_current_vec`), assembly walks the
    circuit's devices in the same order (float accumulation order is
    preserved per matrix entry), and Newton damps/converges *per
    instance* — a converged instance freezes while stragglers iterate,
    exactly like the scalar early return.  LAPACK's batched ``solve``
    factors each matrix independently, so the solve step is bit-identical
    too.  The scalar :class:`TransientSolver` is the retained reference
    implementation the perf harness and the property tests compare
    against.

    ``device_models`` accepts per-instance sequences: ``{"n2": [m0, m1,
    ...]}`` gives instance *i* model ``m_i`` for device ``n2``.  Scalar
    entries (a single :class:`MosModel`) are shared by the whole batch.
    ``batch`` may be omitted when at least one sequence fixes it.
    """

    def __init__(
        self,
        circuit: Circuit,
        stimuli: dict[str, Waveform] | None = None,
        nmos: MosModel = NMOS_DEFAULT,
        pmos: MosModel = PMOS_DEFAULT,
        device_models: dict[str, MosModel | Sequence[MosModel]] | None = None,
        batch: int | None = None,
        gmin: float = 1e-10,
        max_newton: int = 80,
        tol: float = 1e-6,
    ) -> None:
        super().__init__(
            circuit, stimuli, nmos=nmos, pmos=pmos, device_models=None,
            gmin=gmin, max_newton=max_newton, tol=tol,
        )
        self._raw_device_models = dict(device_models or {})
        inferred: int | None = None
        for name, entry in self._raw_device_models.items():
            if isinstance(entry, MosModel):
                continue
            n = len(entry)
            if n < 1:
                raise AnalogError(f"empty model sequence for device {name!r}")
            if inferred is None:
                inferred = n
            elif inferred != n:
                raise AnalogError(
                    f"inconsistent batch sizes in device_models "
                    f"({inferred} vs {n} for {name!r})"
                )
        if batch is None:
            batch = inferred
        if batch is None:
            raise AnalogError(
                "batch size is ambiguous: pass batch= or at least one "
                "per-instance model sequence"
            )
        if batch < 1:
            raise AnalogError("batch must be >= 1")
        if inferred is not None and inferred != batch:
            raise AnalogError(
                f"batch={batch} conflicts with model sequences of length {inferred}"
            )
        self.batch = batch

        # Per-MOS-device model parameters: floats when shared, (N,) arrays
        # when per-instance.  Channel cannot vary across a batch (it would
        # change the circuit, not a parameter).
        self._mos_params: dict[str, tuple[str, Any, Any, Any]] = {}
        for dev in circuit:
            if not dev.dtype.is_mos:
                continue
            entry = self._raw_device_models.get(dev.name)
            if entry is None:
                base = self.nmos if dev.dtype is DeviceType.NMOS else self.pmos
                self._mos_params[dev.name] = (base.channel, base.kp, base.vt, base.lam)
            elif isinstance(entry, MosModel):
                self._mos_params[dev.name] = (entry.channel, entry.kp, entry.vt, entry.lam)
            else:
                models = list(entry)
                channels = {m.channel for m in models}
                if len(channels) != 1:
                    raise AnalogError(
                        f"device {dev.name!r} mixes channels across the batch"
                    )
                self._mos_params[dev.name] = (
                    models[0].channel,
                    np.array([m.kp for m in models]),
                    np.array([m.vt for m in models]),
                    np.array([m.lam for m in models]),
                )

    def instance_models(self, i: int) -> dict[str, MosModel]:
        """The ``device_models`` dict reproducing batch instance *i*."""
        out: dict[str, MosModel] = {}
        for name, entry in self._raw_device_models.items():
            out[name] = entry if isinstance(entry, MosModel) else entry[i]
        return out

    def reference_solver(self, i: int) -> TransientSolver:
        """A scalar :class:`TransientSolver` equivalent to instance *i*."""
        return TransientSolver(
            self.circuit, self.stimuli, nmos=self.nmos, pmos=self.pmos,
            device_models=self.instance_models(i),
            gmin=self.gmin, max_newton=self.max_newton, tol=self.tol,
        )

    # -- batched helpers -----------------------------------------------------

    def _v_of_batch(self, x: np.ndarray, net: str) -> np.ndarray:
        net = self.circuit.resolve(net)
        if net in GROUND_NAMES:
            return np.zeros(self.batch)
        return x[:, self._node_index[net]]

    def _stamp_conductance(self, g_mat: np.ndarray, a: int | None, b: int | None, g) -> None:
        if a is not None:
            g_mat[:, a, a] += g
        if b is not None:
            g_mat[:, b, b] += g
        if a is not None and b is not None:
            g_mat[:, a, b] -= g
            g_mat[:, b, a] -= g

    def _stamp_current(self, rhs: np.ndarray, into: int | None, out_of: int | None, i) -> None:
        if into is not None:
            rhs[:, into] += i
        if out_of is not None:
            rhs[:, out_of] -= i

    # -- batched assembly ----------------------------------------------------

    def _assemble(
        self, x: np.ndarray, v_prev: np.ndarray, h_s: float, t_ns: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """Stacked MNA assembly: ``(N, n, n)`` conductances, ``(N, n)`` RHS.

        Mirrors the scalar ``TransientSolver._assemble`` device walk
        exactly (same device order, same stamp order) so every matrix
        entry accumulates its float terms in the scalar order.
        """
        n = self._n_unknowns
        g_mat = np.zeros((self.batch, n, n))
        rhs = np.zeros((self.batch, n))

        for i in range(self._n_nodes):
            g_mat[:, i, i] += self.gmin

        branch = self._n_nodes
        for dev in self.circuit:
            if dev.dtype is DeviceType.RESISTOR:
                a, b = self._idx(dev.nets["p"]), self._idx(dev.nets["n"])
                self._stamp_conductance(g_mat, a, b, 1.0 / dev.params["r"])

            elif dev.dtype is DeviceType.CAPACITOR:
                a, b = self._idx(dev.nets["p"]), self._idx(dev.nets["n"])
                c = dev.params["c"]
                geq = c / h_s
                self._stamp_conductance(g_mat, a, b, geq)
                vp_prev = v_prev[:, a] if a is not None else 0.0
                vn_prev = v_prev[:, b] if b is not None else 0.0
                ieq = geq * (vp_prev - vn_prev)
                self._stamp_current(rhs, a, b, ieq)

            elif dev.dtype is DeviceType.VSOURCE:
                a, b = self._idx(dev.nets["p"]), self._idx(dev.nets["n"])
                wave = self.stimuli.get(dev.name)
                v_val = wave.value(t_ns) if wave is not None else dev.params.get("v", 0.0)
                k = branch
                if a is not None:
                    g_mat[:, a, k] += 1.0
                    g_mat[:, k, a] += 1.0
                if b is not None:
                    g_mat[:, b, k] -= 1.0
                    g_mat[:, k, b] -= 1.0
                rhs[:, k] += v_val
                branch += 1

            elif dev.dtype.is_mos:
                channel, kp, vt, lam = self._mos_params[dev.name]
                wl = dev.params["w"] / dev.params["l"]
                d_i, g_i, s_i = (
                    self._idx(dev.nets["d"]),
                    self._idx(dev.nets["g"]),
                    self._idx(dev.nets["s"]),
                )
                vd = self._v_of_batch(x, dev.nets["d"])
                vg = self._v_of_batch(x, dev.nets["g"])
                vs = self._v_of_batch(x, dev.nets["s"])
                ids = mos_current_vec(channel, kp, vt, lam, wl, vg, vd, vs)
                gdd = (mos_current_vec(channel, kp, vt, lam, wl, vg, vd + FD_STEP, vs)
                       - ids) / FD_STEP
                gdg = (mos_current_vec(channel, kp, vt, lam, wl, vg + FD_STEP, vd, vs)
                       - ids) / FD_STEP
                gds_ = (mos_current_vec(channel, kp, vt, lam, wl, vg, vd, vs + FD_STEP)
                        - ids) / FD_STEP
                i0 = ids - gdd * vd - gdg * vg - gds_ * vs
                for node_idx, gval in ((d_i, gdd), (g_i, gdg), (s_i, gds_)):
                    if node_idx is None:
                        continue
                    if d_i is not None:
                        g_mat[:, d_i, node_idx] += gval
                    if s_i is not None:
                        g_mat[:, s_i, node_idx] -= gval
                self._stamp_current(rhs, s_i, d_i, i0)

            elif dev.dtype is DeviceType.SWITCH:
                a, b = self._idx(dev.nets["p"]), self._idx(dev.nets["n"])
                ron = dev.params.get("ron", 1e3)
                self._stamp_conductance(g_mat, a, b, 1.0 / ron)

        return g_mat, rhs

    # -- batched Newton / time stepping --------------------------------------

    def _newton(self, x0: np.ndarray, v_prev: np.ndarray, h_s: float, t_ns: float) -> np.ndarray:
        x = x0.copy()
        n_nodes = self._n_nodes
        active = np.arange(self.batch)
        residual = np.full(self.batch, float("inf"))
        for _iteration in range(self.max_newton):
            g_mat, rhs = self._assemble(x, v_prev, h_s, t_ns)
            try:
                x_new = np.linalg.solve(g_mat[active], rhs[active][..., None])[..., 0]
            except np.linalg.LinAlgError as exc:
                raise AnalogError(
                    f"singular MNA matrix at t={t_ns:.3f} ns (batched)"
                ) from exc
            delta = x_new - x[active]
            max_step = 0.5
            if n_nodes:
                biggest = np.max(np.abs(delta[:, :n_nodes]), axis=1)
            else:
                biggest = np.zeros(active.size)
            # Per-instance damping: only over-stepping instances get
            # scaled (scaling by exactly 1.0 would also be bit-exact, but
            # mirroring the scalar control flow keeps the intent obvious).
            damped = biggest > max_step
            if np.any(damped):
                scale = np.ones(active.size)
                scale[damped] = max_step / biggest[damped]
                delta = delta * scale[:, None]
            x[active] = x[active] + delta
            if n_nodes:
                res = np.max(np.abs(delta[:, :n_nodes]), axis=1)
            else:
                res = np.zeros(active.size)
            residual[active] = res
            # Per-instance convergence freezing — the batched analogue of
            # the scalar early return.
            still = res >= self.tol
            active = active[still]
            if active.size == 0:
                return x
        error = ConvergenceError(
            t_ns, float(np.max(residual[active])), self.max_newton
        )
        error.instances = [int(i) for i in active]
        raise error

    def run(
        self,
        t_stop_ns: float,
        dt_ns: float = 0.05,
        ic: dict[str, float | np.ndarray] | None = None,
        record: list[str] | None = None,
    ) -> BatchTransientResult:
        """Run the batch from 0 to *t_stop_ns* in lock-step.

        ``ic`` values may be floats (shared) or ``(N,)`` arrays
        (per-instance initial conditions).
        """
        if t_stop_ns <= 0 or dt_ns <= 0:
            raise AnalogError("t_stop and dt must be positive")
        h_s = dt_ns * 1e-9
        steps = int(round(t_stop_ns / dt_ns))
        record = record or list(self._nodes)
        for net in record:
            if self.circuit.resolve(net) not in self._node_index:
                raise AnalogError(f"cannot record unknown net {net!r}")

        x = np.zeros((self.batch, self._n_unknowns))
        for net, v0 in (ic or {}).items():
            idx = self._idx(net)
            if idx is None:
                continue
            x[:, idx] = v0

        times = np.empty(steps + 1)
        traces = {net: np.empty((self.batch, steps + 1)) for net in record}
        times[0] = 0.0
        for net in record:
            traces[net][:, 0] = self._v_of_batch(x, net)

        v_prev = x[:, : self._n_nodes].copy()
        for step in range(1, steps + 1):
            t_ns = step * dt_ns
            x = self._newton(x, v_prev, h_s, t_ns)
            v_prev = x[:, : self._n_nodes].copy()
            times[step] = t_ns
            for net in record:
                traces[net][:, step] = self._v_of_batch(x, net)

        return BatchTransientResult(time_ns=times, voltages=traces)


def dc_operating_point(
    circuit: Circuit,
    stimuli: dict[str, Waveform] | None = None,
    **solver_kwargs,
) -> dict[str, float]:
    """Solve the DC operating point (long transient settle at t=0 stimuli).

    Capacitors are open at DC; rather than special-casing the assembly we
    run a short settling transient with a large step, which converges to
    the same point for the circuits this library builds.
    """
    solver = TransientSolver(circuit, stimuli, **solver_kwargs)
    result = solver.run(t_stop_ns=200.0, dt_ns=10.0)
    return {net: result.final(net) for net in result.voltages}
