"""Timing and energy metrics over activation simulations.

§VI-B's inaccuracy I5 notes that ignoring the OCSA "impacts the ...
timings of the new events as well as the reliability of analog
simulations, impacting the performance, energy and power overheads of the
affected operations".  These helpers quantify exactly that, on top of
:class:`~repro.analog.sense_amp.ActivationOutcome`:

* :func:`sensing_latency_ns` — ACT → bitlines separated to a fraction of
  Vdd (a tRCD-like figure);
* :func:`restore_latency_ns` — ACT → cell recharged (a tRAS-like figure);
* :func:`switched_energy_fj` — CV² switching energy over the activation.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.analog.sense_amp import ActivationOutcome
from repro.circuits.netlist import DeviceType
from repro.errors import AnalogError


def sensing_latency_ns(outcome: ActivationOutcome, fraction: float = 0.8) -> float:
    """Time from wordline rise until |BL − BLB| reaches *fraction*·Vdd."""
    if not 0.0 < fraction < 1.0:
        raise AnalogError("fraction must be in (0, 1)")
    res = outcome.result
    target = fraction * outcome.config.vdd
    t_act = outcome.timeline.event("charge_sharing").start_ns
    sep = abs(res.separation("BL", "BLB"))
    crossing = None
    for t, s in zip(res.time_ns, sep):
        if t >= t_act and s >= target:
            crossing = t
            break
    if crossing is None:
        raise AnalogError(f"bitlines never separated to {fraction:.0%} of Vdd")
    return float(crossing - t_act)


def restore_latency_ns(outcome: ActivationOutcome, fraction: float = 0.9) -> float:
    """Time from wordline rise until the cell is recharged to its rail."""
    res = outcome.result
    cfg = outcome.config
    t_act = outcome.timeline.event("charge_sharing").start_ns
    target = fraction * cfg.vdd if outcome.data_written else (1 - fraction) * cfg.vdd
    for t, v in zip(res.time_ns, res.voltages["CELL"]):
        if t <= t_act + 0.5:
            continue
        hit = v >= target if outcome.data_written else v <= target
        if hit:
            return float(t - t_act)
    raise AnalogError("the cell never restored")


def switched_energy_fj(outcome: ActivationOutcome) -> float:
    """Total ΣC·ΔV² switching energy of the activation, in femtojoules.

    ΔV is each capacitor's total voltage excursion over the simulation —
    an upper-bound style estimate of the dynamic energy the activation
    moved, the quantity I5 says OCSA timing changes perturb.
    """
    bench_circuit = outcome.result
    total_j = 0.0
    # Reconstruct the capacitor list from the recorded traces and config.
    cfg = outcome.config
    caps = {"BL": cfg.bitline_cap_f, "BLB": cfg.bitline_cap_f, "CELL": cfg.cell_cap_f}
    if "SABL" in bench_circuit.voltages:
        caps["SABL"] = cfg.internal_cap_f
        caps["SABLB"] = cfg.internal_cap_f
    for net, c in caps.items():
        trace = bench_circuit.voltages[net]
        swing = float(trace.max() - trace.min())
        total_j += c * swing * swing
    return total_j * 1e15


def latency_stats(latencies_ns: Sequence[float]) -> dict[str, float]:
    """Summary statistics over a Monte-Carlo latency vector.

    NaN entries mark failed trials (wrong latch value or bitlines that
    never separated — see :class:`~repro.analog.montecarlo.YieldResult`);
    they are excluded from the mean/percentiles but counted in
    ``failed``.  With no valid samples, the statistics themselves are
    NaN.
    """
    valid = sorted(v for v in latencies_ns if not math.isnan(v))
    failed = len(latencies_ns) - len(valid)
    if not valid:
        nan = float("nan")
        return {"mean_ns": nan, "p95_ns": nan, "worst_ns": nan,
                "valid": 0.0, "failed": float(failed)}
    p95_index = min(len(valid) - 1, math.ceil(0.95 * len(valid)) - 1)
    return {
        "mean_ns": sum(valid) / len(valid),
        "p95_ns": valid[p95_index],
        "worst_ns": valid[-1],
        "valid": float(len(valid)),
        "failed": float(failed),
    }


def activation_comparison(
    classic: ActivationOutcome, ocsa: ActivationOutcome
) -> dict[str, float]:
    """The I5 deltas: how OCSA shifts sensing/restore latency and energy."""
    return {
        "sensing_latency_classic_ns": sensing_latency_ns(classic),
        "sensing_latency_ocsa_ns": sensing_latency_ns(ocsa),
        "restore_latency_classic_ns": restore_latency_ns(classic),
        "restore_latency_ocsa_ns": restore_latency_ns(ocsa),
        "energy_classic_fj": switched_energy_fj(classic),
        "energy_ocsa_fj": switched_energy_fj(ocsa),
    }
