"""The unified analog characterization spec.

Historically every analog entry point grew its own keyword surface:
``sensing_yield(sigma_mv=, samples=, seed=, deadline_ns=, config=)``,
``model_optimism(sigma_mv=, samples=, deadline_margin=)``,
``yield_curve(sigmas_mv=, samples=, deadline_ns=)`` and
``TransientSolver.run(dt_ns=)`` all name overlapping knobs with drifting
defaults.  That shape neither composes (a sweep over corners × topologies
× geometries wants *one* value object to hash, cache and replay) nor
rides the campaign runtime (stage-cache keys need a canonicalizable
parameter object).  This module replaces it — the same move
:class:`repro.pipeline.config.PipelineConfig` made for the imaging
pipeline in 1.1:

* :class:`DeviceCorner` — a named process corner (kp factors + Vt shifts
  per channel), with the five classic corners in :data:`CORNERS`;
* :class:`CharacterizationSpec` — one frozen, validated dataclass holding
  every tunable of the Monte-Carlo/corner characterization surface, with
  ``from_legacy_kwargs`` shims translating the old keywords for one
  deprecation cycle.

Everything in the spec is plain dataclasses/enums/tuples, so it passes
:func:`repro.runtime.hashing.canonicalize` unchanged — which is what lets
:mod:`repro.analog.characterizer` use spec subsets as stage-cache params.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field, replace
from typing import Any

from repro.analog.bitline_parasitics import BitlineGeometry, total_capacitance_f
from repro.analog.devices import MosModel, NMOS_DEFAULT, PMOS_DEFAULT
from repro.analog.sense_amp import SenseAmpConfig
from repro.circuits.topologies import SaSizes, SaTopology
from repro.errors import AnalogError


@dataclass(frozen=True)
class DeviceCorner:
    """A named process corner: per-channel kp factors and Vt shifts.

    ``apply`` derives the corner's device models from nominal ones; the
    typical-typical corner is the exact identity (multiplying by 1.0 and
    adding 0.0 are bit-exact no-ops), so a TT sweep cell reproduces the
    nominal models bit-for-bit.
    """

    name: str
    nmos_kp_factor: float = 1.0
    pmos_kp_factor: float = 1.0
    nmos_vt_shift_mv: float = 0.0
    pmos_vt_shift_mv: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise AnalogError("device corner needs a name")
        if self.nmos_kp_factor <= 0 or self.pmos_kp_factor <= 0:
            raise AnalogError("corner kp factors must be positive")

    def apply(self, nmos: MosModel, pmos: MosModel) -> tuple[MosModel, MosModel]:
        """Nominal NMOS/PMOS models shifted to this corner."""
        return (
            MosModel(
                "nmos",
                nmos.kp * self.nmos_kp_factor,
                nmos.vt + self.nmos_vt_shift_mv / 1000.0,
                nmos.lam,
            ),
            MosModel(
                "pmos",
                pmos.kp * self.pmos_kp_factor,
                pmos.vt + self.pmos_vt_shift_mv / 1000.0,
                pmos.lam,
            ),
        )


#: The five classic device corners (fast/slow per channel).  Slow devices
#: lose drive (lower kp, higher Vt); fast ones gain it.
CORNERS: dict[str, DeviceCorner] = {
    "TT": DeviceCorner("TT"),
    "FF": DeviceCorner("FF", 1.15, 1.15, -30.0, -30.0),
    "SS": DeviceCorner("SS", 0.85, 0.85, +30.0, +30.0),
    "FS": DeviceCorner("FS", 1.15, 0.85, -30.0, +30.0),
    "SF": DeviceCorner("SF", 0.85, 1.15, +30.0, -30.0),
}

#: Default offset-tolerance scan ladder (mV of latch Vt mismatch).
DEFAULT_OFFSET_SCAN_MV: tuple[float, ...] = tuple(float(mv) for mv in range(0, 401, 25))

#: Map from the legacy analog keywords to spec fields.
LEGACY_SPEC_KWARGS = {
    "sigma_mv": "sigma_mv",
    "samples": "trials",
    "data": "data",
    "seed": "seed",
    "deadline_ns": "deadline_ns",
    "deadline_margin": "deadline_margin",
    "sigmas_mv": "sigmas_mv",
}


def _corner(value: "str | DeviceCorner") -> DeviceCorner:
    if isinstance(value, DeviceCorner):
        return value
    try:
        return CORNERS[str(value).upper()]
    except KeyError:
        raise AnalogError(
            f"unknown device corner {value!r} (expected one of {sorted(CORNERS)} "
            "or a DeviceCorner)"
        ) from None


def _topology(value: "str | SaTopology") -> SaTopology:
    if isinstance(value, SaTopology):
        return value
    try:
        return SaTopology(str(value).lower())
    except ValueError:
        raise AnalogError(f"unknown SA topology {value!r}") from None


@dataclass(frozen=True)
class CharacterizationSpec:
    """Every tunable of the analog characterization surface, in one object.

    The defaults reproduce the historical ``sensing_yield`` behaviour
    exactly (same RNG stream, same bench electricals).  Sweep axes
    (``topologies`` × ``corners`` × the bitline axis) drive
    :func:`repro.analog.characterizer.characterize`; the scalar fields
    configure each sweep cell's Monte-Carlo run.
    """

    #: sweep axis: SA topologies to characterize
    topologies: tuple[SaTopology, ...] = (SaTopology.CLASSIC, SaTopology.OCSA)
    #: sweep axis: device corners (names into :data:`CORNERS` or
    #: :class:`DeviceCorner` objects)
    corners: tuple[DeviceCorner, ...] = (CORNERS["TT"],)
    #: Monte-Carlo trials per sweep cell (the legacy ``samples``)
    trials: int = 40
    #: latch Vt mismatch sigma (mV) the trials draw from
    sigma_mv: float = 60.0
    #: sigma axis for :func:`~repro.analog.montecarlo.yield_curve`
    sigmas_mv: tuple[float, ...] = (20.0, 60.0, 100.0, 140.0)
    #: RNG seed for the mismatch draws (deterministic per cell)
    seed: int = 7
    #: stored data value the activation senses
    data: int = 1
    #: sensing deadline (ns); ``None`` counts only wrong senses as failures
    deadline_ns: float | None = None
    #: deadline margin for :func:`~repro.analog.montecarlo.model_optimism`
    deadline_margin: float = 1.05
    #: transistor sizes of the SA under test
    sizes: SaSizes = field(default_factory=SaSizes)
    #: sweep axis: bitline geometries — when set, each geometry's
    #: :func:`~repro.analog.bitline_parasitics.total_capacitance_f`
    #: becomes one bitline-capacitance sweep point
    geometries: tuple[BitlineGeometry, ...] | None = None
    #: sweep axis: explicit per-bitline capacitances (F); ignored when
    #: ``geometries`` is set
    bitline_caps_f: tuple[float, ...] = (90e-15,)
    cell_cap_f: float = 18e-15
    internal_cap_f: float = 4e-15
    vdd: float = 1.1
    vpp: float = 2.4
    #: transient time step (the legacy ``TransientSolver.run(dt_ns=)``)
    dt_ns: float = 0.05
    #: offset-tolerance scan ladder (mV of latch Vt mismatch)
    offset_scan_mv: tuple[float, ...] = DEFAULT_OFFSET_SCAN_MV
    #: Newton iteration cap of the transient solver
    max_newton: int = 80

    def __post_init__(self) -> None:
        coerce = object.__setattr__
        topologies = self.topologies
        if isinstance(topologies, (str, SaTopology)):
            topologies = (topologies,)
        coerce(self, "topologies", tuple(_topology(t) for t in topologies))
        corners = self.corners
        if isinstance(corners, (str, DeviceCorner)):
            corners = (corners,)
        coerce(self, "corners", tuple(_corner(c) for c in corners))
        coerce(self, "sigmas_mv", tuple(float(s) for s in self.sigmas_mv))
        coerce(self, "bitline_caps_f", tuple(float(c) for c in self.bitline_caps_f))
        coerce(self, "offset_scan_mv", tuple(float(m) for m in self.offset_scan_mv))
        if self.geometries is not None:
            coerce(self, "geometries", tuple(self.geometries))

        if not self.topologies:
            raise AnalogError("spec needs at least one topology")
        if not self.corners:
            raise AnalogError("spec needs at least one corner")
        names = [c.name for c in self.corners]
        if len(set(names)) != len(names):
            raise AnalogError(f"duplicate corner names: {sorted(names)}")
        if self.trials < 1:
            raise AnalogError("need at least one sample")
        if self.sigma_mv < 0:
            raise AnalogError("sigma must be non-negative")
        if any(s < 0 for s in self.sigmas_mv) or not self.sigmas_mv:
            raise AnalogError("sigmas_mv must be a non-empty tuple of >= 0 values")
        if self.data not in (0, 1):
            raise AnalogError("data must be 0 or 1")
        if self.deadline_ns is not None and self.deadline_ns <= 0:
            raise AnalogError("deadline must be positive (or None)")
        if self.deadline_margin <= 0:
            raise AnalogError("deadline margin must be positive")
        if not self.bitline_caps_f or any(c <= 0 for c in self.bitline_caps_f):
            raise AnalogError("bitline capacitances must be positive")
        if self.geometries is not None and not self.geometries:
            raise AnalogError("geometries must be None or non-empty")
        if self.cell_cap_f <= 0 or self.internal_cap_f <= 0:
            raise AnalogError("capacitances must be positive")
        if self.vdd <= 0 or self.vpp <= 0:
            raise AnalogError("rails must be positive")
        if self.dt_ns <= 0:
            raise AnalogError("dt must be positive")
        if any(m < 0 for m in self.offset_scan_mv) or not self.offset_scan_mv:
            raise AnalogError("offset scan must be a non-empty tuple of >= 0 mV levels")
        if self.max_newton < 1:
            raise AnalogError("max_newton must be >= 1")

    def replaced(self, **changes: Any) -> "CharacterizationSpec":
        """A copy with *changes* applied (``dataclasses.replace`` sugar)."""
        return replace(self, **changes)

    def bitline_axis(self) -> tuple[float, ...]:
        """The bitline-capacitance sweep points (F), geometry-derived or
        explicit."""
        if self.geometries is not None:
            return tuple(total_capacitance_f(g) for g in self.geometries)
        return self.bitline_caps_f

    def bench_config(
        self,
        topology: SaTopology | None = None,
        corner: DeviceCorner | None = None,
        bitline_cap_f: float | None = None,
        sizes: SaSizes | None = None,
    ) -> SenseAmpConfig:
        """The :class:`SenseAmpConfig` of one sweep cell.

        Defaults to the first point of each axis, so a spec with all
        defaults reproduces the historical default bench bit-for-bit
        (TT's ``apply`` is the identity).
        """
        corner = corner or self.corners[0]
        nmos, pmos = corner.apply(NMOS_DEFAULT, PMOS_DEFAULT)
        return SenseAmpConfig(
            topology=topology or self.topologies[0],
            sizes=sizes or self.sizes,
            vdd=self.vdd,
            vpp=self.vpp,
            cell_cap_f=self.cell_cap_f,
            bitline_cap_f=(
                bitline_cap_f if bitline_cap_f is not None else self.bitline_axis()[0]
            ),
            internal_cap_f=self.internal_cap_f,
            nmos=nmos,
            pmos=pmos,
        )

    def cell_token(self) -> dict[str, Any]:
        """The per-cell result-affecting fields, as a plain dict.

        Sweep axes are *not* included — each sweep cell keys on its own
        axis point (see :mod:`repro.analog.characterizer`), so two specs
        differing only in the axes share cache entries for the cells
        they have in common.
        """
        from repro.runtime.hashing import canonicalize

        return {
            "trials": self.trials,
            "sigma_mv": self.sigma_mv,
            "seed": self.seed,
            "data": self.data,
            "deadline_ns": self.deadline_ns,
            "sizes": canonicalize(self.sizes),
            "cell_cap_f": self.cell_cap_f,
            "internal_cap_f": self.internal_cap_f,
            "vdd": self.vdd,
            "vpp": self.vpp,
            "dt_ns": self.dt_ns,
            "offset_scan_mv": list(self.offset_scan_mv),
            "max_newton": self.max_newton,
        }

    @classmethod
    def from_legacy_kwargs(
        cls,
        base: "CharacterizationSpec | None" = None,
        **legacy: Any,
    ) -> "CharacterizationSpec":
        """Translate the pre-1.5 analog keywords into a spec.

        Emits one :class:`DeprecationWarning` naming the migration and
        the removal version; raises ``TypeError`` on keywords that never
        existed.
        """
        unknown = set(legacy) - set(LEGACY_SPEC_KWARGS)
        if unknown:
            raise TypeError(
                f"unexpected keyword argument(s) {sorted(unknown)}; "
                "pass a CharacterizationSpec via spec= instead"
            )
        if legacy:
            warnings.warn(
                f"keyword(s) {sorted(legacy)} are deprecated; pass "
                "spec=CharacterizationSpec(...) instead (they will be "
                "removed in repro 2.0)",
                DeprecationWarning,
                stacklevel=3,
            )
        base = base or cls()
        return replace(base, **{LEGACY_SPEC_KWARGS[k]: v for k, v in legacy.items()})
