"""Analog simulation substrate.

The paper's §VI-A argues that analog simulations of DRAM SAs are only as
good as the transistor dimensions and topology they assume.  This package
provides the simulator those arguments need:

* :mod:`repro.analog.devices` — square-law MOSFET model and passives;
* :mod:`repro.analog.solver` — modified-nodal-analysis transient solver
  (Newton iteration + backward Euler companion models);
* :mod:`repro.analog.events` — DDR activation/precharge control sequences
  for the classic SA (Fig 2c) and the OCSA (Fig 9b);
* :mod:`repro.analog.sense_amp` — end-to-end testbenches: charge sharing,
  offset cancellation, pre-sensing, latch & restore, sense-margin sweeps;
* :mod:`repro.analog.spec` — the :class:`CharacterizationSpec` config
  object fronting the whole characterization surface;
* :mod:`repro.analog.characterizer` — corner × topology × bitline sweeps
  run as campaign jobs on the batched solver.
"""

from repro.analog.devices import MosModel, NMOS_DEFAULT, PMOS_DEFAULT
from repro.analog.solver import (
    BatchTransientResult,
    BatchedTransientSolver,
    TransientResult,
    TransientSolver,
    Waveform,
)
from repro.analog.events import (
    EventTimeline,
    classic_activation_timeline,
    ocsa_activation_timeline,
)
from repro.analog.metrics import (
    activation_comparison,
    restore_latency_ns,
    sensing_latency_ns,
    switched_energy_fj,
)
from repro.analog.bitline_parasitics import (
    BitlineGeometry,
    crosstalk_ratio,
    settling_time_ns,
    shrink_report,
)
from repro.analog.montecarlo import (
    YieldResult,
    model_optimism,
    sensing_yield,
    yield_curve,
)
from repro.analog.sense_amp import (
    SenseAmpBench,
    SenseAmpConfig,
    ActivationOutcome,
    simulate_activation,
    offset_tolerance,
    worst_case_offset_tolerance,
    charge_sharing_onset,
)
from repro.analog.spec import CORNERS, CharacterizationSpec, DeviceCorner
from repro.analog.characterizer import (
    CellResult,
    CharacterizationJob,
    CharacterizationReport,
    SweepCell,
    characterize,
    sweep_cells,
)

__all__ = [
    "BatchTransientResult",
    "BatchedTransientSolver",
    "CORNERS",
    "CharacterizationSpec",
    "DeviceCorner",
    "CellResult",
    "CharacterizationJob",
    "CharacterizationReport",
    "SweepCell",
    "characterize",
    "sweep_cells",
    "MosModel",
    "NMOS_DEFAULT",
    "PMOS_DEFAULT",
    "TransientResult",
    "TransientSolver",
    "Waveform",
    "EventTimeline",
    "classic_activation_timeline",
    "ocsa_activation_timeline",
    "SenseAmpBench",
    "SenseAmpConfig",
    "ActivationOutcome",
    "simulate_activation",
    "offset_tolerance",
    "worst_case_offset_tolerance",
    "charge_sharing_onset",
    "activation_comparison",
    "restore_latency_ns",
    "sensing_latency_ns",
    "switched_energy_fj",
    "YieldResult",
    "model_optimism",
    "sensing_yield",
    "yield_curve",
    "BitlineGeometry",
    "crosstalk_ratio",
    "settling_time_ns",
    "shrink_report",
]
