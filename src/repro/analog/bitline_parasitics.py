"""Bitline parasitics: the electrical impact of changing bitlines.

Appendix A argues that even where shrinking bitlines is manufacturable it
is electrically costly: "shrinking wires increases their electrical
resistance (R) ... making wires closer increases crosstalk", slowing
precharge/charge-sharing/latching and risking read failures.  This module
puts numbers on that argument with a distributed-RC wire model:

* resistance from the drawn cross-section (with a barrier-inflated
  effective resistivity, as appropriate below ~50 nm line widths);
* ground and neighbour-coupling capacitance from parallel-plate + fringe
  terms;
* the derived figures the SA cares about: precharge settling time, the
  crosstalk coupling ratio, and the charge-sharing transfer ratio.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import AnalogError

#: Vacuum permittivity (F/m).
EPS0 = 8.854e-12
#: Inter-layer dielectric relative permittivity.
EPS_R = 3.9
#: Effective copper resistivity at DRAM bitline dimensions (Ω·m):
#: several times the bulk 1.7e-8 due to barrier layers and surface
#: scattering at sub-50 nm line widths.
RHO_EFF = 5.5e-8
#: Distributed-RC settling coefficient (Elmore, to ~90 %).
ELMORE = 0.38
#: Dielectric height below the bitline layer (nm).
DIELECTRIC_HEIGHT_NM = 60.0
#: Fringe capacitance per unit length, as a fraction of the plate term.
FRINGE_FACTOR = 0.35
#: Junction/contact capacitance each attached cell adds to the bitline (F):
#: the dominant loading term on real DRAM bitlines.
CELL_JUNCTION_F = 6e-17
#: Wordline pitch (3F) used to count attached cells along the run (nm).
WORDLINE_PITCH_NM = 54.0


@dataclass(frozen=True)
class BitlineGeometry:
    """Drawn geometry of one bitline and its environment (nm / µm)."""

    width_nm: float = 18.0
    spacing_nm: float = 18.0
    thickness_nm: float = 40.0
    length_um: float = 40.0  #: a MAT-height-ish run

    def __post_init__(self) -> None:
        if min(self.width_nm, self.spacing_nm, self.thickness_nm, self.length_um) <= 0:
            raise AnalogError("bitline geometry must be positive")

    def shrunk(self, width_factor: float, spacing_factor: float | None = None) -> "BitlineGeometry":
        """Scaled copy (the Appendix A what-if)."""
        return replace(
            self,
            width_nm=self.width_nm * width_factor,
            spacing_nm=self.spacing_nm * (
                spacing_factor if spacing_factor is not None else 1.0
            ),
        )


def resistance_ohm(geometry: BitlineGeometry) -> float:
    """End-to-end wire resistance."""
    area_m2 = (geometry.width_nm * 1e-9) * (geometry.thickness_nm * 1e-9)
    return RHO_EFF * (geometry.length_um * 1e-6) / area_m2


def ground_capacitance_f(geometry: BitlineGeometry) -> float:
    """Capacitance to the layers below (plate + fringe)."""
    plate = (
        EPS0 * EPS_R
        * (geometry.width_nm * 1e-9)
        * (geometry.length_um * 1e-6)
        / (DIELECTRIC_HEIGHT_NM * 1e-9)
    )
    return plate * (1.0 + FRINGE_FACTOR)


def coupling_capacitance_f(geometry: BitlineGeometry) -> float:
    """Sidewall capacitance to ONE neighbouring bitline."""
    return (
        EPS0 * EPS_R
        * (geometry.thickness_nm * 1e-9)
        * (geometry.length_um * 1e-6)
        / (geometry.spacing_nm * 1e-9)
    )


def cell_loading_f(geometry: BitlineGeometry) -> float:
    """Junction loading of the attached cells (interleaved: every other
    wordline's cell lands on this bitline)."""
    cells = geometry.length_um * 1000.0 / WORDLINE_PITCH_NM / 2.0
    return cells * CELL_JUNCTION_F


def total_capacitance_f(geometry: BitlineGeometry) -> float:
    """Ground + both neighbours + attached-cell junctions."""
    return (
        ground_capacitance_f(geometry)
        + 2.0 * coupling_capacitance_f(geometry)
        + cell_loading_f(geometry)
    )


def crosstalk_ratio(geometry: BitlineGeometry) -> float:
    """Fraction of a full neighbour swing coupled onto this bitline.

    The "particularly well known problem in DRAM" of Appendix A: a victim
    at the sensing moment sees ``Cc/(Cc + Cg + Cc)`` of each aggressor's
    swing.
    """
    cc = coupling_capacitance_f(geometry)
    return cc / (2.0 * cc + ground_capacitance_f(geometry) + cell_loading_f(geometry))


def settling_time_ns(geometry: BitlineGeometry) -> float:
    """Distributed-RC settling time (precharge / equalize / restore)."""
    return ELMORE * resistance_ohm(geometry) * total_capacitance_f(geometry) * 1e9


def transfer_ratio(geometry: BitlineGeometry, cell_cap_f: float = 18e-15) -> float:
    """Charge-sharing transfer ratio with this bitline's capacitance."""
    cbl = total_capacitance_f(geometry)
    return cell_cap_f / (cell_cap_f + cbl)


def shrink_report(
    geometry: BitlineGeometry | None = None,
    width_factor: float = 0.5,
    spacing_factor: float = 1.0,
) -> dict[str, float]:
    """The Appendix A what-if: halve the bitline width, keep the distance.

    Returns before/after resistance, settling time, crosstalk and signal
    transfer — every electrical quantity the appendix says must not be
    ignored by papers that add bitlines.
    """
    before = geometry or BitlineGeometry()
    after = before.shrunk(width_factor, spacing_factor)
    return {
        "resistance_before_ohm": resistance_ohm(before),
        "resistance_after_ohm": resistance_ohm(after),
        "resistance_factor": resistance_ohm(after) / resistance_ohm(before),
        "settling_before_ns": settling_time_ns(before),
        "settling_after_ns": settling_time_ns(after),
        "settling_factor": settling_time_ns(after) / settling_time_ns(before),
        "crosstalk_before": crosstalk_ratio(before),
        "crosstalk_after": crosstalk_ratio(after),
        "transfer_before": transfer_ratio(before),
        "transfer_after": transfer_ratio(after),
    }
