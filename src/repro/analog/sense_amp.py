"""Sense-amplifier testbenches: activation simulation and margin analysis.

Builds a full single-pair testbench around the reference topologies of
:mod:`repro.circuits.topologies`:

* a cell capacitor behind a BCAT access transistor on BL,
* bitline capacitances on BL and BLB (the open-bitline reference comes
  precharged, as in the chips),
* parasitic capacitance on the OCSA internal nodes,
* voltage sources for every control net, driven by an
  :class:`~repro.analog.events.EventTimeline`.

On top of the raw transient, two analyses the paper's arguments rest on:

* :func:`offset_tolerance` — the largest latch Vt mismatch the SA still
  senses correctly; OCSA chips tolerate substantially more, which is *why*
  vendors deployed the design in smaller nodes (§V-A);
* :func:`charge_sharing_onset` — when the bitline actually starts moving
  after ACT; delayed on OCSA chips (§VI-D, out-of-spec experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.analog.devices import MosModel, NMOS_DEFAULT, PMOS_DEFAULT
from repro.analog.events import EventTimeline, timeline_for
from repro.analog.solver import (
    BatchedTransientSolver,
    TransientResult,
    TransientSolver,
    Waveform,
)
from repro.circuits.netlist import Circuit
from repro.circuits.topologies import SaSizes, SaTopology, build_classic_sa, build_ocsa
from repro.errors import AnalogError


@dataclass(frozen=True)
class SenseAmpConfig:
    """Electrical configuration of the single-pair testbench."""

    topology: SaTopology = SaTopology.CLASSIC
    sizes: SaSizes = SaSizes()
    vdd: float = 1.1
    vpp: float = 2.4
    cell_cap_f: float = 18e-15  #: storage capacitor
    bitline_cap_f: float = 90e-15  #: per-bitline parasitic
    internal_cap_f: float = 4e-15  #: OCSA internal-node parasitic
    access_w: float = 40.0
    access_l: float = 45.0
    nmos: MosModel = NMOS_DEFAULT
    pmos: MosModel = PMOS_DEFAULT

    @property
    def vpre(self) -> float:
        """Bitline precharge level (half Vdd)."""
        return self.vdd / 2

    @property
    def transfer_ratio(self) -> float:
        """Charge-sharing transfer ratio Cs/(Cs+Cbl)."""
        return self.cell_cap_f / (self.cell_cap_f + self.bitline_cap_f)

    def expected_signal(self, data: int) -> float:
        """Ideal charge-sharing bitline perturbation for stored *data*."""
        stored = self.vdd if data else 0.0
        return (stored - self.vpre) * self.transfer_ratio


@dataclass
class ActivationOutcome:
    """Result of one simulated activation."""

    config: SenseAmpConfig
    timeline: EventTimeline
    result: TransientResult
    data_written: int
    data_sensed: int
    bl_final: float
    blb_final: float
    cell_final: float

    @property
    def correct(self) -> bool:
        """True when the SA latched the stored value."""
        return self.data_written == self.data_sensed

    @property
    def restored(self) -> bool:
        """True when the cell capacitor was recharged toward its rail."""
        target = self.config.vdd if self.data_written else 0.0
        return abs(self.cell_final - target) < 0.25 * self.config.vdd


class SenseAmpBench:
    """A reusable single-pair SA testbench."""

    def __init__(self, config: SenseAmpConfig | None = None) -> None:
        self.config = config or SenseAmpConfig()

    # -- circuit construction -------------------------------------------------

    def build_circuit(self) -> Circuit:
        """Assemble the SA plus cell, bitline parasitics and control sources."""
        cfg = self.config
        if cfg.topology is SaTopology.CLASSIC:
            sa = build_classic_sa(cfg.sizes)
            controls = ("PEQ", "WL", "LA", "LAB", "VPRE")
        else:
            sa = build_ocsa(cfg.sizes)
            controls = ("PRE", "ISO", "OC", "WL", "LA", "LAB", "VPRE")

        c = Circuit(f"{cfg.topology.value}_bench")
        for dev in sa:
            c.add(replace_device(dev))
        # Cell: access transistor + storage capacitor on BL.
        c.add_mos("acc", "nmos", d="BL", g="WL", s="CELL",
                  w=cfg.access_w, l=cfg.access_l, role="mat_access")
        c.add_capacitor("cs", "CELL", "0", cfg.cell_cap_f, role="cell")
        # Bitline parasitics.
        c.add_capacitor("cbl", "BL", "0", cfg.bitline_cap_f, role="bitline")
        c.add_capacitor("cblb", "BLB", "0", cfg.bitline_cap_f, role="bitline")
        if cfg.topology is SaTopology.OCSA:
            c.add_capacitor("csabl", "SABL", "0", cfg.internal_cap_f, role="internal")
            c.add_capacitor("csablb", "SABLB", "0", cfg.internal_cap_f, role="internal")
        # Column kept closed; LIO modelled as a small load.
        c.add_vsource("vy", "Y", "0", 0.0)
        c.add_capacitor("clio", "LIO", "0", 1e-15, role="lio")
        c.add_capacitor("cliob", "LIOB", "0", 1e-15, role="lio")
        # Control sources.
        for net in controls:
            c.add_vsource(f"v{net.lower()}", net, "0", 0.0)
        return c

    def initial_conditions(self, data: int) -> dict[str, float]:
        """Precharged-idle node voltages with *data* stored in the cell."""
        cfg = self.config
        ic = {
            "BL": cfg.vpre,
            "BLB": cfg.vpre,
            "CELL": cfg.vdd if data else 0.0,
            "LA": cfg.vpre,
            "LAB": cfg.vpre,
            "VPRE": cfg.vpre,
            "LIO": cfg.vpre,
            "LIOB": cfg.vpre,
        }
        if cfg.topology is SaTopology.OCSA:
            ic["SABL"] = cfg.vpre
            ic["SABLB"] = cfg.vpre
        return ic

    # -- simulation -------------------------------------------------------------

    def run(
        self,
        data: int,
        vt_mismatch: float = 0.0,
        timeline: EventTimeline | None = None,
        dt_ns: float = 0.05,
        stop_after_restore: bool = True,
    ) -> ActivationOutcome:
        """Simulate one activation with *data* stored in the cell.

        ``vt_mismatch`` shifts the threshold of the ``n2``/``p2`` latch
        devices (the pair whose gate is BL) by +/− half the mismatch,
        modelling the manufacturing asymmetry the OCSA compensates.
        """
        if data not in (0, 1):
            raise AnalogError("data must be 0 or 1")
        cfg = self.config
        timeline = timeline or timeline_for(cfg.topology, vdd=cfg.vdd, vpp=cfg.vpp)
        circuit = self.build_circuit()

        stimuli: dict[str, Waveform] = {}
        for net, wave in timeline.waveforms.items():
            stimuli[f"v{net.lower()}"] = wave
        stimuli["vy"] = Waveform.constant(0.0)

        device_models: dict[str, MosModel] = {}
        if vt_mismatch:
            half = vt_mismatch / 2
            device_models["n2"] = cfg.nmos.with_vt_shift(+half)
            device_models["n1"] = cfg.nmos.with_vt_shift(-half)
            device_models["p2"] = cfg.pmos.with_vt_shift(+half)
            device_models["p1"] = cfg.pmos.with_vt_shift(-half)

        solver = TransientSolver(
            circuit, stimuli, nmos=cfg.nmos, pmos=cfg.pmos, device_models=device_models
        )
        t_stop = timeline.event("latch_restore").end_ns if stop_after_restore else timeline.t_end_ns
        record = ["BL", "BLB", "CELL", "LA", "LAB"]
        if cfg.topology is SaTopology.OCSA:
            record += ["SABL", "SABLB"]
        result = solver.run(
            t_stop_ns=t_stop,
            dt_ns=dt_ns,
            ic=self.initial_conditions(data),
            record=record,
        )

        t_eval = timeline.event("latch_restore").end_ns - 0.2
        bl = result.at("BL", t_eval)
        blb = result.at("BLB", t_eval)
        sensed = 1 if bl > blb else 0
        return ActivationOutcome(
            config=cfg,
            timeline=timeline,
            result=result,
            data_written=data,
            data_sensed=sensed,
            bl_final=bl,
            blb_final=blb,
            cell_final=result.at("CELL", t_eval),
        )

    def run_batch(
        self,
        data: int,
        vt_mismatches: Sequence[float],
        timeline: EventTimeline | None = None,
        dt_ns: float = 0.05,
        stop_after_restore: bool = True,
        max_newton: int = 80,
    ) -> list[ActivationOutcome]:
        """Simulate one activation per mismatch value, as a single batch.

        All instances share the circuit and stimuli and differ only in
        the latch Vt mismatch, so the whole set is stamped into one
        stacked ``(N, nodes, nodes)`` MNA system and integrated in a
        single time loop (see :class:`BatchedTransientSolver`).  Each
        returned outcome is bit-identical to a scalar :meth:`run` with
        the same mismatch — including mismatch 0.0, since shifting a
        threshold by ``+0.0/2`` is a bit-exact no-op.
        """
        if data not in (0, 1):
            raise AnalogError("data must be 0 or 1")
        mismatches = [float(m) for m in vt_mismatches]
        if not mismatches:
            raise AnalogError("need at least one mismatch value")
        cfg = self.config
        timeline = timeline or timeline_for(cfg.topology, vdd=cfg.vdd, vpp=cfg.vpp)
        circuit = self.build_circuit()

        stimuli: dict[str, Waveform] = {}
        for net, wave in timeline.waveforms.items():
            stimuli[f"v{net.lower()}"] = wave
        stimuli["vy"] = Waveform.constant(0.0)

        halves = [m / 2 for m in mismatches]
        device_models: dict[str, list[MosModel]] = {
            "n2": [cfg.nmos.with_vt_shift(+h) for h in halves],
            "n1": [cfg.nmos.with_vt_shift(-h) for h in halves],
            "p2": [cfg.pmos.with_vt_shift(+h) for h in halves],
            "p1": [cfg.pmos.with_vt_shift(-h) for h in halves],
        }
        solver = BatchedTransientSolver(
            circuit,
            stimuli,
            nmos=cfg.nmos,
            pmos=cfg.pmos,
            device_models=device_models,
            batch=len(mismatches),
            max_newton=max_newton,
        )
        t_stop = timeline.event("latch_restore").end_ns if stop_after_restore else timeline.t_end_ns
        record = ["BL", "BLB", "CELL", "LA", "LAB"]
        if cfg.topology is SaTopology.OCSA:
            record += ["SABL", "SABLB"]
        batch = solver.run(
            t_stop_ns=t_stop,
            dt_ns=dt_ns,
            ic=self.initial_conditions(data),
            record=record,
        )

        t_eval = timeline.event("latch_restore").end_ns - 0.2
        outcomes: list[ActivationOutcome] = []
        for i in range(batch.batch):
            result = batch.instance(i)
            bl = result.at("BL", t_eval)
            blb = result.at("BLB", t_eval)
            outcomes.append(
                ActivationOutcome(
                    config=cfg,
                    timeline=timeline,
                    result=result,
                    data_written=data,
                    data_sensed=1 if bl > blb else 0,
                    bl_final=bl,
                    blb_final=blb,
                    cell_final=result.at("CELL", t_eval),
                )
            )
        return outcomes


def replace_device(dev):
    """Deep-copy a device (so benches never mutate the shared references)."""
    from repro.circuits.netlist import Device

    return Device(dev.name, dev.dtype, dict(dev.nets), dict(dev.params), dev.role)


def simulate_activation(
    topology: SaTopology,
    data: int = 1,
    vt_mismatch: float = 0.0,
    config: SenseAmpConfig | None = None,
    **run_kwargs,
) -> ActivationOutcome:
    """One-call activation simulation for a topology."""
    cfg = config or SenseAmpConfig(topology=topology)
    if cfg.topology is not topology:
        cfg = replace(cfg, topology=topology)
    return SenseAmpBench(cfg).run(data=data, vt_mismatch=vt_mismatch, **run_kwargs)


def offset_tolerance(
    topology: SaTopology,
    data: int = 1,
    config: SenseAmpConfig | None = None,
    lo: float = 0.0,
    hi: float = 0.4,
    resolution: float = 0.005,
    **run_kwargs,
) -> float:
    """Largest latch Vt mismatch (V) that still senses *data* correctly.

    Bisection over the mismatch; the returned value is the last passing
    mismatch, accurate to *resolution*.  The paper's motivation for OCSA
    deployment is exactly that this figure shrinks with technology scaling
    for the classic design.
    """
    cfg = config or SenseAmpConfig(topology=topology)
    if cfg.topology is not topology:
        cfg = replace(cfg, topology=topology)
    bench = SenseAmpBench(cfg)

    if not bench.run(data=data, vt_mismatch=lo, **run_kwargs).correct:
        return 0.0
    if bench.run(data=data, vt_mismatch=hi, **run_kwargs).correct:
        return hi
    while hi - lo > resolution:
        mid = (lo + hi) / 2
        if bench.run(data=data, vt_mismatch=mid, **run_kwargs).correct:
            lo = mid
        else:
            hi = mid
    return lo


def worst_case_offset_tolerance(
    topology: SaTopology,
    config: SenseAmpConfig | None = None,
    resolution: float = 0.01,
    hi: float = 0.5,
    **run_kwargs,
) -> float:
    """Offset tolerance minimised over the stored data value.

    A single mismatch polarity favours one data value and punishes the
    other; the design's real margin is the worse of the two.
    """
    return min(
        offset_tolerance(
            topology, data=data, config=config, resolution=resolution, hi=hi, **run_kwargs
        )
        for data in (0, 1)
    )


def charge_sharing_onset(
    topology: SaTopology,
    data: int = 1,
    config: SenseAmpConfig | None = None,
    threshold: float = 0.01,
    **run_kwargs,
) -> float:
    """Time (ns after ACT) at which the bitline departs Vpre by *threshold*.

    §VI-D: with the classic SA this happens essentially at wordline rise;
    with the OCSA it waits for the offset-cancellation phase to finish, so
    out-of-spec experiments that assume immediate charge sharing misread
    OCSA chips.
    """
    cfg = config or SenseAmpConfig(topology=topology)
    if cfg.topology is not topology:
        cfg = replace(cfg, topology=topology)
    outcome = SenseAmpBench(cfg).run(data=data, **run_kwargs)
    cell0 = cfg.vdd if data else 0.0
    level = cell0 - threshold if data else cell0 + threshold
    t = outcome.result.crossing_time("CELL", level, after_ns=0.0)
    if t is None:
        raise AnalogError("the cell never shared charge with the bitline")
    return t
