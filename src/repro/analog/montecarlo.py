"""Monte Carlo sensing-yield analysis.

§VI-A's core warning is quantitative: "higher width-to-length ratios
correspond to more optimistic simulations".  Two things go wrong for a
study that simulates with a public model's inflated W/L:

* the simulated SA **senses faster** than the silicon, so timing budgets
  derived from it (tRCD margins, latch windows) are too tight;
* at a fixed sensing deadline, the simulated **yield** under Vt mismatch
  is higher than what the measured dimensions deliver.

This module measures both: sample latch Vt mismatches from a process
distribution, run the activation per sample, and count samples that sense
*correctly and in time* — for any topology and any set of transistor sizes
(a public model's or a chip's measured ones).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analog.metrics import sensing_latency_ns
from repro.analog.sense_amp import SenseAmpBench, SenseAmpConfig
from repro.circuits.topologies import SaSizes, SaTopology
from repro.errors import AnalogError


@dataclass(frozen=True)
class YieldResult:
    """Outcome of a yield run."""

    topology: SaTopology
    sigma_mv: float
    samples: int
    failures: int
    deadline_ns: float | None = None

    @property
    def yield_fraction(self) -> float:
        """Fraction of samples that sensed correctly (and in time)."""
        return 1.0 - self.failures / self.samples

    @property
    def failure_rate(self) -> float:
        """Fraction of failing samples."""
        return self.failures / self.samples


def _bench_for(topology: SaTopology, sizes: SaSizes | None, config: SenseAmpConfig | None) -> SenseAmpBench:
    cfg = config or SenseAmpConfig(topology=topology, sizes=sizes or SaSizes())
    if sizes is not None and cfg.sizes is not sizes:
        cfg = SenseAmpConfig(topology=topology, sizes=sizes)
    return SenseAmpBench(cfg)


def sensing_yield(
    topology: SaTopology,
    sizes: SaSizes | None = None,
    sigma_mv: float = 60.0,
    samples: int = 40,
    data: int = 1,
    seed: int = 7,
    deadline_ns: float | None = None,
    config: SenseAmpConfig | None = None,
) -> YieldResult:
    """Monte Carlo sensing yield under N(0, sigma) latch Vt mismatch.

    Each sample draws one mismatch value (the dominant offset term) and
    simulates a full activation.  A sample fails when the latched value is
    wrong, or — with *deadline_ns* set — when the bitlines take longer
    than the deadline to separate.  Deterministic for a given *seed*.
    """
    if samples < 1:
        raise AnalogError("need at least one sample")
    if sigma_mv < 0:
        raise AnalogError("sigma must be non-negative")
    bench = _bench_for(topology, sizes, config)
    rng = np.random.default_rng(seed)
    mismatches = rng.normal(0.0, sigma_mv / 1000.0, size=samples)
    failures = 0
    for mismatch in mismatches:
        outcome = bench.run(data=data, vt_mismatch=float(mismatch))
        if not outcome.correct:
            failures += 1
            continue
        if deadline_ns is not None:
            try:
                latency = sensing_latency_ns(outcome)
            except AnalogError:
                failures += 1
                continue
            if latency > deadline_ns:
                failures += 1
    return YieldResult(
        topology=topology, sigma_mv=sigma_mv, samples=samples,
        failures=failures, deadline_ns=deadline_ns,
    )


def nominal_sensing_latency(
    topology: SaTopology, sizes: SaSizes | None = None
) -> float:
    """Mismatch-free sensing latency for a set of sizes (ns)."""
    outcome = _bench_for(topology, sizes, None).run(data=1)
    return sensing_latency_ns(outcome)


def model_optimism(
    model_sizes: SaSizes,
    measured_sizes: SaSizes,
    topology: SaTopology = SaTopology.CLASSIC,
    sigma_mv: float = 80.0,
    samples: int = 20,
    deadline_margin: float = 1.05,
) -> dict[str, float]:
    """Quantify how optimistic a public model's dimensions are.

    A designer trusting the model budgets the sensing deadline from the
    model's latency (plus a small margin); the measured dimensions then
    have to live with that budget.  Returns the two latencies, the
    resulting deadline, the two yields under it, and the optimism gap.
    """
    latency_model = nominal_sensing_latency(topology, model_sizes)
    latency_measured = nominal_sensing_latency(topology, measured_sizes)
    deadline = latency_model * deadline_margin
    model_run = sensing_yield(
        topology, model_sizes, sigma_mv, samples, deadline_ns=deadline
    )
    silicon_run = sensing_yield(
        topology, measured_sizes, sigma_mv, samples, deadline_ns=deadline
    )
    return {
        "model_latency_ns": latency_model,
        "measured_latency_ns": latency_measured,
        "deadline_ns": deadline,
        "model_yield": model_run.yield_fraction,
        "measured_yield": silicon_run.yield_fraction,
        "optimism": model_run.yield_fraction - silicon_run.yield_fraction,
    }


def yield_curve(
    topology: SaTopology,
    sizes: SaSizes | None = None,
    sigmas_mv: tuple[float, ...] = (20.0, 60.0, 100.0, 140.0),
    samples: int = 25,
    deadline_ns: float | None = None,
) -> list[YieldResult]:
    """Yield as a function of the mismatch sigma (a shmoo along offset)."""
    return [
        sensing_yield(topology, sizes, sigma_mv=s, samples=samples, deadline_ns=deadline_ns)
        for s in sigmas_mv
    ]
