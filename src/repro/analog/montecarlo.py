"""Monte Carlo sensing-yield analysis.

§VI-A's core warning is quantitative: "higher width-to-length ratios
correspond to more optimistic simulations".  Two things go wrong for a
study that simulates with a public model's inflated W/L:

* the simulated SA **senses faster** than the silicon, so timing budgets
  derived from it (tRCD margins, latch windows) are too tight;
* at a fixed sensing deadline, the simulated **yield** under Vt mismatch
  is higher than what the measured dimensions deliver.

This module measures both: sample latch Vt mismatches from a process
distribution, run the activation per sample, and count samples that sense
*correctly and in time* — for any topology and any set of transistor sizes
(a public model's or a chip's measured ones).

Since 1.5 the public entry points are configured through one
:class:`~repro.analog.spec.CharacterizationSpec` (``spec=``) and execute
all trials in a single :meth:`SenseAmpBench.run_batch` call — the batched
solver is bit-identical per instance to the scalar one, so results match
the pre-1.5 scalar loop exactly (same RNG stream, same failure
semantics).  The scalar loop survives as
:func:`_reference_sensing_yield` for equivalence tests and the perf
probe.  The old per-function keywords still work for one deprecation
cycle (removed in repro 2.0) via ``CharacterizationSpec.from_legacy_kwargs``.
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass, replace
from typing import Any

import numpy as np

from repro.analog.metrics import sensing_latency_ns
from repro.analog.sense_amp import SenseAmpBench, SenseAmpConfig
from repro.analog.spec import CharacterizationSpec
from repro.circuits.topologies import SaSizes, SaTopology
from repro.errors import AnalogError

#: Sentinel distinguishing "not passed" from any real value, so the
#: deprecated keywords can keep their positional slots while routing
#: through the spec.
_UNSET: Any = object()


@dataclass(frozen=True)
class YieldResult:
    """Outcome of a yield run.

    ``latencies_ns`` holds one sensing latency per trial, in draw order,
    with ``nan`` marking trials that latched the wrong value or whose
    bitlines never separated.  It is a plain tuple of floats so the
    result pickles across the campaign pool boundary and canonicalizes
    under :func:`repro.runtime.hashing.canonicalize` (NaN becomes the
    ``"float:nan"`` sentinel there).  Empty for results produced by the
    scalar reference path, which never measures latency without a
    deadline.
    """

    topology: SaTopology
    sigma_mv: float
    samples: int
    failures: int
    deadline_ns: float | None = None
    latencies_ns: tuple[float, ...] = ()

    @property
    def yield_fraction(self) -> float:
        """Fraction of samples that sensed correctly (and in time)."""
        return 1.0 - self.failures / self.samples

    @property
    def failure_rate(self) -> float:
        """Fraction of failing samples."""
        return self.failures / self.samples


def _bench_for(
    topology: SaTopology,
    sizes: SaSizes | None,
    config: SenseAmpConfig | None,
    spec: CharacterizationSpec | None = None,
) -> SenseAmpBench:
    if config is None and spec is not None:
        return SenseAmpBench(spec.bench_config(topology, sizes=sizes))
    cfg = config or SenseAmpConfig(topology=topology, sizes=sizes or SaSizes())
    if sizes is not None and cfg.sizes is not sizes:
        cfg = SenseAmpConfig(topology=topology, sizes=sizes)
    return SenseAmpBench(cfg)


def _yield_for(
    bench: SenseAmpBench, spec: CharacterizationSpec, topology: SaTopology
) -> YieldResult:
    """One batched Monte-Carlo yield run on an already-built bench.

    Draws the mismatches exactly as the scalar path always has (one
    ``default_rng(seed)`` normal vector), runs them as a single solver
    batch, and applies the same failure rules: a trial fails when it
    latches the wrong value, or — with a deadline set — when the
    bitlines never separate or separate too late.
    """
    rng = np.random.default_rng(spec.seed)
    mismatches = rng.normal(0.0, spec.sigma_mv / 1000.0, size=spec.trials)
    outcomes = bench.run_batch(
        spec.data,
        [float(m) for m in mismatches],
        dt_ns=spec.dt_ns,
        max_newton=spec.max_newton,
    )
    failures = 0
    latencies: list[float] = []
    for outcome in outcomes:
        if not outcome.correct:
            failures += 1
            latencies.append(float("nan"))
            continue
        try:
            latency = sensing_latency_ns(outcome)
        except AnalogError:
            latency = float("nan")
        latencies.append(latency)
        if spec.deadline_ns is not None and (
            math.isnan(latency) or latency > spec.deadline_ns
        ):
            failures += 1
    return YieldResult(
        topology=topology,
        sigma_mv=spec.sigma_mv,
        samples=spec.trials,
        failures=failures,
        deadline_ns=spec.deadline_ns,
        latencies_ns=tuple(latencies),
    )


def _reference_sensing_yield(
    topology: SaTopology,
    sizes: SaSizes | None = None,
    spec: CharacterizationSpec | None = None,
    config: SenseAmpConfig | None = None,
) -> YieldResult:
    """The retained pre-1.5 scalar loop: one solver run per trial.

    Kept verbatim (modulo spec plumbing) as the ground truth the batched
    engine must match bit-for-bit — the equivalence tests and the
    ``repro.perf`` analog probe compare against this.
    """
    spec = spec or CharacterizationSpec()
    bench = _bench_for(topology, sizes, config, spec)
    rng = np.random.default_rng(spec.seed)
    mismatches = rng.normal(0.0, spec.sigma_mv / 1000.0, size=spec.trials)
    failures = 0
    for mismatch in mismatches:
        outcome = bench.run(data=spec.data, vt_mismatch=float(mismatch), dt_ns=spec.dt_ns)
        if not outcome.correct:
            failures += 1
            continue
        if spec.deadline_ns is not None:
            try:
                latency = sensing_latency_ns(outcome)
            except AnalogError:
                failures += 1
                continue
            if latency > spec.deadline_ns:
                failures += 1
    return YieldResult(
        topology=topology, sigma_mv=spec.sigma_mv, samples=spec.trials,
        failures=failures, deadline_ns=spec.deadline_ns,
    )


def _spec_from_legacy(
    spec: CharacterizationSpec | None,
    base: CharacterizationSpec | None,
    legacy: dict[str, Any],
) -> CharacterizationSpec:
    present = {k: v for k, v in legacy.items() if v is not _UNSET}
    if present:
        return CharacterizationSpec.from_legacy_kwargs(base=spec or base, **present)
    return spec or base or CharacterizationSpec()


def sensing_yield(
    topology: SaTopology,
    sizes: SaSizes | None = None,
    sigma_mv: float = _UNSET,
    samples: int = _UNSET,
    data: int = _UNSET,
    seed: int = _UNSET,
    deadline_ns: float | None = _UNSET,
    config: SenseAmpConfig | None = _UNSET,
    *,
    spec: CharacterizationSpec | None = None,
) -> YieldResult:
    """Monte Carlo sensing yield under N(0, sigma) latch Vt mismatch.

    Each trial draws one mismatch value (the dominant offset term) and
    simulates a full activation; all trials run as one batched solver
    call.  A trial fails when the latched value is wrong, or — with a
    deadline set — when the bitlines take longer than the deadline to
    separate.  Deterministic for a given seed.

    Configure with ``spec=CharacterizationSpec(...)``; the per-call
    ``sigma_mv``/``samples``/``data``/``seed``/``deadline_ns``/``config``
    keywords are deprecated and will be removed in repro 2.0.
    """
    if config is not _UNSET and config is not None:
        warnings.warn(
            "config= is deprecated; set the electrical fields on a "
            "CharacterizationSpec and pass spec= instead (it will be "
            "removed in repro 2.0)",
            DeprecationWarning,
            stacklevel=2,
        )
    bench_config = None if config is _UNSET else config
    spec = _spec_from_legacy(spec, None, {
        "sigma_mv": sigma_mv,
        "samples": samples,
        "data": data,
        "seed": seed,
        "deadline_ns": deadline_ns,
    })
    bench = _bench_for(topology, sizes, bench_config, spec)
    return _yield_for(bench, spec, topology)


def nominal_sensing_latency(
    topology: SaTopology, sizes: SaSizes | None = None,
    spec: CharacterizationSpec | None = None,
) -> float:
    """Mismatch-free sensing latency for a set of sizes (ns)."""
    spec = spec or CharacterizationSpec()
    outcome = _bench_for(topology, sizes, None, spec).run(data=1, dt_ns=spec.dt_ns)
    return sensing_latency_ns(outcome)


#: Historical defaults of :func:`model_optimism` / :func:`yield_curve`,
#: preserved so calls without explicit keywords keep returning the same
#: numbers across the 1.5 redesign.
_OPTIMISM_BASE = CharacterizationSpec(sigma_mv=80.0, trials=20)
_CURVE_BASE = CharacterizationSpec(trials=25)


def model_optimism(
    model_sizes: SaSizes,
    measured_sizes: SaSizes,
    topology: SaTopology = SaTopology.CLASSIC,
    sigma_mv: float = _UNSET,
    samples: int = _UNSET,
    deadline_margin: float = _UNSET,
    *,
    spec: CharacterizationSpec | None = None,
) -> dict[str, float]:
    """Quantify how optimistic a public model's dimensions are.

    A designer trusting the model budgets the sensing deadline from the
    model's latency (plus a small margin); the measured dimensions then
    have to live with that budget.  Returns the two latencies, the
    resulting deadline, the two yields under it, and the optimism gap.

    Configure with ``spec=`` (note the historical defaults here were
    ``sigma_mv=80, samples=20``, which this function keeps when neither
    spec nor keywords are given); the per-call keywords are deprecated
    and will be removed in repro 2.0.
    """
    spec = _spec_from_legacy(spec, _OPTIMISM_BASE, {
        "sigma_mv": sigma_mv,
        "samples": samples,
        "deadline_margin": deadline_margin,
    })
    latency_model = nominal_sensing_latency(topology, model_sizes, spec)
    latency_measured = nominal_sensing_latency(topology, measured_sizes, spec)
    deadline = latency_model * spec.deadline_margin
    run_spec = replace(spec, deadline_ns=deadline)
    model_run = _yield_for(
        _bench_for(topology, model_sizes, None, spec), run_spec, topology
    )
    silicon_run = _yield_for(
        _bench_for(topology, measured_sizes, None, spec), run_spec, topology
    )
    return {
        "model_latency_ns": latency_model,
        "measured_latency_ns": latency_measured,
        "deadline_ns": deadline,
        "model_yield": model_run.yield_fraction,
        "measured_yield": silicon_run.yield_fraction,
        "optimism": model_run.yield_fraction - silicon_run.yield_fraction,
    }


def yield_curve(
    topology: SaTopology,
    sizes: SaSizes | None = None,
    sigmas_mv: tuple[float, ...] = _UNSET,
    samples: int = _UNSET,
    deadline_ns: float | None = _UNSET,
    *,
    spec: CharacterizationSpec | None = None,
) -> list[YieldResult]:
    """Yield as a function of the mismatch sigma (a shmoo along offset).

    Configure with ``spec=`` (``spec.sigmas_mv`` is the sweep axis; the
    historical ``samples=25`` default is kept when neither spec nor
    keywords are given); the per-call keywords are deprecated and will
    be removed in repro 2.0.
    """
    spec = _spec_from_legacy(spec, _CURVE_BASE, {
        "sigmas_mv": sigmas_mv,
        "samples": samples,
        "deadline_ns": deadline_ns,
    })
    bench = _bench_for(topology, sizes, None, spec)
    return [
        _yield_for(bench, replace(spec, sigma_mv=s), topology)
        for s in spec.sigmas_mv
    ]
