"""The 13 audited papers (Table II) and the five inaccuracies I1–I5.

Each entry records the columns of Table II that are *inputs* to the audit:
the inaccuracy set, the DDR generation the paper targeted, the year, and
the paper's original overhead estimate ``P_oe`` (the published number the
overhead error is measured against).  The *outputs* — overhead error and
porting cost — are computed by :mod:`repro.core.overheads` from the chip
dataset via the Appendix B formulas.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import UnknownPaperError


class Inaccuracy(enum.Enum):
    """The five sources of research inaccuracy (§VI-B)."""

    I1 = "no free space for bitlines in the MAT area"
    I2 = "no free space for bitlines in the SA area"
    I3 = "assuming a SA circuitry that is not deployed in practice"
    I4 = "assuming a SA physical layout that does not correspond to the ones deployed"
    I5 = "not considering offset-cancellation designs as the deployed SA topologies"


class OverheadFormula(enum.Enum):
    """Which Appendix B formula computes the paper's P_extra."""

    MAT_SA_DOUBLE = "mat_sa_double"  #: doubling bitlines → MAT + SA areas
    REGA = "rega"  #: (MAT+SA)/3 on B/C chips; iso+SA extension on A chips
    ISO_PAIR = "iso_pair"  #: 2 isolation transistors per SA region
    ISO_COL_SA = "iso_col_sa"  #: iso + column + full SA transistors
    CHARM = "charm"  #: MAT aspect-ratio change + 1 % reorganization
    PF_DRAM = "pf_dram"  #: 4 iso + SA imbalancer


@dataclass(frozen=True)
class Paper:
    """One audited proposal (a Table II row)."""

    key: str
    title: str
    venue_year: int
    ddr: int  #: original technology generation (3 or 4)
    inaccuracies: tuple[Inaccuracy, ...]
    formula: OverheadFormula
    original_overhead: float  #: P_oe, fraction of chip area
    summary: str

    @property
    def error_applicable(self) -> bool:
        """Overhead error needs the original technology ≥ DDR4 (§VI-C)."""
        return self.ddr >= 4

    def has(self, inaccuracy: Inaccuracy) -> bool:
        """True when the paper suffers *inaccuracy*."""
        return inaccuracy in self.inaccuracies


#: The Table II corpus, in the paper's row order.
PAPERS: dict[str, Paper] = {
    "charm": Paper(
        key="charm", title="CHARM", venue_year=2013, ddr=3,
        inaccuracies=(Inaccuracy.I5,),
        formula=OverheadFormula.CHARM, original_overhead=0.0147,
        summary="asymmetric bank organizations to cut access latency",
    ),
    "rb_dec": Paper(
        key="rb_dec", title="R.B. DEC.", venue_year=2014, ddr=3,
        inaccuracies=(Inaccuracy.I4, Inaccuracy.I5),
        formula=OverheadFormula.ISO_PAIR, original_overhead=0.0035,
        summary="row-buffer decoupling with isolation transistors",
    ),
    "ambit": Paper(
        key="ambit", title="AMBIT", venue_year=2017, ddr=3,
        inaccuracies=(Inaccuracy.I1, Inaccuracy.I2, Inaccuracy.I5),
        formula=OverheadFormula.MAT_SA_DOUBLE, original_overhead=0.0085,
        summary="in-DRAM bulk bitwise operations via dual-contact cells",
    ),
    "dracc": Paper(
        key="dracc", title="DrACC", venue_year=2018, ddr=4,
        inaccuracies=(Inaccuracy.I1, Inaccuracy.I2, Inaccuracy.I5),
        formula=OverheadFormula.MAT_SA_DOUBLE, original_overhead=0.0172,
        summary="in-DRAM accelerator for ternary CNN inference",
    ),
    "graphide": Paper(
        key="graphide", title="GraphiDe", venue_year=2019, ddr=4,
        inaccuracies=(Inaccuracy.I1, Inaccuracy.I2, Inaccuracy.I5),
        formula=OverheadFormula.MAT_SA_DOUBLE, original_overhead=0.0112,
        summary="graph-processing acceleration by in-DRAM computing",
    ),
    "inmem_lowcost": Paper(
        key="inmem_lowcost", title="In-Mem.Lowcost.", venue_year=2019, ddr=4,
        inaccuracies=(Inaccuracy.I1, Inaccuracy.I2, Inaccuracy.I5),
        formula=OverheadFormula.MAT_SA_DOUBLE, original_overhead=0.0087,
        summary="low-cost bit-serial addition in commodity DRAM",
    ),
    "elp2im": Paper(
        key="elp2im", title="ELP2IM", venue_year=2020, ddr=3,
        inaccuracies=(Inaccuracy.I2, Inaccuracy.I3, Inaccuracy.I5),
        formula=OverheadFormula.MAT_SA_DOUBLE, original_overhead=0.0064,
        summary="low-power bitwise PIM using pseudo-precharge states",
    ),
    "clr_dram": Paper(
        key="clr_dram", title="CLR-DRAM", venue_year=2020, ddr=4,
        inaccuracies=(Inaccuracy.I2, Inaccuracy.I5),
        formula=OverheadFormula.MAT_SA_DOUBLE, original_overhead=0.0269,
        summary="dynamic capacity-latency trade-off (coupled bitlines)",
    ),
    "simdram": Paper(
        key="simdram", title="SIMDRAM", venue_year=2021, ddr=4,
        inaccuracies=(Inaccuracy.I1, Inaccuracy.I2, Inaccuracy.I5),
        formula=OverheadFormula.MAT_SA_DOUBLE, original_overhead=0.0087,
        summary="bit-serial SIMD processing framework using DRAM",
    ),
    "nov_dram": Paper(
        key="nov_dram", title="Nov. DRAM", venue_year=2021, ddr=4,
        inaccuracies=(Inaccuracy.I4, Inaccuracy.I5),
        formula=OverheadFormula.ISO_COL_SA, original_overhead=0.0228,
        summary="dual-page operation for bandwidth/latency improvements",
    ),
    "pf_dram": Paper(
        key="pf_dram", title="PF-DRAM", venue_year=2021, ddr=4,
        inaccuracies=(Inaccuracy.I5,),
        formula=OverheadFormula.PF_DRAM, original_overhead=0.0283,
        summary="precharge-free DRAM structure",
    ),
    "rega": Paper(
        key="rega", title="REGA", venue_year=2023, ddr=4,
        inaccuracies=(Inaccuracy.I2, Inaccuracy.I4, Inaccuracy.I5),
        formula=OverheadFormula.REGA, original_overhead=0.0147,
        summary="refresh-generating activations against Rowhammer",
    ),
    "cooldram": Paper(
        key="cooldram", title="CoolDRAM", venue_year=2023, ddr=4,
        inaccuracies=(Inaccuracy.I1, Inaccuracy.I2, Inaccuracy.I3, Inaccuracy.I5),
        formula=OverheadFormula.MAT_SA_DOUBLE, original_overhead=0.0035,
        summary="energy-efficient and robust DRAM operation",
    ),
}


def paper(key: str) -> Paper:
    """Look up a paper by key."""
    try:
        return PAPERS[key]
    except KeyError:
        raise UnknownPaperError(key) from None


def papers_with(inaccuracy: Inaccuracy) -> list[Paper]:
    """All papers suffering a given inaccuracy."""
    return [p for p in PAPERS.values() if p.has(inaccuracy)]
