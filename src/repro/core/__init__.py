"""HiFi-DRAM core: the reverse-engineered dataset and the research audit.

This package is the paper's primary contribution in library form:

* :mod:`repro.core.chips` — the six-chip dataset (Table I + the §V
  measurements, synthesised to the paper's published statistics);
* :mod:`repro.core.models` — the public analog models CROW and REM;
* :mod:`repro.core.model_accuracy` — §VI-A (Fig 11, Fig 12);
* :mod:`repro.core.papers` — the 13 audited proposals (Table II rows);
* :mod:`repro.core.overheads` — Appendix B overhead-error/porting-cost
  calculator (Table II, Fig 14);
* :mod:`repro.core.bitline_scaling` — Appendix A Eq. 1;
* :mod:`repro.core.mat_transition` — §V-C MAT→SA transition overheads;
* :mod:`repro.core.dcc` — dual-contact-cell area analysis (I1);
* :mod:`repro.core.recommendations` — R1–R4 as a checkable rule set;
* :mod:`repro.core.report` — plain-text tables for the benches.
"""

from repro.core.chips import (
    Chip,
    ChipGeometry,
    CHIPS,
    chip,
    chips_by_generation,
    chips_by_vendor,
)
from repro.core.measurements import TransistorRecord, MeasurementSet, synthesize_measurements
from repro.core.models import AnalogModel, CROW, REM, public_models
from repro.core.model_accuracy import (
    ModelAccuracyReport,
    element_inaccuracy,
    model_accuracy_report,
    fig11_series,
)
from repro.core.papers import Paper, Inaccuracy, PAPERS, paper, papers_with
from repro.core.overheads import (
    OverheadResult,
    paper_overhead_fraction,
    overhead_error,
    porting_cost,
    table2_rows,
    fig14_breakdown,
)
from repro.core.bitline_scaling import bitline_halving_extension, sa_extension_eq1
from repro.core.mat_transition import transition_overhead_fraction, average_transition_nm
from repro.core.dcc import dcc_area_factor, dcc_chip_overhead
from repro.core.recommendations import RECOMMENDATIONS, Recommendation, audit_proposal
from repro.core.hifi import (
    analog_model_for,
    netlist_for,
    region_spec_for,
    sa_sizes_for,
    spice_card,
)

__all__ = [
    "Chip",
    "ChipGeometry",
    "CHIPS",
    "chip",
    "chips_by_generation",
    "chips_by_vendor",
    "TransistorRecord",
    "MeasurementSet",
    "synthesize_measurements",
    "AnalogModel",
    "CROW",
    "REM",
    "public_models",
    "ModelAccuracyReport",
    "element_inaccuracy",
    "model_accuracy_report",
    "fig11_series",
    "Paper",
    "Inaccuracy",
    "PAPERS",
    "paper",
    "papers_with",
    "OverheadResult",
    "paper_overhead_fraction",
    "overhead_error",
    "porting_cost",
    "table2_rows",
    "fig14_breakdown",
    "bitline_halving_extension",
    "sa_extension_eq1",
    "transition_overhead_fraction",
    "average_transition_nm",
    "dcc_area_factor",
    "dcc_chip_overhead",
    "RECOMMENDATIONS",
    "Recommendation",
    "audit_proposal",
    "analog_model_for",
    "netlist_for",
    "region_spec_for",
    "sa_sizes_for",
    "spice_card",
]
