"""Sensitivity analysis of the Table II audit.

The audit's inputs carry uncertainty: effective spacing sizes include
process-rule margins the paper measures but we synthesise, and the array
geometry (rows per MAT, feature size) is inferred.  This module quantifies
how much the Table II conclusions move when those inputs wiggle — the
robustness check a careful reader of §VI-C would ask for.

The key structural result it demonstrates: the I1/I2 papers' errors are
*insensitive* to transistor sizing (their P_extra is the MAT+SA area), so
the 20×–175× conclusions survive any plausible measurement error; only the
small transistor-level papers (R.B. DEC., Nov. DRAM, PF-DRAM) move.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, replace

from repro.core.chips import CHIPS, Chip
from repro.core.measurements import TransistorRecord
from repro.core.overheads import overhead_error
from repro.core.papers import PAPERS, Paper
from repro.errors import EvaluationError
from repro.layout.elements import TransistorKind


def _scaled_chip(chip: Chip, eff_scale: float) -> Chip:
    """A copy of *chip* with every effective size scaled by *eff_scale*.

    Drawn W/L stay put (they are measured directly); only the spacing
    margins — the part we synthesise — are perturbed.
    """
    if eff_scale <= 0:
        raise EvaluationError("effective-size scale must be positive")
    scaled: dict[TransistorKind, TransistorRecord] = {}
    for kind, rec in chip.transistors.items():
        scaled[kind] = TransistorRecord(
            w=rec.w,
            l=rec.l,
            eff_w=max(rec.w, rec.eff_w * eff_scale),
            eff_l=max(rec.l, rec.eff_l * eff_scale),
        )
    return replace(chip, transistors=scaled)


@dataclass(frozen=True)
class SensitivityResult:
    """Error range of one paper over the perturbation sweep."""

    paper: Paper
    nominal: float | None
    low: float | None
    high: float | None

    @property
    def relative_span(self) -> float:
        """(high − low) / nominal; 0 for N/A rows."""
        if self.nominal is None or not self.nominal:
            return 0.0
        assert self.low is not None and self.high is not None
        return (self.high - self.low) / abs(self.nominal)


def _error_with_scale(paper: Paper, eff_scale: float) -> float | None:
    """Overhead error with all chips' effective sizes scaled."""
    if not paper.error_applicable:
        return None
    from repro.core import overheads

    chips = [
        _scaled_chip(c, eff_scale)
        for c in CHIPS.values()
        if c.generation == "DDR4"
    ]
    values = [
        overheads.paper_overhead_fraction(paper, chip) / paper.original_overhead - 1.0
        for chip in chips
    ]
    return statistics.fmean(values)


def sweep_effective_sizes(
    scales: tuple[float, float] = (0.8, 1.2)
) -> list[SensitivityResult]:
    """Table II error ranges when effective sizes move ±20 %."""
    results = []
    lo_scale, hi_scale = scales
    for paper in PAPERS.values():
        nominal = overhead_error(paper)
        if nominal is None:
            results.append(SensitivityResult(paper, None, None, None))
            continue
        candidates = [_error_with_scale(paper, s) for s in (lo_scale, hi_scale)]
        values = [v for v in candidates if v is not None]
        results.append(
            SensitivityResult(paper, nominal, min(values), max(values))
        )
    return results


def conclusions_robust(threshold: float = 20.0) -> bool:
    """Does the ">20x for 8 papers" claim survive the ±20 % sweep?

    Checks that every paper above *threshold* nominally stays above it at
    both sweep extremes (I1/I2 errors are area-driven, so they must).
    """
    for result in sweep_effective_sizes():
        if result.nominal is None:
            continue
        if result.nominal > threshold:
            assert result.low is not None
            if result.low <= threshold:
                return False
    return True
