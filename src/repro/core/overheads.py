"""Appendix B: overhead errors and porting costs (Table II, Fig 14).

For each audited paper we estimate its real overhead ``P_chip`` on every
studied chip with the Appendix B formulas, then report

* **overhead error** — ``mean(P_chip / P_oe − 1)`` over the chips of the
  paper's *original* technology (N/A when that technology is older than
  DDR4);
* **porting cost** — the same expression over the chips of *newer*
  technologies (DDR4+DDR5 for DDR3 papers, DDR5 for DDR4 papers).

Isolation-transistor sizing follows the paper's §VI-C rule: chips that
already deploy isolation transistors (the OCSA chips) use the measured
dimensions; on the others the OCSA chips' average is scaled by the feature
size ratio.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass

from repro.core.chips import CHIPS, Chip, chips_by_generation
from repro.core.papers import Paper, OverheadFormula, PAPERS
from repro.errors import EvaluationError
from repro.layout.elements import TransistorKind


def isolation_eff_length(chip: Chip) -> float:
    """Effective isolation-transistor length for *chip* (§VI-C sizing rule)."""
    if chip.has(TransistorKind.ISOLATION):
        return chip.transistor(TransistorKind.ISOLATION).eff_l
    donors = [c for c in CHIPS.values() if c.has(TransistorKind.ISOLATION)]
    mean_eff = statistics.fmean(
        c.transistor(TransistorKind.ISOLATION).eff_l for c in donors
    )
    mean_f = statistics.fmean(c.geometry.feature_nm for c in donors)
    return mean_eff * chip.geometry.feature_nm / mean_f


def _sa_extension_area(chip: Chip, extension_nm: float) -> float:
    """Chip-level area of extending every SA region by *extension_nm* (nm²).

    ``MATs × SA_w × extension``: every region widens along X by the new
    elements' X footprint.  All chips implement two stacked SAs, so papers
    that add "a new SA" actually add two (§ Appendix B) — callers encode
    that in *extension_nm*.
    """
    return chip.mats * chip.geometry.mat_width_nm * extension_nm


def _p_extra_nm2(paper: Paper, chip: Chip) -> float:
    """Appendix B P_extra for *paper* on *chip* (nm²)."""
    t = chip.transistors
    san_ws = t[TransistorKind.NSA].eff_w
    sap_ws = t[TransistorKind.PSA].eff_w
    col_ws = t[TransistorKind.COLUMN].eff_w
    iso_ls = isolation_eff_length(chip)

    if paper.formula is OverheadFormula.MAT_SA_DOUBLE:
        # Doubling the bitlines doubles the MAT and SA regions; layout
        # requirements force the counterpart region along (§ Appendix B).
        return chip.mat_plus_sa_fraction * chip.die_area_nm2

    if paper.formula is OverheadFormula.REGA:
        if chip.vendor == "A":
            # A-chips: M2 slack absorbs the extra wires (Appendix A), so
            # only new isolation transistors and SAs are needed.
            extension = 2.0 * iso_ls + 8.0 * (san_ws + sap_ws) / 6.0
            return _sa_extension_area(chip, extension)
        # One new bitline every three on the other chips.
        return chip.mat_plus_sa_fraction * chip.die_area_nm2 / 3.0

    if paper.formula is OverheadFormula.ISO_PAIR:
        return _sa_extension_area(chip, 2.0 * iso_ls)

    if paper.formula is OverheadFormula.ISO_COL_SA:
        extension = 2.0 * iso_ls + 2.0 * col_ws + 8.0 * (san_ws + sap_ws)
        return _sa_extension_area(chip, extension)

    if paper.formula is OverheadFormula.CHARM:
        # Aspect-ratio configuration [×2, /4] plus 1 % reorganization.
        quarter_sa = chip.mats * chip.geometry.mat_width_nm * chip.sa_height_nm / 4.0
        return quarter_sa + 0.01 * chip.die_area_nm2

    if paper.formula is OverheadFormula.PF_DRAM:
        extension = 4.0 * iso_ls + 8.0 * (san_ws + sap_ws)
        return _sa_extension_area(chip, extension)

    raise EvaluationError(f"no formula handler for {paper.formula}")


def paper_overhead_fraction(paper: Paper, chip: Chip) -> float:
    """P_chip = P_extra / Chip_area for *paper* on *chip*."""
    return _p_extra_nm2(paper, chip) / chip.die_area_nm2


@dataclass(frozen=True)
class OverheadResult:
    """Audit outcome for one paper (a computed Table II row)."""

    paper: Paper
    per_chip: dict[str, float]  #: P_chip per chip id
    overhead_error: float | None  #: x-factor; None when N/A (DDR3 original)
    porting_cost: float

    @property
    def error_str(self) -> str:
        """Table II cell for the error column."""
        if self.overhead_error is None:
            return "N/A"
        return f"{self.overhead_error:.2f}x"

    @property
    def porting_str(self) -> str:
        """Table II cell for the porting column."""
        return f"{self.porting_cost:.2f}x"


def _mean_ratio(paper: Paper, chips: list[Chip]) -> float:
    values = [
        paper_overhead_fraction(paper, chip) / paper.original_overhead - 1.0
        for chip in chips
    ]
    return statistics.fmean(values)


def overhead_error(paper: Paper) -> float | None:
    """Average overhead error on the paper's original technology."""
    if not paper.error_applicable:
        return None
    return _mean_ratio(paper, chips_by_generation("DDR4"))


def porting_cost(paper: Paper) -> float:
    """Average overhead variation when porting to newer technologies."""
    if paper.ddr == 3:
        chips = list(CHIPS.values())
    else:
        chips = chips_by_generation("DDR5")
    return _mean_ratio(paper, chips)


def audit(paper: Paper) -> OverheadResult:
    """Full audit of one paper."""
    per_chip = {
        chip_id: paper_overhead_fraction(paper, chip) for chip_id, chip in CHIPS.items()
    }
    return OverheadResult(
        paper=paper,
        per_chip=per_chip,
        overhead_error=overhead_error(paper),
        porting_cost=porting_cost(paper),
    )


def table2_rows() -> list[OverheadResult]:
    """Every Table II row, in the paper's order."""
    return [audit(p) for p in PAPERS.values()]


def fig14_breakdown(threshold: float = 10.0) -> dict[str, dict[str, float]]:
    """Fig 14: per-vendor error/porting, for papers that stay below 10×.

    Returns ``{paper_title: {chip_id: factor}}`` where the factor is the
    per-chip overhead variation (error on same-generation chips, porting on
    newer ones).  Papers whose factors always exceed *threshold* are
    omitted, as in the figure.
    """
    out: dict[str, dict[str, float]] = {}
    for p in PAPERS.values():
        per_chip: dict[str, float] = {}
        for chip in CHIPS.values():
            if p.ddr == 4 and chip.generation == "DDR4" and not p.error_applicable:
                continue
            factor = paper_overhead_fraction(p, chip) / p.original_overhead - 1.0
            per_chip[chip.chip_id] = factor
        if all(abs(v) > threshold for v in per_chip.values()):
            continue
        out[p.title] = per_chip
    return out


def observation1_charm_vendor_spread(generation: str = "DDR5") -> float:
    """Observation 1: CHARM's overhead varies across vendors (≈0.45x A→C)."""
    p = PAPERS["charm"]
    values = {
        chip.vendor: paper_overhead_fraction(p, chip) / p.original_overhead - 1.0
        for chip in chips_by_generation(generation)
    }
    return abs(values["A"] - values["C"])


def observation2_biggest_port_gain() -> tuple[str, str, float]:
    """Observation 2: the largest porting *reduction* (≈ −0.47x on A5).

    Only papers whose overall porting cost stays below 1x (i.e. proposals
    that remain feasible when ported) are considered — porting "gains" of a
    paper whose average cost is 7x are an artefact of one vendor's layout,
    not a gain.  Returns (paper title, chip id, per-chip porting factor).
    """
    best: tuple[str, str, float] | None = None
    for p in PAPERS.values():
        if porting_cost(p) >= 1.0:
            continue
        target = chips_by_generation("DDR5") if p.ddr == 4 else list(CHIPS.values())
        for chip in target:
            factor = paper_overhead_fraction(p, chip) / p.original_overhead - 1.0
            if factor < 0 and (best is None or factor < best[2]):
                best = (p.title, chip.chip_id, factor)
    if best is None:
        raise EvaluationError("no porting gain found")
    return best
