"""Appendix A: the effects of changing bitlines (Eq. 1).

Even if halving the bitline width were possible, doubling the number of
bitlines still extends the SA region.  With the safe distance ``d`` kept
and the bitline width ``Bw ≈ 2 d``, Eq. 1 gives the Y-direction extension

    Ext = (T_B · 2 · (d + Bw/2)) / (T_B · (d + Bw)) − 1
        = 2 · (Bw/2 + Bw/2) / (Bw/2 + Bw) − 1 = 4/3 − 1 ≈ 33 %

and, because layout requirements force the MAT to follow, ≈21 % of chip
overhead for B5.  This module implements the general form so the bench can
regenerate both numbers and explore other width/distance ratios.
"""

from __future__ import annotations

from repro.core.chips import Chip, chip as get_chip
from repro.errors import EvaluationError


def sa_extension_eq1(width_over_distance: float = 2.0) -> float:
    """Eq. 1: SA Y-extension from doubling bitlines at halved width.

    ``width_over_distance`` is Bw/d (the paper takes Bw ≈ 2d).  The halved
    bitlines keep the original safe distance, so the new pitch is
    ``d + Bw/2`` for twice the line count versus ``d + Bw`` for the
    original count.
    """
    if width_over_distance <= 0:
        raise EvaluationError("Bw/d must be positive")
    bw = width_over_distance  # in units of d
    new_total = 2.0 * (1.0 + bw / 2.0)
    old_total = 1.0 + bw
    return new_total / old_total - 1.0


def bitline_halving_extension(chip_id: str = "B5", width_over_distance: float = 2.0) -> dict[str, float]:
    """Chip-level overhead of the Eq. 1 scenario on one chip.

    The SA extension applies to the MAT as well (or introduces equivalent
    empty spaces), so the chip overhead is the extension times the MAT+SA
    area fraction — ≈21 % for B5 with the default ratio.
    """
    c: Chip = get_chip(chip_id)
    ext = sa_extension_eq1(width_over_distance)
    return {
        "sa_extension": ext,
        "chip_overhead": ext * c.mat_plus_sa_fraction,
        "mat_plus_sa_fraction": c.mat_plus_sa_fraction,
    }


def m2_slack_factor(chip_id: str) -> float:
    """Relative slack of metal-2 wires vs M1 bitlines (Appendix A).

    On A4/A5 the second set of bitlines transfers on M2, whose wires are
    around 8x bigger than M1 bitlines and not packed closely — REGA's extra
    wires fit by shrinking them 0.25x.  Returns the M2/M1 width factor the
    dataset assumes for the chip's vendor (8.0 for vendor A, 0 otherwise:
    no documented slack).
    """
    c = get_chip(chip_id)
    return 8.0 if c.vendor == "A" else 0.0
