"""Plain-text rendering of the paper's tables and figures.

Every bench prints through these helpers so the regenerated rows/series
look the same everywhere (and diff cleanly against EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]], title: str = "") -> str:
    """Monospace table with column auto-sizing."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(list(headers)))
    lines.append("-+-".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def render_series(name: str, points: dict[str, float], unit: str = "", digits: int = 2) -> str:
    """One labelled data series (a figure's bar group) as a text line."""
    body = ", ".join(f"{k}={v:.{digits}f}{unit}" for k, v in points.items())
    return f"{name}: {body}"


def percent(value: float, digits: int = 0) -> str:
    """0.57 → '57%'."""
    return f"{value * 100:.{digits}f}%"


def factor(value: float | None, digits: int = 2) -> str:
    """Table II style x-factors; None → 'N/A'."""
    if value is None:
        return "N/A"
    return f"{value:.{digits}f}x"
