"""Public analog DRAM sense-amplifier models (§VI-A).

Only two public models exist for DDR4 and none for DDR5:

* **CROW** (Hassan et al., ISCA 2019) — transistor dimensions based on
  best guesses; includes no column transistors;
* **REM** (Marazzi et al., S&P 2023 / REGA) — based on real DDR4 transistor
  dimensions of a smaller vendor (Zentel Japan) at 25 nm technology, one
  generation older than the studied commodity chips.

Neither includes the OCSA design.  Dimension values are representative of
the published models (CROW deliberately "vastly out of range", per Fig 11's
omission) and calibrated so the Fig 12 statistics come out as published.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.measurements import TransistorRecord
from repro.errors import EvaluationError
from repro.layout.elements import TransistorKind


@dataclass(frozen=True)
class AnalogModel:
    """A public SA simulation model."""

    name: str
    year: int
    basis: str  #: what the dimensions are based on
    technology: str
    includes_column: bool
    includes_ocsa: bool
    transistors: dict[TransistorKind, TransistorRecord] = field(default_factory=dict)

    def transistor(self, kind: TransistorKind) -> TransistorRecord:
        """Model record for a transistor class."""
        try:
            return self.transistors[kind]
        except KeyError:
            raise EvaluationError(f"model {self.name} has no {kind.value} element") from None

    def has(self, kind: TransistorKind) -> bool:
        """True when the model includes the class."""
        return kind in self.transistors


def _rec(w: float, l: float) -> TransistorRecord:  # noqa: E741
    return TransistorRecord(w=w, l=l, eff_w=w * 1.4, eff_l=l * 2.0)


#: CROW (2019): best-guess dimensions, no column transistors.
CROW = AnalogModel(
    name="CROW",
    year=2019,
    basis="best guesses",
    technology="DDR4 (assumed)",
    includes_column=False,
    includes_ocsa=False,
    transistors={
        TransistorKind.NSA: _rec(170.0, 50.0),
        TransistorKind.PSA: _rec(125.0, 50.0),
        TransistorKind.PRECHARGE: _rec(498.0, 75.0),
        TransistorKind.EQUALIZER: _rec(250.0, 55.0),
    },
)

#: REM (2022): real dimensions from a smaller vendor's 25 nm DDR4.
REM = AnalogModel(
    name="REM",
    year=2022,
    basis="Zentel Japan 25 nm DDR4",
    technology="DDR4 (25 nm, one generation older)",
    includes_column=True,
    includes_ocsa=False,
    transistors={
        TransistorKind.NSA: _rec(116.0, 52.0),
        TransistorKind.PSA: _rec(84.0, 48.0),
        TransistorKind.PRECHARGE: _rec(72.0, 60.0),
        TransistorKind.EQUALIZER: _rec(66.0, 88.0),
        TransistorKind.COLUMN: _rec(100.0, 52.0),
    },
)


def public_models() -> dict[str, AnalogModel]:
    """The public model corpus, keyed by name."""
    return {"CROW": CROW, "REM": REM}
