"""The six-chip reverse-engineered dataset (Table I + §V measurements).

Provenance: the paper publishes Table I verbatim (vendor, generation,
density, year, die size, detector, pixel resolution) and the *statistics*
of its 835 measurements (Fig 11/12, the §V-C layout facts, the Table II
audit results).  The per-class transistor dimensions stored here are
**synthetic**: chosen so that the published statistics are reproduced by
the analysis code in :mod:`repro.core.model_accuracy` and
:mod:`repro.core.overheads` (see DESIGN.md "Calibration & provenance").

Key structural facts encoded per chip:

* topology — classic SA on B4/C4/C5, OCSA on A4/A5/B5 (§V-A);
* two stacked SAs between MATs, column transistors first (§V-C);
* common-gate elements cost their *length* along the SA height (§V-C);
* MAT→SA transition overhead ~318 nm (DDR4) / ~275 nm (DDR5) (§V-C);
* open-bitline 6F² cell, honeycomb stacked capacitors (§IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.topologies import SaTopology
from repro.core.measurements import MeasurementSet, TransistorRecord, synthesize_measurements
from repro.errors import UnknownChipError
from repro.layout.elements import TransistorKind
from repro.units import MM2, UM

#: Extra SA-height budget for wiring (M2 rails, jumpers), in feature sizes.
WIRING_FEATURES = 28.0

#: Ratio of effective spacing sizes to drawn sizes (§V-B: effective sizes
#: "are higher than the width and length of transistors, as they must
#: include safety margins").
EFF_W_FACTOR = 1.45
EFF_L_FACTOR = 2.2


def _rec(w: float, l: float) -> TransistorRecord:  # noqa: E741
    return TransistorRecord(w=w, l=l, eff_w=w * EFF_W_FACTOR, eff_l=l * EFF_L_FACTOR)


@dataclass(frozen=True)
class ChipGeometry:
    """Array geometry of a chip (all lengths nm unless noted)."""

    feature_nm: float  #: 6F² cell feature size F
    mat_rows: int
    mat_cols: int
    transition_nm: float  #: MAT→SA bitline transition (§V-C)

    @property
    def cell_area_nm2(self) -> float:
        """Open-bitline cell: 6F²."""
        return 6.0 * self.feature_nm * self.feature_nm

    @property
    def bitline_pitch_nm(self) -> float:
        """2F (bitline direction of the 6F² cell)."""
        return 2.0 * self.feature_nm

    @property
    def wordline_pitch_nm(self) -> float:
        """3F."""
        return 3.0 * self.feature_nm

    @property
    def cells_per_mat(self) -> int:
        """Capacitors in one MAT ("half to a million", §II-A)."""
        return self.mat_rows * self.mat_cols

    @property
    def mat_height_nm(self) -> float:
        """MAT extent along the bitlines (X)."""
        return self.mat_rows * self.wordline_pitch_nm

    @property
    def mat_width_nm(self) -> float:
        """MAT extent along the wordlines (Y) — also the SA region width."""
        return self.mat_cols * self.bitline_pitch_nm

    @property
    def mat_area_nm2(self) -> float:
        """One MAT's area."""
        return self.mat_height_nm * self.mat_width_nm


@dataclass(frozen=True)
class Chip:
    """One studied chip: Table I row + reverse-engineered data."""

    chip_id: str
    vendor: str  # "A" | "B" | "C" (anonymized as in the paper)
    generation: str  # "DDR4" | "DDR5"
    storage_gbit: int
    year: int
    die_area_mm2: float
    detector: str  # "SE" | "BSE"
    mats_visible: bool
    pixel_resolution_nm: float
    topology: SaTopology
    geometry: ChipGeometry
    transistors: dict[TransistorKind, TransistorRecord] = field(default_factory=dict)
    #: SEM dwell time used for this chip (§IV-B: 3 µs for A4/A5/B4,
    #: 6 µs for B5/C4/C5).
    dwell_time_us: float = 3.0
    #: FIB slice thickness (§IV-B: 20 nm or 10 nm).
    slice_thickness_nm: float = 10.0

    # -- derived array-level quantities ------------------------------------

    @property
    def storage_bits(self) -> int:
        """Total capacity in bits."""
        return self.storage_gbit * (1 << 30)

    @property
    def mats(self) -> int:
        """Number of MATs on the die."""
        return round(self.storage_bits / self.geometry.cells_per_mat)

    @property
    def die_area_nm2(self) -> float:
        """Die area in nm²."""
        return self.die_area_mm2 * MM2

    @property
    def mat_area_fraction(self) -> float:
        """Fraction of the die covered by MATs."""
        return self.geometry.cell_area_nm2 * self.storage_bits / self.die_area_nm2

    def transistor(self, kind: TransistorKind) -> TransistorRecord:
        """Measured record for a transistor class present on this chip."""
        try:
            return self.transistors[kind]
        except KeyError:
            raise UnknownChipError(
                f"{self.chip_id} has no {kind.value} transistors "
                f"({self.topology.value} topology)"
            ) from None

    def has(self, kind: TransistorKind) -> bool:
        """True when the class exists on this chip's topology."""
        return kind in self.transistors

    @property
    def sa_height_nm(self) -> float:
        """SA region height (X): two stacked SAs' element budget (§V-C).

        Latch-class elements cost their effective *width* along X, common
        gate elements their effective *length*; the LSA second-stage latch
        and a wiring allowance are included because they sit in the region.
        """
        t = self.transistors
        tile = (
            t[TransistorKind.COLUMN].eff_l
            + 2 * t[TransistorKind.NSA].eff_w
            + 2 * t[TransistorKind.PSA].eff_w
            + t[TransistorKind.PRECHARGE].eff_l
            + 2 * t[TransistorKind.LSA].eff_w
            + WIRING_FEATURES * self.geometry.feature_nm
        )
        if self.topology is SaTopology.OCSA:
            tile += t[TransistorKind.ISOLATION].eff_l
            tile += t[TransistorKind.OFFSET_CANCEL].eff_l
        else:
            tile += t[TransistorKind.EQUALIZER].eff_l
        return 2.0 * tile

    @property
    def sa_region_area_nm2(self) -> float:
        """Area of one SA region (between two MATs)."""
        return self.sa_height_nm * self.geometry.mat_width_nm

    @property
    def sa_area_fraction(self) -> float:
        """Fraction of the die covered by SA regions (~one per MAT)."""
        return self.mats * self.sa_region_area_nm2 / self.die_area_nm2

    @property
    def mat_plus_sa_fraction(self) -> float:
        """MAT + SA fraction — the P_extra base of the I1/I2 papers."""
        return self.mat_area_fraction + self.sa_area_fraction

    def sa_height_um(self) -> float:
        """SA height in µm (for reports)."""
        return self.sa_height_nm / UM

    def measurements(self) -> MeasurementSet:
        """Synthetic raw measurement samples (deterministic per chip)."""
        return synthesize_measurements(self.chip_id, self.transistors)


def _classic(nsa, psa, pre, eq, col, lsa) -> dict[TransistorKind, TransistorRecord]:
    return {
        TransistorKind.NSA: _rec(*nsa),
        TransistorKind.PSA: _rec(*psa),
        TransistorKind.PRECHARGE: _rec(*pre),
        TransistorKind.EQUALIZER: _rec(*eq),
        TransistorKind.COLUMN: _rec(*col),
        TransistorKind.LSA: _rec(*lsa),
    }


def _ocsa(nsa, psa, pre, iso, oc, col, lsa) -> dict[TransistorKind, TransistorRecord]:
    return {
        TransistorKind.NSA: _rec(*nsa),
        TransistorKind.PSA: _rec(*psa),
        TransistorKind.PRECHARGE: _rec(*pre),
        TransistorKind.ISOLATION: _rec(*iso),
        TransistorKind.OFFSET_CANCEL: _rec(*oc),
        TransistorKind.COLUMN: _rec(*col),
        TransistorKind.LSA: _rec(*lsa),
    }


#: The six studied chips (Table I), keyed by ID.
CHIPS: dict[str, Chip] = {
    "A4": Chip(
        chip_id="A4", vendor="A", generation="DDR4", storage_gbit=8, year=2017,
        die_area_mm2=34.0, detector="SE", mats_visible=True, pixel_resolution_nm=10.4,
        dwell_time_us=3.0, slice_thickness_nm=20.0,
        topology=SaTopology.OCSA,
        geometry=ChipGeometry(feature_nm=20.5, mat_rows=640, mat_cols=1024, transition_nm=330.0),
        transistors=_ocsa(
            nsa=(104, 40), psa=(76, 40), pre=(54, 52),
            iso=(70, 55), oc=(62, 55), col=(84, 48), lsa=(92, 46),
        ),
    ),
    "B4": Chip(
        chip_id="B4", vendor="B", generation="DDR4", storage_gbit=4, year=2022,
        die_area_mm2=48.0, detector="BSE", mats_visible=False, pixel_resolution_nm=3.4,
        dwell_time_us=3.0, slice_thickness_nm=10.0,
        topology=SaTopology.CLASSIC,
        geometry=ChipGeometry(feature_nm=33.0, mat_rows=448, mat_cols=1024, transition_nm=315.0),
        transistors=_classic(
            nsa=(120, 48), psa=(88, 47), pre=(58, 56), eq=(60, 50),
            col=(95, 55), lsa=(105, 52),
        ),
    ),
    "C4": Chip(
        chip_id="C4", vendor="C", generation="DDR4", storage_gbit=8, year=2018,
        die_area_mm2=42.0, detector="BSE", mats_visible=True, pixel_resolution_nm=5.0,
        dwell_time_us=6.0, slice_thickness_nm=10.0,
        topology=SaTopology.CLASSIC,
        geometry=ChipGeometry(feature_nm=20.0, mat_rows=640, mat_cols=1024, transition_nm=310.0),
        transistors=_classic(
            nsa=(98, 41), psa=(72, 40), pre=(48, 48), eq=(52, 44),
            col=(82, 47), lsa=(90, 45),
        ),
    ),
    "A5": Chip(
        chip_id="A5", vendor="A", generation="DDR5", storage_gbit=16, year=2021,
        die_area_mm2=75.0, detector="SE", mats_visible=False, pixel_resolution_nm=5.2,
        dwell_time_us=3.0, slice_thickness_nm=10.0,
        topology=SaTopology.OCSA,
        geometry=ChipGeometry(feature_nm=17.5, mat_rows=896, mat_cols=1024, transition_nm=280.0),
        transistors=_ocsa(
            nsa=(88, 34), psa=(64, 34), pre=(46, 45),
            iso=(60, 47), oc=(53, 47), col=(72, 41), lsa=(78, 39),
        ),
    ),
    "B5": Chip(
        chip_id="B5", vendor="B", generation="DDR5", storage_gbit=16, year=2022,
        die_area_mm2=68.0, detector="BSE", mats_visible=False, pixel_resolution_nm=4.2,
        dwell_time_us=6.0, slice_thickness_nm=10.0,
        topology=SaTopology.OCSA,
        geometry=ChipGeometry(feature_nm=19.0, mat_rows=896, mat_cols=1024, transition_nm=270.0),
        transistors=_ocsa(
            nsa=(86, 33), psa=(62, 33), pre=(45, 44),
            iso=(58, 46), oc=(52, 46), col=(70, 40), lsa=(76, 38),
        ),
    ),
    "C5": Chip(
        chip_id="C5", vendor="C", generation="DDR5", storage_gbit=16, year=2022,
        die_area_mm2=66.0, detector="BSE", mats_visible=True, pixel_resolution_nm=5.0,
        dwell_time_us=6.0, slice_thickness_nm=10.0,
        topology=SaTopology.CLASSIC,
        geometry=ChipGeometry(feature_nm=17.5, mat_rows=896, mat_cols=1024, transition_nm=275.0),
        transistors=_classic(
            nsa=(84, 34), psa=(62, 33), pre=(42, 41), eq=(45, 38),
            col=(70, 40), lsa=(77, 39),
        ),
    ),
}


def chip(chip_id: str) -> Chip:
    """Look up a chip by Table I ID (A4/B4/C4/A5/B5/C5)."""
    try:
        return CHIPS[chip_id]
    except KeyError:
        raise UnknownChipError(chip_id) from None


def chips_by_generation(generation: str) -> list[Chip]:
    """All chips of one generation ("DDR4"/"DDR5"), Table I order."""
    return [c for c in CHIPS.values() if c.generation == generation]


def chips_by_vendor(vendor: str) -> list[Chip]:
    """Both chips of one (anonymized) vendor."""
    return [c for c in CHIPS.values() if c.vendor == vendor]


def total_measurement_count() -> int:
    """Total synthetic measurements across the dataset (paper: 835)."""
    return sum(c.measurements().count() for c in CHIPS.values())
