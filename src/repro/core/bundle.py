"""The open-source data bundle.

The paper's lasting contribution is its published artefact: "the extracted
information including IC images, reverse engineered circuits, transistor
dimensions and physical layouts".  This module writes the equivalent
bundle from this library's dataset:

```
bundle/
├── MANIFEST.json              inventory + provenance note
├── tables/
│   ├── table1_chips.txt       Table I
│   ├── table2_audit.txt       Table II
│   └── fig12_models.txt       model-inaccuracy statistics
└── chips/<ID>/
    ├── <ID>.json              Table I row + measured dimensions
    ├── <ID>.gds               generated SA-region layout (GDSII)
    ├── <ID>.svg               rendered layout (Fig 10 style)
    ├── <ID>.sp                SPICE subcircuit card
    └── <ID>_measurements.json raw measurement samples
```
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.chips import CHIPS, Chip
from repro.catalog.variants import build_region_spec, chip_variant
from repro.core.hifi import spice_card
from repro.core.model_accuracy import all_reports
from repro.core.overheads import table2_rows
from repro.core.report import render_table
from repro.layout import generate_sa_region, write_gds, write_svg


def _chip_record(chip: Chip) -> dict:
    return {
        "id": chip.chip_id,
        "vendor": chip.vendor,
        "generation": chip.generation,
        "storage_gbit": chip.storage_gbit,
        "year": chip.year,
        "die_area_mm2": chip.die_area_mm2,
        "detector": chip.detector,
        "pixel_resolution_nm": chip.pixel_resolution_nm,
        "topology": chip.topology.value,
        "feature_nm": chip.geometry.feature_nm,
        "mat_rows": chip.geometry.mat_rows,
        "mat_cols": chip.geometry.mat_cols,
        "transition_nm": chip.geometry.transition_nm,
        "sa_height_nm": chip.sa_height_nm,
        "mat_area_fraction": chip.mat_area_fraction,
        "sa_area_fraction": chip.sa_area_fraction,
        "transistors": {
            kind.value: {
                "w_nm": rec.w, "l_nm": rec.l,
                "eff_w_nm": rec.eff_w, "eff_l_nm": rec.eff_l,
            }
            for kind, rec in chip.transistors.items()
        },
    }


def _measurement_record(chip: Chip) -> dict:
    ms = chip.measurements()
    return {
        "chip": chip.chip_id,
        "count": ms.count(),
        "samples": {
            kind.value: dims for kind, dims in ms.samples.items()
        },
    }


def _table1_text() -> str:
    rows = [
        [c.chip_id, c.vendor, c.generation, f"{c.storage_gbit}Gb", str(c.year),
         f"{c.die_area_mm2:.0f}mm^2", c.detector,
         "V." if c.mats_visible else "N.V.", f"{c.pixel_resolution_nm}nm",
         c.topology.value]
        for c in CHIPS.values()
    ]
    return render_table(
        ["ID", "Vendor", "Gen", "Storage", "Yr", "Size", "Det", "MATs", "Res", "Topology"],
        rows, title="Table I - studied chips",
    )


def _table2_text() -> str:
    rows = [
        [r.paper.title, ",".join(i.name for i in r.paper.inaccuracies),
         r.error_str, r.porting_str, str(r.paper.ddr), str(r.paper.venue_year)]
        for r in table2_rows()
    ]
    return render_table(
        ["Research", "Inacc.", "Error", "Port.Cost", "DDR", "Year"],
        rows, title="Table II - research audit",
    )


def _fig12_text() -> str:
    rows = []
    for report in all_reports():
        for attr in ("wl_error", "width_error", "length_error"):
            value, who = report.maximum(attr)
            rows.append([
                report.model, report.generation, attr,
                f"{report.average(attr):.0%}", f"{value:.0%}",
                f"{who.chip_id}/{who.kind.value}",
            ])
    return render_table(
        ["Model", "Gen", "Metric", "Avg", "Max", "Worst at"],
        rows, title="Fig 12 - model inaccuracies",
    )


def write_bundle(target: str | Path, n_pairs: int = 2) -> dict:
    """Write the full data bundle under *target*; returns the manifest."""
    target = Path(target)
    (target / "tables").mkdir(parents=True, exist_ok=True)

    from repro.runtime import campaign_config_provenance

    manifest: dict = {
        "name": "HiFi-DRAM reproduction data bundle",
        "provenance": (
            "synthetic dataset calibrated to the statistics published in "
            "'HiFi-DRAM' (ISCA 2024); see DESIGN.md in the repository"
        ),
        # Which pipeline (stage versions + default PipelineConfig) produced
        # this bundle — the same record the campaign runtime hashes for its
        # stage cache, so a bundle can be traced to a cache generation.
        "pipeline": campaign_config_provenance(),
        "chips": {},
        "tables": ["tables/table1_chips.txt", "tables/table2_audit.txt",
                   "tables/fig12_models.txt"],
    }

    (target / "tables" / "table1_chips.txt").write_text(_table1_text() + "\n")
    (target / "tables" / "table2_audit.txt").write_text(_table2_text() + "\n")
    (target / "tables" / "fig12_models.txt").write_text(_fig12_text() + "\n")

    for chip_id, chip in CHIPS.items():
        chip_dir = target / "chips" / chip_id
        chip_dir.mkdir(parents=True, exist_ok=True)

        record = _chip_record(chip)
        (chip_dir / f"{chip_id}.json").write_text(json.dumps(record, indent=2))

        cell = generate_sa_region(
            build_region_spec(chip_variant(chip_id, word_size=n_pairs))
        )
        shapes = write_gds(cell, chip_dir / f"{chip_id}.gds")
        write_svg(cell, chip_dir / f"{chip_id}.svg")

        (chip_dir / f"{chip_id}.sp").write_text(spice_card(chip_id) + "\n")
        (chip_dir / f"{chip_id}_measurements.json").write_text(
            json.dumps(_measurement_record(chip), indent=2)
        )

        manifest["chips"][chip_id] = {
            "topology": chip.topology.value,
            "gds_shapes": shapes,
            "files": [
                f"chips/{chip_id}/{chip_id}.json",
                f"chips/{chip_id}/{chip_id}.gds",
                f"chips/{chip_id}/{chip_id}.svg",
                f"chips/{chip_id}/{chip_id}.sp",
                f"chips/{chip_id}/{chip_id}_measurements.json",
            ],
        }

    (target / "MANIFEST.json").write_text(json.dumps(manifest, indent=2))
    return manifest
