"""Dual-contact-cell (DCC) area analysis — the quantitative core of I1.

DCCs (originally from AMBIT) add an extra row whose capacitors connect to
*two* bitlines.  Their overhead is usually estimated as "approximately two
wordlines, i.e., negligible"; but no studied MAT has free space for the
extra bitlines, so implementing a DCC really means doubling the MAT area —
reverting the 6F² open-bitline cell to a 12F² folded-bitline-like cell, as
the prior dual-port patent confirms (§VI-B).
"""

from __future__ import annotations

from repro.core.chips import Chip, CHIPS, chip as get_chip

#: Cell area factors (in F² units).
OPEN_BITLINE_F2 = 6.0
DCC_F2 = 12.0


def dcc_area_factor() -> float:
    """Cell-area multiplier of a dual-contact cell (12F² / 6F² = 2)."""
    return DCC_F2 / OPEN_BITLINE_F2


def naive_dcc_overhead(chip_id: str, dcc_rows: int = 2) -> float:
    """The *assumed* overhead: ~two extra wordlines per MAT (negligible)."""
    c = get_chip(chip_id)
    return dcc_rows / c.geometry.mat_rows * c.mat_area_fraction


def dcc_chip_overhead(chip_id: str, include_row_drivers: bool = True) -> float:
    """The *real* overhead of implementing DCCs on *chip_id*.

    Doubling the MAT width doubles the MAT area; longer wordlines then need
    new row drivers, whose area is comparable to the SA area (§VI-B).
    """
    c: Chip = get_chip(chip_id)
    overhead = c.mat_area_fraction
    if include_row_drivers:
        overhead += c.sa_area_fraction
    return overhead


def average_mat_extension_overhead() -> float:
    """Average chip overhead of the MAT extension alone (paper: 57 %)."""
    chips = list(CHIPS.values())
    return sum(c.mat_area_fraction for c in chips if c.generation == "DDR4") / 3.0


def underestimation_factor(chip_id: str) -> float:
    """How many times the naive estimate undershoots the real overhead."""
    naive = naive_dcc_overhead(chip_id)
    real = dcc_chip_overhead(chip_id)
    return real / naive
