"""Transistor measurement records (§V-B).

The paper performs 835 distinct size measurements with Dragonfly: multiple
measurements per dimension per transistor class per chip.  The dataset in
:mod:`repro.core.chips` stores the per-class means; this module provides

* :class:`TransistorRecord` — a class's W/L plus effective spacing sizes;
* :func:`synthesize_measurements` — per-measurement samples regenerated
  around those means with a deterministic per-chip jitter, so statistical
  code (and the Fig 11 whiskers) has raw samples to chew on;
* :class:`MeasurementSet` — aggregation helpers over the samples.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

import numpy as np

from repro.errors import EvaluationError
from repro.layout.elements import TransistorKind

#: Relative 1-sigma jitter of individual size measurements: combines the
#: imaging pixel quantisation with real device-to-device variation.
MEASUREMENT_SIGMA = 0.045

#: Default number of measurements per dimension per class — chosen so the
#: whole six-chip dataset lands close to the paper's 835 total.
DEFAULT_SAMPLES_PER_DIM = 11


@dataclass(frozen=True)
class TransistorRecord:
    """Mean measured dimensions of one transistor class on one chip (nm).

    ``eff_w``/``eff_l`` are the *effective spacing sizes* of §V-B: the room
    the element occupies including safety margins — what the Appendix B
    overhead formulas consume (``san_ws``, ``iso_ls``, ...).
    """

    w: float
    l: float  # noqa: E741 - SPICE convention
    eff_w: float
    eff_l: float

    def __post_init__(self) -> None:
        if min(self.w, self.l, self.eff_w, self.eff_l) <= 0:
            raise EvaluationError("non-positive transistor dimension")
        if self.eff_w < self.w or self.eff_l < self.l:
            raise EvaluationError("effective sizes must include the drawn sizes")

    @property
    def wl_ratio(self) -> float:
        """W/L — §VI-A's figure of merit."""
        return self.w / self.l


@dataclass
class MeasurementSet:
    """Raw measurement samples for one chip."""

    chip_id: str
    samples: dict[TransistorKind, dict[str, list[float]]] = field(default_factory=dict)

    def count(self) -> int:
        """Total number of individual measurements."""
        return sum(
            len(values) for dims in self.samples.values() for values in dims.values()
        )

    def mean(self, kind: TransistorKind, dim: str) -> float:
        """Sample mean of dimension *dim* ('w' or 'l') for *kind*."""
        try:
            return statistics.fmean(self.samples[kind][dim])
        except KeyError:
            raise EvaluationError(
                f"{self.chip_id}: no '{dim}' measurements for {kind.value}"
            ) from None

    def stdev(self, kind: TransistorKind, dim: str) -> float:
        """Sample standard deviation."""
        values = self.samples[kind][dim]
        return statistics.pstdev(values) if len(values) > 1 else 0.0

    def spread(self, kind: TransistorKind, dim: str) -> tuple[float, float]:
        """(min, max) of the samples — the Fig 11 whiskers."""
        values = self.samples[kind][dim]
        return (min(values), max(values))


def synthesize_measurements(
    chip_id: str,
    records: dict[TransistorKind, TransistorRecord],
    samples_per_dim: int = DEFAULT_SAMPLES_PER_DIM,
    sigma: float = MEASUREMENT_SIGMA,
) -> MeasurementSet:
    """Regenerate raw measurement samples around the per-class means.

    Deterministic per chip (the seed derives from the chip id), so repeated
    calls — and therefore all benches — see identical data.
    """
    seed = sum(ord(c) for c in chip_id) * 7919
    rng = np.random.default_rng(seed)
    out = MeasurementSet(chip_id=chip_id)
    for kind, rec in sorted(records.items(), key=lambda kv: kv[0].value):
        dims: dict[str, list[float]] = {}
        for dim, mean in (("w", rec.w), ("l", rec.l)):
            noise = rng.normal(1.0, sigma, size=samples_per_dim)
            dims[dim] = [float(mean * max(0.5, n)) for n in noise]
        out.samples[kind] = dims
    return out
