"""HiFi models: accurate per-chip simulation artefacts.

The paper's purpose is to *enable* high-fidelity research: it open-sources
circuits, dimensions and layouts so nobody has to simulate with CROW/REM
guesses again.  This module packages the dataset the same way:

* :func:`sa_sizes_for` — a chip's measured dimensions as
  :class:`~repro.circuits.topologies.SaSizes`, ready for the analog bench;
* :func:`netlist_for` — the chip's deployed topology instantiated with its
  measured dimensions (the SPICE-ready circuit);
* :func:`analog_model_for` — the chip packaged as an
  :class:`~repro.core.models.AnalogModel`, comparable against CROW/REM
  with the §VI-A machinery (its self-inaccuracy is zero by construction);
* :func:`region_spec_for` — a layout-generator spec with the chip's
  dimensions, so imaging/RE experiments can run on "that chip".
"""

from __future__ import annotations

import warnings

from repro.circuits.netlist import Circuit
from repro.circuits.topologies import SaSizes, SaTopology, build_classic_sa, build_ocsa
from repro.core.chips import Chip, chip as get_chip
from repro.core.models import AnalogModel
from repro.layout.elements import TransistorKind
from repro.layout.generator import SaRegionSpec


def sa_sizes_for(chip_id: str) -> SaSizes:
    """Measured W/L of one chip as analog-bench sizes."""
    c = get_chip(chip_id)
    t = c.transistors

    def wl(kind: TransistorKind, fallback: TransistorKind | None = None):
        source = t.get(kind) or (t.get(fallback) if fallback else None)
        assert source is not None
        return source.w, source.l

    nsa_w, nsa_l = wl(TransistorKind.NSA)
    psa_w, psa_l = wl(TransistorKind.PSA)
    pre_w, pre_l = wl(TransistorKind.PRECHARGE)
    col_w, col_l = wl(TransistorKind.COLUMN)
    eq_w, eq_l = wl(TransistorKind.EQUALIZER, fallback=TransistorKind.PRECHARGE)
    iso_w, iso_l = wl(TransistorKind.ISOLATION, fallback=TransistorKind.PRECHARGE)
    oc_w, oc_l = wl(TransistorKind.OFFSET_CANCEL, fallback=TransistorKind.PRECHARGE)
    return SaSizes(
        nsa_w=nsa_w, nsa_l=nsa_l,
        psa_w=psa_w, psa_l=psa_l,
        precharge_w=pre_w, precharge_l=pre_l,
        equalizer_w=eq_w, equalizer_l=eq_l,
        column_w=col_w, column_l=col_l,
        isolation_w=iso_w, isolation_l=iso_l,
        offset_cancel_w=oc_w, offset_cancel_l=oc_l,
    )


def netlist_for(chip_id: str) -> Circuit:
    """The chip's deployed SA topology with its measured dimensions."""
    c = get_chip(chip_id)
    sizes = sa_sizes_for(chip_id)
    if c.topology is SaTopology.OCSA:
        return build_ocsa(sizes, name=f"{chip_id}_sa")
    return build_classic_sa(sizes, name=f"{chip_id}_sa")


def analog_model_for(chip_id: str) -> AnalogModel:
    """Package one chip's measurements as a public-model object."""
    c = get_chip(chip_id)
    return AnalogModel(
        name=f"HiFi-{chip_id}",
        year=2024,
        basis=f"reverse-engineered {chip_id} ({c.vendor}, {c.generation})",
        technology=c.generation,
        includes_column=True,
        includes_ocsa=c.topology is SaTopology.OCSA,
        transistors=dict(c.transistors),
    )


def region_spec_for(chip_id: str, n_pairs: int = 2) -> SaRegionSpec:
    """A layout-generator spec reproducing the chip's SA region.

    .. deprecated:: 1.7
        The chip catalog owns variant lowering now; use
        ``build_region_spec(chip_variant(chip_id))`` from
        :mod:`repro.catalog` (builders ``hifi-a4`` … ``hifi-c5``).
        This shim will be removed in repro 2.0.
    """
    warnings.warn(
        "region_spec_for() is deprecated; use "
        "repro.catalog.build_region_spec(repro.catalog.chip_variant(chip_id)) "
        "instead (it will be removed in repro 2.0)",
        DeprecationWarning,
        stacklevel=2,
    )
    from repro.catalog.variants import build_region_spec, chip_variant

    return build_region_spec(chip_variant(chip_id, word_size=n_pairs))


def spice_card(chip_id: str) -> str:
    """A SPICE-style subcircuit card for the chip's SA (documentation aid).

    The node order is ``BL BLB LIO LIOB`` plus the topology's control nets;
    transistor cards carry the measured W/L in nanometres.
    """
    c = get_chip(chip_id)
    circuit = netlist_for(chip_id)
    controls = (
        "PRE ISO OC Y LA LAB VPRE"
        if c.topology is SaTopology.OCSA
        else "PEQ Y LA LAB VPRE"
    )
    lines = [
        f"* HiFi-DRAM reverse-engineered SA: {chip_id} "
        f"({c.vendor}, {c.generation}, {c.topology.value})",
        f".SUBCKT SA_{chip_id} BL BLB LIO LIOB {controls}",
    ]
    for dev in circuit:
        if not dev.dtype.is_mos:
            continue
        model = "PMOS_DRAM" if dev.dtype.value == "pmos" else "NMOS_DRAM"
        lines.append(
            f"M{dev.name} {dev.nets['d']} {dev.nets['g']} {dev.nets['s']} "
            f"{dev.nets['s']} {model} W={dev.params['w']:.0f}n "
            f"L={dev.params['l']:.0f}n"
        )
    lines.append(f".ENDS SA_{chip_id}")
    return "\n".join(lines)
