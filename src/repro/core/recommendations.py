"""§VI-E: recommendations R1–R4 as a checkable rule set.

Beyond listing the recommendations, this module can *audit a proposal
description*: given a structured description of a DRAM modification
(what it adds, what it assumes), it reports which recommendations the
proposal violates and which inaccuracies (I1–I5) it would suffer on the
studied chips — the forward-looking use the paper intends for its data.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.topologies import SaTopology
from repro.core.chips import CHIPS
from repro.core.papers import Inaccuracy


@dataclass(frozen=True)
class Recommendation:
    """One of the paper's four recommendations."""

    key: str
    text: str
    rationale: str


RECOMMENDATIONS: dict[str, Recommendation] = {
    "R1": Recommendation(
        key="R1",
        text=(
            "Overheads should be estimated including all additions to MATs "
            "or SAs, such as wires connections."
        ),
        rationale="simple changes have non-negligible overheads on commodity devices (I1-2)",
    ),
    "R2": Recommendation(
        key="R2",
        text="Research modifying SAs should consider the impact on all the interconnected SAs.",
        rationale="SA control lines are shared across the region, not per-SA (I3)",
    ),
    "R3": Recommendation(
        key="R3",
        text="Research should consider the physical layout and organization of SAs blocks.",
        rationale="schematic-vs-layout differences break placement assumptions (I4)",
    ),
    "R4": Recommendation(
        key="R4",
        text="Research should consider OCSA in the evaluation.",
        rationale="half the studied chips deploy offset-cancellation designs (I5)",
    ),
}


@dataclass(frozen=True)
class ProposalDescription:
    """Structured description of a DRAM modification to be audited."""

    name: str
    adds_bitlines_in_mat: bool = False
    adds_bitlines_in_sa: bool = False
    adds_wiring: bool = False
    wiring_overhead_included: bool = False
    assumes_independent_control_gates: bool = False
    assumes_isolation_present: bool = False
    assumes_columns_after_sa: bool = False
    evaluated_topologies: tuple[SaTopology, ...] = (SaTopology.CLASSIC,)


@dataclass
class ProposalAudit:
    """Audit result: violated recommendations + triggered inaccuracies."""

    proposal: str
    inaccuracies: list[Inaccuracy] = field(default_factory=list)
    violated: list[Recommendation] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no recommendation is violated."""
        return not self.violated


def audit_proposal(description: ProposalDescription) -> ProposalAudit:
    """Audit a proposal description against R1–R4 and I1–I5."""
    result = ProposalAudit(proposal=description.name)

    if description.adds_bitlines_in_mat:
        result.inaccuracies.append(Inaccuracy.I1)
        result.notes.append("no studied MAT has free space for extra bitlines (Fig 13a)")
    if description.adds_bitlines_in_sa:
        result.inaccuracies.append(Inaccuracy.I2)
        result.notes.append("no studied SA region has free bitline tracks (Fig 13b)")
    if (description.adds_wiring or description.adds_bitlines_in_mat
            or description.adds_bitlines_in_sa) and not description.wiring_overhead_included:
        result.violated.append(RECOMMENDATIONS["R1"])

    if description.assumes_independent_control_gates:
        result.inaccuracies.append(Inaccuracy.I3)
        result.violated.append(RECOMMENDATIONS["R2"])
        result.notes.append(
            "precharge/equalize gates span the whole region and are shared "
            "across all the SAs on every studied chip"
        )
    if description.assumes_isolation_present:
        deployed = [c.chip_id for c in CHIPS.values() if c.topology is SaTopology.OCSA]
        result.inaccuracies.append(Inaccuracy.I3)
        result.notes.append(
            "OCSA isolation transistors decouple latch drains but not gates; "
            f"they exist only on {', '.join(deployed)} and differ from the "
            "assumed free-standing isolation"
        )
        if RECOMMENDATIONS["R2"] not in result.violated:
            result.violated.append(RECOMMENDATIONS["R2"])

    if description.assumes_columns_after_sa:
        result.inaccuracies.append(Inaccuracy.I4)
        result.violated.append(RECOMMENDATIONS["R3"])
        result.notes.append(
            "column transistors are the first elements after the MAT on all "
            "studied chips; placing elements before them needs reorganization"
        )

    if SaTopology.OCSA not in description.evaluated_topologies:
        result.inaccuracies.append(Inaccuracy.I5)
        result.violated.append(RECOMMENDATIONS["R4"])
        ocsa_chips = [c.chip_id for c in CHIPS.values() if c.topology is SaTopology.OCSA]
        result.notes.append(
            f"chips {', '.join(ocsa_chips)} deploy OCSAs; timings and "
            "overheads evaluated only on the classic SA do not transfer"
        )

    # Deduplicate while keeping order.
    seen = set()
    result.inaccuracies = [
        i for i in result.inaccuracies if not (i in seen or seen.add(i))
    ]
    return result
