"""§V-C: the MAT→SA bitline transition overhead.

The transition of a bitline from the MAT's buried geometry to planar logic
costs, on average, 318 nm (DDR4) / 275 nm (DDR5) in the bitline direction —
previously unreported.  Proposals that split a MAT (e.g. Tiered-Latency
DRAM's isolation transistors inside the MAT) pay *two* transitions plus the
new device, which amounts to 1.6 % (DDR4) / 1.1 % (DDR5) of a MAT.
"""

from __future__ import annotations

import statistics

from repro.core.chips import chips_by_generation, chip as get_chip


def average_transition_nm(generation: str) -> float:
    """Average MAT→SA transition overhead for one generation."""
    chips = chips_by_generation(generation)
    return statistics.fmean(c.geometry.transition_nm for c in chips)


def transition_overhead_fraction(chip_id: str, splits: int = 1) -> float:
    """Fraction of a MAT consumed by splitting it *splits* times.

    Each split inserts two transitions (the MAT is cut in two, and both new
    edges need the buried→planar transition).
    """
    c = get_chip(chip_id)
    per_split = 2.0 * c.geometry.transition_nm
    return splits * per_split / c.geometry.mat_height_nm


def average_split_overhead(generation: str) -> float:
    """Average single-split MAT overhead for a generation (1.6 % / 1.1 %)."""
    chips = chips_by_generation(generation)
    return statistics.fmean(
        transition_overhead_fraction(c.chip_id) for c in chips
    )
