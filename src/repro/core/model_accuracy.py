"""§VI-A: how inaccurate are the public analog models? (Fig 11, Fig 12)

The analysis compares each model element's dimensions to the measured
dimensions of the same element on each chip, as

* **W/L inaccuracy** — |model_ratio / chip_ratio − 1| (higher ratios make
  simulations optimistic, §VI-A);
* **width / length inaccuracy** — the same relative error per dimension.

Elements absent from a comparison side are skipped: CROW has no column
transistors, neither model has ISO/OC elements, OCSA chips have no
equalizer.  Averages and maxima are reported per generation, matching the
Fig 12 presentation ("¥ portability to DDR5").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.chips import Chip, chips_by_generation
from repro.core.models import AnalogModel, public_models
from repro.errors import EvaluationError
from repro.layout.elements import TransistorKind


@dataclass(frozen=True)
class ElementInaccuracy:
    """One model-element vs one chip-element comparison."""

    model: str
    chip_id: str
    kind: TransistorKind
    wl_error: float  #: relative error of W/L, e.g. 5.62 for "562 %"
    width_error: float
    length_error: float


@dataclass
class ModelAccuracyReport:
    """Fig 12 numbers for one model vs one chip generation."""

    model: str
    generation: str
    comparisons: list[ElementInaccuracy] = field(default_factory=list)

    def _values(self, attr: str) -> list[float]:
        return [getattr(c, attr) for c in self.comparisons]

    def average(self, attr: str = "wl_error") -> float:
        """Average inaccuracy over all comparisons."""
        values = self._values(attr)
        if not values:
            raise EvaluationError(f"no comparisons for {self.model}/{self.generation}")
        return sum(values) / len(values)

    def maximum(self, attr: str = "wl_error") -> tuple[float, ElementInaccuracy]:
        """Worst inaccuracy and the comparison that produced it."""
        worst = max(self.comparisons, key=lambda c: getattr(c, attr))
        return getattr(worst, attr), worst


def element_inaccuracy(model: AnalogModel, chip: Chip, kind: TransistorKind) -> ElementInaccuracy:
    """Compare one element of *model* against the same element on *chip*."""
    m = model.transistor(kind)
    c = chip.transistor(kind)
    return ElementInaccuracy(
        model=model.name,
        chip_id=chip.chip_id,
        kind=kind,
        wl_error=abs(m.wl_ratio / c.wl_ratio - 1.0),
        width_error=abs(m.w / c.w - 1.0),
        length_error=abs(m.l / c.l - 1.0),
    )


def model_accuracy_report(
    model: AnalogModel, generation: str = "DDR4"
) -> ModelAccuracyReport:
    """All comparable elements of *model* against all chips of *generation*."""
    report = ModelAccuracyReport(model=model.name, generation=generation)
    for chip in chips_by_generation(generation):
        for kind in model.transistors:
            if not chip.has(kind):
                continue  # e.g. no equalizer on OCSA chips
            report.comparisons.append(element_inaccuracy(model, chip, kind))
    if not report.comparisons:
        raise EvaluationError(f"no comparable elements for {model.name} on {generation}")
    return report


def all_reports() -> list[ModelAccuracyReport]:
    """Every (model × generation) report — the full Fig 12."""
    reports = []
    for model in public_models().values():
        for generation in ("DDR4", "DDR5"):
            reports.append(model_accuracy_report(model, generation))
    return reports


def worst_case_factor(generation: str = "DDR4") -> float:
    """The abstract's headline: public models are "up to 9x inaccurate".

    Computed as the worst single-dimension relative error across both
    models against the chips of the models' own technology generation,
    expressed as a multiplicative factor.
    """
    worst = 0.0
    for model in public_models().values():
        report = model_accuracy_report(model, generation)
        for attr in ("wl_error", "width_error", "length_error"):
            value, _who = report.maximum(attr)
            worst = max(worst, value)
    return worst


def fig11_series() -> dict[str, dict[str, tuple[float, float, float, float]]]:
    """Fig 11 data: measured pSA/nSA dimensions for all chips plus REM.

    Returns ``{series: {element: (w_mean, w_spread, l_mean, l_spread)}}``
    where spreads are the half-ranges of the synthetic measurement samples
    (the whiskers).  CROW is omitted "as severely out of range", as in the
    paper.
    """
    from repro.core.chips import CHIPS
    from repro.core.models import REM

    series: dict[str, dict[str, tuple[float, float, float, float]]] = {}
    for chip in CHIPS.values():
        ms = chip.measurements()
        entry: dict[str, tuple[float, float, float, float]] = {}
        for kind in (TransistorKind.NSA, TransistorKind.PSA):
            w_lo, w_hi = ms.spread(kind, "w")
            l_lo, l_hi = ms.spread(kind, "l")
            entry[kind.value] = (
                ms.mean(kind, "w"), (w_hi - w_lo) / 2,
                ms.mean(kind, "l"), (l_hi - l_lo) / 2,
            )
        series[chip.chip_id] = entry
    rem_entry: dict[str, tuple[float, float, float, float]] = {}
    for kind in (TransistorKind.NSA, TransistorKind.PSA):
        rec = REM.transistor(kind)
        rem_entry[kind.value] = (rec.w, 0.0, rec.l, 0.0)
    series["REM"] = rem_entry
    return series
