"""HiFi-DRAM reproduction library.

A full-system reproduction of *HiFi-DRAM: Enabling High-fidelity DRAM
Research by Uncovering Sense Amplifiers with IC Imaging* (ISCA 2024):

* :mod:`repro.core` — the six-chip dataset and the §VI research audit
  (model accuracy, Table II overhead errors, recommendations R1–R4);
* :mod:`repro.layout` — SA-region layout substrate + ground-truth
  generator + GDSII I/O;
* :mod:`repro.circuits` — netlists, the classic-SA and OCSA reference
  topologies, topology identification;
* :mod:`repro.analog` — MNA transient solver (scalar and Monte-Carlo
  batched), sense-amplifier testbenches (Fig 2c / Fig 9b event
  sequences, offset tolerance) and the corner × topology × bitline
  characterization engine behind :class:`CharacterizationSpec` /
  :func:`characterize`;
* :mod:`repro.imaging` — simulated SEM/FIB acquisition (the hardware-gated
  part of the paper, substituted per DESIGN.md);
* :mod:`repro.pipeline` — §IV-C post-processing: TV denoising, mutual
  information alignment, planar reslicing, segmentation;
* :mod:`repro.reveng` — §V reverse engineering: connectivity extraction,
  transistor classification, measurements, end-to-end workflows.

* :mod:`repro.runtime` — multi-chip campaign engine: process-pool
  fan-out, content-addressed stage caching, per-stage instrumentation,
  QC-gated retries, per-chip timeouts and chip quarantine;
* :mod:`repro.faults` — deterministic seeded acquisition fault injection
  (dropped slices, saturation/blackout, drift spikes, milling overshoot,
  blur bursts) behind :class:`FaultPlan`;
* :mod:`repro.obs` — campaign observability: hierarchical span tracing
  (Chrome-trace exportable), a metrics registry merged across workers,
  and JSON-lines structured logging, all off (and free) by default;
* :mod:`repro.catalog` — parametric chip catalog: an options-driven
  variant registry (vendor profile x process generation x topology x
  word size x column mux x body taps x noise regime) that lowers
  :class:`ChipVariantSpec` axes to layout specs, enumerates or samples
  deterministic variant populations and scores hundred-chip fuzz
  campaigns into versioned ``catalog-report/1`` JSON.

Quick start::

    from repro import SaRegionSpec, generate_sa_region, reverse_engineer_cell

    cell = generate_sa_region(SaRegionSpec(topology="ocsa"))
    result = reverse_engineer_cell(cell)
    assert result.topology.value == "ocsa"

Multi-chip campaign (parallel, cached)::

    from repro import ChipJob, PipelineConfig, run_campaign

    jobs = [ChipJob.synthetic("fab-a", "classic"), ChipJob.synthetic("fab-b", "ocsa")]
    report = run_campaign(jobs, workers=2, cache_dir=".stage-cache")
    assert report.result("fab-b").topology.value == "ocsa"

Analog characterization sweep (batched solver, campaign-cached)::

    from repro import CharacterizationSpec, characterize

    spec = CharacterizationSpec(corners=("TT", "SS"), trials=64)
    report = characterize(spec, cache_dir=".stage-cache")
    print(report.render())

Chip-catalog fuzz campaign (deterministic population, scored)::

    from repro import CatalogSpec, run_catalog_campaign, sample

    variants = sample(CatalogSpec(), 100, seed=0)
    report = run_catalog_campaign(variants, workers=4, cache_dir=".stage-cache")
    print(report.render())
"""

from repro.analog import (
    BatchedTransientSolver,
    CharacterizationReport,
    CharacterizationSpec,
    DeviceCorner,
    characterize,
)
from repro.catalog import (
    CatalogReport,
    CatalogSpec,
    ChipVariantSpec,
    build_region_spec,
    expand_grid,
    register_variant,
    run_catalog_campaign,
    sample,
)
from repro.circuits import (
    SaTopology,
    build_classic_sa,
    build_ocsa,
    identify_topology,
)
from repro.core import (
    CHIPS,
    CROW,
    REM,
    chip,
    model_accuracy_report,
    table2_rows,
)
from repro.faults import FaultPlan
from repro.layout import SaRegionSpec, generate_sa_region
from repro.obs import ObsConfig
from repro.pipeline import PipelineConfig, ShardPlan
from repro.reveng import ReversedChip, reverse_engineer_cell, reverse_engineer_stack
from repro.runtime import CampaignReport, ChipJob, ResiliencePolicy, run_campaign

__version__ = "1.9.0"

__all__ = [
    "BatchedTransientSolver",
    "CatalogReport",
    "CatalogSpec",
    "ChipVariantSpec",
    "build_region_spec",
    "expand_grid",
    "register_variant",
    "run_catalog_campaign",
    "sample",
    "CharacterizationReport",
    "CharacterizationSpec",
    "DeviceCorner",
    "characterize",
    "SaTopology",
    "build_classic_sa",
    "build_ocsa",
    "identify_topology",
    "CHIPS",
    "CROW",
    "REM",
    "chip",
    "model_accuracy_report",
    "table2_rows",
    "SaRegionSpec",
    "generate_sa_region",
    "PipelineConfig",
    "ShardPlan",
    "ReversedChip",
    "reverse_engineer_cell",
    "reverse_engineer_stack",
    "CampaignReport",
    "ChipJob",
    "run_campaign",
    "FaultPlan",
    "ResiliencePolicy",
    "ObsConfig",
    "__version__",
]
