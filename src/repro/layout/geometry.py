"""2-D geometry primitives used by the layout substrate.

Coordinates follow the paper's Fig 10 convention:

* **X** is the *SA height* direction (bitlines run along X; stacking of SA1
  and SA2 between two MATs happens along X).
* **Y** is the direction *along* the SA region (common gates of precharge,
  isolation and offset-cancellation transistors span the region along Y).

All lengths are nanometres (see :mod:`repro.units`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import LayoutError


@dataclass(frozen=True)
class Point:
    """An immutable 2-D point (nm)."""

    x: float
    y: float

    def translated(self, dx: float, dy: float) -> "Point":
        """Return a copy moved by ``(dx, dy)``."""
        return Point(self.x + dx, self.y + dy)

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance to *other*."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def as_tuple(self) -> tuple[float, float]:
        """Return ``(x, y)``."""
        return (self.x, self.y)


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle (nm), stored as its min/max corners.

    The constructor normalises corner order, so ``Rect(10, 10, 0, 0)`` is the
    same rectangle as ``Rect(0, 0, 10, 10)``.  Degenerate (zero-area)
    rectangles are allowed — vias are sometimes modelled as near-points —
    but negative extents are impossible by construction.
    """

    x0: float
    y0: float
    x1: float
    y1: float

    def __post_init__(self) -> None:
        # Normalise corner order on both axes (frozen dataclass, so use
        # object.__setattr__).
        x0, x1 = min(self.x0, self.x1), max(self.x0, self.x1)
        y0, y1 = min(self.y0, self.y1), max(self.y0, self.y1)
        object.__setattr__(self, "x0", x0)
        object.__setattr__(self, "x1", x1)
        object.__setattr__(self, "y0", y0)
        object.__setattr__(self, "y1", y1)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_center(cls, cx: float, cy: float, width: float, height: float) -> "Rect":
        """Build a rectangle from its centre and extents.

        *width* is the X extent and *height* the Y extent; both must be
        non-negative.
        """
        if width < 0 or height < 0:
            raise LayoutError(f"negative extent: width={width}, height={height}")
        return cls(cx - width / 2, cy - height / 2, cx + width / 2, cy + height / 2)

    @classmethod
    def bounding(cls, rects: Iterable["Rect"]) -> "Rect":
        """Return the bounding box of a non-empty collection of rectangles."""
        rects = list(rects)
        if not rects:
            raise LayoutError("bounding box of an empty collection")
        return cls(
            min(r.x0 for r in rects),
            min(r.y0 for r in rects),
            max(r.x1 for r in rects),
            max(r.y1 for r in rects),
        )

    # -- measures ----------------------------------------------------------

    @property
    def width(self) -> float:
        """Extent along X (the SA-height direction)."""
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        """Extent along Y (the along-the-region direction)."""
        return self.y1 - self.y0

    @property
    def area(self) -> float:
        """Area in nm²."""
        return self.width * self.height

    @property
    def center(self) -> Point:
        """Centre point."""
        return Point((self.x0 + self.x1) / 2, (self.y0 + self.y1) / 2)

    # -- predicates ----------------------------------------------------------

    def contains_point(self, p: Point) -> bool:
        """True if *p* lies inside or on the boundary."""
        return self.x0 <= p.x <= self.x1 and self.y0 <= p.y <= self.y1

    def contains_rect(self, other: "Rect") -> bool:
        """True if *other* lies fully inside (or on the boundary of) self."""
        return (
            self.x0 <= other.x0
            and self.y0 <= other.y0
            and self.x1 >= other.x1
            and self.y1 >= other.y1
        )

    def intersects(self, other: "Rect") -> bool:
        """True if the two rectangles share any area or boundary."""
        return not (
            other.x0 > self.x1
            or other.x1 < self.x0
            or other.y0 > self.y1
            or other.y1 < self.y0
        )

    def intersection(self, other: "Rect") -> "Rect | None":
        """Return the overlap rectangle, or ``None`` if disjoint."""
        if not self.intersects(other):
            return None
        return Rect(
            max(self.x0, other.x0),
            max(self.y0, other.y0),
            min(self.x1, other.x1),
            min(self.y1, other.y1),
        )

    def gap_to(self, other: "Rect") -> float:
        """Minimum edge-to-edge distance to *other* (0 if touching/overlapping)."""
        dx = max(0.0, max(other.x0 - self.x1, self.x0 - other.x1))
        dy = max(0.0, max(other.y0 - self.y1, self.y0 - other.y1))
        return math.hypot(dx, dy)

    # -- transforms ----------------------------------------------------------

    def translated(self, dx: float, dy: float) -> "Rect":
        """Return a copy moved by ``(dx, dy)``."""
        return Rect(self.x0 + dx, self.y0 + dy, self.x1 + dx, self.y1 + dy)

    def inflated(self, margin_x: float, margin_y: float | None = None) -> "Rect":
        """Return a copy grown by a margin on every side.

        A single argument grows both axes by the same margin; negative
        margins shrink (and raise if the rectangle would invert).
        """
        if margin_y is None:
            margin_y = margin_x
        if self.width + 2 * margin_x < 0 or self.height + 2 * margin_y < 0:
            raise LayoutError("inflation margin would invert the rectangle")
        return Rect(
            self.x0 - margin_x, self.y0 - margin_y, self.x1 + margin_x, self.y1 + margin_y
        )

    def corners(self) -> Iterator[Point]:
        """Yield the four corners counter-clockwise from (x0, y0)."""
        yield Point(self.x0, self.y0)
        yield Point(self.x1, self.y0)
        yield Point(self.x1, self.y1)
        yield Point(self.x0, self.y1)


def pitch_of(positions: Iterable[float]) -> float:
    """Return the median spacing of a sorted sequence of coordinates.

    The RE measurement code uses this to estimate bitline pitch from the
    recovered wire centrelines; the median makes it robust to a missed or
    merged wire.
    """
    xs = sorted(positions)
    if len(xs) < 2:
        raise LayoutError("pitch needs at least two positions")
    gaps = sorted(b - a for a, b in zip(xs, xs[1:]))
    mid = len(gaps) // 2
    if len(gaps) % 2 == 1:
        return gaps[mid]
    return (gaps[mid - 1] + gaps[mid]) / 2
