"""Minimal GDSII stream writer/reader.

HiFi-DRAM open-sources its reverse-engineered layouts "in the standard
GDSII format" (§V-C).  This module provides the same capability for the
layouts this library generates or recovers: every rectangle of a
:class:`~repro.layout.cell.LayoutCell` is emitted as a ``BOUNDARY`` element
on a numeric layer, and a reader parses such files back into per-layer
rectangle lists.

Only the subset of GDSII needed for rectilinear single-structure layouts is
implemented: HEADER, BGNLIB/ENDLIB, LIBNAME, UNITS, BGNSTR/ENDSTR, STRNAME,
BOUNDARY, LAYER, DATATYPE, XY, ENDEL.  Coordinates are stored in database
units of 1 nm.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import GdsFormatError
from repro.layout.cell import LayoutCell
from repro.layout.elements import Layer
from repro.layout.geometry import Rect

# GDSII record types.
_HEADER = 0x0002
_BGNLIB = 0x0102
_LIBNAME = 0x0206
_UNITS = 0x0305
_ENDLIB = 0x0400
_BGNSTR = 0x0502
_STRNAME = 0x0606
_ENDSTR = 0x0700
_BOUNDARY = 0x0800
_LAYER = 0x0D02
_DATATYPE = 0x0E02
_XY = 0x1003
_ENDEL = 0x1100

#: GDS layer numbers for the IC layers (loosely following common DRAM PDK
#: numbering; the mapping round-trips through :func:`read_gds`).
GDS_LAYER_NUMBERS: dict[Layer, int] = {
    Layer.ACTIVE: 1,
    Layer.GATE: 5,
    Layer.CONTACT: 10,
    Layer.METAL1: 20,
    Layer.VIA1: 25,
    Layer.METAL2: 30,
    Layer.CAPACITOR: 40,
}
_NUMBER_TO_LAYER = {num: layer for layer, num in GDS_LAYER_NUMBERS.items()}

_DUMMY_TIMESTAMP = (2024, 1, 1, 0, 0, 0)


def _record(rtype: int, payload: bytes = b"") -> bytes:
    length = 4 + len(payload)
    if length % 2:
        raise GdsFormatError("odd-length GDS record payload")
    return struct.pack(">HH", length, rtype) + payload


def _ascii(text: str) -> bytes:
    data = text.encode("ascii", errors="replace")
    if len(data) % 2:
        data += b"\x00"
    return data


def _real8(value: float) -> bytes:
    """Encode an IEEE double as GDSII 8-byte excess-64 real."""
    if value == 0.0:
        return b"\x00" * 8
    sign = 0
    if value < 0:
        sign = 0x80
        value = -value
    exponent = 64
    mantissa = value
    while mantissa >= 1.0:
        mantissa /= 16.0
        exponent += 1
    while mantissa < 1.0 / 16.0:
        mantissa *= 16.0
        exponent -= 1
    mant_int = int(mantissa * (1 << 56))
    data = struct.pack(">Q", mant_int)
    return bytes([sign | exponent]) + data[1:]


def _parse_real8(data: bytes) -> float:
    if len(data) != 8:
        raise GdsFormatError("bad REAL8 length")
    first = data[0]
    sign = -1.0 if first & 0x80 else 1.0
    exponent = (first & 0x7F) - 64
    mant_int = int.from_bytes(b"\x00" + data[1:], "big")
    mantissa = mant_int / float(1 << 56)
    return sign * mantissa * (16.0 ** exponent)


@dataclass
class GdsLibrary:
    """Parsed GDS content: structure name plus per-layer rectangles (nm)."""

    name: str
    structure: str
    shapes: dict[Layer, list[Rect]] = field(default_factory=dict)
    #: shapes on GDS layer numbers without a known mapping
    unknown: dict[int, list[Rect]] = field(default_factory=dict)

    def count(self) -> int:
        """Total rectangles parsed."""
        return sum(len(v) for v in self.shapes.values()) + sum(
            len(v) for v in self.unknown.values()
        )


def write_gds(cell: LayoutCell, path: str | Path, lib_name: str = "HIFIDRAM") -> int:
    """Write *cell* to a GDSII file; returns the number of shapes emitted.

    Every layout element is flattened to boundary rectangles on its layer;
    element semantics (nets, transistor classes) are a property of the
    library's in-memory model, exactly as for real reverse-engineered GDS.
    """
    path = Path(path)
    chunks: list[bytes] = [
        _record(_HEADER, struct.pack(">h", 600)),
        _record(_BGNLIB, struct.pack(">12h", *(_DUMMY_TIMESTAMP * 2))),
        _record(_LIBNAME, _ascii(lib_name)),
        # 1 db unit = 1e-3 user units (µm), 1e-9 m.
        _record(_UNITS, _real8(1e-3) + _real8(1e-9)),
        _record(_BGNSTR, struct.pack(">12h", *(_DUMMY_TIMESTAMP * 2))),
        _record(_STRNAME, _ascii(cell.name)),
    ]

    count = 0
    for layer in Layer:
        number = GDS_LAYER_NUMBERS[layer]
        for rect in cell.shapes_on(layer):
            x0, y0 = int(round(rect.x0)), int(round(rect.y0))
            x1, y1 = int(round(rect.x1)), int(round(rect.y1))
            xy = struct.pack(
                ">10i", x0, y0, x1, y0, x1, y1, x0, y1, x0, y0
            )
            chunks += [
                _record(_BOUNDARY),
                _record(_LAYER, struct.pack(">h", number)),
                _record(_DATATYPE, struct.pack(">h", 0)),
                _record(_XY, xy),
                _record(_ENDEL),
            ]
            count += 1

    chunks += [_record(_ENDSTR), _record(_ENDLIB)]
    path.write_bytes(b"".join(chunks))
    return count


def read_gds(path: str | Path) -> GdsLibrary:
    """Parse a GDSII file written by :func:`write_gds` (or compatible)."""
    data = Path(path).read_bytes()
    pos = 0
    lib = GdsLibrary(name="", structure="")
    current_layer: int | None = None
    in_boundary = False
    pending_xy: list[Rect] = []

    while pos + 4 <= len(data):
        length, rtype = struct.unpack_from(">HH", data, pos)
        if length < 4:
            raise GdsFormatError(f"bad record length {length} at offset {pos}")
        payload = data[pos + 4 : pos + length]
        pos += length

        if rtype == _LIBNAME:
            lib.name = payload.rstrip(b"\x00").decode("ascii", errors="replace")
        elif rtype == _STRNAME:
            lib.structure = payload.rstrip(b"\x00").decode("ascii", errors="replace")
        elif rtype == _UNITS:
            # Validate the db unit is 1 nm (what write_gds emits).
            db_in_meters = _parse_real8(payload[8:16])
            if not (0.5e-9 < db_in_meters < 2e-9):
                raise GdsFormatError(f"unsupported database unit {db_in_meters} m")
        elif rtype == _BOUNDARY:
            in_boundary = True
            current_layer = None
        elif rtype == _LAYER and in_boundary:
            (current_layer,) = struct.unpack(">h", payload)
        elif rtype == _XY and in_boundary:
            count = len(payload) // 8
            coords = struct.unpack(f">{count * 2}i", payload)
            xs = coords[0::2]
            ys = coords[1::2]
            pending_xy.append(Rect(min(xs), min(ys), max(xs), max(ys)))
        elif rtype == _ENDEL:
            if in_boundary and pending_xy:
                rect = pending_xy.pop()
                if current_layer in _NUMBER_TO_LAYER:
                    lib.shapes.setdefault(_NUMBER_TO_LAYER[current_layer], []).append(rect)
                elif current_layer is not None:
                    lib.unknown.setdefault(current_layer, []).append(rect)
            in_boundary = False
        elif rtype == _ENDLIB:
            break

    if not lib.structure:
        raise GdsFormatError("no structure found in GDS stream")
    return lib
