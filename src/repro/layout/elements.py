"""Layout elements: layers, materials, transistors, wires, vias.

The element vocabulary follows what the paper's imaging actually resolves
(§IV-D, Fig 7): bitlines on metal 1, wider routing on metal 2, vias between
layers, polysilicon gates, active regions, and the stacked capacitors above
the bitlines in the MAT.  Each element lives on exactly one :class:`Layer`
and is made of one :class:`Material`; the voxelizer maps materials to SEM
contrast classes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import LayoutError
from repro.layout.geometry import Rect


class Layer(enum.Enum):
    """Vertical IC layers, bottom (substrate) to top (capacitors).

    The stack is deliberately shallow: the paper stresses that the number of
    IC layers in DRAM MATs and SA regions is limited (§VI-B, refs [49], [87],
    [98]) — that limitation is what makes inaccuracies I1/I2 unavoidable.
    """

    ACTIVE = 0  #: transistor active regions (doped silicon)
    GATE = 1  #: polysilicon gates, including region-spanning common gates
    CONTACT = 2  #: contacts from active/gate up to metal 1
    METAL1 = 3  #: bitlines and local SA wiring
    VIA1 = 4  #: vias between metal 1 and metal 2
    METAL2 = 5  #: wider routing (LIO, power rails, A4/A5 bitline transfer)
    CAPACITOR = 6  #: MAT stacked capacitors (honeycomb arrangement)

    @property
    def is_metal(self) -> bool:
        """True for the two routing layers."""
        return self in (Layer.METAL1, Layer.METAL2)

    @property
    def is_via(self) -> bool:
        """True for inter-layer connection layers."""
        return self in (Layer.CONTACT, Layer.VIA1)


#: Layers that vias on a given via-layer connect.  A CONTACT reaches down to
#: whichever of ACTIVE/GATE it lands on (never place one touching both) and
#: up to METAL1; a VIA1 joins the two metals.
VIA_CONNECTS: dict[Layer, tuple[tuple[Layer, ...], Layer]] = {
    Layer.CONTACT: ((Layer.ACTIVE, Layer.GATE), Layer.METAL1),
    Layer.VIA1: ((Layer.METAL1,), Layer.METAL2),
}


class Material(enum.Enum):
    """Material classes, the unit the SEM contrast model distinguishes."""

    SILICON = enum.auto()  #: bulk / active silicon
    POLY = enum.auto()  #: polysilicon gate material
    TUNGSTEN = enum.auto()  #: contacts and vias
    COPPER = enum.auto()  #: metal wires
    DIELECTRIC = enum.auto()  #: inter-layer dielectric (background)
    CAPACITOR_STACK = enum.auto()  #: high-k capacitor stack


#: Default material of each layer.
LAYER_MATERIAL: dict[Layer, Material] = {
    Layer.ACTIVE: Material.SILICON,
    Layer.GATE: Material.POLY,
    Layer.CONTACT: Material.TUNGSTEN,
    Layer.METAL1: Material.COPPER,
    Layer.VIA1: Material.TUNGSTEN,
    Layer.METAL2: Material.COPPER,
    Layer.CAPACITOR: Material.CAPACITOR_STACK,
}


class Orientation(enum.Enum):
    """Which axis a transistor's *width* runs along (§V-C).

    Latching transistors have their width along X (parallel to the SA
    height), so adding one widens the SA by its **W**.  Common-gate elements
    (precharge, isolation, offset-cancellation) span the region along Y, so
    adding one widens the SA by its **L** instead — the single most
    consequential layout fact the paper reports for overhead estimation.
    """

    WIDTH_ALONG_X = enum.auto()
    WIDTH_ALONG_Y = enum.auto()


class TransistorKind(enum.Enum):
    """Functional classes of SA-region transistors (§V-A step iv-viii)."""

    NSA = "nSA"  #: NMOS latch pair
    PSA = "pSA"  #: PMOS latch pair (narrower than nSA)
    PRECHARGE = "precharge"  #: connects a bitline to Vpre (common gate)
    EQUALIZER = "equalizer"  #: shorts BL and BLB (classic SA only)
    COLUMN = "column"  #: Yi column multiplexer, first element after MAT
    ISOLATION = "isolation"  #: OCSA ISO device (common gate)
    OFFSET_CANCEL = "offset_cancel"  #: OCSA OC device (common gate)
    LSA = "LSA"  #: LIO second-stage latch (in region, not part of SA)
    MAT_ACCESS = "mat_access"  #: BCAT cell access transistor (in the MAT)

    @property
    def is_common_gate(self) -> bool:
        """Classes whose gate spans the whole SA region along Y."""
        return self in (
            TransistorKind.PRECHARGE,
            TransistorKind.EQUALIZER,
            TransistorKind.ISOLATION,
            TransistorKind.OFFSET_CANCEL,
        )

    @property
    def is_latch(self) -> bool:
        """The cross-coupled latch classes."""
        return self in (TransistorKind.NSA, TransistorKind.PSA)


@dataclass(frozen=True)
class Transistor:
    """A placed transistor.

    ``width`` and ``length`` are the electrical W and L in nm; the placed
    footprint (gate rectangle) is derived from them plus the orientation.
    ``effective_width`` / ``effective_length`` are the *effective spacing
    sizes* of §V-B: the room the element actually needs, including safety
    margins — the quantity the overhead formulas of Appendix B consume.
    """

    name: str
    kind: TransistorKind
    channel: str  # "nmos" or "pmos"
    width: float
    length: float
    gate: Rect
    active: Rect
    orientation: Orientation
    effective_width: float = 0.0
    effective_length: float = 0.0

    def __post_init__(self) -> None:
        if self.channel not in ("nmos", "pmos"):
            raise LayoutError(f"bad channel {self.channel!r} for {self.name}")
        if self.width <= 0 or self.length <= 0:
            raise LayoutError(f"non-positive W/L for {self.name}")
        if not self.effective_width:
            object.__setattr__(self, "effective_width", self.width * 1.4)
        if not self.effective_length:
            object.__setattr__(self, "effective_length", self.length * 2.0)

    @property
    def wl_ratio(self) -> float:
        """W/L, the figure of merit §VI-A compares across models."""
        return self.width / self.length

    @property
    def x_footprint(self) -> float:
        """SA-height (X) cost of this device per §V-C.

        Latch-class devices cost their effective *width* along X; common-gate
        devices cost their effective *length* along X.
        """
        if self.orientation is Orientation.WIDTH_ALONG_X:
            return self.effective_width
        return self.effective_length


@dataclass(frozen=True)
class Wire:
    """A straight wire segment on a metal layer."""

    name: str
    layer: Layer
    shape: Rect
    net: str = ""

    def __post_init__(self) -> None:
        if not self.layer.is_metal and self.layer is not Layer.GATE:
            raise LayoutError(f"wire {self.name!r} on non-routing layer {self.layer}")

    @property
    def wire_width(self) -> float:
        """The narrow dimension of the segment."""
        return min(self.shape.width, self.shape.height)

    @property
    def wire_length(self) -> float:
        """The long dimension of the segment."""
        return max(self.shape.width, self.shape.height)


@dataclass(frozen=True)
class Via:
    """A via or contact connecting two adjacent layers."""

    name: str
    layer: Layer
    shape: Rect
    net: str = ""

    def __post_init__(self) -> None:
        if not self.layer.is_via:
            raise LayoutError(f"via {self.name!r} on non-via layer {self.layer}")

    @property
    def connects(self) -> tuple[tuple[Layer, ...], Layer]:
        """The (lower-candidates, upper) layers this via joins."""
        return VIA_CONNECTS[self.layer]


@dataclass(frozen=True)
class ActiveRegion:
    """A contiguous active-silicon region; may host several transistors.

    Fig 7c shows two transistors sharing source/drain and active region —
    the classifier uses shared actives to find the coupled latch pairs.
    """

    name: str
    shape: Rect


@dataclass(frozen=True)
class CapacitorCell:
    """One MAT storage capacitor (plan-view footprint, honeycomb packed)."""

    name: str
    shape: Rect
    row: int = 0
    col: int = 0


@dataclass
class MatRegion:
    """Summary geometry of a MAT adjacent to the SA region.

    ``transition_nm`` is the §V-C bitline MAT→planar-logic transition
    overhead (318 nm DDR4 / 275 nm DDR5 on average).
    """

    bounds: Rect
    rows: int
    cols: int
    bitline_pitch: float
    wordline_pitch: float
    transition_nm: float
    capacitors: list[CapacitorCell] = field(default_factory=list)

    @property
    def cells(self) -> int:
        """Number of storage cells."""
        return self.rows * self.cols
