"""Design rules and free-space probing.

Appendix A of the paper discusses why new bitlines cannot be squeezed into
the MAT or SA regions: bitlines are the narrowest wires on M1, their width
is roughly twice the safety distance (``Bw ≈ 2d``), and both shrinking them
and packing them closer violates manufacturability.  This module encodes
those rules and provides the occupancy/free-track probes used to demonstrate
inaccuracies **I1** (no free space for bitlines in the MAT) and **I2** (no
free space for bitlines in the SA region) — Fig 13.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import DesignRuleViolation
from repro.layout.cell import LayoutCell
from repro.layout.elements import Layer
from repro.layout.geometry import Rect


@dataclass(frozen=True)
class DesignRules:
    """Minimal rule set for a DRAM process node.

    ``min_width`` / ``min_spacing`` are per-layer, in nm.  The defaults
    follow the Appendix A relation ``Bw ≈ 2 d`` for metal 1 at a generic
    modern node; :mod:`repro.core.chips` instantiates per-chip rule sets.
    """

    name: str
    min_width: dict[Layer, float]
    min_spacing: dict[Layer, float]

    @classmethod
    def for_feature_size(cls, name: str, feature_nm: float) -> "DesignRules":
        """Derive a rule set from the process feature size F.

        Bitlines sit at 1F width / 1F space — the 6F² open-bitline cell has
        a 2F bitline pitch.  Upper metal relaxes by ~4x, matching the
        paper's observation that M2 wires are around 8x bigger than M1
        bitlines and not packed closely (Appendix A).
        """
        return cls(
            name=name,
            min_width={
                Layer.ACTIVE: feature_nm,
                Layer.GATE: feature_nm,
                Layer.CONTACT: feature_nm,
                Layer.METAL1: feature_nm,
                Layer.VIA1: feature_nm * 1.5,
                Layer.METAL2: feature_nm * 4.0,
                Layer.CAPACITOR: feature_nm,
            },
            min_spacing={
                Layer.ACTIVE: feature_nm,
                Layer.GATE: feature_nm,
                Layer.CONTACT: feature_nm,
                Layer.METAL1: feature_nm,
                Layer.VIA1: feature_nm * 1.5,
                Layer.METAL2: feature_nm * 4.0,
                Layer.CAPACITOR: feature_nm / 2.0,
            },
        )

    def track_pitch(self, layer: Layer) -> float:
        """Minimum wire pitch on *layer* (width + spacing)."""
        return self.min_width[layer] + self.min_spacing[layer]


def check_cell(cell: LayoutCell, rules: DesignRules, layers: tuple[Layer, ...] | None = None) -> list[str]:
    """Run width and spacing checks; return a list of violation strings.

    Raises nothing: callers that want hard failures can inspect the list and
    raise :class:`~repro.errors.DesignRuleViolation` themselves via
    :func:`enforce_cell`.
    """
    if layers is None:
        layers = (Layer.METAL1, Layer.METAL2, Layer.GATE)
    violations: list[str] = []
    for layer in layers:
        shapes = cell.shapes_on(layer)
        wmin = rules.min_width[layer]
        smin = rules.min_spacing[layer]
        for i, shape in enumerate(shapes):
            narrow = min(shape.width, shape.height)
            if narrow + 1e-9 < wmin:
                violations.append(
                    f"{layer.name}: shape {i} width {narrow:.1f} < min {wmin:.1f}"
                )
        # O(n²) pairwise spacing; cells are region-sized (hundreds of
        # shapes), so this stays cheap and keeps the check obviously correct.
        for i, a in enumerate(shapes):
            for j in range(i + 1, len(shapes)):
                b = shapes[j]
                if a.intersects(b):
                    continue  # same-net abutment is legal
                gap = a.gap_to(b)
                if gap + 1e-9 < smin:
                    violations.append(
                        f"{layer.name}: shapes {i},{j} spacing {gap:.1f} < min {smin:.1f}"
                    )
    return violations


def enforce_cell(cell: LayoutCell, rules: DesignRules) -> None:
    """Like :func:`check_cell` but raises on the first violation."""
    violations = check_cell(cell, rules)
    if violations:
        raise DesignRuleViolation(violations[0], f"{len(violations)} total in {cell.name}")


def free_track_count(
    cell: LayoutCell, rules: DesignRules, layer: Layer, window: Rect
) -> int:
    """Number of *additional* minimum-pitch Y-running tracks that fit.

    This is the quantitative core of I1/I2: scan the window along X in
    track-pitch steps and count columns in which no existing shape on
    *layer* would violate spacing against a new minimum-width wire.  For the
    generator's MAT and SA regions the answer is 0 — there is no free space
    for new bitlines (Fig 13) — while the M2 layer of A4/A5 style chips does
    report slack (Appendix A).
    """
    pitch = rules.track_pitch(layer)
    wmin = rules.min_width[layer]
    smin = rules.min_spacing[layer]
    shapes = [s for s in cell.shapes_on(layer) if s.intersects(window)]
    free = 0
    x = window.x0 + smin
    while x + wmin <= window.x1 - smin + 1e-9:
        candidate = Rect(x, window.y0, x + wmin, window.y1)
        blocked = any(
            s.intersects(candidate) or s.gap_to(candidate) < smin - 1e-9
            for s in shapes
        )
        if not blocked:
            free += 1
            x += pitch
        else:
            x += pitch / 4.0  # finer scan past obstructions
    return free


def occupancy_report(
    cell: LayoutCell, rules: DesignRules, layer: Layer, window: Rect
) -> dict[str, float]:
    """Summary used by the Fig 13 bench: occupancy, free tracks, pitch.

    ``theoretical_max`` is the occupancy of a fully packed minimum-pitch
    layer (width / pitch); ``utilisation`` is occupancy relative to it.
    """
    occ = cell.occupancy(layer, window)
    theoretical = rules.min_width[layer] / rules.track_pitch(layer)
    return {
        "occupancy": occ,
        "theoretical_max": theoretical,
        "utilisation": occ / theoretical if theoretical else 0.0,
        "free_tracks": float(free_track_count(cell, rules, layer, window)),
        "track_pitch_nm": rules.track_pitch(layer),
    }
