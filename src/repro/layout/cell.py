"""Layout cell: the container the generator produces and the RE validates.

A :class:`LayoutCell` is a flat collection of placed elements with query
helpers.  It intentionally does not implement hierarchy (the SA region the
paper images is a single flat tile repeated along the MAT edge); the GDSII
writer emits it as one structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import LayoutError
from repro.layout.elements import (
    ActiveRegion,
    CapacitorCell,
    Layer,
    Transistor,
    TransistorKind,
    Via,
    Wire,
)
from repro.layout.geometry import Rect


@dataclass
class LayoutCell:
    """A flat layout cell holding transistors, wires, vias and actives."""

    name: str
    transistors: list[Transistor] = field(default_factory=list)
    wires: list[Wire] = field(default_factory=list)
    vias: list[Via] = field(default_factory=list)
    actives: list[ActiveRegion] = field(default_factory=list)
    capacitors: list[CapacitorCell] = field(default_factory=list)
    #: free-form annotations (e.g. ground-truth topology name)
    annotations: dict[str, str] = field(default_factory=dict)

    # -- mutation ------------------------------------------------------------

    def add_transistor(self, t: Transistor) -> None:
        """Add a transistor, enforcing unique names."""
        if any(existing.name == t.name for existing in self.transistors):
            raise LayoutError(f"duplicate transistor name {t.name!r}")
        self.transistors.append(t)

    def add_wire(self, w: Wire) -> None:
        """Add a wire segment."""
        self.wires.append(w)

    def add_via(self, v: Via) -> None:
        """Add a via."""
        self.vias.append(v)

    def add_active(self, a: ActiveRegion) -> None:
        """Add an active region."""
        self.actives.append(a)

    def add_capacitor(self, c: CapacitorCell) -> None:
        """Add a MAT capacitor footprint."""
        self.capacitors.append(c)

    def merge(self, other: "LayoutCell", dx: float = 0.0, dy: float = 0.0) -> None:
        """Merge *other* into self, translating it by ``(dx, dy)``.

        Element names from *other* are prefixed with its cell name to keep
        uniqueness (mirroring how repeated SA tiles are instantiated).
        """
        prefix = f"{other.name}/"
        for t in other.transistors:
            moved = Transistor(
                name=prefix + t.name,
                kind=t.kind,
                channel=t.channel,
                width=t.width,
                length=t.length,
                gate=t.gate.translated(dx, dy),
                active=t.active.translated(dx, dy),
                orientation=t.orientation,
                effective_width=t.effective_width,
                effective_length=t.effective_length,
            )
            self.add_transistor(moved)
        for w in other.wires:
            self.add_wire(
                Wire(prefix + w.name, w.layer, w.shape.translated(dx, dy), w.net)
            )
        for v in other.vias:
            self.add_via(Via(prefix + v.name, v.layer, v.shape.translated(dx, dy), v.net))
        for a in other.actives:
            self.add_active(ActiveRegion(prefix + a.name, a.shape.translated(dx, dy)))
        for c in other.capacitors:
            self.add_capacitor(
                CapacitorCell(prefix + c.name, c.shape.translated(dx, dy), c.row, c.col)
            )

    # -- queries -------------------------------------------------------------

    def bounding_box(self) -> Rect:
        """Bounding box over every element in the cell."""
        shapes = list(self._all_shapes())
        if not shapes:
            raise LayoutError(f"cell {self.name!r} is empty")
        return Rect.bounding(shapes)

    def _all_shapes(self) -> Iterator[Rect]:
        for t in self.transistors:
            yield t.gate
            yield t.active
        for w in self.wires:
            yield w.shape
        for v in self.vias:
            yield v.shape
        for a in self.actives:
            yield a.shape
        for c in self.capacitors:
            yield c.shape

    def shapes_on(self, layer: Layer) -> list[Rect]:
        """All rectangles drawn on *layer*."""
        shapes: list[Rect] = []
        if layer is Layer.GATE:
            shapes.extend(t.gate for t in self.transistors)
        if layer is Layer.ACTIVE:
            shapes.extend(t.active for t in self.transistors)
            shapes.extend(a.shape for a in self.actives)
        if layer is Layer.CAPACITOR:
            shapes.extend(c.shape for c in self.capacitors)
        shapes.extend(w.shape for w in self.wires if w.layer is layer)
        shapes.extend(v.shape for v in self.vias if v.layer is layer)
        return shapes

    def transistors_of_kind(self, kind: TransistorKind) -> list[Transistor]:
        """All transistors of functional class *kind*."""
        return [t for t in self.transistors if t.kind is kind]

    def kinds_present(self) -> set[TransistorKind]:
        """The set of transistor classes placed in this cell."""
        return {t.kind for t in self.transistors}

    def wires_of_net(self, net: str) -> list[Wire]:
        """All wire segments annotated with *net*."""
        return [w for w in self.wires if w.net == net]

    def nets(self) -> set[str]:
        """All non-empty net annotations used by wires and vias."""
        names = {w.net for w in self.wires if w.net}
        names |= {v.net for v in self.vias if v.net}
        return names

    def element_count(self) -> int:
        """Total placed elements."""
        return (
            len(self.transistors)
            + len(self.wires)
            + len(self.vias)
            + len(self.actives)
            + len(self.capacitors)
        )

    def area_on(self, layer: Layer) -> float:
        """Sum of rectangle areas on *layer* (overlaps counted twice)."""
        return sum(r.area for r in self.shapes_on(layer))

    def occupancy(self, layer: Layer, window: Rect) -> float:
        """Fraction of *window* covered by shapes on *layer*.

        Used by the free-space analysis behind I1/I2 (Fig 13): an occupancy
        close to the theoretical maximum for the layer's pitch means there is
        no room for additional bitlines.  Overlapping shapes are clipped to
        the window but not de-overlapped; generator output has disjoint
        shapes per layer, so this is exact for ground truth.
        """
        if window.area == 0:
            raise LayoutError("occupancy window has zero area")
        covered = 0.0
        for shape in self.shapes_on(layer):
            clip = shape.intersection(window)
            if clip is not None:
                covered += clip.area
        return covered / window.area


def stack_cells(name: str, cells: Iterable[LayoutCell], gap: float = 0.0) -> LayoutCell:
    """Stack cells along X (the SA-height direction) into one cell.

    Mirrors the physical arrangement of Fig 10 where SA1 and SA2 sit side by
    side between two MATs.
    """
    combined = LayoutCell(name)
    cursor = 0.0
    for cell in cells:
        box = cell.bounding_box()
        combined.merge(cell, dx=cursor - box.x0, dy=0.0)
        cursor += box.width + gap
    return combined
