"""SVG rendering of layout cells (Fig 10-style visuals).

A dependency-free renderer: every rectangle of a
:class:`~repro.layout.cell.LayoutCell` becomes an SVG ``<rect>`` in its
layer's colour, bottom layers first, with an optional legend and
transistor-name labels.  Useful for eyeballing generated regions,
recovered layouts (via :func:`repro.reveng.export.features_to_cell`) and
documentation figures.
"""

from __future__ import annotations

from pathlib import Path
from xml.sax.saxutils import escape

from repro.errors import LayoutError
from repro.layout.cell import LayoutCell
from repro.layout.elements import Layer

#: Fill colour and opacity per layer, drawn bottom-up.
LAYER_STYLE: dict[Layer, tuple[str, float]] = {
    Layer.ACTIVE: ("#2e7d32", 0.55),
    Layer.GATE: ("#c62828", 0.75),
    Layer.CONTACT: ("#4e342e", 0.9),
    Layer.METAL1: ("#1565c0", 0.6),
    Layer.VIA1: ("#6a1b9a", 0.9),
    Layer.METAL2: ("#ef6c00", 0.45),
    Layer.CAPACITOR: ("#9e9d24", 0.5),
}


def render_svg(
    cell: LayoutCell,
    width_px: int = 1200,
    layers: tuple[Layer, ...] | None = None,
    label_transistors: bool = False,
    legend: bool = True,
) -> str:
    """Render *cell* as an SVG document string.

    ``layers`` restricts what is drawn (default: everything, bottom-up).
    The Y axis is flipped so the layout's +Y points up, as in Fig 10.
    """
    if width_px <= 0:
        raise LayoutError("width must be positive")
    box = cell.bounding_box()
    if box.width == 0 or box.height == 0:
        raise LayoutError("cannot render a degenerate cell")
    scale = width_px / box.width
    height_px = box.height * scale
    legend_px = 22.0 * len(LAYER_STYLE) if legend else 0.0

    def sx(x: float) -> float:
        return (x - box.x0) * scale

    def sy(y: float) -> float:
        return (box.y1 - y) * scale  # flip

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" '
        f'width="{width_px:.0f}" height="{height_px + legend_px:.0f}" '
        f'viewBox="0 0 {width_px:.0f} {height_px + legend_px:.0f}">',
        f'<rect width="100%" height="100%" fill="#fafafa"/>',
        f"<title>{escape(cell.name)}</title>",
    ]

    draw_layers = layers or tuple(Layer)
    for layer in draw_layers:
        colour, opacity = LAYER_STYLE[layer]
        shapes = cell.shapes_on(layer)
        if not shapes:
            continue
        parts.append(f'<g fill="{colour}" fill-opacity="{opacity}">')
        for rect in shapes:
            parts.append(
                f'<rect x="{sx(rect.x0):.2f}" y="{sy(rect.y1):.2f}" '
                f'width="{rect.width * scale:.2f}" '
                f'height="{rect.height * scale:.2f}"/>'
            )
        parts.append("</g>")

    if label_transistors:
        font = max(6.0, 10.0 * scale / 0.2)
        parts.append(f'<g font-family="monospace" font-size="{min(font, 11):.1f}" fill="#111">')
        for t in cell.transistors:
            c = t.gate.center
            parts.append(
                f'<text x="{sx(c.x):.1f}" y="{sy(c.y):.1f}">{escape(t.name)}</text>'
            )
        parts.append("</g>")

    if legend:
        y = height_px + 14.0
        parts.append('<g font-family="monospace" font-size="12" fill="#111">')
        for layer, (colour, opacity) in LAYER_STYLE.items():
            parts.append(
                f'<rect x="8" y="{y - 10:.0f}" width="14" height="12" '
                f'fill="{colour}" fill-opacity="{opacity}"/>'
                f'<text x="28" y="{y:.0f}">{layer.name}</text>'
            )
            y += 22.0
        parts.append("</g>")

    parts.append("</svg>")
    return "\n".join(parts)


def write_svg(cell: LayoutCell, path: str | Path, **kwargs) -> Path:
    """Render *cell* and write the SVG to *path*."""
    path = Path(path)
    path.write_text(render_svg(cell, **kwargs))
    return path
