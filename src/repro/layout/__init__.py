"""Physical-layout substrate.

This package models the physical organisation HiFi-DRAM reverse engineers:
MAT edges, bitlines, the sense-amplifier region with its transistor rows,
common-gate rails, vias and wires, down to a minimal GDSII writer (the paper
open-sources its reverse-engineered layouts in GDSII).

The :mod:`repro.layout.generator` module produces *ground-truth* layouts for
synthetic chips; the imaging and reverse-engineering packages consume them.
"""

from repro.layout.geometry import Point, Rect
from repro.layout.elements import (
    Layer,
    Material,
    Orientation,
    Transistor,
    TransistorKind,
    Wire,
    Via,
    ActiveRegion,
    CapacitorCell,
)
from repro.layout.cell import LayoutCell
from repro.layout.design_rules import DesignRules, check_cell, free_track_count
from repro.layout.generator import (
    TRANSITION_NM_BY_GENERATION,
    DeviceDims,
    SaRegionSpec,
    default_dims,
    generate_sa_region,
    generate_mat_edge,
    generate_chip_layout,
)
from repro.layout.gds import write_gds, read_gds
from repro.layout.svg import render_svg, write_svg

__all__ = [
    "Point",
    "Rect",
    "Layer",
    "Material",
    "Orientation",
    "Transistor",
    "TransistorKind",
    "Wire",
    "Via",
    "ActiveRegion",
    "CapacitorCell",
    "LayoutCell",
    "DesignRules",
    "check_cell",
    "free_track_count",
    "TRANSITION_NM_BY_GENERATION",
    "DeviceDims",
    "SaRegionSpec",
    "default_dims",
    "generate_sa_region",
    "generate_mat_edge",
    "generate_chip_layout",
    "write_gds",
    "read_gds",
    "render_svg",
    "write_svg",
]
