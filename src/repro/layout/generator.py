"""Ground-truth generator for sense-amplifier region layouts.

This module plays the role of the DRAM fab: it produces the physical layout
the imaging + reverse-engineering pipeline has to recover.  The generated
regions follow every organisational fact §V-C reports:

* **open bitline** — BL enters from the left MAT, BLB from the right MAT;
* **two stacked SAs** between each MAT pair ("SA1"/"SA2" along X, Fig 10),
  serving alternating bitline pairs, with mirrored element placement;
* **column transistors first** — the first devices a MAT bitline meets;
* **common gates spanning the region along Y** for precharge, equalizer,
  isolation and offset-cancellation elements (their *length* is what costs
  SA height), while latch transistors have their width along X;
* a **MAT→SA transition** overhead in the bitline direction (318 nm DDR4 /
  275 nm DDR5 on average);
* an **LSA** second-stage latch inside the region (not part of the SA);
* a MAT edge with honeycomb stacked capacitors above the bitlines.

Routing discipline (what makes extraction well-posed):

* METAL1 carries only *horizontal* rails and short pads, on a fixed set of
  sub-rows inside each 8-pitch lane;
* METAL2 carries only *vertical* segments: region-spanning rails (LIO,
  LIOB, VPRE, LA, LAB) and local jumpers between sub-rows;
* GATE (poly) carries vertical region-spanning control rails (PEQ parts,
  ISO, OC, PRE) plus per-lane column gate bars and horizontal latch gates;
* CONTACT joins ACTIVE/GATE to METAL1; VIA1 joins the metals; touching
  same-layer shapes are the same net.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import LayoutError
from repro.layout.cell import LayoutCell
from repro.layout.elements import (
    ActiveRegion,
    CapacitorCell,
    Layer,
    Orientation,
    Transistor,
    TransistorKind,
    Via,
    Wire,
)
from repro.layout.geometry import Rect

#: Average MAT→SA bitline-transition overhead per DRAM generation (§V-C):
#: 318 nm across the DDR4 chips, 275 nm across the DDR5 chips.
TRANSITION_NM_BY_GENERATION: dict[str, float] = {
    "ddr4": 318.0,
    "ddr5": 275.0,
}


@dataclass(frozen=True)
class DeviceDims:
    """Electrical and effective dimensions of one transistor class (nm)."""

    w: float
    l: float  # noqa: E741 - SPICE convention
    eff_w: float = 0.0
    eff_l: float = 0.0

    def __post_init__(self) -> None:
        if self.w <= 0 or self.l <= 0:
            raise LayoutError("device dims must be positive")
        if not self.eff_w:
            object.__setattr__(self, "eff_w", self.w * 1.4)
        if not self.eff_l:
            object.__setattr__(self, "eff_l", self.l * 2.0)


def default_dims(topology: str) -> dict[TransistorKind, DeviceDims]:
    """Generic dimensions used by tests and demos."""
    dims = {
        TransistorKind.NSA: DeviceDims(100.0, 40.0),
        TransistorKind.PSA: DeviceDims(70.0, 40.0),
        TransistorKind.PRECHARGE: DeviceDims(60.0, 45.0),
        TransistorKind.COLUMN: DeviceDims(80.0, 45.0),
        TransistorKind.LSA: DeviceDims(90.0, 45.0),
    }
    if topology == "classic":
        dims[TransistorKind.EQUALIZER] = DeviceDims(60.0, 45.0)
    else:
        dims[TransistorKind.ISOLATION] = DeviceDims(70.0, 50.0)
        dims[TransistorKind.OFFSET_CANCEL] = DeviceDims(60.0, 50.0)
    return dims


@dataclass(frozen=True)
class SaRegionSpec:
    """Parameters of one SA region (the tile between two MATs)."""

    name: str = "sa_region"
    topology: str = "classic"  # "classic" | "ocsa"
    n_pairs: int = 4  #: bitline pairs (lanes); even → balanced SA1/SA2
    feature_nm: float = 18.0
    transition_nm: float = 318.0
    dims: dict[TransistorKind, DeviceDims] = field(default_factory=dict)
    include_lsa: bool = True
    #: adjacent bitline pairs sharing one column-select gate net (Y line)
    column_mux: int = 4
    #: substrate body-tap placement: "none", "lane" (one tap per lane in
    #: the vacant equalizer-row spot of the gate-feed slot) or "edge" (a
    #: tap row in a widened bridge strip above the control rails)
    body_tap: str = "none"

    def __post_init__(self) -> None:
        if self.topology not in ("classic", "ocsa"):
            raise LayoutError(f"unknown topology {self.topology!r}")
        if self.n_pairs < 1:
            raise LayoutError("need at least one bitline pair")
        if self.feature_nm <= 0:
            raise LayoutError("feature size must be positive")
        if self.transition_nm <= 0:
            raise LayoutError("MAT transition must be positive")
        if self.column_mux < 1:
            raise LayoutError("column mux ratio must be at least one pair")
        if self.body_tap not in ("none", "lane", "edge"):
            raise LayoutError(f"unknown body tap placement {self.body_tap!r}")
        if not self.dims:
            object.__setattr__(self, "dims", default_dims(self.topology))

    @classmethod
    def for_generation(cls, generation: str, **overrides) -> "SaRegionSpec":
        """A spec with the generation's average MAT→SA transition preset.

        ``generation`` is ``"ddr4"`` (318 nm) or ``"ddr5"`` (275 nm,
        §V-C); every other field passes through ``overrides``.
        """
        try:
            transition = TRANSITION_NM_BY_GENERATION[generation.lower()]
        except KeyError:
            raise LayoutError(
                f"unknown DRAM generation {generation!r} "
                f"(expected one of {sorted(TRANSITION_NM_BY_GENERATION)})"
            ) from None
        overrides.setdefault("transition_nm", transition)
        return cls(**overrides)

    @property
    def bitline_pitch(self) -> float:
        """M1 bitline pitch: width F + space F."""
        return 2.0 * self.feature_nm

    @property
    def lane_height(self) -> float:
        """One bitline-pair lane: 8 M1 sub-rows at one pitch each."""
        return 8.0 * self.bitline_pitch

    def dim(self, kind: TransistorKind) -> DeviceDims:
        """Dimensions for a transistor class."""
        try:
            return self.dims[kind]
        except KeyError:
            raise LayoutError(f"no dimensions for {kind.value} in {self.name}") from None


# Sub-row indices inside a lane (multiples of the bitline pitch, +0.5).
ROW_BL = 0.5  # BL rail / SABL drain rail
ROW_TAP_BL = 1.5  # tap actives on the BL side (column, precharge, OC2)
ROW_GF_BL = 2.5  # gate-feed rail carrying the BL net to latch gates
ROW_NTAIL = 3.5  # NMOS latch tail rail (LAB)
ROW_EQ = 4.0  # classic equalizer active row
ROW_PTAIL = 4.5  # PMOS latch tail rail (LA)
ROW_GF_BLB = 5.5  # gate-feed rail for BLB
ROW_TAP_BLB = 6.5  # tap actives on the BLB side
ROW_BLB = 7.5  # BLB rail / SABLB drain rail


class _RegionBuilder:
    """Stateful builder for one SA region; produces a LayoutCell."""

    def __init__(self, spec: SaRegionSpec) -> None:
        self.spec = spec
        self.cell = LayoutCell(spec.name)
        self.f = spec.feature_nm
        self.p = spec.bitline_pitch
        self._uid = 0

        # --- X budget of one SA tile -------------------------------------
        f = self.f
        slots: list[tuple[str, float]] = []

        def add(name: str, width: float) -> None:
            slots.append((name, width))

        add("gf", 4 * f)  # bitline gate-feed jumper
        add("col", self._tap_slot_width(TransistorKind.COLUMN))
        add("lio", 6 * f)  # LIO M2 rail
        add("liob", 6 * f)  # LIOB M2 rail
        if spec.topology == "ocsa":
            add("iso", self._rail_slot_width(TransistorKind.ISOLATION))
        for dev in ("n1", "n2"):
            add(dev, self._latch_slot_width(TransistorKind.NSA))
        add("lab", 6 * f)  # LAB M2 rail
        for dev in ("p1", "p2"):
            add(dev, self._latch_slot_width(TransistorKind.PSA))
        add("la", 6 * f)  # LA M2 rail
        add("gfb", 4 * f)  # BLB gate-feed jumper
        if spec.topology == "ocsa":
            # Extra room for the sideways-shifted second OC jumper.
            add("oc", self._rail_slot_width(TransistorKind.OFFSET_CANCEL) + 7 * f)
        if spec.topology == "classic":
            add("eq", self._rail_slot_width(TransistorKind.EQUALIZER))
        add("pre", self._rail_slot_width(TransistorKind.PRECHARGE))
        add("vpre", 6 * f)  # VPRE M2 rail
        if spec.topology == "ocsa":
            add("blbe", 4 * f)  # BLB entry jumper down to its gate-feed row
        if spec.include_lsa:
            add("lsa", self._latch_slot_width(TransistorKind.LSA) * 2 + 6 * f)

        self.slot_x: dict[str, float] = {}
        self.slot_w: dict[str, float] = {}
        cursor = spec.transition_nm
        for name, width in slots:
            self.slot_x[name] = cursor
            self.slot_w[name] = width
            cursor += width + 2 * f
        self.tile_width = cursor
        self.region_width = 2 * self.tile_width + spec.transition_nm

        # Y extents.  An edge tap row needs a wider bridge strip: the taps
        # sit two pitches above the classic PEQ gate bridge so blur never
        # merges the tap actives with the bridge poly.
        self.lanes_height = spec.n_pairs * spec.lane_height
        self.lsa_strip_h = 8 * self.p if spec.include_lsa else 0.0
        self.bridge_strip_h = 4 * self.p if spec.body_tap == "edge" else 2 * self.p
        self.region_height = self.lanes_height + self.lsa_strip_h + self.bridge_strip_h

    # -- slot widths --------------------------------------------------------

    def _tap_slot_width(self, kind: TransistorKind) -> float:
        d = self.spec.dim(kind)
        return d.l + 6 * self.f

    def _rail_slot_width(self, kind: TransistorKind) -> float:
        d = self.spec.dim(kind)
        return d.l + 8 * self.f

    def _latch_slot_width(self, kind: TransistorKind) -> float:
        d = self.spec.dim(kind)
        return d.w + 6 * self.f

    # -- coordinate helpers ---------------------------------------------------

    def _x(self, lane: int, slot: str, offset: float = 0.0) -> float:
        """Centre X of *slot* for the tile that owns *lane* (SA2 mirrored)."""
        base = self.slot_x[slot] + self.slot_w[slot] / 2 + offset
        if lane % 2 == 0:
            return base
        return self.region_width - base

    def row_y(self, lane: int, row: float) -> float:
        """Y of a sub-row in *lane*."""
        return lane * self.spec.lane_height + row * self.p

    def _name(self, prefix: str) -> str:
        self._uid += 1
        return f"{prefix}_{self._uid}"

    # -- drawing primitives ---------------------------------------------------

    def hwire(self, net: str, y: float, x0: float, x1: float, layer: Layer = Layer.METAL1, width: float | None = None) -> None:
        """Horizontal wire centred on *y*."""
        w = width if width is not None else self.f
        self.cell.add_wire(
            Wire(self._name(f"h_{net}"), layer, Rect(min(x0, x1), y - w / 2, max(x0, x1), y + w / 2), net)
        )

    def vwire(self, net: str, x: float, y0: float, y1: float, layer: Layer = Layer.METAL2, width: float | None = None) -> None:
        """Vertical wire centred on *x*."""
        w = width if width is not None else (4 * self.f if layer is Layer.METAL2 else self.f)
        self.cell.add_wire(
            Wire(self._name(f"v_{net}"), layer, Rect(x - w / 2, min(y0, y1), x + w / 2, max(y0, y1)), net)
        )

    def contact(self, net: str, x: float, y: float) -> None:
        """ACTIVE/GATE → M1 contact with its M1 landing pad."""
        s = self.f
        self.cell.add_via(Via(self._name(f"ct_{net}"), Layer.CONTACT, Rect.from_center(x, y, s, s), net))
        self.cell.add_wire(
            Wire(self._name(f"pad_{net}"), Layer.METAL1, Rect.from_center(x, y, 2 * s, s), net)
        )

    def via1(self, net: str, x: float, y: float) -> None:
        """M1 → M2 via with its M1 landing pad."""
        s = 1.5 * self.f
        self.cell.add_via(Via(self._name(f"v1_{net}"), Layer.VIA1, Rect.from_center(x, y, s, s), net))
        self.cell.add_wire(
            Wire(self._name(f"pad_{net}"), Layer.METAL1, Rect.from_center(x, y, 2 * s, self.f), net)
        )

    def jumper(self, net: str, x: float, y0: float, y1: float) -> None:
        """M2 vertical jumper with VIA1 landings at both rows."""
        self.via1(net, x, y0)
        self.via1(net, x, y1)
        self.vwire(net, x, y0, y1, Layer.METAL2, width=2 * self.f)

    # -- device primitives -----------------------------------------------------

    def tap_device(
        self,
        name: str,
        kind: TransistorKind,
        channel: str,
        lane: int,
        x_gate: float,
        tap_row: float,
        rail_row: float,
        rail_net: str,
        other_net: str,
        gate_net: str,
        connect_other: str = "none",  # "none" | "via_to_m2_at" | "jumper_to_row"
        other_x: float | None = None,
        other_row: float | None = None,
        jump_dx: float = 0.0,
    ) -> Transistor:
        """A tap transistor: horizontal active crossing a vertical gate.

        The *inner* terminal (toward the gate-feed side) jumps to the rail
        at *rail_row*; the *outer* terminal carries *other_net* and is
        optionally linked by an M1 row wire to a VIA1 at ``other_x``.
        """
        d = self.spec.dim(kind)
        y = self.row_y(lane, tap_row)
        half = d.l / 2 + 2 * self.f
        mirrored = lane % 2 == 1
        # The *outer* terminal faces the downstream M2 rail (LIO/VPRE sit
        # after this slot in the tile order), i.e. away from the MAT; the
        # *inner* terminal faces the MAT and jumps down to the rail row.
        inner_x = x_gate - half if not mirrored else x_gate + half
        outer_x = x_gate + half if not mirrored else x_gate - half

        active = Rect.from_center(x_gate, y, 2 * half + self.f, d.w)
        self.cell.add_active(ActiveRegion(self._name(f"act_{name}"), active))
        gate = Rect.from_center(x_gate, y, d.l, d.w + 2 * self.f)

        self.contact(rail_net, inner_x, y)
        self.jumper(rail_net, inner_x, y, self.row_y(lane, rail_row))
        self.contact(other_net, outer_x, y)
        if connect_other == "via_to_m2_at":
            assert other_x is not None
            self.hwire(other_net, y, outer_x, other_x)
            self.via1(other_net, other_x, y)
        elif connect_other == "jumper_to_row":
            assert other_row is not None
            # jump_dx moves the vertical jumper sideways (mirrored with the
            # lane) so that two jumpers of one slot never share an X.
            jx = outer_x + (jump_dx if not mirrored else -jump_dx)
            if jump_dx:
                self.hwire(other_net, y, outer_x, jx)
            self.jumper(other_net, jx, y, self.row_y(lane, other_row))

        t = Transistor(
            name=name,
            kind=kind,
            channel=channel,
            width=d.w,
            length=d.l,
            gate=gate,
            active=active,
            orientation=Orientation.WIDTH_ALONG_Y,
            effective_width=d.eff_w,
            effective_length=d.eff_l,
        )
        self.cell.add_transistor(t)
        return t

    def inline_device(
        self,
        name: str,
        kind: TransistorKind,
        channel: str,
        lane: int,
        x_gate: float,
        row: float,
        left_net: str,
        right_net: str,
        gate_net: str,
    ) -> Transistor:
        """An inline transistor splitting a rail (the OCSA ISO devices)."""
        d = self.spec.dim(kind)
        y = self.row_y(lane, row)
        half = d.l / 2 + 2 * self.f
        active = Rect.from_center(x_gate, y, 2 * half + self.f, d.w)
        self.cell.add_active(ActiveRegion(self._name(f"act_{name}"), active))
        gate = Rect.from_center(x_gate, y, d.l, d.w + 2 * self.f)
        mirrored = lane % 2 == 1
        lx, rx = (x_gate - half, x_gate + half) if not mirrored else (x_gate + half, x_gate - half)
        self.contact(left_net, lx, y)
        self.contact(right_net, rx, y)
        t = Transistor(
            name=name,
            kind=kind,
            channel=channel,
            width=d.w,
            length=d.l,
            gate=gate,
            active=active,
            orientation=Orientation.WIDTH_ALONG_Y,
            effective_width=d.eff_w,
            effective_length=d.eff_l,
        )
        self.cell.add_transistor(t)
        return t

    def latch_device(
        self,
        name: str,
        kind: TransistorKind,
        channel: str,
        lane: int,
        x_dev: float,
        drain_row: float,
        tail_row: float,
        drain_net: str,
        tail_net: str,
        gate_net: str,
        gate_feed_row: float,
    ) -> Transistor:
        """A latch transistor: vertical active, horizontal gate bar.

        Drain contacts the drain rail, source the tail rail; the gate bar
        extends sideways to a contact from which an M2 jumper reaches the
        gate-feed rail of the *opposite* bitline.
        """
        d = self.spec.dim(kind)
        y_drain = self.row_y(lane, drain_row)
        y_tail = self.row_y(lane, tail_row)
        active = Rect(
            x_dev - d.w / 2, min(y_drain, y_tail) - self.f, x_dev + d.w / 2, max(y_drain, y_tail) + self.f
        )
        self.cell.add_active(ActiveRegion(self._name(f"act_{name}"), active))

        # Gate bar one pitch from the drain row: that lands on the tap rows
        # (1.5/6.5), which are vacant within the latch slots, and keeps a
        # full pixel-safe pitch of clearance to the gate-feed rails
        # (rows 2.5/5.5) and to both contact pads.
        y_gate = y_drain + self.p if y_drain < y_tail else y_drain - self.p
        mirrored = lane % 2 == 1
        ext = d.w / 2 + 2.5 * self.f
        x_gc = x_dev - ext if not mirrored else x_dev + ext
        # The bar must cross the whole active and extend to the contact.
        if not mirrored:
            gate = Rect(x_gc - self.f, y_gate - d.l / 2, x_dev + d.w / 2 + self.f, y_gate + d.l / 2)
        else:
            gate = Rect(x_dev - d.w / 2 - self.f, y_gate - d.l / 2, x_gc + self.f, y_gate + d.l / 2)

        self.contact(drain_net, x_dev, y_drain)
        self.contact(tail_net, x_dev, y_tail)
        self.contact(gate_net, x_gc, y_gate)
        self.jumper(gate_net, x_gc, y_gate, self.row_y(lane, gate_feed_row))

        t = Transistor(
            name=name,
            kind=kind,
            channel=channel,
            width=d.w,
            length=d.l,
            gate=gate,
            active=active,
            orientation=Orientation.WIDTH_ALONG_X,
            effective_width=d.eff_w,
            effective_length=d.eff_l,
        )
        self.cell.add_transistor(t)
        return t

    # -- region assembly ---------------------------------------------------------

    def build(self) -> LayoutCell:
        """Assemble rails, control lines and every lane's devices."""
        spec = self.spec
        for rail in ("lio", "liob", "vpre", "lab", "la"):
            net = {"lio": "LIO", "liob": "LIOB", "vpre": "VPRE", "lab": "LAB", "la": "LA"}[rail]
            for tile in (0, 1):
                x = self._x(tile, rail)
                self.vwire(net, x, 0.0, self.lanes_height + self.lsa_strip_h, Layer.METAL2)

        # Control poly rails (vertical, region-spanning along Y).
        control_rails: list[tuple[str, str]] = []
        if spec.topology == "ocsa":
            control_rails += [("iso", "ISO"), ("oc", "OC"), ("pre", "PRE")]
        else:
            control_rails += [("eq", "EQ_RAIL"), ("pre", "PRE_RAIL")]
        rail_top = self.lanes_height + self.lsa_strip_h
        for slot, net in control_rails:
            for tile in (0, 1):
                x = self._x(tile, slot)
                self.vwire(net, x, 0.0, rail_top, Layer.GATE, width=self.spec.dim(self._rail_kind(slot)).l)

        # Classic: bridge the precharge and equalizer rails into one PEQ net
        # (their gates are shared across the whole region — inaccuracy I3's
        # physical basis).
        if spec.topology == "classic":
            y_bridge = rail_top + self.p
            for tile in (0, 1):
                x_eq = self._x(tile, "eq")
                x_pre = self._x(tile, "pre")
                self.hwire("PEQ", y_bridge, x_eq, x_pre, Layer.GATE, width=self.f)
                self.vwire("EQ_RAIL", x_eq, rail_top, y_bridge, Layer.GATE, width=self.f)
                self.vwire("PRE_RAIL", x_pre, rail_top, y_bridge, Layer.GATE, width=self.f)

        for lane in range(spec.n_pairs):
            self._build_lane(lane)

        if spec.include_lsa:
            for tile in (0, 1):
                self._build_lsa(tile)

        if spec.body_tap == "edge":
            self._build_edge_taps()

        self.cell.annotations["topology"] = spec.topology
        self.cell.annotations["n_pairs"] = str(spec.n_pairs)
        self.cell.annotations["tile_width_nm"] = f"{self.tile_width:.1f}"
        return self.cell

    def _rail_kind(self, slot: str) -> TransistorKind:
        return {
            "iso": TransistorKind.ISOLATION,
            "oc": TransistorKind.OFFSET_CANCEL,
            "pre": TransistorKind.PRECHARGE,
            "eq": TransistorKind.EQUALIZER,
        }[slot]

    def _build_lane(self, lane: int) -> None:
        spec = self.spec
        f = self.f
        bl, blb = f"BL{lane}", f"BLB{lane}"
        mirrored = lane % 2 == 1
        ocsa = spec.topology == "ocsa"
        # Internal (post-ISO) drain nets.
        dbl = f"SABL{lane}" if ocsa else bl
        dblb = f"SABLB{lane}" if ocsa else blb

        y_bl = self.row_y(lane, ROW_BL)
        y_blb = self.row_y(lane, ROW_BLB)

        # MAT side of this lane's BL (and the opposite side for BLB) —
        # the open-bitline scheme: BL enters from one MAT, BLB from the
        # other.  Offsets passed to _x are mirrored together with the base
        # position, so "toward this lane's MAT" is a negative offset for
        # every lane parity.
        x_mat_bl = 0.0 if not mirrored else self.region_width
        x_mat_blb = self.region_width if not mirrored else 0.0
        pre_edge = self.slot_w["pre"] / 2 + 2 * f
        col_edge = self.slot_w["col"] / 2 + 2 * f
        x_gf = self._x(lane, "gf")
        x_gfb = self._x(lane, "gfb")
        y_gf = self.row_y(lane, ROW_GF_BL)
        y_gfb = self.row_y(lane, ROW_GF_BLB)

        if ocsa:
            x_iso = self._x(lane, "iso")
            gap = spec.dim(TransistorKind.ISOLATION).l / 2 + 2 * f
            oc_edge = self.slot_w["oc"] / 2 + 2 * f
            # BL: from its MAT up to the isolation device.
            self.hwire(bl, y_bl, x_mat_bl, self._x(lane, "iso", -gap))
            # Internal nodes: from the isolation device across the latch
            # drains to the offset-cancellation slot.
            self.hwire(dbl, y_bl, self._x(lane, "iso", gap), self._x(lane, "oc", oc_edge))
            self.hwire(dblb, y_blb, self._x(lane, "iso", gap), self._x(lane, "oc", oc_edge))
            # BLB: from the opposite MAT to the entry jumper, then down to
            # its gate-feed row, which carries it across the latch zone (the
            # drain row there belongs to SABLB).
            x_entry = self._x(lane, "blbe")
            self.hwire(blb, y_blb, x_mat_blb, x_entry)
            self.jumper(blb, x_entry, y_blb, y_gfb)
            self.inline_device(
                f"iso1_l{lane}", TransistorKind.ISOLATION, "nmos", lane,
                x_iso, ROW_BL, bl, dbl, "ISO",
            )
            self.inline_device(
                f"iso2_l{lane}", TransistorKind.ISOLATION, "nmos", lane,
                x_iso, ROW_BLB, blb, dblb, "ISO",
            )
            # iso2's bitline-side terminal reaches BLB via its gate-feed row.
            self.jumper(blb, self._x(lane, "iso", -gap), y_blb, y_gfb)
        else:
            # Classic: plain rails; BLB spans from its MAT all the way to
            # the column slot (its first consumer from that side).
            self.hwire(bl, y_bl, x_mat_bl, self._x(lane, "pre", pre_edge))
            self.hwire(blb, y_blb, x_mat_blb, self._x(lane, "col", -col_edge))

        # Gate-feed rails: horizontal branches of the true bitline nets that
        # carry them to the latch gates (and, on OCSA chips, to the OC outer
        # terminals, the precharge taps, the column tap and the BLB entry).
        latch_lo = self._x(lane, "n1", -(self.slot_w["n1"] / 2 + 2 * f))
        latch_hi = self._x(lane, "p2", +(self.slot_w["p2"] / 2 + 2 * f))
        gf_bl_ends = [x_gf, latch_lo, latch_hi]
        gf_blb_ends = [x_gfb, latch_lo, latch_hi]
        if ocsa:
            oc_lo = self._x(lane, "oc", -(self.slot_w["oc"] / 2 + 2 * f))
            oc_hi = self._x(lane, "oc", +(self.slot_w["oc"] / 2 + 2 * f))
            pre_lo = self._x(lane, "pre", -pre_edge)
            pre_hi = self._x(lane, "pre", +pre_edge)
            gf_bl_ends += [oc_lo, oc_hi, pre_lo, pre_hi]
            gf_blb_ends += [
                oc_lo, oc_hi, pre_lo, pre_hi,
                self._x(lane, "col", -col_edge),
                self._x(lane, "iso", 0.0),
                self._x(lane, "blbe", 2 * f),
            ]
        self.jumper(bl, x_gf, y_bl, y_gf)
        self.hwire(bl, y_gf, min(gf_bl_ends), max(gf_bl_ends))
        if not ocsa:
            self.jumper(blb, x_gfb, y_blb, y_gfb)
        self.hwire(blb, y_gfb, min(gf_blb_ends), max(gf_blb_ends))

        # Column transistors: the first elements after the MAT (§V-C).
        x_col = self._x(lane, "col")
        # Adjacent pairs share a column select in groups of column_mux.
        mux = spec.column_mux
        y_net = f"Y{lane // mux * mux}"
        self.tap_device(
            f"col1_l{lane}", TransistorKind.COLUMN, "nmos", lane,
            x_col, ROW_TAP_BL, ROW_BL, bl, "LIO", y_net,
            connect_other="via_to_m2_at", other_x=self._x(lane, "lio"),
        )
        self.tap_device(
            f"col2_l{lane}", TransistorKind.COLUMN, "nmos", lane,
            x_col, ROW_TAP_BLB, ROW_GF_BLB if ocsa else ROW_BLB, blb, "LIOB", y_net,
            connect_other="via_to_m2_at", other_x=self._x(lane, "liob"),
        )
        # Per-lane column gate bar crossing both tap actives.
        d_col = spec.dim(TransistorKind.COLUMN)
        self.vwire(
            y_net, x_col,
            self.row_y(lane, ROW_TAP_BL) - d_col.w / 2 - 2 * f,
            self.row_y(lane, ROW_TAP_BLB) + d_col.w / 2 + 2 * f,
            Layer.GATE, width=d_col.l,
        )

        # Latch devices.
        for dev, kind, channel, drain_row, tail_row, drain_net, tail_net, gate_net, gf_row in (
            ("n1", TransistorKind.NSA, "nmos", ROW_BL, ROW_NTAIL, dbl, "LAB", blb, ROW_GF_BLB),
            ("n2", TransistorKind.NSA, "nmos", ROW_BLB, ROW_NTAIL, dblb, "LAB", bl, ROW_GF_BL),
            ("p1", TransistorKind.PSA, "pmos", ROW_BL, ROW_PTAIL, dbl, "LA", blb, ROW_GF_BLB),
            ("p2", TransistorKind.PSA, "pmos", ROW_BLB, ROW_PTAIL, dblb, "LA", bl, ROW_GF_BL),
        ):
            self.latch_device(
                f"{dev}_l{lane}", kind, channel, lane, self._x(lane, dev),
                drain_row, tail_row, drain_net, tail_net, gate_net, gf_row,
            )
        # Latch drain rails for the internal nodes run on the drain rows and
        # already exist (ocsa: SABL/SABLB; classic: BL/BLB rails).
        # Tail rails with a via to the LA/LAB M2 rails.
        y_ntail = self.row_y(lane, ROW_NTAIL)
        y_ptail = self.row_y(lane, ROW_PTAIL)
        x_lab = self._x(lane, "lab")
        x_la = self._x(lane, "la")
        self.hwire("LAB", y_ntail, min(self._x(lane, "n1"), x_lab), max(self._x(lane, "n1"), x_lab))
        self.hwire("LAB", y_ntail, min(self._x(lane, "n2"), x_lab), max(self._x(lane, "n2"), x_lab))
        self.via1("LAB", x_lab, y_ntail)
        self.hwire("LA", y_ptail, min(self._x(lane, "p1"), x_la), max(self._x(lane, "p1"), x_la))
        self.hwire("LA", y_ptail, min(self._x(lane, "p2"), x_la), max(self._x(lane, "p2"), x_la))
        self.via1("LA", x_la, y_ptail)

        if spec.topology == "ocsa":
            # Offset-cancellation devices: cross connections BL↔SABLB and
            # BLB↔SABL (ISO∧OC = the equalisation path).  The outer terminal
            # jumps to the *true* bitline rail on the gate-feed row, which
            # carries the pre-ISO bitline net through the latch zone.
            x_oc = self._x(lane, "oc")
            self.tap_device(
                f"oc1_l{lane}", TransistorKind.OFFSET_CANCEL, "nmos", lane,
                x_oc, ROW_TAP_BLB, ROW_BLB, dblb, bl, "OC",
                connect_other="jumper_to_row", other_row=ROW_GF_BL,
            )
            # oc2's outer jumper is shifted sideways: both OC jumpers would
            # otherwise share an X and overlap on METAL2 (shorting BL/BLB).
            self.tap_device(
                f"oc2_l{lane}", TransistorKind.OFFSET_CANCEL, "nmos", lane,
                x_oc, ROW_TAP_BL, ROW_BL, dbl, blb, "OC",
                connect_other="jumper_to_row", other_row=ROW_GF_BLB, jump_dx=5 * f,
            )
        else:
            # Equalizer: BL↔BLB through the EQ rail's channel.
            x_eq = self._x(lane, "eq")
            d_eq = spec.dim(TransistorKind.EQUALIZER)
            y_eq = self.row_y(lane, ROW_EQ)
            half = d_eq.l / 2 + 2 * f
            active = Rect.from_center(x_eq, y_eq, 2 * half + f, d_eq.w)
            self.cell.add_active(ActiveRegion(self._name("act_eq"), active))
            gate = Rect.from_center(x_eq, y_eq, d_eq.l, d_eq.w + 2 * f)
            lx, rx = x_eq - half, x_eq + half
            self.contact(bl, lx, y_eq)
            self.jumper(bl, lx, y_eq, y_bl)
            self.contact(blb, rx, y_eq)
            self.jumper(blb, rx, y_eq, y_blb)
            self.cell.add_transistor(
                Transistor(
                    name=f"eq_l{lane}",
                    kind=TransistorKind.EQUALIZER,
                    channel="nmos",
                    width=d_eq.w,
                    length=d_eq.l,
                    gate=gate,
                    active=active,
                    orientation=Orientation.WIDTH_ALONG_Y,
                    effective_width=d_eq.eff_w,
                    effective_length=d_eq.eff_l,
                )
            )

        # Precharge devices: taps from the true bitlines to VPRE.  On OCSA
        # chips the true bitline past the ISO devices lives on the gate-feed
        # rows, so the precharge tap reaches it there.
        x_pre = self._x(lane, "pre")
        pre_gate = "PRE" if spec.topology == "ocsa" else "PRE_RAIL"
        bl_row = ROW_GF_BL if spec.topology == "ocsa" else ROW_BL
        blb_row = ROW_GF_BLB if spec.topology == "ocsa" else ROW_BLB
        self.tap_device(
            f"pre1_l{lane}", TransistorKind.PRECHARGE, "nmos", lane,
            x_pre, ROW_TAP_BL, bl_row, bl, "VPRE", pre_gate,
            connect_other="via_to_m2_at", other_x=self._x(lane, "vpre"),
        )
        self.tap_device(
            f"pre2_l{lane}", TransistorKind.PRECHARGE, "nmos", lane,
            x_pre, ROW_TAP_BLB, blb_row, blb, "VPRE", pre_gate,
            connect_other="via_to_m2_at", other_x=self._x(lane, "vpre"),
        )

        if spec.body_tap == "lane":
            self._build_lane_tap(lane)

    def _build_lane_tap(self, lane: int) -> None:
        """A substrate tap in the lane's vacant equalizer-row spot.

        The tap is a gate-less active with one contact to an isolated VBB
        pad: extraction sees plain silicon (no gate crossing → no device)
        on a net of its own.  The gate-feed slot keeps the spot ≥1.5
        pitches from the jumper pads above (rows 0.5/2.5) and holds no
        poly of its own, so blur cannot mint a spurious transistor.
        """
        x = self._x(lane, "gf")
        y = self.row_y(lane, ROW_EQ)
        self.cell.add_active(
            ActiveRegion(self._name("act_vbb"), Rect.from_center(x, y, 4 * self.f, 2 * self.f))
        )
        self.contact("VBB", x, y)

    def _build_edge_taps(self) -> None:
        """A substrate tap row across the widened bridge strip.

        One long gate-less active under a VBB METAL1 rail with contacts
        every 16 features — the classic "tap stripe at the array edge".
        Sits two pitches above the PEQ bridge (see ``bridge_strip_h``).
        """
        spec = self.spec
        y = self.lanes_height + self.lsa_strip_h + 3.0 * self.p
        x0 = spec.transition_nm
        x1 = self.region_width - spec.transition_nm
        self.cell.add_active(
            ActiveRegion(self._name("act_vbb"), Rect(x0, y - self.f, x1, y + self.f))
        )
        self.hwire("VBB", y, x0, x1)
        step = 16 * self.f
        x = x0 + 4 * self.f
        while x < x1 - 2 * self.f:
            self.contact("VBB", x, y)
            x += step

    def _build_lsa(self, tile: int) -> None:
        """Second-stage LIO latch (in the region, not part of the SA)."""
        spec = self.spec
        f = self.f
        d = spec.dim(TransistorKind.LSA)
        # Rows are kept ≥1.5 pitches apart: a via pad plus reconstruction
        # blur reaches about one pitch, so anything tighter risks bridging
        # adjacent link rows in the recovered views.
        y0 = self.lanes_height
        y_tail = y0 + 1.0 * self.p
        y_gate1 = y0 + 2.5 * self.p
        y_gate2 = y0 + 4.0 * self.p
        y_drain1 = y0 + 5.5 * self.p
        y_drain2 = y0 + 7.0 * self.p
        x_lio = self._x(tile, "lio")
        x_liob = self._x(tile, "liob")
        x_base = self._x(tile, "lsa")
        off = d.w / 2 + 3 * f
        x1, x2 = x_base - off, x_base + off

        self.hwire("LAB", y_tail, min(x1, x2) - 4 * f, max(x1, x2) + 4 * f)
        self.via1("LAB", x_base, y_tail)

        # The two drain links run on different rows so the LIO/LIOB nets
        # never touch on METAL1.
        for name, x_dev, y_gate, y_drain, gate_rail_x, drain_rail_x in (
            ("lsa1", x1, y_gate1, y_drain1, x_liob, x_lio),
            ("lsa2", x2, y_gate2, y_drain2, x_lio, x_liob),
        ):
            drain_net = "LIO" if drain_rail_x == x_lio else "LIOB"
            gate_net = "LIO" if gate_rail_x == x_lio else "LIOB"
            active = Rect(x_dev - d.w / 2, y_tail - f, x_dev + d.w / 2, y_drain + f)
            self.cell.add_active(ActiveRegion(self._name(f"act_{name}"), active))
            gate = Rect(x_dev - d.w / 2 - 3 * f, y_gate - d.l / 2, x_dev + d.w / 2 + f, y_gate + d.l / 2)
            x_gc = x_dev - d.w / 2 - 2.5 * f
            self.contact(drain_net, x_dev, y_drain)
            self.hwire(drain_net, y_drain, x_dev, drain_rail_x)
            self.via1(drain_net, drain_rail_x, y_drain)
            self.contact("LAB", x_dev, y_tail)
            self.contact(gate_net, x_gc, y_gate)
            self.hwire(gate_net, y_gate, x_gc, gate_rail_x)
            self.via1(gate_net, gate_rail_x, y_gate)
            self.cell.add_transistor(
                Transistor(
                    name=f"{name}_t{tile}",
                    kind=TransistorKind.LSA,
                    channel="nmos",
                    width=d.w,
                    length=d.l,
                    gate=gate,
                    active=active,
                    orientation=Orientation.WIDTH_ALONG_X,
                    effective_width=d.eff_w,
                    effective_length=d.eff_l,
                )
            )


def generate_sa_region(spec: SaRegionSpec | None = None) -> LayoutCell:
    """Generate the ground-truth SA region described by *spec*."""
    builder = _RegionBuilder(spec or SaRegionSpec())
    return builder.build()


def generate_mat_edge(
    name: str = "mat_edge",
    n_bitlines: int = 8,
    n_rows: int = 12,
    feature_nm: float = 18.0,
    side: str = "left",
) -> LayoutCell:
    """Generate a MAT edge: bitlines below honeycomb stacked capacitors.

    The honeycomb (hexagonal) packing — capacitors in odd rows offset by
    half a pitch — is what Fig 7a shows for C5 and what the ROI search uses
    to tell MAT from logic (capacitor texture vs transistor texture).
    """
    cell = LayoutCell(name)
    p = 2.0 * feature_nm
    cap = 1.6 * feature_nm
    row_pitch = 3.0 * feature_nm
    width = n_rows * row_pitch + 2 * feature_nm
    for i in range(n_bitlines):
        y = (i + 0.5) * p
        cell.add_wire(
            Wire(f"bl_{i}", Layer.METAL1, Rect(0.0, y - feature_nm / 2, width, y + feature_nm / 2), f"MATBL{i}")
        )
    for row in range(n_rows):
        x = (row + 0.5) * row_pitch
        offset = p / 2 if row % 2 else 0.0
        for i in range(n_bitlines):
            y = (i + 0.5) * p + offset
            if y > n_bitlines * p:
                continue
            cell.add_capacitor(
                CapacitorCell(f"cap_{row}_{i}", Rect.from_center(x, y, cap, cap), row, i)
            )
    cell.annotations["kind"] = "mat"
    cell.annotations["side"] = side
    return cell


def generate_row_driver_strip(
    name: str = "row_drivers",
    n_drivers: int = 8,
    feature_nm: float = 18.0,
    height_nm: float | None = None,
) -> LayoutCell:
    """A row-driver strip: the *narrower* logic region flanking a MAT.

    §IV-A uses the width asymmetry to identify the SA side: "typically row
    drivers are smaller than SA", so the blind search labels the wider
    logic span as the sense amplifiers (W2 > W1, Fig 6).  The strip is a
    simple column of wordline drivers: one driver transistor per wordline
    with its gate bar and output stub.
    """
    cell = LayoutCell(name)
    f = feature_nm
    pitch = 8.0 * f
    width = height_nm if height_nm is not None else 16.0 * f
    for i in range(n_drivers):
        y = (i + 0.5) * pitch
        active = Rect.from_center(width / 2, y, 8 * f, 3 * f)
        gate = Rect.from_center(width / 2, y, 2 * f, 5 * f)
        cell.add_active(ActiveRegion(f"rd_act_{i}", active))
        cell.add_transistor(
            Transistor(
                name=f"rd_{i}",
                kind=TransistorKind.MAT_ACCESS,
                channel="nmos",
                width=3 * f,
                length=2 * f,
                gate=gate,
                active=active,
                orientation=Orientation.WIDTH_ALONG_Y,
            )
        )
        # Wordline output stub toward the MAT.
        cell.add_wire(
            Wire(f"rd_wl_{i}", Layer.GATE, Rect(width / 2 + 4 * f, y - f / 2, width, y + f / 2), f"WL{i}")
        )
    cell.annotations["kind"] = "row_drivers"
    return cell


def generate_chip_layout(
    spec: SaRegionSpec | None = None,
    mat_rows: int = 10,
    include_row_drivers: bool = False,
) -> LayoutCell:
    """A full imaging target: [RD] MAT | SA region | MAT [RD] along x.

    This is what the blind ROI identification of Fig 6 scans across: logic
    (transistor morphology) bounded by capacitor texture.  With
    ``include_row_drivers`` the outer edges carry narrow row-driver strips,
    so the search sees two logic widths and must pick the wider one (the
    SA region) — the W1/W2 decision of Fig 6.
    """
    spec = spec or SaRegionSpec()
    region = generate_sa_region(spec)
    region_box = region.bounding_box()
    n_bl = max(4, spec.n_pairs * 4)
    left = generate_mat_edge("mat_left", n_bitlines=n_bl, n_rows=mat_rows, feature_nm=spec.feature_nm, side="left")
    right = generate_mat_edge("mat_right", n_bitlines=n_bl, n_rows=mat_rows, feature_nm=spec.feature_nm, side="right")
    left_box = left.bounding_box()

    chip = LayoutCell(f"{spec.name}_with_mats")
    cursor = 0.0
    rd_width = 0.0
    if include_row_drivers:
        strip_h = left_box.height
        n_drv = max(2, int(strip_h / (8.0 * spec.feature_nm)))
        rd_left = generate_row_driver_strip(
            "rd_left", n_drivers=n_drv, feature_nm=spec.feature_nm
        )
        rd_width = rd_left.bounding_box().width
        chip.merge(rd_left, dx=0.0, dy=0.0)
        cursor = rd_width + 2 * spec.feature_nm
    chip.merge(left, dx=cursor, dy=0.0)
    chip.merge(region, dx=cursor + left_box.width - region_box.x0, dy=0.0)
    chip.merge(right, dx=cursor + left_box.width + region_box.width, dy=0.0)
    if include_row_drivers:
        rd_right = generate_row_driver_strip(
            "rd_right", n_drivers=max(2, int(left_box.height / (8.0 * spec.feature_nm))),
            feature_nm=spec.feature_nm,
        )
        chip.merge(rd_right, dx=cursor + 2 * left_box.width + region_box.width + 2 * spec.feature_nm, dy=0.0)
    chip.annotations.update(region.annotations)
    chip.annotations["mat_width_nm"] = f"{left_box.width:.1f}"
    chip.annotations["region_offset_nm"] = f"{cursor + left_box.width:.1f}"
    chip.annotations["region_width_nm"] = f"{region_box.width:.1f}"
    chip.annotations["row_driver_width_nm"] = f"{rd_width:.1f}"
    return chip
