"""The §VI-D experiments, runnable against both SA topologies.

Out-of-spec research implicitly calibrated on the classic SA breaks on
OCSA chips in two documented ways:

1. **Charge sharing is delayed** — a truncated activation window that
   reliably dumps the cell on a classic chip falls *before* charge sharing
   on an OCSA chip (the offset-cancellation phase runs first), so nothing
   happens;
2. **majority-style multi-row tricks** (ACT–PRE–ACT with violated
   timings) need the first activation to have reached charge sharing
   before the second row opens — a window that shifts and shrinks on OCSA
   chips.

Each experiment runs the same command trace against a classic bank and an
OCSA bank and reports both outcomes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuits.topologies import SaTopology
from repro.dram.bank import Bank, CellState
from repro.dram.commands import act_pre_act, truncated_activation
from repro.dram.timing import derive_timings


@dataclass(frozen=True)
class OutOfSpecResult:
    """Outcome of one experiment on both topologies."""

    experiment: str
    parameter_ns: float
    classic_outcome: str
    ocsa_outcome: str

    @property
    def diverges(self) -> bool:
        """True when the same trace behaves differently per topology."""
        return self.classic_outcome != self.ocsa_outcome


def _banks() -> tuple[Bank, Bank]:
    return (
        Bank(topology=SaTopology.CLASSIC),
        Bank(topology=SaTopology.OCSA),
    )


def truncated_activation_experiment(act_to_pre_ns: float, row: int = 7) -> OutOfSpecResult:
    """ACT→PRE after *act_to_pre_ns*: what state is the row left in?

    The §VI-D retention/characterization primitive.  Outcomes are the
    :class:`~repro.dram.bank.CellState` names.
    """
    classic, ocsa = _banks()
    trace = truncated_activation(row, act_to_pre_ns)
    out_c = classic.execute(trace).row_states.get(row, CellState.UNTOUCHED)
    out_o = ocsa.execute(trace).row_states.get(row, CellState.UNTOUCHED)
    return OutOfSpecResult(
        experiment="truncated_activation",
        parameter_ns=act_to_pre_ns,
        classic_outcome=out_c.value,
        ocsa_outcome=out_o.value,
    )


def multi_row_activation_experiment(
    t1_ns: float, t2_ns: float = 1.0, row_a: int = 3, row_b: int = 12
) -> OutOfSpecResult:
    """ACT(A)–PRE–ACT(B) with violated t1/t2: did the rows charge-share?

    Succeeding requires the first activation to have *reached* charge
    sharing before the early precharge — the window the OCSA delays.
    """
    classic, ocsa = _banks()
    trace = act_pre_act(row_a, row_b, t1_ns, t2_ns)

    def outcome(bank: Bank) -> str:
        result = bank.execute(trace)
        return "rows_shared" if result.shared_rows else "no_sharing"

    return OutOfSpecResult(
        experiment="multi_row_activation",
        parameter_ns=t1_ns,
        classic_outcome=outcome(classic),
        ocsa_outcome=outcome(ocsa),
    )


def charge_sharing_window() -> dict[str, float]:
    """The t1 windows in which multi-row tricks work, per topology.

    Returns each topology's charge-sharing onset (the minimum viable t1)
    — the number an out-of-spec experimenter must recalibrate per vendor.
    """
    classic = derive_timings(SaTopology.CLASSIC)
    ocsa = derive_timings(SaTopology.OCSA)
    return {
        "classic_min_t1_ns": classic.t_charge_share,
        "ocsa_min_t1_ns": ocsa.t_charge_share,
        "hazard_window_ns": ocsa.t_charge_share - classic.t_charge_share,
    }


def divergence_sweep(t1_values_ns: list[float] | None = None) -> list[OutOfSpecResult]:
    """Sweep the truncation interval and collect per-topology outcomes."""
    if t1_values_ns is None:
        classic = derive_timings(SaTopology.CLASSIC)
        ocsa = derive_timings(SaTopology.OCSA)
        lo = 0.5 * classic.t_charge_share
        hi = 1.2 * ocsa.t_ras
        t1_values_ns = list(np.linspace(lo, hi, 12))
    return [truncated_activation_experiment(t1) for t1 in t1_values_ns]
