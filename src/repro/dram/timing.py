"""DRAM timing parameters, derived from the analog SA simulations.

JEDEC specifies minimum command distances (tRCD, tRAS, tRP...).  What the
silicon actually *needs* depends on the SA: the OCSA inserts the offset
cancellation before charge sharing and the pre-sensing before restore, so
its internally-safe activation milestones sit later than the classic SA's
— while the DIMM advertises the same JEDEC numbers.  That gap is exactly
why §VI-D warns that out-of-spec experiments calibrated on classic-SA
assumptions misbehave on OCSA chips.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.circuits.topologies import SaTopology
from repro.errors import EvaluationError


@dataclass(frozen=True)
class TimingParameters:
    """Activation-path timing milestones (ns).

    ``t_charge_share`` — ACT → the cell actually shares charge;
    ``t_rcd`` — ACT → data sensed (column access safe);
    ``t_ras`` — ACT → cell fully restored (precharge safe);
    ``t_rp`` — PRE → bitlines back at Vpre (next ACT safe).
    """

    name: str
    t_charge_share: float
    t_rcd: float
    t_ras: float
    t_rp: float

    def __post_init__(self) -> None:
        if not 0 < self.t_charge_share <= self.t_rcd <= self.t_ras:
            raise EvaluationError(f"inconsistent timing milestones in {self.name}")
        if self.t_rp <= 0:
            raise EvaluationError("t_rp must be positive")

    @property
    def t_rc(self) -> float:
        """Row cycle: ACT → next ACT to the same bank."""
        return self.t_ras + self.t_rp


#: A JEDEC-flavoured DDR4 reference set (what the DIMM label promises).
JEDEC_DDR4 = TimingParameters(
    name="JEDEC-DDR4-3200AA", t_charge_share=1.0, t_rcd=13.75, t_ras=32.0, t_rp=13.75
)


@lru_cache(maxsize=8)
def derive_timings(topology: SaTopology, safety_margin: float = 1.15) -> TimingParameters:
    """Derive the silicon-true milestones from the analog testbench.

    Runs one activation per topology and measures when charge sharing
    starts, when the bitlines are sensed, and when the cell is restored;
    a safety margin covers process corners.  Cached: the analog run costs
    a few hundred milliseconds.
    """
    from repro.analog.metrics import restore_latency_ns, sensing_latency_ns
    from repro.analog.sense_amp import SenseAmpBench, SenseAmpConfig, charge_sharing_onset

    bench = SenseAmpBench(SenseAmpConfig(topology=topology))
    outcome = bench.run(data=1)
    # The simulated timeline starts at the ACT command (t = 0); the
    # wordline rises only after the topology's internal preamble — on OCSA
    # chips, after the offset-cancellation phase.  Command-level milestones
    # are therefore ACT-relative: the wordline offset is *included*, which
    # is exactly the §VI-D delay.
    t_wl = outcome.timeline.event("charge_sharing").start_ns
    onset = charge_sharing_onset(topology)
    sensing = t_wl + sensing_latency_ns(outcome)
    restore = t_wl + restore_latency_ns(outcome)
    precharge = outcome.timeline.event("precharge_equalize")
    t_rp = (precharge.end_ns - precharge.start_ns) * 0.8

    return TimingParameters(
        name=f"derived-{topology.value}",
        t_charge_share=max(0.1, onset) * safety_margin,
        t_rcd=sensing * safety_margin,
        t_ras=restore * safety_margin,
        t_rp=t_rp * safety_margin,
    )


def timing_gap(topology_a: SaTopology = SaTopology.CLASSIC,
               topology_b: SaTopology = SaTopology.OCSA) -> dict[str, float]:
    """Milestone deltas between two topologies (the §VI-D hazard sizes)."""
    a = derive_timings(topology_a)
    b = derive_timings(topology_b)
    return {
        "charge_share_delta_ns": b.t_charge_share - a.t_charge_share,
        "rcd_delta_ns": b.t_rcd - a.t_rcd,
        "ras_delta_ns": b.t_ras - a.t_ras,
    }
