"""Bank state machine with topology-aware activation outcomes.

Executes a :class:`~repro.dram.commands.CommandTrace` against the timing
milestones of the bank's SA topology (see
:mod:`repro.dram.timing`).  In ``enforce=False`` mode — the §VI-D setting —
illegal command distances are *recorded* rather than rejected, and their
electrical consequences follow the topology's milestones:

* PRE before ``t_charge_share``: the cell never connected — data intact,
  no sharing happened (on OCSA chips this window is several ns wide!);
* PRE after sharing but before ``t_rcd``: the cell charge was dumped on
  the bitline and never re-latched — data **corrupted**;
* PRE after sensing but before ``t_ras``: latched correctly but only
  partially restored — data weak (reads OK, retention degraded);
* PRE after ``t_ras``: the legal case.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.circuits.topologies import SaTopology
from repro.dram.commands import Command, CommandTrace, DramCommand
from repro.dram.timing import TimingParameters, derive_timings
from repro.errors import EvaluationError


class BankState(enum.Enum):
    """Row-buffer state."""

    IDLE = "idle"  #: precharged, no open row
    ACTIVE = "active"  #: a row is open
    PRECHARGING = "precharging"


class CellState(enum.Enum):
    """Qualitative charge state of a row's cells after commands touched it."""

    RESTORED = "restored"  #: full level
    WEAK = "weak"  #: latched but restore cut short
    CORRUPTED = "corrupted"  #: charge shared and never re-latched
    UNTOUCHED = "untouched"  #: activation ended before charge sharing


@dataclass(frozen=True)
class TimingViolation:
    """A recorded sub-spec command distance."""

    time_ns: float
    command: Command
    parameter: str
    required_ns: float
    actual_ns: float

    def describe(self) -> str:
        """Human-readable one-liner."""
        return (
            f"t={self.time_ns:.1f}ns {self.command.value}: {self.parameter} "
            f"{self.actual_ns:.1f} < {self.required_ns:.1f} ns"
        )


@dataclass
class ExecutionResult:
    """Outcome of running a trace."""

    trace_name: str
    row_states: dict[int, CellState]
    violations: list[TimingViolation]
    reads: list[tuple[float, int, bool]]  #: (time, row, data_valid)
    final_state: BankState
    shared_rows: list[list[int]] = field(default_factory=list)
    #: groups whose majority actually latched and wrote back
    computed_rows: list[list[int]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no timing was violated."""
        return not self.violations


#: Comparison slack (ns): commands placed exactly at a milestone are legal.
EPS_NS = 1e-6


class Bank:
    """One DRAM bank over a given SA topology.

    Rows can carry data (:meth:`load_row`), in which case multi-row charge
    sharing computes: when a shared group's final activation reaches the
    sensing milestone, the SAs latch the **bitwise majority** of the
    participating rows and write it back into all of them — the AMBIT /
    ComputeDRAM primitive.  On OCSA banks the same command timings often
    never reach charge sharing, so the data stays put (§VI-D).
    """

    def __init__(
        self,
        topology: SaTopology = SaTopology.CLASSIC,
        timings: TimingParameters | None = None,
        rows: int = 65536,
        enforce: bool = False,
    ) -> None:
        self.topology = topology
        self.timings = timings or derive_timings(topology)
        self.rows = rows
        self.enforce = enforce
        self._data: dict[int, tuple[int, ...]] = {}

    # -- row data ---------------------------------------------------------------

    def load_row(self, row: int, bits: tuple[int, ...] | list[int]) -> None:
        """Store a bit pattern in *row* (a write through the normal path)."""
        if not 0 <= row < self.rows:
            raise EvaluationError(f"row out of range: {row}")
        if any(b not in (0, 1) for b in bits):
            raise EvaluationError("bits must be 0/1")
        self._data[row] = tuple(int(b) for b in bits)

    def read_row(self, row: int) -> tuple[int, ...] | None:
        """Current bit pattern of *row* (None when never loaded)."""
        return self._data.get(row)

    def _latch_majority(self, group: list[int]) -> bool:
        """Latch the bitwise majority of *group* back into every row.

        Returns False (and leaves data untouched) when any participating
        row has no data or the widths disagree — the physical analogue is
        simply undefined charge, which we refuse to invent.
        """
        patterns = [self._data.get(r) for r in group]
        if any(p is None for p in patterns):
            return False
        width = len(patterns[0])  # type: ignore[arg-type]
        if any(len(p) != width for p in patterns):  # type: ignore[arg-type]
            return False
        result = tuple(
            1 if sum(p[i] for p in patterns) * 2 > len(patterns) else 0  # type: ignore[index]
            for i in range(width)
        )
        for r in group:
            self._data[r] = result
        return True

    # -- execution -------------------------------------------------------------

    def execute(self, trace: CommandTrace) -> ExecutionResult:
        """Run *trace* from a precharged-idle state."""
        timings = self.timings
        state = BankState.IDLE
        open_row: int | None = None
        t_act = -1e18
        t_pre = -1e18
        pre_completed = True
        activation_resolved = True
        row_states: dict[int, CellState] = {}
        violations: list[TimingViolation] = []
        reads: list[tuple[float, int, bool]] = []
        shared_groups: list[list[int]] = []
        computed_groups: list[list[int]] = []
        bitline_rows: list[int] = []  # rows whose charge is on the bitlines

        def violate(cmd: DramCommand, parameter: str, required: float, actual: float) -> None:
            violation = TimingViolation(cmd.time_ns, cmd.command, parameter, required, actual)
            if self.enforce:
                raise EvaluationError(f"timing violated: {violation.describe()}")
            violations.append(violation)

        def resolve_activation(now: float) -> None:
            """Decide what the interval since ACT did to the open row."""
            nonlocal activation_resolved
            if activation_resolved or open_row is None:
                return
            dwell = now - t_act
            if dwell < timings.t_charge_share - EPS_NS:
                row_states[open_row] = CellState.UNTOUCHED
            elif dwell < timings.t_rcd - EPS_NS:
                row_states[open_row] = CellState.CORRUPTED
            elif dwell < timings.t_ras - EPS_NS:
                row_states[open_row] = CellState.WEAK
            else:
                row_states[open_row] = CellState.RESTORED
            # The in-DRAM compute case: the SAs sensed a *shared* group, so
            # what they latch — and write back into every open row — is the
            # bitwise majority of the group's charges.
            if dwell >= timings.t_rcd - EPS_NS and len(bitline_rows) >= 2:
                if self._latch_majority(list(bitline_rows)):
                    computed_groups.append(list(bitline_rows))
            activation_resolved = True

        for cmd in trace:
            if cmd.command is Command.ACT:
                if cmd.row is None or not 0 <= cmd.row < self.rows:
                    raise EvaluationError(f"row out of range: {cmd.row}")
                if state is BankState.ACTIVE:
                    violate(cmd, "ACT while row open", timings.t_rc, cmd.time_ns - t_act)
                    resolve_activation(cmd.time_ns)
                elif cmd.time_ns - t_pre < timings.t_rp - EPS_NS:
                    violate(cmd, "tRP", timings.t_rp, cmd.time_ns - t_pre)
                # Multi-row charge sharing: the precharge never finished and
                # the previous row's charge still rides the bitlines — but
                # only if that activation actually *reached* charge sharing.
                if not pre_completed and bitline_rows:
                    previous = row_states.get(bitline_rows[-1])
                    if previous not in (CellState.UNTOUCHED, None):
                        shared_groups.append(bitline_rows + [cmd.row])
                    else:
                        bitline_rows.clear()
                else:
                    bitline_rows.clear()
                bitline_rows.append(cmd.row)
                state = BankState.ACTIVE
                open_row = cmd.row
                t_act = cmd.time_ns
                activation_resolved = False

            elif cmd.command is Command.PRE:
                if state is BankState.ACTIVE:
                    dwell = cmd.time_ns - t_act
                    if dwell < timings.t_ras - EPS_NS:
                        violate(cmd, "tRAS", timings.t_ras, dwell)
                    resolve_activation(cmd.time_ns)
                state = BankState.IDLE
                open_row = None
                t_pre = cmd.time_ns
                # A precharge shorter than tRP (because a new ACT lands too
                # early) is resolved at that ACT; optimistically mark it
                # complete and let the next ACT's tRP check decide.
                pre_completed = False

            elif cmd.command in (Command.RD, Command.WR):
                if state is not BankState.ACTIVE or open_row is None:
                    violate(cmd, "column access with no open row", 0.0, -1.0)
                    continue
                dwell = cmd.time_ns - t_act
                valid = dwell >= timings.t_rcd - EPS_NS
                if not valid:
                    violate(cmd, "tRCD", timings.t_rcd, dwell)
                reads.append((cmd.time_ns, open_row, valid))
                if cmd.command is Command.WR and valid:
                    row_states[open_row] = CellState.RESTORED
                    activation_resolved = True

            elif cmd.command is Command.NOP:
                continue

        # Trace ended: resolve a still-open activation as fully settled.
        if state is BankState.ACTIVE:
            resolve_activation(t_act + timings.t_ras + 1.0)
        # A trailing precharge completes if nothing interrupted it.
        if state is BankState.IDLE:
            pre_completed = True

        return ExecutionResult(
            trace_name=trace.name,
            row_states=row_states,
            violations=violations,
            reads=reads,
            final_state=state,
            shared_rows=shared_groups,
            computed_rows=computed_groups,
        )
