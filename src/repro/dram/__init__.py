"""DRAM command-level substrate.

§VI-D discusses *out-of-spec DRAM experiments*: research that issues
command sequences violating the JEDEC timings — for in-DRAM compute
(ComputeDRAM-style majority operations), reverse engineering, or
characterization — and implicitly assumes the classic SA's behaviour.
This package provides the command level those experiments live at:

* :mod:`repro.dram.timing` — timing parameters, including sets *derived
  from the analog simulations* of each SA topology (tRCD/tRAS shift on
  OCSA chips because charge sharing is delayed and restore starts later);
* :mod:`repro.dram.commands` — the command vocabulary and traces;
* :mod:`repro.dram.bank` — a bank state machine that executes traces,
  checks (or deliberately ignores) timings, and models what happens to the
  cells electrically, topology-aware;
* :mod:`repro.dram.out_of_spec` — the §VI-D experiments: truncated
  activations, skipped precharges and multi-row charge sharing, run against
  classic and OCSA banks side by side.
"""

from repro.dram.timing import TimingParameters, derive_timings, JEDEC_DDR4
from repro.dram.commands import Command, DramCommand, CommandTrace
from repro.dram.bank import Bank, BankState, CellState, TimingViolation
from repro.dram.out_of_spec import (
    OutOfSpecResult,
    truncated_activation_experiment,
    multi_row_activation_experiment,
    charge_sharing_window,
)
from repro.dram.controller import (
    Controller,
    Request,
    row_hit_stream,
    row_miss_stream,
    throughput_comparison,
)
from repro.dram.compute import (
    ComputeResult,
    in_dram_and,
    in_dram_majority,
    in_dram_or,
)

__all__ = [
    "TimingParameters",
    "derive_timings",
    "JEDEC_DDR4",
    "Command",
    "DramCommand",
    "CommandTrace",
    "Bank",
    "BankState",
    "CellState",
    "TimingViolation",
    "OutOfSpecResult",
    "truncated_activation_experiment",
    "multi_row_activation_experiment",
    "charge_sharing_window",
    "ComputeResult",
    "in_dram_and",
    "in_dram_majority",
    "in_dram_or",
    "Controller",
    "Request",
    "row_hit_stream",
    "row_miss_stream",
    "throughput_comparison",
]
