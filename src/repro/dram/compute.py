"""In-DRAM bitwise compute via multi-row charge sharing.

The AMBIT/ComputeDRAM primitive the §VI-B PIM papers build on: activate
three rows together and the sense amplifiers latch the bitwise majority,
which implements AND/OR with a preset control row:

* ``AND(a, b) = MAJ(a, b, 0)``
* ``OR(a, b)  = MAJ(a, b, 1)``

On commodity chips this needs the violated ACT–PRE–ACT sequence; whether
it *works* depends on the SA topology's charge-sharing window — which is
exactly what I5 and §VI-D say the PIM papers never checked.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuits.topologies import SaTopology
from repro.dram.bank import Bank
from repro.dram.commands import Command, CommandTrace
from repro.dram.timing import derive_timings
from repro.errors import EvaluationError


@dataclass(frozen=True)
class ComputeResult:
    """Outcome of an attempted in-DRAM operation."""

    operation: str
    topology: SaTopology
    succeeded: bool
    result_bits: tuple[int, ...] | None
    expected_bits: tuple[int, ...]

    @property
    def correct(self) -> bool:
        """True when the operation latched the expected value."""
        return self.succeeded and self.result_bits == self.expected_bits


def triple_row_trace(rows: tuple[int, int, int], t1_ns: float, settle_ns: float) -> CommandTrace:
    """ACT–PRE–ACT–PRE–ACT chaining that opens three rows together.

    The early precharges never complete, so each ACT adds its row to the
    bitline charge; the final activation is given *settle_ns* to sense and
    restore the majority.
    """
    a, b, c = rows
    trace = CommandTrace(f"maj3_{a}_{b}_{c}")
    t = 0.0
    trace.at(t, Command.ACT, row=a)
    t += t1_ns
    trace.at(t, Command.PRE)
    t += 1.0
    trace.at(t, Command.ACT, row=b)
    t += t1_ns
    trace.at(t, Command.PRE)
    t += 1.0
    trace.at(t, Command.ACT, row=c)
    trace.at(t + settle_ns, Command.PRE)
    return trace


def in_dram_majority(
    bank: Bank,
    patterns: tuple[tuple[int, ...], tuple[int, ...], tuple[int, ...]],
    t1_ns: float | None = None,
    rows: tuple[int, int, int] = (8, 16, 24),
) -> ComputeResult:
    """Attempt MAJ(a, b, c) on *bank* and report what actually latched.

    ``t1_ns`` defaults to just past the *classic* charge-sharing onset —
    the calibration a researcher without HiFi-DRAM data would ship.
    """
    a, b, c = patterns
    if not len(a) == len(b) == len(c):
        raise EvaluationError("pattern widths differ")
    if t1_ns is None:
        t1_ns = derive_timings(SaTopology.CLASSIC).t_charge_share * 1.5
    for row, bits in zip(rows, patterns):
        bank.load_row(row, bits)

    settle = bank.timings.t_ras + 1.0
    result = bank.execute(triple_row_trace(rows, t1_ns, settle))
    succeeded = bool(result.computed_rows) and set(rows) <= set(
        result.computed_rows[-1]
    )
    expected = tuple(
        1 if (a[i] + b[i] + c[i]) >= 2 else 0 for i in range(len(a))
    )
    return ComputeResult(
        operation="MAJ",
        topology=bank.topology,
        succeeded=succeeded,
        result_bits=bank.read_row(rows[0]) if succeeded else None,
        expected_bits=expected,
    )


def in_dram_and(
    bank: Bank, a: tuple[int, ...], b: tuple[int, ...], t1_ns: float | None = None
) -> ComputeResult:
    """AND via MAJ(a, b, all-zeros control row)."""
    zeros = tuple(0 for _ in a)
    result = in_dram_majority(bank, (a, b, zeros), t1_ns=t1_ns)
    return ComputeResult(
        operation="AND",
        topology=result.topology,
        succeeded=result.succeeded,
        result_bits=result.result_bits,
        expected_bits=tuple(x & y for x, y in zip(a, b)),
    )


def in_dram_or(
    bank: Bank, a: tuple[int, ...], b: tuple[int, ...], t1_ns: float | None = None
) -> ComputeResult:
    """OR via MAJ(a, b, all-ones control row)."""
    ones = tuple(1 for _ in a)
    result = in_dram_majority(bank, (a, b, ones), t1_ns=t1_ns)
    return ComputeResult(
        operation="OR",
        topology=result.topology,
        succeeded=result.succeeded,
        result_bits=result.result_bits,
        expected_bits=tuple(x | y for x, y in zip(a, b)),
    )
