"""DRAM commands and command traces.

The vocabulary of §VI-D experiments: timed ACT/PRE/RD/WR sequences, some
deliberately violating the minimum command distances.  A
:class:`CommandTrace` is the unit a :class:`~repro.dram.bank.Bank`
executes; builders for the common (and the common *illegal*) patterns are
provided.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import EvaluationError


class Command(enum.Enum):
    """DDR command subset relevant to the SA region."""

    ACT = "ACT"
    PRE = "PRE"
    RD = "RD"
    WR = "WR"
    NOP = "NOP"


@dataclass(frozen=True)
class DramCommand:
    """One timed command."""

    time_ns: float
    command: Command
    row: int | None = None
    col: int | None = None

    def __post_init__(self) -> None:
        if self.command is Command.ACT and self.row is None:
            raise EvaluationError("ACT needs a row")
        if self.command in (Command.RD, Command.WR) and self.col is None:
            raise EvaluationError(f"{self.command.value} needs a column")


@dataclass
class CommandTrace:
    """A time-ordered command sequence for one bank."""

    name: str
    commands: list[DramCommand] = field(default_factory=list)

    def at(self, time_ns: float, command: Command, row: int | None = None, col: int | None = None) -> "CommandTrace":
        """Append a command (fluent)."""
        self.commands.append(DramCommand(time_ns, command, row, col))
        return self

    def __iter__(self) -> Iterator[DramCommand]:
        return iter(sorted(self.commands, key=lambda c: c.time_ns))

    def __len__(self) -> int:
        return len(self.commands)

    def duration_ns(self) -> float:
        """Time of the last command."""
        return max((c.time_ns for c in self.commands), default=0.0)


def legal_read(row: int, col: int, timings, start_ns: float = 0.0) -> CommandTrace:
    """ACT → RD → PRE honouring the given timing parameters."""
    trace = CommandTrace(f"read_r{row}c{col}")
    t = start_ns
    trace.at(t, Command.ACT, row=row)
    trace.at(t + timings.t_rcd, Command.RD, row=row, col=col)
    trace.at(t + timings.t_ras, Command.PRE)
    return trace


def truncated_activation(row: int, act_to_pre_ns: float, start_ns: float = 0.0) -> CommandTrace:
    """ACT → PRE after an arbitrary (possibly illegal) interval.

    The primitive of ComputeDRAM-style tricks and of retention studies:
    cutting the activation short interrupts the SA somewhere along its
    event sequence.
    """
    if act_to_pre_ns <= 0:
        raise EvaluationError("ACT→PRE interval must be positive")
    trace = CommandTrace(f"truncated_act_{act_to_pre_ns:.1f}ns")
    trace.at(start_ns, Command.ACT, row=row)
    trace.at(start_ns + act_to_pre_ns, Command.PRE)
    return trace


def act_pre_act(row_a: int, row_b: int, t1_ns: float, t2_ns: float, start_ns: float = 0.0) -> CommandTrace:
    """The ComputeDRAM ACT(A)–PRE–ACT(B) pattern with violated t1/t2.

    With t1 (ACT→PRE) and t2 (PRE→ACT) both far below spec, the precharge
    never completes and the second activation opens another row onto
    still-charged bitlines — the multi-row charge-sharing primitive used
    for in-DRAM logic [24].
    """
    trace = CommandTrace(f"act_pre_act_{t1_ns:.1f}_{t2_ns:.1f}")
    trace.at(start_ns, Command.ACT, row=row_a)
    trace.at(start_ns + t1_ns, Command.PRE)
    trace.at(start_ns + t1_ns + t2_ns, Command.ACT, row=row_b)
    return trace
