"""A minimal open-page memory controller.

Schedules read/write requests into a timing-legal command trace for one
bank.  Its purpose here is to finish the I5 performance argument: the
controller is parameterised on :class:`TimingParameters`, so scheduling
the *same* request stream with classic-derived and OCSA-derived milestones
shows how much activation latency the offset-cancellation events cost at
the request level — the "performance overheads of the affected
operations" §VI-B warns about.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.commands import Command, CommandTrace
from repro.dram.timing import TimingParameters
from repro.errors import EvaluationError

#: Column-access latency (RD/WR to data) — independent of the SA topology.
CAS_NS = 13.75
#: Back-to-back column command spacing.
CCD_NS = 5.0


@dataclass(frozen=True)
class Request:
    """One memory request."""

    row: int
    col: int
    is_write: bool = False


@dataclass
class ScheduleResult:
    """Outcome of scheduling a request stream."""

    trace: CommandTrace
    completion_ns: list[float] = field(default_factory=list)
    row_hits: int = 0
    row_misses: int = 0

    @property
    def total_ns(self) -> float:
        """When the last request's data arrives."""
        return max(self.completion_ns, default=0.0)

    @property
    def hit_rate(self) -> float:
        """Row-buffer hit rate."""
        total = self.row_hits + self.row_misses
        return self.row_hits / total if total else 0.0

    def mean_latency_ns(self) -> float:
        """Average request completion time spacing (a throughput proxy)."""
        if not self.completion_ns:
            raise EvaluationError("no requests were scheduled")
        return self.total_ns / len(self.completion_ns)


class Controller:
    """Open-page scheduler for a single bank."""

    def __init__(self, timings: TimingParameters) -> None:
        self.timings = timings

    def schedule(self, requests: list[Request], name: str = "workload") -> ScheduleResult:
        """Produce a legal command trace serving *requests* in order."""
        t = self.timings
        trace = CommandTrace(name)
        result = ScheduleResult(trace=trace)

        now = 0.0
        open_row: int | None = None
        t_act = -1e18
        last_col = -1e18

        for req in requests:
            if req.row != open_row:
                if open_row is not None:
                    # Precharge, honouring tRAS from the last ACT.
                    pre_time = max(now, t_act + t.t_ras)
                    trace.at(pre_time, Command.PRE)
                    now = pre_time + t.t_rp
                    result.row_misses += 1
                else:
                    result.row_misses += 1
                trace.at(now, Command.ACT, row=req.row)
                t_act = now
                open_row = req.row
            else:
                result.row_hits += 1

            col_time = max(t_act + t.t_rcd, last_col + CCD_NS, now)
            command = Command.WR if req.is_write else Command.RD
            trace.at(col_time, command, row=req.row, col=req.col)
            last_col = col_time
            now = col_time
            result.completion_ns.append(col_time + CAS_NS)

        return result


def throughput_comparison(
    requests: list[Request],
    timings_a: TimingParameters,
    timings_b: TimingParameters,
) -> dict[str, float]:
    """Schedule the same stream under two timing sets (the I5 delta)."""
    a = Controller(timings_a).schedule(requests, name="a")
    b = Controller(timings_b).schedule(requests, name="b")
    return {
        "total_a_ns": a.total_ns,
        "total_b_ns": b.total_ns,
        "slowdown": b.total_ns / a.total_ns if a.total_ns else 1.0,
        "hit_rate": a.hit_rate,
    }


def row_miss_stream(n: int = 32, stride: int = 3) -> list[Request]:
    """A worst-case stream: every request opens a new row."""
    return [Request(row=(i * stride) % 4096, col=i % 8) for i in range(n)]


def row_hit_stream(n: int = 32, row: int = 5) -> list[Request]:
    """A best-case stream: one row, many columns."""
    return [Request(row=row, col=i % 64) for i in range(n)]
