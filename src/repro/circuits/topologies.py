"""Reference sense-amplifier topologies.

Two circuits matter to HiFi-DRAM:

* the **classic SA** (Fig 2b; Keeth et al. [42]) — cross-coupled latch,
  two precharge transistors, one equalizer, two column transistors, all
  precharge/equalize gates driven by PEQ; deployed on **B4, C4, C5**;
* the **OCSA** (Fig 9a; pin-pointed to Kim, Song & Jung 2019 [45]) — the
  latch drains are decoupled from the bitlines by two ISO transistors while
  the latch *gates* stay on the bitlines; two OC transistors diode-connect
  each bitline to the opposite internal node during offset cancellation;
  the equalizer is absent (equalisation = ISO and OC on simultaneously);
  deployed on **A4, A5, B5**.

Builders are parameterised on transistor sizes so chips instantiate them
with measured dimensions.  Default sizes are generic and only used by tests
and quick demos.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.circuits.netlist import Circuit


class SaTopology(enum.Enum):
    """Topology labels used across the library."""

    CLASSIC = "classic"
    OCSA = "ocsa"

    @property
    def extra_events(self) -> tuple[str, ...]:
        """Activation events beyond charge-sharing/latch/precharge (§V-A)."""
        if self is SaTopology.OCSA:
            return ("offset_cancellation", "pre_sensing")
        return ()


@dataclass(frozen=True)
class SaSizes:
    """Transistor W/L (nm) used to instantiate a topology."""

    nsa_w: float = 100.0
    nsa_l: float = 40.0
    psa_w: float = 70.0
    psa_l: float = 40.0
    precharge_w: float = 60.0
    precharge_l: float = 45.0
    equalizer_w: float = 60.0
    equalizer_l: float = 45.0
    column_w: float = 80.0
    column_l: float = 45.0
    isolation_w: float = 70.0
    isolation_l: float = 50.0
    offset_cancel_w: float = 60.0
    offset_cancel_l: float = 50.0


def build_latch(
    circuit: Circuit,
    bl_gate: str,
    blb_gate: str,
    bl_drain: str,
    blb_drain: str,
    sizes: SaSizes,
    prefix: str = "",
) -> None:
    """Add the four cross-coupled latch transistors to *circuit*.

    Gate nets and drain nets are passed separately because the OCSA connects
    gates to the bitlines but drains to the internal (isolated) nodes;
    the classic SA passes the same nets for both.
    """
    circuit.add_mos(
        prefix + "n1", "nmos", d=bl_drain, g=blb_gate, s="LAB",
        w=sizes.nsa_w, l=sizes.nsa_l, role="nSA",
    )
    circuit.add_mos(
        prefix + "n2", "nmos", d=blb_drain, g=bl_gate, s="LAB",
        w=sizes.nsa_w, l=sizes.nsa_l, role="nSA",
    )
    circuit.add_mos(
        prefix + "p1", "pmos", d=bl_drain, g=blb_gate, s="LA",
        w=sizes.psa_w, l=sizes.psa_l, role="pSA",
    )
    circuit.add_mos(
        prefix + "p2", "pmos", d=blb_drain, g=bl_gate, s="LA",
        w=sizes.psa_w, l=sizes.psa_l, role="pSA",
    )


def build_classic_sa(
    sizes: SaSizes | None = None,
    bl: str = "BL",
    blb: str = "BLB",
    name: str = "classic_sa",
) -> Circuit:
    """Build the classic SA of Fig 2b for one bitline pair.

    Nets: ``BL``/``BLB`` (bitlines), ``LA``/``LAB`` (latch enables),
    ``VPRE`` (precharge reference), ``PEQ`` (precharge+equalize gate),
    ``Y`` (column select), ``LIO``/``LIOB`` (local IO).
    """
    sizes = sizes or SaSizes()
    c = Circuit(name)
    build_latch(c, bl_gate=bl, blb_gate=blb, bl_drain=bl, blb_drain=blb, sizes=sizes)
    # Precharge: both bitlines to Vpre, gate PEQ.
    c.add_mos("pre1", "nmos", d=bl, g="PEQ", s="VPRE",
              w=sizes.precharge_w, l=sizes.precharge_l, role="precharge")
    c.add_mos("pre2", "nmos", d=blb, g="PEQ", s="VPRE",
              w=sizes.precharge_w, l=sizes.precharge_l, role="precharge")
    # Equalizer: BL to BLB, gate PEQ.
    c.add_mos("eq", "nmos", d=bl, g="PEQ", s=blb,
              w=sizes.equalizer_w, l=sizes.equalizer_l, role="equalizer")
    # Column multiplexer.
    c.add_mos("col1", "nmos", d="LIO", g="Y", s=bl,
              w=sizes.column_w, l=sizes.column_l, role="column")
    c.add_mos("col2", "nmos", d="LIOB", g="Y", s=blb,
              w=sizes.column_w, l=sizes.column_l, role="column")
    return c


def build_ocsa(
    sizes: SaSizes | None = None,
    bl: str = "BL",
    blb: str = "BLB",
    name: str = "ocsa",
) -> Circuit:
    """Build the OCSA of Fig 9a for one bitline pair.

    Additional nets vs the classic SA: ``SABL``/``SABLB`` (internal latch
    nodes), ``ISO`` and ``OC`` (the two new control signals).  There is no
    equalizer and no PEQ; the standalone precharge gate is ``PRE``.

    Key structural facts the matcher relies on (§V-A "investigating the
    extra elements"):

    * latch **gates** stay on BL/BLB, latch **drains** on SABL/SABLB;
    * ISO connects each bitline to its own internal node;
    * OC connects each bitline to the *opposite* internal node, so turning
      OC on diode-connects the latch devices whose gate is that bitline;
    * equalisation emerges from ISO+OC both on (BL–SABL–BLB path).
    """
    sizes = sizes or SaSizes()
    c = Circuit(name)
    sabl, sablb = "SABL", "SABLB"
    build_latch(c, bl_gate=bl, blb_gate=blb, bl_drain=sabl, blb_drain=sablb, sizes=sizes)
    # Isolation: bitline to own internal node.
    c.add_mos("iso1", "nmos", d=sabl, g="ISO", s=bl,
              w=sizes.isolation_w, l=sizes.isolation_l, role="isolation")
    c.add_mos("iso2", "nmos", d=sablb, g="ISO", s=blb,
              w=sizes.isolation_w, l=sizes.isolation_l, role="isolation")
    # Offset cancellation: bitline to opposite internal node.
    c.add_mos("oc1", "nmos", d=sablb, g="OC", s=bl,
              w=sizes.offset_cancel_w, l=sizes.offset_cancel_l, role="offset_cancel")
    c.add_mos("oc2", "nmos", d=sabl, g="OC", s=blb,
              w=sizes.offset_cancel_w, l=sizes.offset_cancel_l, role="offset_cancel")
    # Stand-alone precharge (no equalizer in OCSA).
    c.add_mos("pre1", "nmos", d=bl, g="PRE", s="VPRE",
              w=sizes.precharge_w, l=sizes.precharge_l, role="precharge")
    c.add_mos("pre2", "nmos", d=blb, g="PRE", s="VPRE",
              w=sizes.precharge_w, l=sizes.precharge_l, role="precharge")
    # Column multiplexer.
    c.add_mos("col1", "nmos", d="LIO", g="Y", s=bl,
              w=sizes.column_w, l=sizes.column_l, role="column")
    c.add_mos("col2", "nmos", d="LIOB", g="Y", s=blb,
              w=sizes.column_w, l=sizes.column_l, role="column")
    return c


def reference_corpus() -> dict[SaTopology, Circuit]:
    """The reference circuits the matcher compares extractions against.

    Mirrors the paper's process of searching the offset-cancellation
    literature until the extracted circuit pin-points to one design.
    """
    return {
        SaTopology.CLASSIC: build_classic_sa(),
        SaTopology.OCSA: build_ocsa(),
    }


#: Number of SA-proper MOSFETs per bitline pair, per topology (column
#: transistors included; the LSA second-stage latch is not part of the SA).
DEVICE_COUNT: dict[SaTopology, int] = {
    SaTopology.CLASSIC: 9,  # 4 latch + 2 precharge + 1 equalizer + 2 column
    SaTopology.OCSA: 12,  # 4 latch + 2 ISO + 2 OC + 2 precharge + 2 column
}


#: Control nets per topology (used by event sequencing and the matcher).
CONTROL_NETS: dict[SaTopology, tuple[str, ...]] = {
    SaTopology.CLASSIC: ("PEQ", "Y", "LA", "LAB"),
    SaTopology.OCSA: ("PRE", "ISO", "OC", "Y", "LA", "LAB"),
}
