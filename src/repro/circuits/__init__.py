"""Netlist substrate: circuit representation, SA topologies, matching.

HiFi-DRAM's §V reverse engineers two sense-amplifier topologies from silicon:
the *classic* SA (Fig 2b, used by B4/C4/C5) and the *offset-cancellation* SA
(OCSA, Fig 9a, used by A4/A5/B5).  This package provides:

* :mod:`repro.circuits.netlist` — devices, nets, circuits (networkx view);
* :mod:`repro.circuits.topologies` — reference builders for both topologies;
* :mod:`repro.circuits.matching` — identification of an extracted circuit
  against the reference corpus (the paper's step of pin-pointing the
  reverse-engineered circuit to the design of Kim et al. [45]).
"""

from repro.circuits.netlist import Circuit, Device, DeviceType, Terminal
from repro.circuits.topologies import (
    SaTopology,
    build_classic_sa,
    build_ocsa,
    build_latch,
    reference_corpus,
)
from repro.circuits.matching import identify_topology, topology_signature, MatchResult

__all__ = [
    "Circuit",
    "Device",
    "DeviceType",
    "Terminal",
    "SaTopology",
    "build_classic_sa",
    "build_ocsa",
    "build_latch",
    "reference_corpus",
    "identify_topology",
    "topology_signature",
    "MatchResult",
]
