"""Circuit representation: devices, terminals, nets.

A :class:`Circuit` is a multigraph between *nets*; each :class:`Device`
contributes edges between the nets its terminals attach to.  The
representation is deliberately SPICE-like (named nets, typed devices with
ordered terminals) so that

* the analog solver (:mod:`repro.analog`) can stamp it into MNA matrices,
* the topology matcher (:mod:`repro.circuits.matching`) can compare an
  extracted circuit against references structurally, and
* the extraction stage (:mod:`repro.reveng.connectivity`) can emit one
  without knowing anything about simulation.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Iterable, Iterator

import networkx as nx

from repro.errors import NetlistError


class DeviceType(enum.Enum):
    """Device archetypes understood by the solver and matcher."""

    NMOS = "nmos"
    PMOS = "pmos"
    CAPACITOR = "cap"
    RESISTOR = "res"
    VSOURCE = "vsrc"
    SWITCH = "switch"

    @property
    def is_mos(self) -> bool:
        """True for MOSFETs."""
        return self in (DeviceType.NMOS, DeviceType.PMOS)


#: Ordered terminal names per device type.
TERMINALS: dict[DeviceType, tuple[str, ...]] = {
    DeviceType.NMOS: ("d", "g", "s"),
    DeviceType.PMOS: ("d", "g", "s"),
    DeviceType.CAPACITOR: ("p", "n"),
    DeviceType.RESISTOR: ("p", "n"),
    DeviceType.VSOURCE: ("p", "n"),
    DeviceType.SWITCH: ("p", "n"),
}


@dataclass(frozen=True)
class Terminal:
    """A (device, pin) pair."""

    device: str
    pin: str


@dataclass
class Device:
    """A placed circuit device.

    ``params`` carries electrical values: MOSFETs use ``w`` and ``l`` (nm),
    capacitors ``c`` (farads), resistors ``r`` (ohms), sources ``v`` (volts,
    possibly overridden by a waveform at simulation time), switches ``ron`` /
    ``roff``.
    """

    name: str
    dtype: DeviceType
    nets: dict[str, str]  # pin -> net name
    params: dict[str, float] = field(default_factory=dict)
    #: optional functional annotation (e.g. a TransistorKind value)
    role: str = ""

    def __post_init__(self) -> None:
        expected = TERMINALS[self.dtype]
        missing = [pin for pin in expected if pin not in self.nets]
        if missing:
            raise NetlistError(f"device {self.name!r} missing pins {missing}")
        extra = [pin for pin in self.nets if pin not in expected]
        if extra:
            raise NetlistError(f"device {self.name!r} has unknown pins {extra}")

    @property
    def net_of(self) -> dict[str, str]:
        """Alias for ``nets`` (pin → net)."""
        return self.nets

    def terminal_nets(self) -> Iterator[tuple[str, str]]:
        """Yield ``(pin, net)`` in canonical pin order."""
        for pin in TERMINALS[self.dtype]:
            yield pin, self.nets[pin]


class Circuit:
    """A named collection of devices over a shared net namespace."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._devices: dict[str, Device] = {}
        self._net_aliases: dict[str, str] = {}

    # -- construction --------------------------------------------------------

    def add(self, device: Device) -> Device:
        """Add a device; names must be unique."""
        if device.name in self._devices:
            raise NetlistError(f"duplicate device name {device.name!r}")
        self._devices[device.name] = device
        return device

    def add_mos(
        self,
        name: str,
        channel: str,
        d: str,
        g: str,
        s: str,
        w: float,
        l: float,  # noqa: E741 - matches SPICE convention
        role: str = "",
    ) -> Device:
        """Convenience constructor for a MOSFET."""
        dtype = DeviceType.NMOS if channel == "nmos" else DeviceType.PMOS
        return self.add(
            Device(name, dtype, {"d": d, "g": g, "s": s}, {"w": w, "l": l}, role)
        )

    def add_capacitor(self, name: str, p: str, n: str, c: float, role: str = "") -> Device:
        """Convenience constructor for a capacitor."""
        return self.add(Device(name, DeviceType.CAPACITOR, {"p": p, "n": n}, {"c": c}, role))

    def add_resistor(self, name: str, p: str, n: str, r: float, role: str = "") -> Device:
        """Convenience constructor for a resistor."""
        return self.add(Device(name, DeviceType.RESISTOR, {"p": p, "n": n}, {"r": r}, role))

    def add_vsource(self, name: str, p: str, n: str, v: float, role: str = "") -> Device:
        """Convenience constructor for an ideal voltage source."""
        return self.add(Device(name, DeviceType.VSOURCE, {"p": p, "n": n}, {"v": v}, role))

    def alias_net(self, alias: str, target: str) -> None:
        """Declare that *alias* is electrically the same net as *target*.

        Used by extraction when two physical rails turn out connected (e.g.
        the classic SA's PRE and EQ poly rails bridged into one PEQ net).
        """
        self._net_aliases[alias] = target

    def resolve(self, net: str) -> str:
        """Follow alias chains to the canonical net name."""
        seen = set()
        while net in self._net_aliases:
            if net in seen:
                raise NetlistError(f"alias cycle at net {net!r}")
            seen.add(net)
            net = self._net_aliases[net]
        return net

    # -- queries -------------------------------------------------------------

    @property
    def devices(self) -> dict[str, Device]:
        """Mapping of device name → device."""
        return dict(self._devices)

    def device(self, name: str) -> Device:
        """Look up a device by name."""
        try:
            return self._devices[name]
        except KeyError:
            raise NetlistError(f"no device named {name!r} in {self.name!r}") from None

    def __len__(self) -> int:
        return len(self._devices)

    def __iter__(self) -> Iterator[Device]:
        return iter(self._devices.values())

    def nets(self) -> set[str]:
        """All canonical net names."""
        result: set[str] = set()
        for dev in self:
            for _pin, net in dev.terminal_nets():
                result.add(self.resolve(net))
        return result

    def devices_on(self, net: str) -> list[tuple[Device, str]]:
        """All ``(device, pin)`` attached to canonical net *net*."""
        net = self.resolve(net)
        found: list[tuple[Device, str]] = []
        for dev in self:
            for pin, n in dev.terminal_nets():
                if self.resolve(n) == net:
                    found.append((dev, pin))
        return found

    def count(self, dtype: DeviceType) -> int:
        """Number of devices of the given type."""
        return sum(1 for d in self if d.dtype is dtype)

    def mos_count(self) -> int:
        """Number of MOSFETs."""
        return sum(1 for d in self if d.dtype.is_mos)

    # -- graph view ----------------------------------------------------------

    def to_graph(self) -> nx.MultiGraph:
        """Bipartite multigraph: net nodes and device nodes.

        Net nodes are the canonical net names with ``kind='net'``; device
        nodes carry ``kind='dev'`` and ``dtype``.  Edges are labelled with
        the pin name.  This is the structure the VF2 matcher runs on.
        """
        g = nx.MultiGraph()
        for net in self.nets():
            g.add_node(("net", net), kind="net")
        for dev in self:
            g.add_node(("dev", dev.name), kind="dev", dtype=dev.dtype.value)
            for pin, net in dev.terminal_nets():
                g.add_edge(("dev", dev.name), ("net", self.resolve(net)), pin=pin)
        return g

    def merged(self, other: "Circuit", prefix: str) -> "Circuit":
        """Return a new circuit combining self with a prefixed copy of *other*.

        Net names are shared (no prefixing) so callers can tie subcircuits
        together through common rails; device names from *other* get
        ``prefix`` to stay unique.
        """
        combined = Circuit(self.name)
        for dev in self:
            combined.add(
                Device(dev.name, dev.dtype, dict(dev.nets), dict(dev.params), dev.role)
            )
        for dev in other:
            combined.add(
                Device(
                    prefix + dev.name, dev.dtype, dict(dev.nets), dict(dev.params), dev.role
                )
            )
        for alias, target in {**self._net_aliases, **other._net_aliases}.items():
            combined.alias_net(alias, target)
        return combined


def renamed_nets(circuit: Circuit, mapping: dict[str, str], name: str | None = None) -> Circuit:
    """Return a copy of *circuit* with nets renamed through *mapping*.

    Nets absent from the mapping keep their names.  Used to instantiate the
    per-bitline-pair reference subcircuit at each lane.
    """
    out = Circuit(name or circuit.name)
    for dev in circuit:
        nets = {pin: mapping.get(net, net) for pin, net in dev.nets.items()}
        out.add(Device(dev.name, dev.dtype, nets, dict(dev.params), dev.role))
    return out
