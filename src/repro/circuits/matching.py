"""Topology identification for extracted sense-amplifier circuits.

The paper describes how, after the full circuit was mapped, the extra
elements of A4/A5/B5 could only be explained by searching the
offset-cancellation literature until the circuit pin-pointed to one design
(Kim et al. [45]).  This module automates that step in two stages:

1. a cheap **structural signature** (device counts, bitline bridging,
   internal-node detection, shared-gate fan-outs) that distinguishes the
   classic SA from the OCSA and rejects circuits that are neither;
2. an exact **graph-isomorphism check** (VF2 on the bipartite
   device/net multigraph) against the reference corpus, confirming the
   identification the way the collaborating DRAM vendor confirmed the
   authors' analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.circuits.netlist import Circuit, DeviceType
from repro.circuits.topologies import SaTopology, reference_corpus
from repro.errors import TopologyError


@dataclass(frozen=True)
class TopologySignature:
    """Structural fingerprint of a single-pair SA circuit."""

    mos_count: int
    has_bitline_bridge: bool  #: a device with both S/D on the two bitlines
    internal_node_count: int  #: latch-drain nets that are not bitlines
    shared_gate_fanouts: tuple[int, ...]  #: sorted gate fan-outs > 1
    latch_gates_on_bitlines: bool

    def describe(self) -> str:
        """Human-readable one-liner for reports."""
        return (
            f"{self.mos_count} MOS, bridge={self.has_bitline_bridge}, "
            f"internal_nodes={self.internal_node_count}, "
            f"gate_fanouts={list(self.shared_gate_fanouts)}"
        )


@dataclass
class MatchResult:
    """Outcome of :func:`identify_topology`."""

    topology: SaTopology
    exact: bool  #: VF2 isomorphism with the reference succeeded
    signature: TopologySignature
    notes: list[str] = field(default_factory=list)


def _latch_structure(circuit: Circuit, bl: str, blb: str) -> tuple[list, set[str]]:
    """Find the cross-coupled latch devices and their tail nets.

    Terminal order (d vs s) is meaningless for an extracted device, so the
    analysis is symmetric in the two channel terminals:

    * *candidates* are MOSFETs whose gate sits on a bitline;
    * a *tail* net (LA/LAB) is a non-bitline net shared, as a channel
      terminal, by two candidates gated by *different* bitlines;
    * *latch devices* are candidates with a tail terminal.

    Returns ``(latch_devices, tail_nets)``.
    """
    bitlines = {circuit.resolve(bl), circuit.resolve(blb)}
    candidates = [
        d
        for d in circuit
        if d.dtype.is_mos and circuit.resolve(d.nets["g"]) in bitlines
    ]

    terminal_users: dict[str, list] = {}
    for dev in candidates:
        for pin in ("d", "s"):
            net = circuit.resolve(dev.nets[pin])
            if net not in bitlines:
                terminal_users.setdefault(net, []).append(dev)

    tails = {
        net
        for net, users in terminal_users.items()
        if len({circuit.resolve(u.nets["g"]) for u in users}) >= 2
    }
    latch = [
        dev
        for dev in candidates
        if any(circuit.resolve(dev.nets[pin]) in tails for pin in ("d", "s"))
    ]
    return latch, tails


def topology_signature(circuit: Circuit, bl: str = "BL", blb: str = "BLB") -> TopologySignature:
    """Compute the structural fingerprint of a one-pair SA circuit.

    ``bl``/``blb`` anchor the analysis: the extraction stage knows which
    nets are the bitlines because it traced them from the MAT (§V-A step ii
    — "we use the bitlines as an anchor for inferring the circuit").
    """
    bitlines = {circuit.resolve(bl), circuit.resolve(blb)}
    mos = [d for d in circuit if d.dtype.is_mos]
    if not mos:
        raise TopologyError(f"{circuit.name!r} has no transistors")

    bridge = any(
        {circuit.resolve(d.nets["d"]), circuit.resolve(d.nets["s"])} == bitlines
        for d in mos
    )

    latch, tails = _latch_structure(circuit, bl, blb)
    internal: set[str] = set()
    for dev in latch:
        for pin in ("d", "s"):
            net = circuit.resolve(dev.nets[pin])
            if net not in bitlines and net not in tails:
                internal.add(net)

    gate_fanout: dict[str, int] = {}
    for d in mos:
        g = circuit.resolve(d.nets["g"])
        if g in bitlines:
            continue
        gate_fanout[g] = gate_fanout.get(g, 0) + 1
    fanouts = tuple(sorted(v for v in gate_fanout.values() if v > 1))

    return TopologySignature(
        mos_count=len(mos),
        has_bitline_bridge=bridge,
        internal_node_count=len(internal),
        shared_gate_fanouts=fanouts,
        latch_gates_on_bitlines=bool(latch),
    )


def _node_match(a: dict, b: dict) -> bool:
    if a["kind"] != b["kind"]:
        return False
    if a["kind"] == "dev":
        return a["dtype"] == b["dtype"]
    return True


def _loose_node_match(a: dict, b: dict) -> bool:
    if a["kind"] != b["kind"]:
        return False
    if a["kind"] == "dev":
        mos = {DeviceType.NMOS.value, DeviceType.PMOS.value}
        return (a["dtype"] in mos) == (b["dtype"] in mos)
    return True


def is_isomorphic_to(circuit: Circuit, reference: Circuit, loose: bool = False) -> bool:
    """True if *circuit* is structurally identical to *reference*.

    With ``loose=True``, NMOS and PMOS are treated as interchangeable —
    useful before the width heuristic has assigned channel types (§V-A
    step viii notes NMOS/PMOS are visually indistinguishable in the images).
    """
    matcher = nx.algorithms.isomorphism.MultiGraphMatcher(
        circuit.to_graph(),
        reference.to_graph(),
        node_match=_loose_node_match if loose else _node_match,
    )
    return matcher.is_isomorphic()


def identify_topology(
    circuit: Circuit,
    bl: str = "BL",
    blb: str = "BLB",
    loose: bool = False,
) -> MatchResult:
    """Identify a one-pair extracted SA circuit as classic or OCSA.

    Raises :class:`~repro.errors.TopologyError` when the circuit matches
    neither reference even at the signature level — the situation the paper
    faced before widening the search to the offset-cancellation corpus.
    """
    sig = topology_signature(circuit, bl, blb)
    notes: list[str] = []

    if sig.internal_node_count == 0 and sig.has_bitline_bridge:
        candidate = SaTopology.CLASSIC
        notes.append("latch drains on bitlines and an equalizer bridge: classic")
    elif sig.internal_node_count >= 2 and not sig.has_bitline_bridge:
        candidate = SaTopology.OCSA
        notes.append(
            "latch drains isolated from bitlines and no equalizer: "
            "offset-cancellation design"
        )
    else:
        raise TopologyError(
            f"{circuit.name!r} matches no known SA topology "
            f"(signature: {sig.describe()})"
        )

    reference = reference_corpus()[candidate]
    exact = is_isomorphic_to(circuit, reference, loose=loose)
    if not exact:
        notes.append("signature matched but VF2 isomorphism failed (extra elements?)")
    return MatchResult(topology=candidate, exact=exact, signature=sig, notes=notes)
