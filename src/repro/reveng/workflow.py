"""End-to-end reverse engineering workflows.

Two entry points:

* :func:`reverse_engineer_cell` — the fast path: ideal planar masks
  straight from a ground-truth layout (what unit tests and ablations use);
* :func:`reverse_engineer_stack` — the full path: a FIB/SEM slice stack is
  denoised (TV), aligned (mutual information), assembled into a volume,
  resliced into planar views, segmented by intensity, and only then traced.

Both end in the same place: a :class:`ReversedChip` holding the recovered
topology (classic vs OCSA, per lane and consensus), the per-class
measurements, and — when ground truth is supplied — a validation report,
playing the role of the independent DRAM vendor who confirmed the paper's
analysis.

Stage tuning goes through one :class:`repro.pipeline.PipelineConfig`
object (the old per-stage keywords still work behind a
``DeprecationWarning`` shim).  Multi-chip campaigns should not call these
functions in a loop — :func:`repro.runtime.run_campaign` runs the same
chain per chip with process-level fan-out and a content-addressed stage
cache.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.matching import MatchResult, identify_topology
from repro.circuits.topologies import SaTopology
from repro.errors import RevEngError, TopologyError
from repro.imaging.fib import SliceStack
from repro.layout.cell import LayoutCell
from repro.pipeline.config import (
    AlignStage,
    AssembleStage,
    DenoiseStage,
    PipelineConfig,
    PlanarViewStage,
    SegmentStage,
)
from repro.reveng.classify import (
    Classification,
    assign_channels,
    classify_devices,
    lane_subcircuits,
)
from repro.reveng.connectivity import ExtractedCircuit, extract_circuit
from repro.reveng.features import PlanarFeatures
from repro.reveng.measure import MeasurementTable, ValidationReport, measure_devices, validation_errors


@dataclass
class ReversedChip:
    """Everything the reverse-engineering flow recovers for one sample."""

    extracted: ExtractedCircuit
    classification: Classification
    lane_matches: list[MatchResult]
    measurements: MeasurementTable
    validation: ValidationReport | None = None
    pipeline_notes: dict[str, float] = field(default_factory=dict)

    @property
    def topology(self) -> SaTopology:
        """Consensus topology across the lanes (majority vote).

        Ties are broken deterministically: by number of *exact* (VF2)
        matches among the tied topologies, then alphabetically by topology
        name — never by dict insertion order.
        """
        if not self.lane_matches:
            raise RevEngError("no lane could be matched", stage="reveng")
        votes: dict[SaTopology, int] = {}
        exact: dict[SaTopology, int] = {}
        for match in self.lane_matches:
            votes[match.topology] = votes.get(match.topology, 0) + 1
            if match.exact:
                exact[match.topology] = exact.get(match.topology, 0) + 1
        return min(votes, key=lambda t: (-votes[t], -exact.get(t, 0), t.value))

    @property
    def lanes_matched(self) -> int:
        """Number of lanes that identified as a known topology."""
        return len(self.lane_matches)

    @property
    def all_exact(self) -> bool:
        """True when every matched lane passed the VF2 isomorphism check."""
        return bool(self.lane_matches) and all(m.exact for m in self.lane_matches)


def finish_extraction(
    extracted: ExtractedCircuit,
    truth: LayoutCell | None,
    pipeline_notes: dict[str, float],
) -> ReversedChip:
    """Classify, match, measure and (optionally) validate *extracted*.

    Shared tail of both workflow paths and of the campaign engine's
    ``reveng`` stage.  A few notes are populated for *every* path so
    :attr:`ReversedChip.pipeline_notes` has a consistent core schema:
    ``devices_extracted``, ``lanes_matched`` and ``lanes_exact``.
    """
    classification = classify_devices(extracted)
    assign_channels(extracted, classification)

    matches: list[MatchResult] = []
    for sub in lane_subcircuits(extracted, classification):
        try:
            matches.append(identify_topology(sub))
        except TopologyError:
            continue

    measurements = measure_devices(extracted, classification)
    validation = validation_errors(measurements, truth) if truth is not None else None
    notes = dict(pipeline_notes)
    notes.setdefault("devices_extracted", float(len(extracted.devices)))
    notes.setdefault("lanes_matched", float(len(matches)))
    notes.setdefault("lanes_exact", float(sum(1 for m in matches if m.exact)))
    return ReversedChip(
        extracted=extracted,
        classification=classification,
        lane_matches=matches,
        measurements=measurements,
        validation=validation,
        pipeline_notes=notes,
    )


# Backward-compatible alias for the pre-1.1 private name.
_finish = finish_extraction


def reverse_engineer_cell(
    cell: LayoutCell,
    pixel_nm: float = 6.0,
    validate: bool = True,
) -> ReversedChip:
    """Reverse engineer a layout through ideal planar masks (fast path)."""
    features = PlanarFeatures.from_cell(cell, pixel_nm=pixel_nm)
    extracted = extract_circuit(features, name=f"{cell.name}_re")
    return finish_extraction(
        extracted, cell if validate else None, pipeline_notes={"pixel_nm": pixel_nm}
    )


def reverse_engineer_stack(
    stack: SliceStack,
    origin_x_nm: float = 0.0,
    origin_y_nm: float = 0.0,
    config: PipelineConfig | None = None,
    truth: LayoutCell | None = None,
    **legacy,
) -> ReversedChip:
    """Reverse engineer a simulated FIB/SEM acquisition (full path).

    Runs the complete §IV-C + §V chain.  ``pipeline_notes`` on the result
    records the alignment residual so callers can check it against the
    0.77 %-style budget (`max_residual_px`, `residual_fraction`).

    Stage tuning is a single ``config=PipelineConfig(...)``.  The pre-1.1
    keywords (``denoise_method``, ``denoise_weight``, ``align_search_px``)
    are still accepted but emit a :class:`DeprecationWarning`.
    """
    if legacy:
        config = PipelineConfig.from_legacy_kwargs(config, **legacy)
    config = config or PipelineConfig()

    denoised, _ = DenoiseStage(config)(stack.images)
    aligner = AlignStage(config, true_drift_px=stack.true_drift_px)
    aligned, align_notes = aligner(denoised)
    volume, _ = AssembleStage(
        pixel_nm=stack.pixel_nm,
        slice_thickness_nm=stack.slice_thickness_nm,
        origin_x_nm=origin_x_nm,
        origin_y_nm=origin_y_nm,
    )(aligned)
    views, _ = PlanarViewStage()(volume)
    features, _ = SegmentStage(
        config,
        pixel_nm=stack.pixel_nm,
        sem=stack.sem,
        origin_x_nm=origin_x_nm,
        origin_y_nm=origin_y_nm,
    )(views)
    extracted = extract_circuit(features, name="stack_re")

    notes = {
        "alignment_max_residual_px": align_notes["max_residual_px"],
        "alignment_residual_fraction": align_notes.get("residual_fraction", 0.0),
        "slices": float(len(stack)),
        "beam_time_hours": stack.beam_time_hours(),
    }
    return finish_extraction(extracted, truth, pipeline_notes=notes)
