"""End-to-end reverse engineering workflows.

Two entry points:

* :func:`reverse_engineer_cell` — the fast path: ideal planar masks
  straight from a ground-truth layout (what unit tests and ablations use);
* :func:`reverse_engineer_stack` — the full path: a FIB/SEM slice stack is
  denoised (TV), aligned (mutual information), assembled into a volume,
  resliced into planar views, segmented by intensity, and only then traced.

Both end in the same place: a :class:`ReversedChip` holding the recovered
topology (classic vs OCSA, per lane and consensus), the per-class
measurements, and — when ground truth is supplied — a validation report,
playing the role of the independent DRAM vendor who confirmed the paper's
analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.matching import MatchResult, identify_topology
from repro.circuits.topologies import SaTopology
from repro.errors import ReverseEngineeringError, TopologyError
from repro.imaging.fib import SliceStack
from repro.layout.cell import LayoutCell
from repro.pipeline.denoise import denoise_stack
from repro.pipeline.register import align_stack
from repro.pipeline.stack import assemble_volume, planar_views
from repro.reveng.classify import (
    Classification,
    assign_channels,
    classify_devices,
    lane_subcircuits,
)
from repro.reveng.connectivity import ExtractedCircuit, extract_circuit
from repro.reveng.features import PlanarFeatures
from repro.reveng.measure import MeasurementTable, ValidationReport, measure_devices, validation_errors


@dataclass
class ReversedChip:
    """Everything the reverse-engineering flow recovers for one sample."""

    extracted: ExtractedCircuit
    classification: Classification
    lane_matches: list[MatchResult]
    measurements: MeasurementTable
    validation: ValidationReport | None = None
    pipeline_notes: dict[str, float] = field(default_factory=dict)

    @property
    def topology(self) -> SaTopology:
        """Consensus topology across the lanes (majority vote)."""
        if not self.lane_matches:
            raise ReverseEngineeringError("no lane could be matched")
        votes: dict[SaTopology, int] = {}
        for match in self.lane_matches:
            votes[match.topology] = votes.get(match.topology, 0) + 1
        return max(votes, key=votes.get)  # type: ignore[arg-type]

    @property
    def lanes_matched(self) -> int:
        """Number of lanes that identified as a known topology."""
        return len(self.lane_matches)

    @property
    def all_exact(self) -> bool:
        """True when every matched lane passed the VF2 isomorphism check."""
        return bool(self.lane_matches) and all(m.exact for m in self.lane_matches)


def _finish(
    extracted: ExtractedCircuit,
    truth: LayoutCell | None,
    pipeline_notes: dict[str, float],
) -> ReversedChip:
    classification = classify_devices(extracted)
    assign_channels(extracted, classification)

    matches: list[MatchResult] = []
    for sub in lane_subcircuits(extracted, classification):
        try:
            matches.append(identify_topology(sub))
        except TopologyError:
            continue

    measurements = measure_devices(extracted, classification)
    validation = validation_errors(measurements, truth) if truth is not None else None
    return ReversedChip(
        extracted=extracted,
        classification=classification,
        lane_matches=matches,
        measurements=measurements,
        validation=validation,
        pipeline_notes=pipeline_notes,
    )


def reverse_engineer_cell(
    cell: LayoutCell,
    pixel_nm: float = 6.0,
    validate: bool = True,
) -> ReversedChip:
    """Reverse engineer a layout through ideal planar masks (fast path)."""
    features = PlanarFeatures.from_cell(cell, pixel_nm=pixel_nm)
    extracted = extract_circuit(features, name=f"{cell.name}_re")
    return _finish(extracted, cell if validate else None, pipeline_notes={})


def reverse_engineer_stack(
    stack: SliceStack,
    origin_x_nm: float = 0.0,
    origin_y_nm: float = 0.0,
    denoise_method: str = "chambolle",
    denoise_weight: float = 0.08,
    align_search_px: int = 4,
    truth: LayoutCell | None = None,
) -> ReversedChip:
    """Reverse engineer a simulated FIB/SEM acquisition (full path).

    Runs the complete §IV-C + §V chain.  ``pipeline_notes`` on the result
    records the alignment residual so callers can check it against the
    0.77 %-style budget (`max_residual_px`, `residual_fraction`).
    """
    denoised = denoise_stack(stack.images, method=denoise_method, weight=denoise_weight)
    aligned, report = align_stack(
        denoised, search_px=align_search_px, true_drift_px=stack.true_drift_px
    )
    volume = assemble_volume(
        aligned,
        pixel_nm=stack.pixel_nm,
        slice_thickness_nm=stack.slice_thickness_nm,
        origin_x_nm=origin_x_nm,
        origin_y_nm=origin_y_nm,
    )
    views = planar_views(volume)
    features = PlanarFeatures.from_views(
        views,
        pixel_nm=stack.pixel_nm,
        sem=stack.sem,
        origin_x_nm=origin_x_nm,
        origin_y_nm=origin_y_nm,
    )
    extracted = extract_circuit(features, name="stack_re")

    nx = stack.image_shape[0]
    notes = {
        "alignment_max_residual_px": float(report.max_residual_px()),
        "alignment_residual_fraction": report.residual_fraction(nx),
        "slices": float(len(stack)),
        "beam_time_hours": stack.beam_time_hours(),
    }
    return _finish(extracted, truth, pipeline_notes=notes)
