"""Per-layer feature masks: the analyst's "color intensity" step.

§V-A step (i): determine the intensities corresponding to gates, wires and
vias, then turn each layer's planar view into a boolean feature mask.  Two
constructors exist:

* :meth:`PlanarFeatures.from_cell` — rasterise the ground-truth layout
  directly (the noise-free fast path used by unit tests and by the
  validation baseline);
* :meth:`PlanarFeatures.from_views` — classify real (simulated) planar
  views by intensity, which must untangle z-overlapping layers: a contact
  plug shares the GATE z-range, so the GATE mask keeps only poly-intensity
  pixels and the CONTACT mask only tungsten-intensity pixels.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.errors import RevEngError
from repro.imaging.sem import SemParameters, contrast_lookup
from repro.imaging.voxel import MATERIAL_CODES, rasterize_layer
from repro.layout.cell import LayoutCell
from repro.layout.elements import LAYER_MATERIAL, Layer

#: Minimum plausible component area (px) per layer: anything smaller is a
#: misclassified speck — e.g. the faint silicon-like shadow a contact
#: bottom casts into the ACTIVE view.  Real actives are tens of pixels;
#: real contacts/vias only a handful.
_MIN_AREA_PX: dict[Layer, int] = {
    Layer.ACTIVE: 25,
    Layer.GATE: 8,
    Layer.CONTACT: 4,
    Layer.METAL1: 6,
    Layer.VIA1: 4,
    Layer.METAL2: 8,
    Layer.CAPACITOR: 4,
}


def _drop_specks(mask, min_area_px: int):
    """Remove connected components smaller than *min_area_px*."""
    if min_area_px <= 1 or not mask.any():
        return mask
    labels, count = ndimage.label(mask)
    if not count:
        return mask
    areas = ndimage.sum_labels(mask, labels, index=np.arange(1, count + 1))
    small = np.flatnonzero(areas < min_area_px) + 1
    if small.size:
        mask = mask.copy()
        mask[np.isin(labels, small)] = False
    return mask


#: Layers the extraction consumes.
FEATURE_LAYERS: tuple[Layer, ...] = (
    Layer.ACTIVE,
    Layer.GATE,
    Layer.CONTACT,
    Layer.METAL1,
    Layer.VIA1,
    Layer.METAL2,
    Layer.CAPACITOR,
)


@dataclass
class PlanarFeatures:
    """Boolean masks per layer, plus coordinate metadata and label caches."""

    masks: dict[Layer, np.ndarray]
    pixel_nm: float
    origin_x_nm: float = 0.0
    origin_y_nm: float = 0.0
    _labels: dict[Layer, tuple[np.ndarray, int]] = field(default_factory=dict, repr=False)

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_cell(cls, cell: LayoutCell, pixel_nm: float = 6.0, margin_nm: float = 40.0) -> "PlanarFeatures":
        """Ideal masks straight from a layout (ground-truth fast path)."""
        box = cell.bounding_box()
        masks = {
            layer: rasterize_layer(cell, layer, voxel_nm=pixel_nm, margin_nm=margin_nm)
            for layer in FEATURE_LAYERS
        }
        return cls(
            masks=masks,
            pixel_nm=pixel_nm,
            origin_x_nm=box.x0 - margin_nm,
            origin_y_nm=box.y0 - margin_nm,
        )

    @classmethod
    def from_views(
        cls,
        views: dict[Layer, np.ndarray],
        pixel_nm: float,
        sem: SemParameters | None = None,
        origin_x_nm: float = 0.0,
        origin_y_nm: float = 0.0,
        tolerance: float = 0.5,
    ) -> "PlanarFeatures":
        """Intensity-classified masks from reconstructed planar views.

        For each layer, a pixel belongs to the mask when its intensity is
        closer to the layer's own material intensity than to the background
        (dielectric), within *tolerance* of the material/dielectric gap.
        Using the layer's *material* (not a generic foreground test)
        separates contact plugs from poly in the shared z-range.
        """
        sem = sem or SemParameters()
        table = contrast_lookup(sem)
        bg = table[0]
        masks: dict[Layer, np.ndarray] = {}
        for layer in FEATURE_LAYERS:
            if layer not in views:
                continue
            view = views[layer]
            target = table[MATERIAL_CODES[LAYER_MATERIAL[layer]]]
            gap = target - bg
            if abs(gap) < 1e-6:
                raise RevEngError(
                    f"material of {layer.name} indistinguishable from background "
                    f"with these SEM parameters"
                )
            # Pixel accepted when closer to the target intensity than
            # (1 - tolerance) of the way back to the background, AND closer
            # to the target than to any brighter material (separates poly
            # from tungsten).  ACTIVE gets no upper bound: contact plugs
            # share the top of its z-range and brighten the pixels they sit
            # on — without this the plugs would punch holes into the active
            # regions exactly where the terminals must connect.
            lo = target - abs(gap) * tolerance
            brighter = [v for v in table if v > target + 1e-9]
            hi = (target + min(brighter)) / 2 if brighter else np.inf
            if layer is Layer.ACTIVE:
                hi = np.inf
            mask = (view >= lo) & (view < hi)
            masks[layer] = _drop_specks(mask, _MIN_AREA_PX.get(layer, 4))
        missing = [layer for layer in FEATURE_LAYERS if layer not in masks]
        if missing:
            raise RevEngError(f"missing planar views for {missing}")
        return cls(
            masks=masks,
            pixel_nm=pixel_nm,
            origin_x_nm=origin_x_nm,
            origin_y_nm=origin_y_nm,
        )

    # -- geometry helpers --------------------------------------------------------

    @property
    def shape(self) -> tuple[int, int]:
        """(nx, ny) of the masks."""
        mask = next(iter(self.masks.values()))
        return tuple(mask.shape)  # type: ignore[return-value]

    def to_nm(self, i: float, j: float) -> tuple[float, float]:
        """Pixel indices → nm coordinates."""
        return (
            self.origin_x_nm + (i + 0.5) * self.pixel_nm,
            self.origin_y_nm + (j + 0.5) * self.pixel_nm,
        )

    def extent_nm(self) -> tuple[float, float]:
        """(x, y) physical extents of the field of view."""
        nx, ny = self.shape
        return nx * self.pixel_nm, ny * self.pixel_nm

    # -- component labelling ---------------------------------------------------

    def components(self, layer: Layer) -> tuple[np.ndarray, int]:
        """Connected components (4-connectivity) of a layer mask, cached."""
        if layer not in self._labels:
            if layer not in self.masks:
                raise RevEngError(f"no mask for layer {layer.name}")
            structure = np.array([[0, 1, 0], [1, 1, 1], [0, 1, 0]], dtype=bool)
            labels, count = ndimage.label(self.masks[layer], structure=structure)
            self._labels[layer] = (labels, count)
        return self._labels[layer]

    def component_mask(self, layer: Layer, comp_id: int) -> np.ndarray:
        """Boolean mask of one component."""
        labels, _count = self.components(layer)
        return labels == comp_id

    def component_slices(self, layer: Layer) -> list[tuple[int, tuple[slice, slice]]]:
        """(component id, bounding slices) for every component of *layer*."""
        labels, count = self.components(layer)
        found = ndimage.find_objects(labels)
        return [(idx + 1, slc) for idx, slc in enumerate(found) if slc is not None]

    def component_centroid_nm(self, layer: Layer, comp_id: int) -> tuple[float, float]:
        """Centroid of a component in nm."""
        labels, _ = self.components(layer)
        ci, cj = ndimage.center_of_mass(labels == comp_id)
        return self.to_nm(float(ci), float(cj))
