"""Circuit reverse engineering from planar views (§V).

The pipeline steps mirror §V-A:

(i)   material/intensity classification → :mod:`repro.reveng.features`
(ii)  bitline anchoring                 → :mod:`repro.reveng.classify`
(iii) component + connection mapping    → :mod:`repro.reveng.connectivity`
(iv)  transistor class identification   → :mod:`repro.reveng.classify`
(v–vii) functional assignment           → :mod:`repro.reveng.classify`
(viii) PMOS/NMOS width heuristic        → :mod:`repro.reveng.classify`
plus the §V-B measurements              → :mod:`repro.reveng.measure`
and the end-to-end orchestration        → :mod:`repro.reveng.workflow`
"""

from repro.reveng.features import PlanarFeatures
from repro.reveng.connectivity import ExtractedCircuit, ExtractedDevice, extract_circuit
from repro.reveng.classify import (
    TransistorClass,
    classify_devices,
    lane_subcircuits,
    assign_channels,
)
from repro.reveng.measure import MeasurementTable, measure_devices, validation_errors
from repro.reveng.workflow import ReversedChip, reverse_engineer_cell, reverse_engineer_stack
from repro.reveng.export import export_recovered_gds, features_to_cell, mask_to_rects
from repro.reveng.narrative import Narrative, NarrativeStep, build_narrative

__all__ = [
    "PlanarFeatures",
    "ExtractedCircuit",
    "ExtractedDevice",
    "extract_circuit",
    "TransistorClass",
    "classify_devices",
    "lane_subcircuits",
    "assign_channels",
    "MeasurementTable",
    "measure_devices",
    "validation_errors",
    "ReversedChip",
    "reverse_engineer_cell",
    "reverse_engineer_stack",
    "export_recovered_gds",
    "features_to_cell",
    "mask_to_rects",
    "Narrative",
    "NarrativeStep",
    "build_narrative",
]
