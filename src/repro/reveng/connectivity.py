"""Connectivity tracing: from feature masks to an extracted netlist.

§V-A steps (ii)–(iii): map components and their connections across layers.
The electrical rules are the ones the layouts obey by construction:

* touching shapes on the same conducting layer (METAL1, METAL2, GATE) are
  one node — handled by connected-component labelling;
* a CONTACT joins the METAL1 component above it to the GATE component (or
  ACTIVE terminal segment) below it;
* a VIA1 joins METAL1 and METAL2 components;
* an ACTIVE component is *not* a node: every GATE crossing splits it into
  terminal segments, and each (gate, active) crossing is a transistor whose
  source/drain are the segments adjacent to the channel.

The result is an :class:`ExtractedCircuit`: a standard
:class:`~repro.circuits.netlist.Circuit` (all devices provisionally NMOS —
channel types come later from the width heuristic, §V-A step viii) plus
per-device geometry (measured W/L in nm, channel position, gate span).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.circuits.netlist import Circuit
from repro.errors import ReverseEngineeringError
from repro.layout.elements import Layer
from repro.reveng.features import PlanarFeatures

_CONDUCTOR_LAYERS = (Layer.METAL1, Layer.METAL2, Layer.GATE)


class _Dsu:
    """Disjoint-set union over hashable keys."""

    def __init__(self) -> None:
        self._parent: dict = {}

    def find(self, key):
        parent = self._parent.setdefault(key, key)
        if parent == key:
            return key
        root = self.find(parent)
        self._parent[key] = root
        return root

    def union(self, a, b) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            self._parent[ra] = rb


@dataclass
class ExtractedDevice:
    """Geometry record of one recovered transistor."""

    name: str
    gate_net: str
    terminal_nets: tuple[str, str]  #: (side A, side B) — orientation unknown
    width_nm: float
    length_nm: float
    centroid_nm: tuple[float, float]
    gate_span_fraction: float  #: gate component Y-span / region Y-extent
    gate_component: int
    active_component: int
    current_axis: str  #: "x" or "y"

    @property
    def wl_ratio(self) -> float:
        """Measured W/L."""
        return self.width_nm / self.length_nm


@dataclass
class ExtractedCircuit:
    """A recovered netlist plus extraction geometry."""

    circuit: Circuit
    devices: dict[str, ExtractedDevice]
    features: PlanarFeatures
    #: net name of each conductor component, keyed by (layer, comp_id)
    net_of_component: dict[tuple[Layer, int], str] = field(default_factory=dict)
    warnings: list[str] = field(default_factory=list)

    def nets_on_layer(self, layer: Layer) -> set[str]:
        """All net names with at least one component on *layer*."""
        return {
            net for (lay, _cid), net in self.net_of_component.items() if lay is layer
        }

    def components_of_net(self, net: str) -> list[tuple[Layer, int]]:
        """All (layer, component) pieces of a net."""
        return [key for key, name in self.net_of_component.items() if name == net]


#: How far (px) via/contact footprints are grown when testing overlap.
#: On reconstructed views a plug *displaces* the material it lands on (its
#: z-range overlaps the neighbour layer's), punching a hole exactly where
#: the overlap should be; growing the plug by one pixel recovers that
#: adjacency (the hole boundary is by construction one pixel away) while
#: staying below the minimum same-layer spacing the layouts obey.
VIA_DILATION_PX = 1


def _expanded(slc: tuple[slice, slice], shape: tuple[int, int], grow: int) -> tuple[slice, slice]:
    return (
        slice(max(0, slc[0].start - grow), min(shape[0], slc[0].stop + grow)),
        slice(max(0, slc[1].start - grow), min(shape[1], slc[1].stop + grow)),
    )


def _overlap_counts(
    features: PlanarFeatures,
    source_layer: Layer,
    source_id: int,
    source_slice: tuple[slice, slice],
    target_layer: Layer,
    dilate_px: int = 0,
) -> dict[int, int]:
    """Overlap pixel count per target-layer component for one source.

    ``dilate_px`` grows the source footprint before testing (see
    :data:`VIA_DILATION_PX`).
    """
    labels_src, _ = features.components(source_layer)
    labels_tgt, _ = features.components(target_layer)
    window = _expanded(source_slice, labels_src.shape, dilate_px) if dilate_px else source_slice
    window_src = labels_src[window] == source_id
    if dilate_px:
        window_src = ndimage.binary_dilation(window_src, iterations=dilate_px)
    window_tgt = labels_tgt[window]
    hits, counts = np.unique(window_tgt[window_src], return_counts=True)
    return {int(h): int(c) for h, c in zip(hits, counts) if h != 0}


def _overlapping_components(
    features: PlanarFeatures,
    source_layer: Layer,
    source_id: int,
    source_slice: tuple[slice, slice],
    target_layer: Layer,
    dilate_px: int = 0,
) -> set[int]:
    """Target-layer component ids a plug genuinely lands on.

    A via/contact is a point connection: it touches exactly one component
    per layer.  When the grown footprint overlaps several (the wire it
    lands on plus a neighbour whose rasterised gap collapsed to a pixel at
    an off-grid feature size), only the *dominant* overlap is the real
    landing — the plug sits inside its wire, so the true overlap is the
    whole ring around the punched hole, while a graze is a thin sliver.
    Keeping every overlap would short adjacent wires and collapse the
    netlist (BL and BLB ending up on one net).
    """
    counts = _overlap_counts(
        features, source_layer, source_id, source_slice, target_layer, dilate_px
    )
    if len(counts) <= 1:
        return set(counts)
    best = max(counts.values())
    # Everything within a 2x margin of the best overlap is ambiguous enough
    # to keep (a plug straddling a segmented wire boundary); clear slivers
    # are dropped.  Deterministic: depends only on the counts.
    return {cid for cid, c in counts.items() if 2 * c > best}


def extract_circuit(features: PlanarFeatures, name: str = "extracted") -> ExtractedCircuit:
    """Trace connectivity and recover the netlist from *features*."""
    dsu = _Dsu()
    warnings: list[str] = []

    # 1. Same-layer conduction is already component labelling; register all.
    for layer in _CONDUCTOR_LAYERS:
        _, count = features.components(layer)
        for cid in range(1, count + 1):
            dsu.find((layer, cid))

    # 2. VIA1 joins METAL1 and METAL2.
    for via_id, slc in features.component_slices(Layer.VIA1):
        m1 = _overlapping_components(
            features, Layer.VIA1, via_id, slc, Layer.METAL1, dilate_px=VIA_DILATION_PX
        )
        m2 = _overlapping_components(
            features, Layer.VIA1, via_id, slc, Layer.METAL2, dilate_px=VIA_DILATION_PX
        )
        if not m1 or not m2:
            warnings.append(f"via1 component {via_id} is dangling")
        nodes = [(Layer.METAL1, cid) for cid in m1] + [(Layer.METAL2, cid) for cid in m2]
        for a, b in zip(nodes, nodes[1:]):
            dsu.union(a, b)

    # 3. CONTACT joins METAL1 with GATE (gate contacts) — active contacts
    #    are resolved per-terminal during transistor recovery.
    contact_m1: dict[int, set[int]] = {}
    contact_gate: dict[int, set[int]] = {}
    contact_active: dict[int, set[int]] = {}
    for ct_id, slc in features.component_slices(Layer.CONTACT):
        m1 = _overlapping_components(
            features, Layer.CONTACT, ct_id, slc, Layer.METAL1, dilate_px=VIA_DILATION_PX
        )
        # Poly is displaced over the contact's whole z-extent plus a blur
        # margin, so the hole can exceed the plug footprint by more than a
        # pixel; a wider growth is safe here because contacts that land on
        # active silicon are barred from gate unions below.
        gates = _overlapping_components(
            features, Layer.CONTACT, ct_id, slc, Layer.GATE, dilate_px=2 * VIA_DILATION_PX
        )
        actives = _overlapping_components(
            features, Layer.CONTACT, ct_id, slc, Layer.ACTIVE, dilate_px=VIA_DILATION_PX
        )
        contact_m1[ct_id] = m1
        contact_gate[ct_id] = gates
        contact_active[ct_id] = actives
        # A plug landing on active silicon is a source/drain contact: it
        # must never union with a gate, however close the gate bar runs
        # (latch drain contacts sit a pixel away from their gate bars).
        if actives:
            gates = set()
            contact_gate[ct_id] = gates
        nodes = [(Layer.METAL1, cid) for cid in m1]
        if gates:
            nodes += [(Layer.GATE, cid) for cid in gates]
        for a, b in zip(nodes, nodes[1:]):
            dsu.union(a, b)
        if not m1:
            warnings.append(f"contact {ct_id} reaches no metal1")

    # 4. Net naming: one name per DSU root.
    net_names: dict = {}

    def net_name(node) -> str:
        root = dsu.find(node)
        if root not in net_names:
            net_names[root] = f"n{len(net_names)}"
        return net_names[root]

    # 5. Transistor recovery.
    circuit = Circuit(name)
    devices: dict[str, ExtractedDevice] = {}
    gate_labels, _ = features.components(Layer.GATE)
    active_labels, active_count = features.components(Layer.ACTIVE)
    _, region_ny = features.shape
    dev_index = 0

    for active_id, slc in features.component_slices(Layer.ACTIVE):
        active_mask = active_labels[slc] == active_id
        gates_here = np.unique(gate_labels[slc][active_mask])
        gates_here = [int(g) for g in gates_here if g != 0]
        if not gates_here:
            continue

        # Split the active into terminal segments (active minus all gates).
        gate_any = np.isin(gate_labels[slc], gates_here) & active_mask
        segments_mask = active_mask & ~gate_any
        seg_labels, seg_count = ndimage.label(segments_mask)

        # Map contacts to segments.
        contact_of_segment: dict[int, list[int]] = {}
        for ct_id, ct_slc in features.component_slices(Layer.CONTACT):
            if active_id not in contact_active.get(ct_id, set()):
                continue
            ct_labels, _ = features.components(Layer.CONTACT)
            # Work in the active's window; grow the plug footprint so it
            # reaches the segment around the hole it punched (see
            # VIA_DILATION_PX).
            ct_mask_w = _window_mask(ct_labels, ct_id, slc)
            if ct_mask_w is not None:
                ct_mask_w = ndimage.binary_dilation(ct_mask_w, iterations=VIA_DILATION_PX)
            hits = np.unique(seg_labels[ct_mask_w]) if ct_mask_w is not None else []
            for h in hits:
                if h != 0:
                    contact_of_segment.setdefault(int(h), []).append(ct_id)

        for gate_id in gates_here:
            channel = (gate_labels[slc] == gate_id) & active_mask
            if not channel.any():
                continue
            # Terminal segments adjacent to this channel.
            grown = ndimage.binary_dilation(channel, iterations=1)
            adjacent = np.unique(seg_labels[grown & (seg_labels > 0)])
            adjacent = [int(s) for s in adjacent]
            if len(adjacent) != 2:
                warnings.append(
                    f"gate {gate_id} x active {active_id}: "
                    f"{len(adjacent)} terminal segments (expected 2)"
                )
                if len(adjacent) < 2:
                    continue
                adjacent = adjacent[:2]

            term_nets = []
            for seg in adjacent:
                contacts = contact_of_segment.get(seg, [])
                if not contacts:
                    warnings.append(
                        f"gate {gate_id} x active {active_id}: terminal segment "
                        f"without contact"
                    )
                    term_nets.append(f"float{active_id}_{seg}")
                    continue
                m1_comps = set()
                for ct in contacts:
                    m1_comps |= contact_m1.get(ct, set())
                if not m1_comps:
                    term_nets.append(f"float{active_id}_{seg}")
                    continue
                # Every terminal has a single contact/pad by construction;
                # with several M1 hits they are one physical net, so any
                # representative works.
                term_nets.append(net_name((Layer.METAL1, min(m1_comps))))

            gate_net = net_name((Layer.GATE, gate_id))

            # Geometry: current axis from the terminal-segment centroids.
            cents = [ndimage.center_of_mass(seg_labels == seg) for seg in adjacent]
            dx = abs(cents[0][0] - cents[1][0])
            dy = abs(cents[0][1] - cents[1][1])
            axis = "x" if dx >= dy else "y"
            xs, ys = np.nonzero(channel)
            ext_x = (xs.max() - xs.min() + 1) * features.pixel_nm
            ext_y = (ys.max() - ys.min() + 1) * features.pixel_nm
            length_nm, width_nm = (ext_x, ext_y) if axis == "x" else (ext_y, ext_x)
            ci = xs.mean() + (slc[0].start or 0)
            cj = ys.mean() + (slc[1].start or 0)
            centroid = features.to_nm(float(ci), float(cj))

            # Gate span fraction (region-spanning common gates ≈ 1).
            g_slices = ndimage.find_objects(gate_labels, max_label=gate_id)
            g_slc = g_slices[gate_id - 1]
            span = (g_slc[1].stop - g_slc[1].start) / region_ny

            dev_index += 1
            dname = f"t{dev_index}"
            circuit.add_mos(
                dname, "nmos", d=term_nets[0], g=gate_net, s=term_nets[1],
                w=width_nm, l=length_nm,
            )
            devices[dname] = ExtractedDevice(
                name=dname,
                gate_net=gate_net,
                terminal_nets=(term_nets[0], term_nets[1]),
                width_nm=width_nm,
                length_nm=length_nm,
                centroid_nm=centroid,
                gate_span_fraction=float(span),
                gate_component=gate_id,
                active_component=active_id,
                current_axis=axis,
            )

    # 6. Record component → net mapping for all conductor components.
    net_of_component: dict[tuple[Layer, int], str] = {}
    for layer in _CONDUCTOR_LAYERS:
        _, count = features.components(layer)
        for cid in range(1, count + 1):
            net_of_component[(layer, cid)] = net_name((layer, cid))

    return ExtractedCircuit(
        circuit=circuit,
        devices=devices,
        features=features,
        net_of_component=net_of_component,
        warnings=warnings,
    )


def _window_mask(labels: np.ndarray, comp_id: int, window: tuple[slice, slice]):
    """Mask of component *comp_id* restricted to *window* (or None if empty)."""
    sub = labels[window] == comp_id
    if not sub.any():
        return None
    return sub
