"""§V-B measurements: transistor dimensions and region features.

The paper makes 835 distinct size measurements with Dragonfly: per
transistor, the length is the gate pitch between source and drain and the
width the gate/active overlap.  The extraction already measures both per
device (:class:`~repro.reveng.connectivity.ExtractedDevice`); this module
aggregates them per functional class, measures region-level quantities
(bitline pitch, region extents), and scores everything against ground
truth when one is available.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.errors import RevEngError
from repro.layout.cell import LayoutCell
from repro.layout.elements import TransistorKind
from repro.layout.geometry import pitch_of
from repro.reveng.classify import Classification, TransistorClass
from repro.reveng.connectivity import ExtractedCircuit

#: Extracted functional class ↔ ground-truth transistor kind.
CLASS_TO_KIND: dict[TransistorClass, TransistorKind] = {
    TransistorClass.COLUMN: TransistorKind.COLUMN,
    TransistorClass.PRECHARGE: TransistorKind.PRECHARGE,
    TransistorClass.EQUALIZER: TransistorKind.EQUALIZER,
    TransistorClass.ISOLATION: TransistorKind.ISOLATION,
    TransistorClass.OFFSET_CANCEL: TransistorKind.OFFSET_CANCEL,
    TransistorClass.NSA: TransistorKind.NSA,
    TransistorClass.PSA: TransistorKind.PSA,
    TransistorClass.LSA: TransistorKind.LSA,
}


@dataclass
class ClassStats:
    """Aggregated W/L statistics for one transistor class."""

    count: int
    mean_w_nm: float
    mean_l_nm: float
    std_w_nm: float
    std_l_nm: float

    @property
    def wl_ratio(self) -> float:
        """Mean W / mean L."""
        return self.mean_w_nm / self.mean_l_nm


@dataclass
class MeasurementTable:
    """All §V-B measurements of one reverse-engineered region."""

    per_class: dict[TransistorClass, ClassStats]
    bitline_pitch_nm: float | None
    region_extent_nm: tuple[float, float]
    total_measurements: int
    notes: list[str] = field(default_factory=list)

    def stats(self, cls: TransistorClass) -> ClassStats:
        """Stats for one class (raising when the class was not observed)."""
        try:
            return self.per_class[cls]
        except KeyError:
            raise RevEngError(f"no measurements for class {cls.value}", stage="reveng") from None


def measure_devices(
    extracted: ExtractedCircuit,
    classification: Classification,
) -> MeasurementTable:
    """Aggregate per-device W/L into per-class statistics."""
    groups: dict[TransistorClass, list[tuple[float, float]]] = {}
    for name, dev in extracted.devices.items():
        cls = classification.functional.get(name, TransistorClass.UNKNOWN)
        groups.setdefault(cls, []).append((dev.width_nm, dev.length_nm))

    per_class: dict[TransistorClass, ClassStats] = {}
    total = 0
    for cls, dims in groups.items():
        ws = [w for w, _l in dims]
        ls = [l for _w, l in dims]
        per_class[cls] = ClassStats(
            count=len(dims),
            mean_w_nm=statistics.fmean(ws),
            mean_l_nm=statistics.fmean(ls),
            std_w_nm=statistics.pstdev(ws) if len(ws) > 1 else 0.0,
            std_l_nm=statistics.pstdev(ls) if len(ls) > 1 else 0.0,
        )
        # W and L are each a distinct measurement per device (§V-B).
        total += 2 * len(dims)

    # Bitline pitch from the lane rails' Y positions.
    pitch = None
    ys: list[float] = []
    features = extracted.features
    from repro.layout.elements import Layer  # local import to avoid cycles

    labels, count = features.components(Layer.METAL1)
    bitline_nets = set(classification.bitline_nets)
    for (layer, comp), net in extracted.net_of_component.items():
        if layer is Layer.METAL1 and net in bitline_nets:
            _cx, cy = features.component_centroid_nm(Layer.METAL1, comp)
            ys.append(cy)
    unique_ys = sorted(set(round(y, 1) for y in ys))
    if len(unique_ys) >= 2:
        pitch = pitch_of(unique_ys)
        total += len(unique_ys)

    return MeasurementTable(
        per_class=per_class,
        bitline_pitch_nm=pitch,
        region_extent_nm=features.extent_nm(),
        total_measurements=total,
    )


@dataclass
class ValidationReport:
    """Per-class W/L recovery error against the generating layout."""

    width_error: dict[TransistorClass, float]
    length_error: dict[TransistorClass, float]
    missing_classes: list[TransistorClass]
    spurious_classes: list[TransistorClass]
    device_count_expected: int
    device_count_found: int

    def max_relative_error(self) -> float:
        """Worst W or L relative error across classes."""
        errors = list(self.width_error.values()) + list(self.length_error.values())
        return max(errors) if errors else 0.0

    @property
    def complete(self) -> bool:
        """True when every ground-truth class was recovered."""
        return not self.missing_classes


def validation_errors(
    table: MeasurementTable,
    truth: LayoutCell,
) -> ValidationReport:
    """Score measured per-class means against the generating layout."""
    truth_dims: dict[TransistorKind, list[tuple[float, float]]] = {}
    for t in truth.transistors:
        truth_dims.setdefault(t.kind, []).append((t.width, t.length))

    width_error: dict[TransistorClass, float] = {}
    length_error: dict[TransistorClass, float] = {}
    missing: list[TransistorClass] = []
    spurious: list[TransistorClass] = []

    for cls, kind in CLASS_TO_KIND.items():
        have = cls in table.per_class
        expect = kind in truth_dims
        if expect and not have:
            missing.append(cls)
            continue
        if have and not expect:
            spurious.append(cls)
            continue
        if not have:
            continue
        stats = table.per_class[cls]
        true_w = statistics.fmean(w for w, _l in truth_dims[kind])
        true_l = statistics.fmean(l for _w, l in truth_dims[kind])
        width_error[cls] = abs(stats.mean_w_nm - true_w) / true_w
        length_error[cls] = abs(stats.mean_l_nm - true_l) / true_l

    found = sum(s.count for c, s in table.per_class.items() if c in CLASS_TO_KIND)
    return ValidationReport(
        width_error=width_error,
        length_error=length_error,
        missing_classes=missing,
        spurious_classes=spurious,
        device_count_expected=len(truth.transistors),
        device_count_found=found,
    )
