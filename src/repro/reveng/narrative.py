"""Step-by-step reverse-engineering narrative (the Fig 8 story).

The paper's §V-A walks through a multi-dimensional mapping: shared lines
on the top slice, via connections to gates and drains, the full circuit
map, and finally the identification of the cross-coupled pSA pair.  This
module generates that narrative for any :class:`ReversedChip` produced by
the workflows — both as structured steps (machine-checkable) and as a
readable report, so a recovered topology never has to be taken on faith.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuits.topologies import SaTopology
from repro.layout.elements import Layer
from repro.reveng.classify import TransistorClass
from repro.reveng.workflow import ReversedChip


@dataclass(frozen=True)
class NarrativeStep:
    """One numbered step with its evidence."""

    number: int
    title: str
    evidence: tuple[str, ...]

    def render(self) -> str:
        """Multi-line rendering of the step."""
        lines = [f"({self.number}) {self.title}"]
        lines += [f"      - {item}" for item in self.evidence]
        return "\n".join(lines)


@dataclass
class Narrative:
    """The full §V-A account of one reverse-engineering run."""

    steps: list[NarrativeStep] = field(default_factory=list)
    verdict: str = ""

    def render(self) -> str:
        """The printable report."""
        body = "\n".join(step.render() for step in self.steps)
        return f"{body}\n\nVerdict: {self.verdict}"


def _census(result: ReversedChip) -> dict[TransistorClass, int]:
    counts: dict[TransistorClass, int] = {}
    for cls in result.classification.functional.values():
        counts[cls] = counts.get(cls, 0) + 1
    return counts


def build_narrative(result: ReversedChip) -> Narrative:
    """Reconstruct the §V-A steps from an extraction's artefacts."""
    narrative = Narrative()
    extracted = result.extracted
    classification = result.classification
    features = extracted.features
    steps = narrative.steps

    # (i) intensities → features.
    layer_counts = {
        layer.name: features.components(layer)[1]
        for layer in (Layer.METAL1, Layer.METAL2, Layer.GATE, Layer.CONTACT, Layer.VIA1)
    }
    steps.append(NarrativeStep(
        1, "identified gates, wires and vias from the layer intensities",
        tuple(f"{name}: {count} components" for name, count in layer_counts.items()),
    ))

    # (ii) bitline anchors.
    steps.append(NarrativeStep(
        2, "anchored the analysis on the MAT bitlines",
        (
            f"{len(classification.bitline_nets)} bitline nets traced in from the MAT edges",
            f"{len(classification.lane_pairs)} BL/BLB pairs formed by Y adjacency",
        ),
    ))

    # (iii) transistor recovery.
    steps.append(NarrativeStep(
        3, "mapped transistors with their source/drain contacts and active regions",
        (
            f"{len(extracted.devices)} transistors recovered",
            f"{len(extracted.warnings)} tracing warnings",
        ),
    ))

    # (iv) structural classes.
    structural: dict[str, int] = {}
    for cls in classification.structural.values():
        structural[cls.value] = structural.get(cls.value, 0) + 1
    steps.append(NarrativeStep(
        4, "classified three structural transistor classes",
        tuple(f"{name}: {count}" for name, count in sorted(structural.items())),
    ))

    # (v-vii) functional assignment.
    census = _census(result)
    functional_evidence = [
        f"{cls.value}: {count}" for cls, count in sorted(census.items(), key=lambda kv: kv[0].value)
    ]
    if census.get(TransistorClass.EQUALIZER):
        functional_evidence.append(
            "common-gate devices short the bitlines together and to a global "
            "value -> precharge/equalizer"
        )
    if census.get(TransistorClass.ISOLATION) or census.get(TransistorClass.OFFSET_CANCEL):
        functional_evidence.append(
            "extra common-gate devices bridge bitlines to internal latch "
            "nodes -> isolation / offset cancellation"
        )
    steps.append(NarrativeStep(
        5, "assigned functionalities to the classes", tuple(functional_evidence)
    ))

    # (viii) channel heuristic.
    steps.append(NarrativeStep(
        6, "identified the PMOS latch pair as the narrower coupled devices",
        (
            f"pSA devices found: {census.get(TransistorClass.PSA, 0)}",
            f"nSA devices found: {census.get(TransistorClass.NSA, 0)}",
        ),
    ))

    # Topology verdict, with the literature pin-point for OCSAs.
    exact = sum(1 for m in result.lane_matches if m.exact)
    steps.append(NarrativeStep(
        7, "matched every lane's circuit against the reference corpus",
        (
            f"{result.lanes_matched} lanes matched, {exact} exactly (VF2 isomorphism)",
            f"consensus topology: {result.topology.value}",
        ),
    ))

    if result.topology is SaTopology.OCSA:
        narrative.verdict = (
            "offset-cancellation sense amplifier — pin-pointed to the design "
            "of Kim, Song & Jung (TVLSI 2019), as in the paper's §V-A"
        )
    else:
        narrative.verdict = (
            "classic sense amplifier (Keeth et al.), with region-spanning "
            "shared precharge/equalize gates"
        )
    return narrative
