"""Transistor classification and per-lane subcircuit assembly.

§V-A steps (iv)–(viii):

(iv)  three transistor classes: *multiplexer* (short individual gates),
      *common-gate* (gate spanning the entire region along Y), and
      *coupled* (shared source among devices gated by opposite bitlines);
(v)   multiplexer transistors connect bitlines to region-spanning wires →
      column devices;
(vi)  coupled transistors with an all-shared source → the latch;
(vii) common-gate devices shorting bitlines to a global value →
      precharge/equalizer; the extra common-gate devices of OCSA chips →
      isolation and offset cancellation;
(viii) PMOS latch transistors are the narrower pair.

Bitline anchoring (step ii) uses geometry: bitline nets are METAL1
components entering the region from a MAT side of the field of view.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np
from scipy import ndimage

from repro.circuits.netlist import Circuit, Device, DeviceType
from repro.errors import RevEngError
from repro.layout.elements import Layer
from repro.reveng.connectivity import ExtractedCircuit, ExtractedDevice

#: Gate-span fraction above which a gate counts as region-spanning.
COMMON_GATE_SPAN = 0.6
#: ...and below which it counts as an individual (multiplexer/latch) gate.
SHORT_GATE_SPAN = 0.3


class TransistorClass(enum.Enum):
    """The §V-A classes plus the functional refinements."""

    MULTIPLEXER = "multiplexer"
    COMMON_GATE = "common_gate"
    COUPLED = "coupled"
    # Functional refinements:
    COLUMN = "column"
    PRECHARGE = "precharge"
    EQUALIZER = "equalizer"
    ISOLATION = "isolation"
    OFFSET_CANCEL = "offset_cancel"
    NSA = "nSA"
    PSA = "pSA"
    LSA = "LSA"
    UNKNOWN = "unknown"


@dataclass
class Classification:
    """Outcome of device classification over a whole extracted region."""

    structural: dict[str, TransistorClass]  #: step-iv class per device
    functional: dict[str, TransistorClass]  #: refined role per device
    bitline_nets: list[str]  #: bitline net names, sorted by Y
    lane_pairs: list[tuple[str, str]]  #: (BL, BLB) per lane
    notes: list[str] = field(default_factory=list)


def identify_bitline_nets(extracted: ExtractedCircuit, edge_margin_px: int = 14) -> list[str]:
    """Bitline nets: METAL1 components that reach a MAT edge of the view.

    The MATs flank the SA region along x, so any long M1 rail touching the
    left or right margin of the field of view came from a MAT — exactly how
    the analyst anchors the analysis (the bitlines are traced in from the
    MAT, Fig 7a).
    """
    features = extracted.features
    labels, _count = features.components(Layer.METAL1)
    nx, _ny = features.shape
    left = np.unique(labels[:edge_margin_px, :])
    right = np.unique(labels[nx - edge_margin_px :, :])
    edge_comps = {int(c) for c in np.concatenate([left, right]) if c != 0}

    # Only nets that actually reach devices are sense-amplifier bitlines —
    # MAT bitlines that pass the field of view without entering the SA
    # region (the interleaved other-side lines) are excluded.
    used_nets: set[str] = set()
    for dev in extracted.devices.values():
        used_nets.add(dev.gate_net)
        used_nets.update(dev.terminal_nets)

    nets: dict[str, float] = {}
    for comp in edge_comps:
        net = extracted.net_of_component.get((Layer.METAL1, comp))
        if net is None or net not in used_nets:
            continue
        _cx, cy = features.component_centroid_nm(Layer.METAL1, comp)
        nets.setdefault(net, cy)
    return [net for net, _cy in sorted(nets.items(), key=lambda kv: kv[1])]


def classify_devices(extracted: ExtractedCircuit) -> Classification:
    """Run the full §V-A classification over an extracted circuit."""
    devices = extracted.devices
    circuit = extracted.circuit
    if not devices:
        raise RevEngError("no transistors were extracted", stage="reveng")

    bitlines = identify_bitline_nets(extracted)
    bitline_set = set(bitlines)
    notes: list[str] = []

    # --- step iv: structural classes -----------------------------------
    structural: dict[str, TransistorClass] = {}
    gate_fanout: dict[str, int] = {}
    for dev in devices.values():
        gate_fanout[dev.gate_net] = gate_fanout.get(dev.gate_net, 0) + 1

    # Coupled candidates: gate on a bitline, source shared with another
    # device gated by a *different* bitline.
    by_source: dict[str, list[ExtractedDevice]] = {}
    for dev in devices.values():
        for term in dev.terminal_nets:
            by_source.setdefault(term, []).append(dev)

    def is_coupled(dev: ExtractedDevice) -> bool:
        if dev.gate_net not in bitline_set:
            return False
        for term in dev.terminal_nets:
            for other in by_source.get(term, []):
                if other.name == dev.name:
                    continue
                if other.gate_net in bitline_set and other.gate_net != dev.gate_net:
                    return True
        return False

    for name, dev in devices.items():
        if dev.gate_span_fraction >= COMMON_GATE_SPAN:
            structural[name] = TransistorClass.COMMON_GATE
        elif is_coupled(dev):
            structural[name] = TransistorClass.COUPLED
        else:
            # Any remaining individual gate is a multiplexer-class device
            # ("each of these transistors has a different gate control").
            structural[name] = TransistorClass.MULTIPLEXER

    # --- steps v-vii: functional refinement ------------------------------
    functional: dict[str, TransistorClass] = {}

    # Latch devices: coupled; the nSA/pSA split happens in assign_channels.
    latch_names = [n for n, c in structural.items() if c is TransistorClass.COUPLED]

    # Column: multiplexer-class devices with one terminal on a bitline.
    # Everything multiplexer-class *not* touching a bitline is second-stage
    # logic (LSA latches on the LIO wires).
    for name, dev in devices.items():
        cls = structural[name]
        if cls is TransistorClass.MULTIPLEXER:
            on_bitline = any(t in bitline_set for t in dev.terminal_nets)
            functional[name] = TransistorClass.COLUMN if on_bitline else TransistorClass.LSA
        elif cls is TransistorClass.COUPLED:
            functional[name] = TransistorClass.NSA  # refined later
        elif cls is TransistorClass.UNKNOWN:
            functional[name] = TransistorClass.UNKNOWN

    # Common-gate devices: group by gate net and inspect what they connect.
    internal_nets = _latch_internal_nets(devices, structural, bitline_set)
    common_groups: dict[str, list[str]] = {}
    for name, cls in structural.items():
        if cls is TransistorClass.COMMON_GATE:
            common_groups.setdefault(devices[name].gate_net, []).append(name)

    for gate_net, members in common_groups.items():
        # Net shared by ALL members on one side = the global value (VPRE).
        terminal_sets = [set(devices[m].terminal_nets) for m in members]
        shared = set.intersection(*terminal_sets) if terminal_sets else set()
        bridges_bitlines = any(
            len(set(devices[m].terminal_nets) & bitline_set) == 2 for m in members
        )
        touches_internal = any(
            set(devices[m].terminal_nets) & internal_nets for m in members
        )
        for m in members:
            dev = devices[m]
            terms = set(dev.terminal_nets)
            if len(terms & bitline_set) == 2:
                functional[m] = TransistorClass.EQUALIZER
            elif shared and (terms & shared) and (terms & bitline_set):
                functional[m] = TransistorClass.PRECHARGE
            elif terms & internal_nets and terms & bitline_set:
                # Bitline ↔ internal node: ISO connects a bitline to the
                # node its own gate-side latch drains to; OC crosses.  The
                # distinction needs the lane pairing and is resolved below.
                functional[m] = TransistorClass.ISOLATION
            elif terms & internal_nets:
                functional[m] = TransistorClass.ISOLATION
            else:
                functional[m] = TransistorClass.PRECHARGE
        if bridges_bitlines:
            notes.append(f"common gate {gate_net}: equalizer group")
        if touches_internal:
            notes.append(f"common gate {gate_net}: isolation/offset-cancel group")

    # --- lane pairing ------------------------------------------------------
    lane_pairs = _pair_bitlines(extracted, bitlines)

    # Resolve ISO vs OC per lane: ISO connects BL to the internal node that
    # the *other* bitline's latch gates drive... concretely, in each lane the
    # device joining BL to internal node N is ISOLATION when the latch
    # transistor draining into N has its gate on the *other* bitline (the
    # classic cross-coupling via isolation), and OFFSET_CANCEL when the
    # latch draining into N is gated by BL itself (the diode connection).
    latch_drain_gate: dict[str, set[str]] = {}
    for name in latch_names:
        dev = devices[name]
        for term in dev.terminal_nets:
            if term not in bitline_set:
                latch_drain_gate.setdefault(term, set()).add(dev.gate_net)
    for name, cls in list(functional.items()):
        if cls is not TransistorClass.ISOLATION:
            continue
        dev = devices[name]
        bl_terms = [t for t in dev.terminal_nets if t in bitline_set]
        int_terms = [t for t in dev.terminal_nets if t in internal_nets]
        if not bl_terms or not int_terms:
            continue
        gates_at_node = latch_drain_gate.get(int_terms[0], set())
        if bl_terms[0] in gates_at_node:
            functional[name] = TransistorClass.OFFSET_CANCEL

    return Classification(
        structural=structural,
        functional=functional,
        bitline_nets=bitlines,
        lane_pairs=lane_pairs,
        notes=notes,
    )


def _latch_internal_nets(
    devices: dict[str, ExtractedDevice],
    structural: dict[str, TransistorClass],
    bitline_set: set[str],
) -> set[str]:
    """Nets touched by coupled (latch) devices that are not bitlines.

    Includes both the latch tails (LA/LAB) and, on OCSA chips, the internal
    SABL/SABLB nodes.
    """
    nets: set[str] = set()
    for name, cls in structural.items():
        if cls is not TransistorClass.COUPLED:
            continue
        for term in devices[name].terminal_nets:
            if term not in bitline_set:
                nets.add(term)
    return nets


def _pair_bitlines(extracted: ExtractedCircuit, bitlines: list[str]) -> list[tuple[str, str]]:
    """Pair bitline nets into lanes by Y adjacency.

    Bitlines come sorted by Y; each lane contributes two rails (BL from one
    MAT, BLB from the other) that are adjacent in Y, so consecutive pairs
    are lanes.
    """
    pairs: list[tuple[str, str]] = []
    for i in range(0, len(bitlines) - 1, 2):
        pairs.append((bitlines[i], bitlines[i + 1]))
    return pairs


def lane_subcircuit(
    extracted: ExtractedCircuit,
    classification: Classification,
    lane: int,
    rename: bool = True,
) -> Circuit:
    """Single-pair circuit for *lane*: the unit the topology matcher takes.

    The subcircuit contains every device with a terminal or gate on the
    lane's bitlines, plus the latch devices draining into its internal
    nodes.  With ``rename=True`` the bitline nets become ``BL``/``BLB``.
    """
    if lane >= len(classification.lane_pairs):
        raise RevEngError(f"lane {lane} out of range", stage="reveng")
    bl, blb = classification.lane_pairs[lane]
    members: list[str] = []
    for name, dev in extracted.devices.items():
        nets = set(dev.terminal_nets) | {dev.gate_net}
        if bl in nets or blb in nets:
            members.append(name)

    mapping = {bl: "BL", blb: "BLB"} if rename else {}
    sub = Circuit(f"{extracted.circuit.name}_lane{lane}")
    for name in members:
        dev = extracted.circuit.device(name)
        nets = {pin: mapping.get(net, net) for pin, net in dev.nets.items()}
        sub.add(Device(name, dev.dtype, nets, dict(dev.params), dev.role))
    return sub


def lane_subcircuits(extracted: ExtractedCircuit, classification: Classification) -> list[Circuit]:
    """All per-lane subcircuits."""
    return [
        lane_subcircuit(extracted, classification, lane)
        for lane in range(len(classification.lane_pairs))
    ]


def assign_channels(
    extracted: ExtractedCircuit,
    classification: Classification,
) -> None:
    """§V-A step viii: the narrower coupled pair is PMOS; the rest NMOS.

    Mutates the extracted circuit in place: latch devices are split into
    nSA (wide, NMOS) and pSA (narrow, PMOS) by measured width, per lane.
    """
    devices = extracted.devices
    by_lane: dict[int, list[str]] = {}
    lane_of_net = {}
    for lane, (bl, blb) in enumerate(classification.lane_pairs):
        lane_of_net[bl] = lane
        lane_of_net[blb] = lane

    for name, cls in classification.structural.items():
        if cls is not TransistorClass.COUPLED:
            continue
        gate = devices[name].gate_net
        if gate in lane_of_net:
            by_lane.setdefault(lane_of_net[gate], []).append(name)

    for lane, members in by_lane.items():
        if len(members) < 4:
            continue
        members.sort(key=lambda n: devices[n].width_nm)
        narrow = members[: len(members) // 2]
        for name in members:
            dev = extracted.circuit.device(name)
            if name in narrow:
                dev.dtype = DeviceType.PMOS
                classification.functional[name] = TransistorClass.PSA
            else:
                dev.dtype = DeviceType.NMOS
                classification.functional[name] = TransistorClass.NSA
