"""Export recovered layouts to GDSII.

The paper open-sources its reverse-engineered physical layouts in GDSII.
This module does the same for layouts recovered by this library's pipeline:
each per-layer feature mask is decomposed into maximal horizontal-run
rectangles (a standard mask→polygon step) and written through the GDSII
backend, producing a file any layout viewer can open.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.layout.cell import LayoutCell
from repro.layout.elements import Layer, Wire, Via, ActiveRegion, CapacitorCell
from repro.layout.gds import write_gds
from repro.layout.geometry import Rect
from repro.reveng.features import PlanarFeatures


def mask_to_rects(
    mask: np.ndarray,
    pixel_nm: float,
    origin_x_nm: float = 0.0,
    origin_y_nm: float = 0.0,
) -> list[Rect]:
    """Decompose a boolean mask into merged horizontal-run rectangles.

    Greedy two-pass: collect per-column vertical runs along y, then merge
    runs with identical (y0, y1) across adjacent columns.  Exact cover: the
    union of the returned rectangles equals the mask.
    """
    nx, ny = mask.shape
    # Vertical runs per column.
    runs: dict[int, list[tuple[int, int]]] = {}
    for i in range(nx):
        col = mask[i]
        if not col.any():
            continue
        padded = np.diff(np.concatenate(([0], col.view(np.int8), [0])))
        starts = np.flatnonzero(padded == 1)
        stops = np.flatnonzero(padded == -1)
        runs[i] = list(zip(starts.tolist(), stops.tolist()))

    rects: list[Rect] = []
    open_runs: dict[tuple[int, int], int] = {}  # (j0, j1) -> start column
    for i in range(nx + 1):
        current = set(runs.get(i, []))
        previous = set(open_runs)
        # Close runs that ended.
        for span in previous - current:
            i0 = open_runs.pop(span)
            rects.append(
                Rect(
                    origin_x_nm + i0 * pixel_nm,
                    origin_y_nm + span[0] * pixel_nm,
                    origin_x_nm + i * pixel_nm,
                    origin_y_nm + span[1] * pixel_nm,
                )
            )
        # Open new runs.
        for span in current - previous:
            open_runs[span] = i
    return rects


def features_to_cell(features: PlanarFeatures, name: str = "recovered") -> LayoutCell:
    """Build a LayoutCell from recovered feature masks.

    Semantics are gone (this is what a recovered layout *is*): wires carry
    the mask geometry per layer; vias, actives and capacitors land in their
    natural element types so the GDSII writer maps them to the right
    layers.
    """
    cell = LayoutCell(name)
    counter = 0
    for layer, mask in features.masks.items():
        rects = mask_to_rects(
            mask, features.pixel_nm, features.origin_x_nm, features.origin_y_nm
        )
        for rect in rects:
            counter += 1
            element_name = f"{layer.name.lower()}_{counter}"
            if layer in (Layer.CONTACT, Layer.VIA1):
                cell.add_via(Via(element_name, layer, rect))
            elif layer is Layer.ACTIVE:
                cell.add_active(ActiveRegion(element_name, rect))
            elif layer is Layer.CAPACITOR:
                cell.add_capacitor(CapacitorCell(element_name, rect))
            else:
                cell.add_wire(Wire(element_name, layer, rect))
    return cell


def export_recovered_gds(
    features: PlanarFeatures, path: str | Path, name: str = "recovered"
) -> int:
    """Write the recovered layout to a GDSII file; returns the shape count."""
    cell = features_to_cell(features, name=name)
    return write_gds(cell, path, lib_name="HIFIDRAM_RECOVERED")
