"""The serve daemon's execution engine.

One :class:`Scheduler` owns the resources every job shares:

* **one process pool** — a single
  :class:`~concurrent.futures.ProcessPoolExecutor` handed to every
  campaign through :func:`run_campaign`'s ``pool`` seam, so N concurrent
  jobs multiplex onto one bounded set of workers instead of each
  spawning its own;
* **one stage cache** — a single content-addressed cache directory, so
  a chip imaged by one tenant's job is a cache hit in the next tenant's
  (stage keys are content hashes; cross-job reuse is sound by
  construction);
* **runner threads** — ``runners`` threads lease jobs from the
  :class:`~repro.serve.queue.JobQueue` and drive them concurrently;
  the pool is the parallelism cap, the runner count is merely how many
  jobs may be *in flight* at once.

Each job runs with its record's private event bus and cancel event wired
into the runtime seams; the scheduler appends ``job_start`` /
``job_finish`` framing events around the campaign's own stream and
closes the bus when the job terminates, so ``follow`` readers of
``/jobs/{id}/events`` get a definitive end-of-stream.

Reports are flushed to ``<state_dir>/jobs/<id>.json`` *before* the job
flips to a terminal state — a client that polls ``state`` and then
fetches the report never sees a missing file.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

from repro.errors import ReproError
from repro.obs import get_logger
from repro.serve import queue as jobstate
from repro.serve.queue import JobQueue, JobRecord
from repro.serve.spec import run_job

logger = get_logger("repro.serve.scheduler")


class Scheduler:
    """Runner threads multiplexing queued jobs onto shared pool + cache."""

    def __init__(
        self,
        queue: JobQueue,
        state_dir: str | Path,
        pool_workers: int = 2,
        runners: int = 2,
        job_workers: int | None = None,
    ) -> None:
        self.queue = queue
        self.state_dir = Path(state_dir)
        self.reports_dir = self.state_dir / "jobs"
        self.reports_dir.mkdir(parents=True, exist_ok=True)
        self.cache_dir = self.state_dir / "cache"
        self.cache_dir.mkdir(parents=True, exist_ok=True)
        #: per-job ``workers`` budget passed to the runtime; None keeps
        #: each kind's own default resolution
        self.job_workers = job_workers
        self.pool = ProcessPoolExecutor(max_workers=max(1, pool_workers))
        self._threads = [
            threading.Thread(
                target=self._run_loop, name=f"repro-serve-runner-{i}",
                daemon=True,
            )
            for i in range(max(1, runners))
        ]
        self._stop = threading.Event()

    # --- lifecycle ----------------------------------------------------------

    def start(self) -> "Scheduler":
        for thread in self._threads:
            thread.start()
        return self

    def drain(self, timeout: float | None = None) -> None:
        """Graceful shutdown: stop admission, cancel queued jobs, let
        running jobs finish and flush, then release the pool."""
        self.queue.drain()
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout)
        self.pool.shutdown(wait=True)

    def stop(self) -> None:
        """Hard-ish shutdown for tests: drain, but cancel in-flight jobs
        first so runners come back quickly."""
        for record in self.queue.jobs():
            if record.state == jobstate.RUNNING:
                record.cancel_event.set()
        self.drain()

    # --- execution ----------------------------------------------------------

    def _run_loop(self) -> None:
        while not self._stop.is_set():
            record = self.queue.lease(timeout=0.2)
            if record is None:
                if self.queue.draining:
                    return
                continue
            self._execute(record)

    def _execute(self, record: JobRecord) -> None:
        # Everything from the framing emit to the report flush runs under
        # one umbrella: an escaping exception would kill the runner thread
        # and wedge the job in RUNNING forever.
        bus = record.bus
        try:
            bus.emit(
                "job_start", job=record.id, job_kind=record.spec.kind,
                tenant=record.spec.tenant, priority=record.spec.priority,
            )
            report = run_job(
                record.spec,
                cache_dir=str(self.cache_dir),
                workers=self.job_workers,
                pool=self.pool,
                cancel=record.cancel_event,
                bus=bus,
            )
            schema = report.to_dict().get("schema_version")
            path = self.reports_dir / f"{record.id}.json"
            path.write_text(report.to_json() + "\n", encoding="utf-8")
        except ReproError as exc:
            self._finish(record, jobstate.FAILED, error=str(exc))
            return
        except Exception as exc:  # noqa: BLE001 - a job must never kill a runner
            logger.error(
                "job crashed", extra={"fields": {
                    "job": record.id, "error": repr(exc),
                }},
            )
            self._finish(record, jobstate.FAILED,
                         error=f"{type(exc).__name__}: {exc}")
            return
        state = (
            jobstate.CANCELLED if record.cancel_event.is_set() else jobstate.DONE
        )
        self._finish(record, state, report_schema=schema,
                     report_path=str(path))

    def _finish(
        self,
        record: JobRecord,
        state: str,
        *,
        error: str | None = None,
        report_schema: str | None = None,
        report_path: str | None = None,
    ) -> None:
        self.queue.finish(
            record.id, state, error=error, report_schema=report_schema,
            report_path=report_path,
        )
        record.bus.emit(
            "job_finish", job=record.id, state=state,
            **({"error": error} if error else {}),
        )
        record.bus.close()
