"""The serve daemon's HTTP surface and process lifecycle.

Endpoints (all JSON unless noted):

``POST /jobs``
    Body: a ``job-spec/1`` document.  201 with the ``serve-job/1``
    status on admission; 400 with ``{"errors": [...]}`` on an invalid
    spec; 429 when the tenant quota is exhausted; 503 while draining.
``GET /jobs``
    ``{"jobs": [status, ...]}`` for every known job.
``GET /jobs/{id}``
    One job's ``serve-job/1`` status document.
``GET /jobs/{id}/report``
    The flushed versioned report JSON (``campaign-report/3`` /
    ``characterization-report/1`` / ``catalog-report/1``).  409 until
    the job reaches a state that has one.
``GET /jobs/{id}/events?since=SEQ&follow=1&timeout_s=S``
    The job's ``obs-event/1`` JSONL stream.  ``follow=1`` switches to
    chunked transfer and streams until the job's bus closes (the
    scheduler closes it when the job terminates) or the timeout lapses.
``DELETE /jobs/{id}``
    Cancel: queued jobs terminate immediately, running jobs quarantine
    at the runtime's next boundary and flush a partial report.
``GET /healthz``
    ``{"status": "ok", "state": "serving"|"draining", "jobs": {...}}``.

:class:`ServeDaemon` ties queue + scheduler + HTTP server together and
owns the graceful drain: SIGTERM (and SIGINT) stops admission, cancels
queued jobs, lets in-flight jobs finish and flush their reports, then
stops serving.
"""

from __future__ import annotations

import json
import signal
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any
from urllib.parse import parse_qs, urlparse

from repro.errors import DrainingError, QuotaError, SpecError
from repro.obs import get_logger
from repro.serve.queue import JobQueue, JobRecord
from repro.serve.scheduler import Scheduler
from repro.serve.spec import parse_job_spec

logger = get_logger("repro.serve.http")

#: request-body cap — a job spec is a small control document
_MAX_BODY_BYTES = 1 << 20


class ServeDaemon:
    """The ``python -m repro serve`` process: HTTP + queue + scheduler."""

    def __init__(
        self,
        state_dir: str | Path,
        port: int = 0,
        host: str = "127.0.0.1",
        pool_workers: int = 2,
        runners: int = 2,
        tenant_quota: int = 4,
        job_workers: int | None = None,
    ) -> None:
        self.queue = JobQueue(tenant_quota=tenant_quota)
        self.scheduler = Scheduler(
            self.queue, state_dir, pool_workers=pool_workers,
            runners=runners, job_workers=job_workers,
        )
        self._draining = threading.Event()
        self._drained = threading.Event()
        daemon = self

        class _Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # keep the daemon's stdout quiet

            # --- plumbing --------------------------------------------------

            def _send_json(self, doc: Any, status: int = 200) -> None:
                body = json.dumps(doc, sort_keys=True).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _send_raw(
                self, body: bytes, content_type: str, status: int = 200
            ) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _job_or_404(self, job_id: str) -> JobRecord | None:
                try:
                    return daemon.queue.get(job_id)
                except KeyError:
                    self._send_json(
                        {"error": f"unknown job {job_id!r}"}, status=404
                    )
                    return None

            # --- methods ---------------------------------------------------

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                parsed = urlparse(self.path)
                parts = [p for p in parsed.path.split("/") if p]
                try:
                    if parsed.path == "/healthz":
                        self._send_json(daemon.health())
                    elif parsed.path == "/jobs":
                        self._send_json(
                            {"jobs": [r.status() for r in daemon.queue.jobs()]}
                        )
                    elif len(parts) == 2 and parts[0] == "jobs":
                        record = self._job_or_404(parts[1])
                        if record is not None:
                            self._send_json(record.status())
                    elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "report":
                        self._handle_report(parts[1])
                    elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "events":
                        self._handle_events(parts[1], parse_qs(parsed.query))
                    else:
                        self._send_json({"error": "not found"}, status=404)
                except BrokenPipeError:  # client went away mid-write
                    pass

            def do_POST(self) -> None:  # noqa: N802
                parsed = urlparse(self.path)
                if parsed.path != "/jobs":
                    self._send_json({"error": "not found"}, status=404)
                    return
                length = int(self.headers.get("Content-Length", "0"))
                if length > _MAX_BODY_BYTES:
                    self._send_json({"error": "request body too large"},
                                    status=413)
                    return
                raw = self.rfile.read(length)
                try:
                    doc = json.loads(raw.decode("utf-8") or "null")
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    self._send_json(
                        {"error": f"request body is not JSON: {exc}"},
                        status=400,
                    )
                    return
                try:
                    spec = parse_job_spec(doc)
                    record = daemon.queue.submit(spec)
                except SpecError as exc:
                    self._send_json({"errors": exc.errors}, status=400)
                    return
                except QuotaError as exc:
                    self._send_json({"error": str(exc)}, status=429)
                    return
                except DrainingError as exc:
                    self._send_json({"error": str(exc)}, status=503)
                    return
                self._send_json(record.status(), status=201)

            def do_DELETE(self) -> None:  # noqa: N802
                parsed = urlparse(self.path)
                parts = [p for p in parsed.path.split("/") if p]
                if len(parts) != 2 or parts[0] != "jobs":
                    self._send_json({"error": "not found"}, status=404)
                    return
                record = self._job_or_404(parts[1])
                if record is None:
                    return
                daemon.queue.cancel(record.id)
                self._send_json(daemon.queue.get(record.id).status())

            # --- endpoint bodies -------------------------------------------

            def _handle_report(self, job_id: str) -> None:
                record = self._job_or_404(job_id)
                if record is None:
                    return
                if record.report_path is None:
                    self._send_json(
                        {
                            "error": f"job {job_id} has no report "
                                     f"(state: {record.state})",
                            "state": record.state,
                        },
                        status=409,
                    )
                    return
                body = Path(record.report_path).read_bytes()
                self._send_raw(body, "application/json")

            def _handle_events(
                self, job_id: str, query: dict[str, list[str]]
            ) -> None:
                record = self._job_or_404(job_id)
                if record is None:
                    return
                since = int(query.get("since", ["-1"])[0])
                follow = query.get("follow", ["0"])[0] in ("1", "true")
                if not follow:
                    lines = [
                        json.dumps(e.to_dict(), sort_keys=True)
                        for e in record.bus.drain(since)
                    ]
                    body = "\n".join(lines) + ("\n" if lines else "")
                    self._send_raw(body.encode(), "application/jsonl")
                    return
                timeout_s = float(query.get("timeout_s", ["30"])[0])
                self.send_response(200)
                self.send_header("Content-Type", "application/jsonl")
                self.send_header("Transfer-Encoding", "chunked")
                self.end_headers()

                def write_chunk(data: bytes) -> None:
                    self.wfile.write(f"{len(data):x}\r\n".encode())
                    self.wfile.write(data + b"\r\n")
                    self.wfile.flush()

                for line in daemon.follow_job_events(record, timeout_s, since):
                    write_chunk(line.encode() + b"\n")
                self.wfile.write(b"0\r\n\r\n")

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread: threading.Thread | None = None

    # --- shared content builders -------------------------------------------

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def health(self) -> dict:
        return {
            "status": "ok",
            "state": "draining" if self._draining.is_set() else "serving",
            "jobs": self.queue.counts(),
        }

    def follow_job_events(
        self, record: JobRecord, timeout_s: float, since: int = -1
    ):
        """Yield one job's event JSON lines until its bus closes (the job
        terminated) or ``timeout_s`` elapses."""
        import time as _time

        deadline = _time.perf_counter() + timeout_s
        seq = since
        while True:
            remaining = deadline - _time.perf_counter()
            if remaining <= 0:
                return
            fresh = record.bus.wait(seq, timeout=min(remaining, 0.25))
            for event in fresh:
                seq = max(seq, event.seq)
                yield json.dumps(event.to_dict(), sort_keys=True)
            if not fresh and record.bus.closed:
                return  # end-of-stream: the scheduler closed the job bus

    # --- lifecycle ----------------------------------------------------------

    def start(self) -> "ServeDaemon":
        self.scheduler.start()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-serve-http",
            daemon=True,
        )
        self._thread.start()
        return self

    def drain(self, timeout: float | None = None) -> None:
        """Graceful SIGTERM path: refuse new work, finish in-flight jobs,
        flush their reports, then stop the scheduler's pool.  Idempotent;
        the HTTP server keeps answering status/report reads until
        :meth:`stop`."""
        if self._draining.is_set():
            self._drained.wait()
            return
        self._draining.set()
        self.scheduler.drain(timeout=timeout)
        self._drained.set()

    def stop(self) -> None:
        if not self._drained.is_set():
            self.drain()
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain, then stop (main thread only)."""

        def _handle(signum: int, _frame: Any) -> None:
            logger.info(
                "signal received; draining",
                extra={"fields": {"signal": signum}},
            )
            # Drain on a helper thread: the handler must return quickly so
            # in-flight HTTP writes are not interrupted mid-frame.
            threading.Thread(
                target=self._drain_and_stop, name="repro-serve-drain",
                daemon=True,
            ).start()

        signal.signal(signal.SIGTERM, _handle)
        signal.signal(signal.SIGINT, _handle)

    def _drain_and_stop(self) -> None:
        self.drain()
        self.stop()

    def wait(self) -> None:
        """Block until the HTTP thread exits (after :meth:`stop`)."""
        while self._thread is not None and self._thread.is_alive():
            self._thread.join(timeout=0.5)

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc: Any) -> bool:
        self.stop()
        return False
