"""The versioned ``job-spec/1`` document and its lowering to runtime calls.

A job spec is the JSON body of ``POST /jobs``:

.. code-block:: json

    {
      "schema": "job-spec/1",
      "kind": "campaign",
      "tenant": "alice",
      "priority": 5,
      "spec": {"targets": ["classic", "ocsa"], "fast": true}
    }

``kind`` selects the runtime entry point (``campaign`` /
``characterize`` / ``catalog``); ``spec`` carries the same knobs the
one-shot CLI exposes as flags, with the same names, defaults and
lowering — :func:`run_job` is deliberately a line-for-line mirror of
``cmd_campaign`` / ``cmd_characterize`` / ``cmd_catalog`` so a report
produced through the daemon is bit-identical (timing fields aside — see
:func:`canonical_report`) to one produced by ``python -m repro
<kind> --json``.

Validation (:func:`parse_job_spec`) is strict and *accumulating*: every
unknown key, wrong type and bad enum value is collected and reported in
one :class:`~repro.errors.SpecError`, so a client fixes its document in
one round trip instead of one error at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import SpecError

#: accepted value of the optional top-level ``schema`` field
JOB_SPEC_SCHEMA = "job-spec/1"

_KINDS = ("campaign", "characterize", "catalog")

#: spec keys each kind accepts (mirrors the CLI flag set)
_CAMPAIGN_KEYS = {
    "targets", "chips", "pairs", "fast", "validate", "shift_penalty",
    "search_strategy", "tol", "fault_plan", "max_retries",
    "chip_timeout_s", "shard_slices", "shard_batch", "data_plane",
    "workers",
}
_CHARACTERIZE_KEYS = {
    "topologies", "corners", "caps_ff", "trials", "sigma_mv", "seed",
    "data", "deadline_ns", "data_plane", "workers",
}
_CATALOG_KEYS = {
    "variants", "seed", "builders", "vendors", "generations",
    "word_sizes", "column_muxes", "body_taps", "noises", "fault_plan",
    "full_pipeline", "workers",
}


@dataclass(frozen=True)
class JobSpec:
    """A validated job submission."""

    kind: str
    payload: dict = field(default_factory=dict)
    tenant: str = "default"
    priority: int = 0

    def to_dict(self) -> dict:
        return {
            "schema": JOB_SPEC_SCHEMA,
            "kind": self.kind,
            "tenant": self.tenant,
            "priority": self.priority,
            "spec": dict(self.payload),
        }


class _Check:
    """Accumulating type checks over one payload dict."""

    def __init__(self, payload: dict, errors: list[str]) -> None:
        self.payload = payload
        self.errors = errors

    def _get(self, key: str, types: tuple, what: str) -> Any:
        value = self.payload.get(key)
        if value is None:
            return None
        # bool is an int subclass; reject it for numeric fields explicitly.
        if isinstance(value, bool) and bool not in types:
            self.errors.append(f"spec.{key}: expected {what}, got {value!r}")
            return None
        if not isinstance(value, types):
            self.errors.append(f"spec.{key}: expected {what}, got {value!r}")
            return None
        return value

    def str_(self, key: str) -> str | None:
        return self._get(key, (str,), "a string")

    def int_(self, key: str, minimum: int | None = None) -> int | None:
        value = self._get(key, (int,), "an integer")
        if value is not None and minimum is not None and value < minimum:
            self.errors.append(f"spec.{key}: must be >= {minimum}, got {value}")
            return None
        return value

    def float_(self, key: str) -> float | None:
        value = self._get(key, (int, float), "a number")
        return None if value is None else float(value)

    def bool_(self, key: str) -> bool | None:
        return self._get(key, (bool,), "a boolean")

    def str_list(self, key: str) -> list[str] | None:
        value = self._get(key, (list,), "a list of strings")
        if value is None:
            return None
        if not all(isinstance(v, str) for v in value):
            self.errors.append(f"spec.{key}: expected a list of strings")
            return None
        return list(value)

    def int_list(self, key: str) -> list[int] | None:
        value = self._get(key, (list,), "a list of integers")
        if value is None:
            return None
        if not all(isinstance(v, int) and not isinstance(v, bool) for v in value):
            self.errors.append(f"spec.{key}: expected a list of integers")
            return None
        return list(value)

    def num_list(self, key: str) -> list[float] | None:
        value = self._get(key, (list,), "a list of numbers")
        if value is None:
            return None
        ok = all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in value
        )
        if not ok:
            self.errors.append(f"spec.{key}: expected a list of numbers")
            return None
        return [float(v) for v in value]

    def enum(self, key: str, allowed: tuple[str, ...]) -> str | None:
        value = self.str_(key)
        if value is not None and value not in allowed:
            self.errors.append(
                f"spec.{key}: must be one of {', '.join(allowed)}, got {value!r}"
            )
            return None
        return value


def parse_job_spec(doc: Any) -> JobSpec:
    """Validate a ``job-spec/1`` document; raise :class:`SpecError` listing
    every problem at once."""
    errors: list[str] = []
    if not isinstance(doc, dict):
        raise SpecError("job spec must be a JSON object")

    schema = doc.get("schema", JOB_SPEC_SCHEMA)
    if schema != JOB_SPEC_SCHEMA:
        errors.append(f"schema: expected {JOB_SPEC_SCHEMA!r}, got {schema!r}")

    kind = doc.get("kind")
    if kind not in _KINDS:
        errors.append(f"kind: must be one of {', '.join(_KINDS)}, got {kind!r}")
        raise SpecError(errors)

    tenant = doc.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        errors.append(f"tenant: expected a non-empty string, got {tenant!r}")
        tenant = "default"
    priority = doc.get("priority", 0)
    if isinstance(priority, bool) or not isinstance(priority, int):
        errors.append(f"priority: expected an integer, got {priority!r}")
        priority = 0

    payload = doc.get("spec", {})
    if not isinstance(payload, dict):
        errors.append(f"spec: expected an object, got {payload!r}")
        payload = {}

    allowed = {
        "campaign": _CAMPAIGN_KEYS,
        "characterize": _CHARACTERIZE_KEYS,
        "catalog": _CATALOG_KEYS,
    }[kind]
    for key in sorted(set(payload) - allowed):
        errors.append(f"spec.{key}: unknown key for kind {kind!r}")

    check = _Check(payload, errors)
    if kind == "campaign":
        _validate_campaign(check)
    elif kind == "characterize":
        _validate_characterize(check)
    else:
        _validate_catalog(check)

    if errors:
        raise SpecError(errors)
    return JobSpec(kind=kind, payload=dict(payload), tenant=tenant,
                   priority=priority)


def _validate_campaign(check: _Check) -> None:
    targets = check.str_list("targets")
    chips = check.int_("chips", minimum=1)
    if targets and chips is not None:
        check.errors.append("spec.chips: cannot be combined with spec.targets")
    if targets is not None:
        from repro.core.chips import CHIPS

        for target in targets:
            if target.lower() not in ("classic", "ocsa") and target.upper() not in CHIPS:
                check.errors.append(f"spec.targets: unknown target {target!r}")
    check.int_("pairs", minimum=1)
    check.bool_("fast")
    check.bool_("validate")
    check.float_("shift_penalty")
    check.str_("search_strategy")
    check.float_("tol")
    check.int_("max_retries", minimum=0)
    check.float_("chip_timeout_s")
    check.bool_("shard_slices")
    check.int_("shard_batch", minimum=1)
    check.enum("data_plane", ("pickle", "shm"))
    check.int_("workers", minimum=1)
    _validate_fault_plan(check)


def _validate_characterize(check: _Check) -> None:
    check.str_list("topologies")
    check.str_list("corners")
    check.num_list("caps_ff")
    check.int_("trials", minimum=1)
    check.float_("sigma_mv")
    check.int_("seed")
    check.int_("data")
    check.float_("deadline_ns")
    check.enum("data_plane", ("pickle", "shm"))
    check.int_("workers", minimum=1)


def _validate_catalog(check: _Check) -> None:
    check.int_("variants", minimum=1)
    check.int_("seed")
    check.str_list("builders")
    check.str_list("vendors")
    check.str_list("generations")
    check.int_list("word_sizes")
    check.int_list("column_muxes")
    check.str_list("body_taps")
    check.str_list("noises")
    check.bool_("full_pipeline")
    check.int_("workers", minimum=1)
    _validate_fault_plan(check)


def _validate_fault_plan(check: _Check) -> None:
    spec = check.str_("fault_plan")
    if spec is not None:
        from repro.errors import ReproError
        from repro.faults import FaultPlan

        try:
            FaultPlan.parse(spec)
        except ReproError as exc:
            check.errors.append(f"spec.fault_plan: {exc}")


# --- spec → runtime lowering ------------------------------------------------


def run_job(spec: JobSpec, *, cache_dir=None, workers=None, pool=None,
            cancel=None, bus=None):
    """Execute one validated job and return its report object.

    The lowering is the CLI's, knob for knob, so the returned report is
    bit-identical (modulo wall-clock fields) to the matching one-shot
    run.  ``workers`` overrides the spec's own worker budget (the daemon
    pins it so jobs share one pool fairly); ``pool``/``cancel``/``bus``
    are handed straight to the runtime seams.
    """
    if spec.kind == "campaign":
        return _run_campaign_job(spec.payload, cache_dir, workers, pool,
                                 cancel, bus)
    if spec.kind == "characterize":
        return _run_characterize_job(spec.payload, cache_dir, workers, pool,
                                     cancel, bus)
    return _run_catalog_job(spec.payload, cache_dir, workers, pool, cancel,
                            bus)


def _run_campaign_job(payload, cache_dir, workers, pool, cancel, bus):
    from repro.pipeline import PipelineConfig
    from repro.runtime import ChipJob, run_campaign

    n_pairs = payload.get("pairs", 2)
    validate = payload.get("validate", True)
    n_chips = payload.get("chips")
    targets = payload.get("targets")
    if not targets and n_chips is None:
        targets = ["classic", "ocsa"]

    jobs = []
    if n_chips is not None:
        for k in range(n_chips):
            topo = ("classic", "ocsa")[k % 2]
            idx = k // 2
            name = topo if idx == 0 else f"{topo}-{idx + 1}"
            jobs.append(ChipJob.synthetic(
                name, topo, n_pairs=n_pairs, validate=validate
            ))
    for target in targets or []:
        if target.lower() in ("classic", "ocsa"):
            jobs.append(ChipJob.synthetic(
                target.lower(), target.lower(), n_pairs=n_pairs,
                validate=validate
            ))
        else:
            jobs.append(ChipJob.for_chip(
                target, n_pairs=n_pairs, validate=validate
            ))

    config = PipelineConfig()
    if payload.get("fast"):
        config = config.replaced(
            denoise_iterations=10, align_search_px=2, align_baselines=(1, 2)
        )
    if payload.get("shift_penalty") is not None:
        config = config.replaced(align_shift_penalty=payload["shift_penalty"])
    if payload.get("search_strategy") is not None:
        config = config.replaced(align_search_strategy=payload["search_strategy"])
    if payload.get("tol") is not None:
        config = config.replaced(denoise_tol=payload["tol"])
    if payload.get("shard_slices") or payload.get("shard_batch") is not None:
        from repro.pipeline import ShardPlan

        config = config.replaced(
            shard=ShardPlan(slices=True, batch=payload.get("shard_batch"))
        )
    if payload.get("data_plane") is not None:
        from dataclasses import replace as _dc_replace

        config = config.replaced(
            shard=_dc_replace(config.shard, data_plane=payload["data_plane"])
        )

    policy = None
    if payload.get("max_retries") is not None or payload.get("chip_timeout_s") is not None:
        from repro.runtime import ResiliencePolicy

        policy = ResiliencePolicy(
            max_retries=payload.get("max_retries", 2),
            chip_timeout_s=payload.get("chip_timeout_s"),
        )

    fault_plan = None
    if payload.get("fault_plan") is not None:
        from repro.faults import FaultPlan

        fault_plan = FaultPlan.parse(payload["fault_plan"])

    return run_campaign(
        jobs, config=config,
        workers=workers if workers is not None else payload.get("workers"),
        cache_dir=cache_dir, policy=policy, fault_plan=fault_plan,
        pool=pool, cancel=cancel, bus=bus,
    )


def _run_characterize_job(payload, cache_dir, workers, pool, cancel, bus):
    from repro.analog import CharacterizationSpec, characterize

    spec_kwargs: dict = {}
    if payload.get("topologies") is not None:
        spec_kwargs["topologies"] = tuple(payload["topologies"])
    if payload.get("corners") is not None:
        spec_kwargs["corners"] = tuple(payload["corners"])
    if payload.get("caps_ff") is not None:
        spec_kwargs["bitline_caps_f"] = tuple(
            c * 1e-15 for c in payload["caps_ff"]
        )
    for key in ("trials", "sigma_mv", "seed", "data", "deadline_ns"):
        if payload.get(key) is not None:
            spec_kwargs[key] = payload[key]

    config = None
    if payload.get("data_plane") is not None:
        from dataclasses import replace as _dc_replace

        from repro.pipeline import PipelineConfig

        base = PipelineConfig()
        config = base.replaced(
            shard=_dc_replace(base.shard, data_plane=payload["data_plane"])
        )
    return characterize(
        CharacterizationSpec(**spec_kwargs),
        workers=workers if workers is not None else payload.get("workers"),
        cache_dir=cache_dir, config=config,
        pool=pool, cancel=cancel, bus=bus,
    )


def _run_catalog_job(payload, cache_dir, workers, pool, cancel, bus):
    from repro.catalog import (
        CatalogSpec,
        expand_grid,
        run_catalog_campaign,
        sample,
    )

    axes: dict = {}
    if payload.get("builders") is not None:
        axes["variants"] = tuple(payload["builders"])
    for key, axis in (
        ("vendors", "vendors"), ("generations", "generations"),
        ("word_sizes", "word_sizes"), ("column_muxes", "column_muxes"),
        ("body_taps", "body_taps"), ("noises", "noises"),
    ):
        if payload.get(key) is not None:
            axes[axis] = tuple(payload[key])
    if payload.get("fault_plan") is not None:
        from repro.faults import FaultPlan

        axes["fault_plans"] = (FaultPlan.parse(payload["fault_plan"]),)

    spec = CatalogSpec(**axes)
    n_variants = payload.get("variants")
    seed = payload.get("seed", 0)
    variants = (
        sample(spec, n_variants, seed=seed)
        if n_variants is not None
        else expand_grid(spec)
    )

    config = None
    if payload.get("full_pipeline"):
        from repro.pipeline import PipelineConfig

        config = PipelineConfig()
    return run_catalog_campaign(
        variants, config=config,
        workers=workers if workers is not None else payload.get("workers"),
        cache_dir=cache_dir,
        seed=seed if n_variants is not None else None,
        pool=pool, cancel=cancel, bus=bus,
    )


# --- report canonicalization ------------------------------------------------

#: report-dict keys that carry wall-clock, machine-local or
#: execution-plan values (cache warmth decides hits vs misses and a
#: stage's run/cache-hit disposition without changing any result);
#: removed by :func:`canonical_report` at any nesting depth
_VOLATILE_KEYS = (
    "wall_seconds", "seconds", "cache_dir", "beam_hours",
    "cache_hits", "cache_misses", "disposition", "notes",
)
#: note keys that embed timing (kept for callers canonicalizing note
#: dicts on their own; "notes" blocks are dropped wholesale above —
#: a cache-hit stage record legitimately carries none)
_VOLATILE_NOTE_KEYS = ("deadline_remaining_s",)


def canonical_report(data):
    """A copy of a report dict with every timing/machine-local field removed.

    Two runs of the same spec on the same code produce the same canonical
    form regardless of where they ran (one-shot CLI, daemon, warm or cold
    stage cache, different worker counts) — this is what the bit-identity
    tests and the CI smoke job compare.
    """
    if isinstance(data, dict):
        out = {}
        for key, value in data.items():
            if key in _VOLATILE_KEYS or key in _VOLATILE_NOTE_KEYS:
                continue
            out[key] = canonical_report(value)
        return out
    if isinstance(data, list):
        return [canonical_report(v) for v in data]
    return data
