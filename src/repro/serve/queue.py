"""Admission queue for the serve daemon.

A :class:`JobQueue` is the single synchronisation point between the HTTP
layer (producers) and the scheduler's runner threads (consumers):

* **priority ordering** — jobs are leased highest ``priority`` first,
  FIFO within a priority level (a strict heap on ``(-priority, seq)``);
* **per-tenant quotas** — each tenant may hold at most ``tenant_quota``
  jobs in flight (queued + running); the quota frees when a job reaches
  a terminal state, so a chatty client cannot starve the box;
* **drain gate** — :meth:`drain` atomically stops admission
  (:class:`~repro.errors.DrainingError` for later submits) and cancels
  every job still waiting in the heap, while jobs already leased keep
  running (the scheduler finishes and flushes them).

Every job owns a private :class:`~repro.obs.EventBus` (created at
admission, so ``GET /jobs/{id}/events`` streams from the moment of
submission) and a cancel :class:`threading.Event` wired into the
campaign runtime's cancellation seam.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from dataclasses import dataclass, field

from repro.errors import DrainingError, QuotaError, ServeError
from repro.obs import EventBus
from repro.serve.spec import JobSpec

#: states a job moves through; terminal states release the tenant quota
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
_TERMINAL = (DONE, FAILED, CANCELLED)


@dataclass
class JobRecord:
    """One submitted job's full lifecycle state."""

    id: str
    spec: JobSpec
    state: str = QUEUED
    created_s: float = field(default_factory=time.time)
    started_s: float | None = None
    finished_s: float | None = None
    error: str | None = None
    #: schema string of the flushed report (``campaign-report/3`` ...)
    report_schema: str | None = None
    #: where the scheduler flushed the report JSON (None until done)
    report_path: str | None = None
    #: per-job lifecycle event stream, served by ``/jobs/{id}/events``
    bus: EventBus = field(default_factory=EventBus)
    #: cooperative cancellation flag, wired into the runtime seam
    cancel_event: threading.Event = field(default_factory=threading.Event)

    def status(self) -> dict:
        """The JSON document ``GET /jobs/{id}`` returns."""
        return {
            "schema": "serve-job/1",
            "id": self.id,
            "kind": self.spec.kind,
            "tenant": self.spec.tenant,
            "priority": self.spec.priority,
            "state": self.state,
            "created_s": self.created_s,
            "started_s": self.started_s,
            "finished_s": self.finished_s,
            "error": self.error,
            "report_schema": self.report_schema,
            "events_seq": self.bus.last_seq,
        }


class JobQueue:
    """Thread-safe priority queue with tenant quotas and a drain gate."""

    def __init__(self, tenant_quota: int = 4) -> None:
        if tenant_quota < 1:
            raise ServeError("tenant quota must be at least 1")
        self.tenant_quota = tenant_quota
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._heap: list[tuple[int, int, str]] = []  # (-priority, seq, id)
        self._jobs: dict[str, JobRecord] = {}
        self._seq = itertools.count()
        self._draining = False

    # --- producer side ------------------------------------------------------

    def submit(self, spec: JobSpec) -> JobRecord:
        """Admit one job; raises :class:`DrainingError` after :meth:`drain`
        and :class:`QuotaError` when the tenant is at its in-flight cap."""
        with self._available:
            if self._draining:
                raise DrainingError()
            in_flight = sum(
                1 for r in self._jobs.values()
                if r.spec.tenant == spec.tenant and r.state not in _TERMINAL
            )
            if in_flight >= self.tenant_quota:
                raise QuotaError(spec.tenant, self.tenant_quota)
            seq = next(self._seq)
            record = JobRecord(id=f"job-{seq:06d}", spec=spec)
            self._jobs[record.id] = record
            heapq.heappush(self._heap, (-spec.priority, seq, record.id))
            self._available.notify()
            return record

    # --- consumer side ------------------------------------------------------

    def lease(self, timeout: float | None = None) -> JobRecord | None:
        """Block until a queued job is available, mark it RUNNING, return
        it.  ``None`` on timeout or when draining with an empty heap."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._available:
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    record = self._jobs[job_id]
                    if record.state != QUEUED:
                        continue  # cancelled while waiting
                    record.state = RUNNING
                    record.started_s = time.time()
                    return record
                if self._draining:
                    return None
                if deadline is None:
                    self._available.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._available.wait(remaining):
                        return None

    def finish(
        self,
        job_id: str,
        state: str,
        *,
        error: str | None = None,
        report_schema: str | None = None,
        report_path: str | None = None,
    ) -> None:
        """Move a RUNNING job to a terminal state (scheduler only)."""
        if state not in _TERMINAL:
            raise ServeError(f"finish state must be terminal, got {state!r}")
        with self._available:
            record = self._require(job_id)
            record.state = state
            record.finished_s = time.time()
            record.error = error
            record.report_schema = report_schema
            record.report_path = report_path
            self._available.notify_all()

    # --- shared -------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        with self._lock:
            return self._require(job_id)

    def jobs(self) -> list[JobRecord]:
        with self._lock:
            return sorted(self._jobs.values(), key=lambda r: r.id)

    def cancel(self, job_id: str) -> JobRecord:
        """Cancel one job.  A queued job terminates immediately; a running
        job gets its cancel event set and quarantines at the runtime's
        next opportunity (the scheduler still flushes its partial
        report).  Cancelling a terminal job is a no-op."""
        with self._available:
            record = self._require(job_id)
            if record.state == QUEUED:
                record.state = CANCELLED
                record.finished_s = time.time()
                record.error = "cancelled before start"
                record.cancel_event.set()
                record.bus.close()
            elif record.state == RUNNING:
                record.cancel_event.set()
            return record

    def drain(self) -> list[JobRecord]:
        """Stop admitting; cancel everything still queued; wake leasers.
        Returns the records that were cancelled while queued."""
        with self._available:
            self._draining = True
            dropped = []
            for record in self._jobs.values():
                if record.state == QUEUED:
                    record.state = CANCELLED
                    record.finished_s = time.time()
                    record.error = "daemon drained before start"
                    record.cancel_event.set()
                    record.bus.close()
                    dropped.append(record)
            self._available.notify_all()
            return dropped

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    def counts(self) -> dict[str, int]:
        """State → count summary for ``/healthz``."""
        with self._lock:
            counts: dict[str, int] = {}
            for record in self._jobs.values():
                counts[record.state] = counts.get(record.state, 0) + 1
            return counts

    def _require(self, job_id: str) -> JobRecord:
        record = self._jobs.get(job_id)
        if record is None:
            raise KeyError(job_id)
        return record
