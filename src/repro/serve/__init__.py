"""Campaign-as-a-service: the ``python -m repro serve`` daemon.

One long-lived process multiplexes many independent campaign /
characterization / catalog jobs onto a single shared worker pool and a
single shared stage cache, so a lab box can accept work over HTTP
instead of one shell per run:

* :mod:`repro.serve.spec` — the versioned ``job-spec/1`` document
  (validation, and the same spec→jobs lowering the one-shot CLI uses,
  so a daemon report is bit-identical to the CLI's);
* :mod:`repro.serve.queue` — the admission queue (priority ordering,
  per-tenant quotas, drain gate);
* :mod:`repro.serve.scheduler` — runner threads that lease jobs from
  the queue and execute them on the shared
  :class:`~concurrent.futures.ProcessPoolExecutor` + cache directory,
  flushing versioned reports to the state dir;
* :mod:`repro.serve.http` — the HTTP surface (``POST /jobs``,
  ``GET /jobs/{id}``, ``GET /jobs/{id}/report``,
  ``GET /jobs/{id}/events``, ``DELETE /jobs/{id}``, ``/healthz``) and
  the SIGTERM-driven graceful drain.
"""

from repro.serve.http import ServeDaemon
from repro.serve.queue import JobQueue, JobRecord
from repro.serve.scheduler import Scheduler
from repro.serve.spec import JobSpec, canonical_report, parse_job_spec, run_job

__all__ = [
    "JobSpec",
    "JobQueue",
    "JobRecord",
    "Scheduler",
    "ServeDaemon",
    "canonical_report",
    "parse_job_spec",
    "run_job",
]
