"""Acquisition cost model (§IV's economics).

The paper repeatedly prices its choices in machine time: the 100 µm²
A4/A5 scans took *more than 24 hours* of FIB/SEM each, which is why the
remaining chips were scanned at 30 µm²; dwell time trades SNR against
cost; the ROI identification budget is 2 hours.  This model reproduces
those trade-offs so campaign planning can be reasoned about (and tested)
without a microscope.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AcquisitionError

#: FIB milling rate at the paper's 90 pA Gallium beam: minutes of beam
#: time per µm³ of removed material (a gentle current mills slowly —
#: that is why it preserves the exposed face).
MILL_MINUTES_PER_UM3 = 13.0

#: SEM frame averaging: the quoted per-pixel dwell is repeated over this
#: many integration frames to reach a usable SNR on IC cross-sections.
FRAME_AVERAGING = 64

#: Fixed per-slice overhead (stage settle, autofocus, registration), s.
SLICE_OVERHEAD_S = 30.0


@dataclass(frozen=True)
class CampaignCost:
    """Machine-time breakdown of a volumetric acquisition."""

    slices: int
    sem_hours: float
    fib_hours: float
    overhead_hours: float

    @property
    def total_hours(self) -> float:
        """Total FIB/SEM machine time."""
        return self.sem_hours + self.fib_hours + self.overhead_hours


def campaign_cost(
    area_um2: float,
    pixel_nm: float,
    dwell_time_us: float,
    slice_thickness_nm: float,
    depth_nm: float = 380.0,
) -> CampaignCost:
    """Estimate the machine time of a volumetric scan.

    *area_um2* is the planar ROI area (the paper's 100 or 30 µm²); the
    scanned volume is that area times the stack depth.  Slices cut along
    one side; each exposes a face of (side × depth) that SEM rasterises at
    ``pixel_nm`` and ``dwell_time_us``.
    """
    if min(area_um2, pixel_nm, dwell_time_us, slice_thickness_nm) <= 0:
        raise AcquisitionError("all cost parameters must be positive", stage="acquire")
    side_nm = (area_um2 ** 0.5) * 1000.0
    slices = max(1, int(side_nm / slice_thickness_nm))
    face_pixels = (side_nm / pixel_nm) * (depth_nm / pixel_nm)
    sem_seconds = slices * face_pixels * dwell_time_us * FRAME_AVERAGING / 1e6
    slice_volume_um3 = (side_nm / 1000.0) * (depth_nm / 1000.0) * (
        slice_thickness_nm / 1000.0
    )
    fib_seconds = slices * slice_volume_um3 * MILL_MINUTES_PER_UM3 * 60.0
    overhead_seconds = slices * SLICE_OVERHEAD_S
    return CampaignCost(
        slices=slices,
        sem_hours=sem_seconds / 3600.0,
        fib_hours=fib_seconds / 3600.0,
        overhead_hours=overhead_seconds / 3600.0,
    )


def reference_campaigns() -> dict[str, CampaignCost]:
    """The paper's two campaign classes.

    * "A4/A5": 100 µm² at ~5–10 nm pixels, 3 µs dwell, 10–20 nm slices —
      "more than 24 hours of SEM/FIB";
    * "reduced": 30 µm², the economy setting used for the other chips.
    """
    return {
        "full_100um2": campaign_cost(
            area_um2=100.0, pixel_nm=5.2, dwell_time_us=3.0, slice_thickness_nm=10.0
        ),
        "reduced_30um2": campaign_cost(
            area_um2=30.0, pixel_nm=4.2, dwell_time_us=6.0, slice_thickness_nm=10.0
        ),
    }
