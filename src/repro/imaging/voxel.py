"""Voxelization: layout cells → 3-D material volumes.

An IC is a vertical stack of layers (Fig 4).  The voxelizer assigns each
:class:`~repro.layout.elements.Layer` a physical z-range and rasterises the
cell's rectangles into a dense ``uint8`` volume of material codes; the SEM
model then maps materials to detector contrast.

Axes convention throughout the imaging/pipeline code:

* axis 0 — **x** (nm / ``voxel_nm``): the bitline direction;
* axis 1 — **y**: the along-the-SA-region direction (FIB slices cut
  perpendicular to y, i.e. each slice is an x–z image);
* axis 2 — **z**: depth, substrate at z=0.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import AcquisitionError
from repro.layout.cell import LayoutCell
from repro.layout.elements import LAYER_MATERIAL, Layer, Material

#: Physical z-extent of each layer (nm), bottom to top of the stack.
LAYER_Z_RANGES: dict[Layer, tuple[float, float]] = {
    Layer.ACTIVE: (0.0, 40.0),
    Layer.GATE: (40.0, 75.0),
    Layer.CONTACT: (40.0, 120.0),
    Layer.METAL1: (120.0, 160.0),
    Layer.VIA1: (160.0, 200.0),
    Layer.METAL2: (200.0, 260.0),
    Layer.CAPACITOR: (260.0, 380.0),
}

#: Total stack height in nm.
STACK_HEIGHT_NM = max(z1 for _z0, z1 in LAYER_Z_RANGES.values())

#: Material code for each material (0 = dielectric background).
MATERIAL_CODES: dict[Material, int] = {
    Material.DIELECTRIC: 0,
    Material.SILICON: 1,
    Material.POLY: 2,
    Material.TUNGSTEN: 3,
    Material.COPPER: 4,
    Material.CAPACITOR_STACK: 5,
}
CODE_TO_MATERIAL = {code: mat for mat, code in MATERIAL_CODES.items()}


@dataclass
class VoxelVolume:
    """A dense material volume plus its coordinate metadata."""

    data: np.ndarray  # uint8, shape (nx, ny, nz)
    voxel_nm: float
    origin_x_nm: float
    origin_y_nm: float

    @property
    def shape(self) -> tuple[int, int, int]:
        """(nx, ny, nz)."""
        return tuple(self.data.shape)  # type: ignore[return-value]

    def x_to_index(self, x_nm: float) -> int:
        """Nearest voxel index along x."""
        return int((x_nm - self.origin_x_nm) / self.voxel_nm)

    def y_to_index(self, y_nm: float) -> int:
        """Nearest voxel index along y."""
        return int((y_nm - self.origin_y_nm) / self.voxel_nm)

    def index_to_x(self, i: int) -> float:
        """Centre x (nm) of voxel column *i*."""
        return self.origin_x_nm + (i + 0.5) * self.voxel_nm

    def index_to_y(self, j: int) -> float:
        """Centre y (nm) of voxel row *j*."""
        return self.origin_y_nm + (j + 0.5) * self.voxel_nm

    def cross_section(self, y_index: int) -> np.ndarray:
        """The x–z material image at slice *y_index* (what FIB exposes)."""
        if not 0 <= y_index < self.data.shape[1]:
            raise AcquisitionError(f"slice index {y_index} out of range", stage="voxelize")
        return self.data[:, y_index, :]

    def planar_view(self, layer: Layer) -> np.ndarray:
        """Max-projection material image of *layer*'s z-range (x, y).

        This is the "selected planar slice" of Fig 7d: everything the layer
        contains, ignoring what is above/below it.
        """
        z0, z1 = LAYER_Z_RANGES[layer]
        k0 = int(z0 / self.voxel_nm / self._z_scale())
        k1 = max(k0 + 1, int(np.ceil(z1 / self.voxel_nm / self._z_scale())))
        return self.data[:, :, k0:k1].max(axis=2)

    def layer_mask(self, layer: Layer) -> np.ndarray:
        """Boolean (x, y) mask of *layer*'s own material within its z-range.

        Unlike :meth:`planar_view` this filters by the material the layer is
        made of, so e.g. CONTACT tungsten does not leak into the GATE mask
        even though their z-ranges overlap.
        """
        view = self.planar_view(layer)
        code = MATERIAL_CODES[LAYER_MATERIAL[layer]]
        return view == code

    def _z_scale(self) -> float:
        # z voxels use the same pitch as x/y.
        return 1.0


def voxelize(
    cell: LayoutCell,
    voxel_nm: float = 6.0,
    margin_nm: float = 40.0,
) -> VoxelVolume:
    """Rasterise *cell* into a material volume.

    Layers are rasterised bottom-up so that, where z-ranges overlap (GATE
    and CONTACT), the later layer wins inside its own shapes — matching how
    a contact plug displaces the dielectric above a gate.
    """
    if voxel_nm <= 0:
        raise AcquisitionError("voxel size must be positive", stage="voxelize")
    box = cell.bounding_box()
    origin_x = box.x0 - margin_nm
    origin_y = box.y0 - margin_nm
    nx = int(np.ceil((box.width + 2 * margin_nm) / voxel_nm))
    ny = int(np.ceil((box.height + 2 * margin_nm) / voxel_nm))
    nz = int(np.ceil(STACK_HEIGHT_NM / voxel_nm))
    data = np.zeros((nx, ny, nz), dtype=np.uint8)

    for layer in Layer:
        z0, z1 = LAYER_Z_RANGES[layer]
        k0 = int(z0 / voxel_nm)
        k1 = max(k0 + 1, int(np.ceil(z1 / voxel_nm)))
        code = MATERIAL_CODES[LAYER_MATERIAL[layer]]
        for rect in cell.shapes_on(layer):
            i0 = max(0, int((rect.x0 - origin_x) / voxel_nm))
            i1 = min(nx, max(i0 + 1, int(np.ceil((rect.x1 - origin_x) / voxel_nm))))
            j0 = max(0, int((rect.y0 - origin_y) / voxel_nm))
            j1 = min(ny, max(j0 + 1, int(np.ceil((rect.y1 - origin_y) / voxel_nm))))
            data[i0:i1, j0:j1, k0:k1] = code

    return VoxelVolume(data=data, voxel_nm=voxel_nm, origin_x_nm=origin_x, origin_y_nm=origin_y)


def rasterize_layer(cell: LayoutCell, layer: Layer, voxel_nm: float = 6.0, margin_nm: float = 40.0) -> np.ndarray:
    """Clean 2-D boolean mask of one layer (the noise-free ground truth).

    The reverse-engineering stage can run either on these ideal masks (fast
    unit tests) or on masks recovered through the imaging + post-processing
    pipeline (the end-to-end reproduction).
    """
    box = cell.bounding_box()
    origin_x = box.x0 - margin_nm
    origin_y = box.y0 - margin_nm
    nx = int(np.ceil((box.width + 2 * margin_nm) / voxel_nm))
    ny = int(np.ceil((box.height + 2 * margin_nm) / voxel_nm))
    mask = np.zeros((nx, ny), dtype=bool)
    for rect in cell.shapes_on(layer):
        i0 = max(0, int((rect.x0 - origin_x) / voxel_nm))
        i1 = min(nx, max(i0 + 1, int(np.ceil((rect.x1 - origin_x) / voxel_nm))))
        j0 = max(0, int((rect.y0 - origin_y) / voxel_nm))
        j1 = min(ny, max(j0 + 1, int(np.ceil((rect.y1 - origin_y) / voxel_nm))))
        mask[i0:i1, j0:j1] = True
    return mask
