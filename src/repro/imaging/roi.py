"""Blind ROI identification (Fig 6).

Vendors do not disclose where the SA region is.  The paper finds it blind:
acquire cross-sections marching across a bank until the image morphology
changes from capacitor texture (MAT) to transistor morphology (logic), map
the logic span, and pick the *widest* logic region around a MAT — row
drivers are narrower than sense amplifiers, so the wider side is the SAs
(W2 > W1 in Fig 6).  The procedure costs a bounded number of probe images
and "no more than 2 hours per chip".

Here the same search runs over a simulated :class:`VoxelVolume`: probes are
single cross-sections; classification uses the material content of the
probe (capacitor stack present → MAT; gates/actives without capacitors →
logic).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import AcquisitionError
from repro.imaging.voxel import MATERIAL_CODES, VoxelVolume
from repro.layout.elements import Material

#: Seconds of machine time per probe cross-section (mill + image + look).
PROBE_COST_S = 90.0


@dataclass(frozen=True)
class ProbeResult:
    """Classification of one probe cross-section."""

    x_nm: float
    kind: str  # "mat" | "logic" | "empty"
    capacitor_fraction: float
    device_fraction: float


@dataclass
class RoiSearchResult:
    """Outcome of the blind search."""

    probes: list[ProbeResult]
    logic_spans: list[tuple[float, float]]  #: (x0, x1) nm of each logic region
    roi: tuple[float, float]  #: the widest logic span = the SA region
    probe_count: int
    estimated_hours: float
    notes: dict[str, str] = field(default_factory=dict)

    @property
    def roi_width_nm(self) -> float:
        """Width of the identified SA region."""
        return self.roi[1] - self.roi[0]


def classify_probe(volume: VoxelVolume, x_nm: float) -> ProbeResult:
    """Classify the cross-section at *x_nm* as MAT, logic or empty.

    A y–z plane at fixed x (perpendicular to the bitlines): the MAT shows
    the capacitor stack above the bitlines; the SA region shows poly and
    active silicon without capacitors.
    """
    i = volume.x_to_index(x_nm)
    if not 0 <= i < volume.data.shape[0]:
        raise AcquisitionError(f"probe x={x_nm} nm outside the volume", stage="roi")
    plane = volume.data[i, :, :]
    total = plane.size
    cap = float(np.count_nonzero(plane == MATERIAL_CODES[Material.CAPACITOR_STACK])) / total
    # "Logic" evidence is any fabricated material that is not a capacitor:
    # most SA-region probe planes show mainly bitline metal (devices are
    # sparse along any single cut), so metals count as much as poly/active.
    devices = float(
        np.count_nonzero(plane != 0)
        - np.count_nonzero(plane == MATERIAL_CODES[Material.CAPACITOR_STACK])
    ) / total
    if cap > 0.002:
        kind = "mat"
    elif devices > 0.002:
        kind = "logic"
    else:
        kind = "empty"
    return ProbeResult(x_nm=x_nm, kind=kind, capacitor_fraction=cap, device_fraction=devices)


def identify_roi(
    volume: VoxelVolume,
    probe_step_nm: float = 150.0,
    refine_steps: int = 6,
) -> RoiSearchResult:
    """Run the Fig 6 blind search over *volume*.

    Coarse march at *probe_step_nm*, then bisection refinement of each
    MAT↔logic boundary (*refine_steps* halvings).  Returns every probe
    (the cost), the recovered logic spans, and the widest span as the ROI.
    """
    nx = volume.data.shape[0]
    extent = nx * volume.voxel_nm
    xs = np.arange(volume.origin_x_nm + probe_step_nm / 2, volume.origin_x_nm + extent, probe_step_nm)
    probes = [classify_probe(volume, float(x)) for x in xs]

    # For span building only MAT vs non-MAT matters: wiring-only gaps inside
    # a logic region (the inter-tile transition zones) are part of it.
    def span_kind(probe: ProbeResult) -> str:
        return "mat" if probe.kind == "mat" else "logic"

    # Refine each classification boundary by bisection; the axis then
    # decomposes into segments of constant kind delimited by boundaries.
    refined: list[ProbeResult] = []
    boundaries: list[float] = []
    for a, b in zip(probes, probes[1:]):
        if span_kind(a) == span_kind(b):
            continue
        lo, hi = a.x_nm, b.x_nm
        for _ in range(refine_steps):
            mid = (lo + hi) / 2
            p = classify_probe(volume, mid)
            refined.append(p)
            if span_kind(p) == span_kind(a):
                lo = mid
            else:
                hi = mid
        boundaries.append((lo + hi) / 2)

    all_probes = probes + refined

    # Segment kinds come from the coarse probes; segment edges from the
    # refined boundaries (plus the volume extremes).
    edges = [probes[0].x_nm] + boundaries + [probes[-1].x_nm]
    segment_kinds: list[str] = []
    kinds = [span_kind(p) for p in probes]
    segment_kinds.append(kinds[0])
    for a, b in zip(kinds, kinds[1:]):
        if a != b:
            segment_kinds.append(b)
    spans = [
        (x0, x1)
        for (x0, x1), kind in zip(zip(edges, edges[1:]), segment_kinds)
        if kind == "logic"
    ]

    if not spans or "mat" not in kinds:
        raise AcquisitionError(
            "blind search failed: no MAT/logic morphology change found "
            "(is there an SA region in this volume?)"
        )

    roi = max(spans, key=lambda s: s[1] - s[0])
    hours = len(all_probes) * PROBE_COST_S / 3600.0
    notes = {}
    if len(spans) > 1:
        widths = sorted(s[1] - s[0] for s in spans)
        notes["w1_vs_w2"] = (
            f"narrow logic span {widths[0]:.0f} nm (row drivers) vs "
            f"widest {widths[-1]:.0f} nm (SAs)"
        )
    return RoiSearchResult(
        probes=all_probes,
        logic_spans=spans,
        roi=roi,
        probe_count=len(all_probes),
        estimated_hours=hours,
        notes=notes,
    )
