"""SEM image formation.

Models the properties §IV describes as mattering for acquisition quality:

* **detector choice** — BSE contrast follows atomic number, SE contrast
  follows conductivity; for some vendors' processes one works markedly
  better than the other (the paper had to switch from SE to BSE for
  vendors B and C);
* **dwell time** — longer dwell → better SNR but more (expensive) machine
  time; noise here scales as ``1/sqrt(dwell)``;
* **accelerating voltage** — affects overall brightness;
* **pixel resolution** — images can be resampled to the Table I pixel
  sizes.

The input is a material cross-section (from
:class:`~repro.imaging.voxel.VoxelVolume`), the output a float image in
[0, 1] with Gaussian shot-noise — the input the §IV-C post-processing has
to clean up.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import AcquisitionError
from repro.imaging.voxel import CODE_TO_MATERIAL, MATERIAL_CODES
from repro.layout.elements import Material


class Detector(enum.Enum):
    """Secondary-electron vs backscatter-electron detection."""

    SE = "SE"
    BSE = "BSE"


#: Detector response per material, arbitrary units in [0, 1].
#: BSE tracks mean atomic number (W ≫ Cu > Si); SE tracks topology/
#: conductivity and separates materials less cleanly.
_CONTRAST: dict[Detector, dict[Material, float]] = {
    Detector.BSE: {
        Material.DIELECTRIC: 0.08,
        Material.SILICON: 0.30,
        Material.POLY: 0.42,
        Material.COPPER: 0.72,
        Material.TUNGSTEN: 0.95,
        Material.CAPACITOR_STACK: 0.60,
    },
    Detector.SE: {
        Material.DIELECTRIC: 0.15,
        Material.SILICON: 0.40,
        Material.POLY: 0.50,
        Material.COPPER: 0.80,
        Material.TUNGSTEN: 0.85,
        Material.CAPACITOR_STACK: 0.65,
    },
}

#: Per-vendor process modifier: vendors B and C give poor SE contrast
#: (§IV-B: "SE does not provide a good contrast, likely due to
#: manufacturing processes, so we use BSE instead").
SE_CONTRAST_COLLAPSE = 0.35


@dataclass(frozen=True)
class SemParameters:
    """Acquisition parameters (a subset of the real machine's space)."""

    detector: Detector = Detector.BSE
    dwell_time_us: float = 3.0
    accelerating_kv: float = 2.0
    pixel_nm: float = 5.0
    noise_floor: float = 0.05  #: noise sigma at 1 µs dwell
    se_friendly_process: bool = True  #: False for vendor B/C style processes

    def __post_init__(self) -> None:
        if self.dwell_time_us <= 0:
            raise AcquisitionError("dwell time must be positive", stage="acquire")
        if self.pixel_nm <= 0:
            raise AcquisitionError("pixel size must be positive", stage="acquire")

    @property
    def noise_sigma(self) -> float:
        """Gaussian noise level: shot-noise-like 1/sqrt(dwell) scaling."""
        return self.noise_floor / np.sqrt(self.dwell_time_us)

    @property
    def brightness(self) -> float:
        """Beam-voltage brightness factor (saturating)."""
        return min(1.2, 0.6 + 0.25 * self.accelerating_kv)

    def acquisition_cost_us(self, pixels: int) -> float:
        """Beam time for an image: pixels × dwell (the paper's cost lever)."""
        return pixels * self.dwell_time_us


def _build_contrast_table(params: SemParameters) -> np.ndarray:
    """Build the material-code → intensity table (uncached)."""
    table = np.zeros(max(MATERIAL_CODES.values()) + 1)
    for code, material in CODE_TO_MATERIAL.items():
        value = _CONTRAST[params.detector][material]
        if params.detector is Detector.SE and not params.se_friendly_process:
            # Collapse contrast toward the dielectric level.
            base = _CONTRAST[Detector.SE][Material.DIELECTRIC]
            value = base + (value - base) * SE_CONTRAST_COLLAPSE
        table[code] = value * params.brightness
    return np.clip(table, 0.0, 1.0)


@lru_cache(maxsize=64)
def _contrast_lookup_cached(params: SemParameters) -> np.ndarray:
    table = _build_contrast_table(params)
    table.flags.writeable = False  # shared across callers — must stay immutable
    return table


def contrast_lookup(params: SemParameters) -> np.ndarray:
    """Material-code → intensity lookup table for these parameters.

    Memoised per :class:`SemParameters` (the dataclass is frozen, hence
    hashable): acquisition rebuilds the same few-entry table for every
    slice of every stack, so repeated calls return one shared, *read-only*
    array.  Callers that need to mutate it must copy first.
    """
    return _contrast_lookup_cached(params)


def image_cross_section(
    material_image: np.ndarray,
    params: SemParameters,
    rng: np.random.Generator,
) -> np.ndarray:
    """Form a noisy SEM image from a material-code cross-section.

    The result is float32 in [0, 1]: contrast lookup + Gaussian noise with
    the dwell-time-dependent sigma.
    """
    if material_image.dtype != np.uint8:
        raise AcquisitionError("material image must be uint8 codes", stage="acquire")
    table = contrast_lookup(params)
    clean = table[material_image]
    noisy = clean + rng.normal(0.0, params.noise_sigma, size=clean.shape)
    return np.clip(noisy, 0.0, 1.0).astype(np.float32)


def snr_estimate(clean: np.ndarray, noisy: np.ndarray) -> float:
    """Signal-to-noise ratio in dB between a clean and a noisy image."""
    signal = float(np.var(clean))
    noise = float(np.var(noisy - clean))
    if noise == 0:
        return float("inf")
    return 10.0 * float(np.log10(signal / noise))


def contrast_separation(params: SemParameters) -> float:
    """Minimum inter-material contrast gap, in noise sigmas.

    The quantity that decides whether segmentation can classify materials:
    the paper's detector switch for vendors B/C is exactly a move to keep
    this above a usable level.
    """
    table = sorted(set(np.round(contrast_lookup(params), 6)))
    gaps = [b - a for a, b in zip(table, table[1:])]
    if not gaps:
        return 0.0
    return min(gaps) / params.noise_sigma
