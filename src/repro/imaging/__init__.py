"""SEM/FIB imaging substrate.

Replaces the paper's Helios 5 UX FIB/SEM (hardware-gated) with a simulator
that exercises the same downstream code paths:

* :mod:`repro.imaging.voxel` — layouts → 3-D material volumes;
* :mod:`repro.imaging.sem` — SE/BSE image formation with dwell-time
  dependent noise;
* :mod:`repro.imaging.fib` — slice milling and acquisition campaigns
  (slice thickness, drift, Table I parameters);
* :mod:`repro.imaging.roi` — the blind ROI identification of Fig 6.
"""

from repro.imaging.voxel import (
    LAYER_Z_RANGES,
    VoxelVolume,
    voxelize,
    rasterize_layer,
)
from repro.imaging.sem import SemParameters, Detector, image_cross_section
from repro.imaging.fib import FibSemCampaign, SliceStack, acquire_stack
from repro.imaging.roi import RoiSearchResult, identify_roi
from repro.imaging.cost import CampaignCost, campaign_cost, reference_campaigns
from repro.imaging.plan import AcquisitionPlan, all_plans, plan_for

__all__ = [
    "LAYER_Z_RANGES",
    "VoxelVolume",
    "voxelize",
    "rasterize_layer",
    "SemParameters",
    "Detector",
    "image_cross_section",
    "FibSemCampaign",
    "SliceStack",
    "acquire_stack",
    "RoiSearchResult",
    "identify_roi",
    "CampaignCost",
    "campaign_cost",
    "reference_campaigns",
    "AcquisitionPlan",
    "all_plans",
    "plan_for",
]
