"""FIB slicing and volumetric acquisition campaigns.

§IV-B: the FIB repeatedly removes 10/20 nm slices perpendicular to the SA
region; each exposed cross-section is imaged with SEM.  The output of a
campaign is a :class:`SliceStack`: the noisy, *drifting* image sequence the
§IV-C post-processing must denoise and align.

Drift is modelled as a per-slice random walk in the image plane (x and z),
quantised to whole pixels — stage drift and milling-position error over the
>24 h acquisitions the paper reports.  The ground-truth drift is kept in
the stack metadata so tests and benches can score the alignment stage.

RNG scheme (v2)
---------------
Acquisition randomness is split into independent counter-based streams
derived from the campaign seed: the drift walk draws from one serial
stream (``(seed, 0)``), and every slice's SEM shot noise from its own
stream (``(seed, 1, slice_index)``) — the same per-slice-stream idiom
:mod:`repro.faults` already uses.  Slices are therefore independent
given the (cheap, serial) drift/milling plan, which is what lets
:func:`acquire_stack` shard the expensive imaging across worker
processes with output bit-identical to the serial path for any batch
configuration.  The scheme replaced a single interleaved stream; the
``acquire`` stage version was bumped with it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import AcquisitionError
from repro.imaging.sem import SemParameters, image_cross_section
from repro.imaging.voxel import VoxelVolume
from repro.obs import kernel_scope

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.faults import FaultEvent, FaultInjector
    from repro.pipeline.config import ShardPlan

#: sub-stream tags under the campaign seed (see module docstring)
_DRIFT_STREAM = 0
_NOISE_STREAM = 1


@dataclass(frozen=True)
class FibSemCampaign:
    """Parameters of a volumetric acquisition."""

    slice_thickness_nm: float = 12.0
    sem: SemParameters = field(default_factory=SemParameters)
    drift_step_px: float = 0.25  #: std-dev of the per-slice drift increment
    max_drift_px: int = 4
    seed: int = 2024

    def __post_init__(self) -> None:
        if self.slice_thickness_nm <= 0:
            raise AcquisitionError("slice thickness must be positive", stage="acquire")

    def slices_for(self, extent_nm: float) -> int:
        """Number of slices needed to cover *extent_nm* along y."""
        return max(1, int(extent_nm / self.slice_thickness_nm))


@dataclass
class SliceStack:
    """An acquired image stack plus acquisition metadata."""

    images: list[np.ndarray]  #: each (nx, nz) float32 in [0, 1]
    slice_thickness_nm: float
    pixel_nm: float
    #: ground-truth per-slice drift, px (dx, dz) — for scoring only
    true_drift_px: list[tuple[int, int]]
    #: y (nm) of each slice centre in volume coordinates
    slice_y_nm: list[float]
    sem: SemParameters = field(default_factory=SemParameters)
    #: x of the field-of-view origin relative to the volume origin (nm)
    x_offset_nm: float = 0.0
    #: defects injected into this acquisition (empty on a clean run)
    fault_events: list["FaultEvent"] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.images)

    @property
    def image_shape(self) -> tuple[int, int]:
        """(nx, nz) of the cross-section images."""
        return tuple(self.images[0].shape)  # type: ignore[return-value]

    def beam_time_hours(self) -> float:
        """Total SEM dwell time of the campaign — the paper's cost metric
        (each of their large scans took >24 h of FIB/SEM)."""
        pixels = sum(img.size for img in self.images)
        return self.sem.acquisition_cost_us(pixels) / 1e6 / 3600.0


def _shift_image(image: np.ndarray, dx: int, dz: int) -> np.ndarray:
    """Shift with edge replication (the stage moves, the detector crops)."""
    out = image
    if dx:
        out = np.roll(out, dx, axis=0)
        if dx > 0:
            out[:dx, :] = out[dx, :]
        else:
            out[dx:, :] = out[dx - 1, :]
    if dz:
        out = np.roll(out, dz, axis=1)
        if dz > 0:
            out[:, :dz] = out[:, dz][:, None]
        else:
            out[:, dz:] = out[:, dz - 1][:, None]
    return out


@dataclass(frozen=True)
class _SliceShot:
    """One slice's imaging order — the picklable unit shipped to shard workers.

    Produced by the serial planning pass of :func:`acquire_stack`; carries
    everything the imaging phase needs so a worker process can form the
    slice without the volume, the injector, or any shared RNG state.
    """

    face: np.ndarray  #: exposed material face, (nx, nz) uint8 codes
    noise_seed: tuple[int, int, int]  #: ``(seed, _NOISE_STREAM, slice_index)``
    dx: int  #: accumulated drift for this slice, px
    dz: int


def _image_shots(shots: list[_SliceShot], sem: SemParameters) -> list[np.ndarray]:
    """Image a batch of planned shots (runs in shard workers; pure per shot)."""
    out: list[np.ndarray] = []
    for shot in shots:
        rng = np.random.default_rng(shot.noise_seed)
        img = image_cross_section(shot.face, sem, rng)
        out.append(_shift_image(img, shot.dx, shot.dz))
    return out


@dataclass
class FusedSliceWork:
    """Downstream per-slice work piggybacked on the acquire pool trip.

    Sharded acquisition already ships every slice to a worker; with the
    denoise stage (and, when the QC gate is engaged, the QC metric
    filter pass) fused into the same trip, each slice crosses the pool
    boundary **once** instead of once per stage.  The fused kernels are
    the exact per-slice functions the standalone stages run
    (:func:`repro.pipeline.denoise.denoise_one`,
    :func:`repro.pipeline.stack.slice_quality`), so outputs are
    bit-identical.

    The requester fills ``denoise``/``qc``; :func:`acquire_stack` fills
    the output fields when (and only when) the fused sharded path ran —
    callers must fall back to the standalone stages when they are still
    ``None`` (serial path, active fault plan, fusion disabled).  The
    fused results ride this side channel rather than the acquire stage
    payload so they are **never stored under the acquire cache key**,
    whose parameters know nothing about denoise settings.
    """

    #: ``{"method": ..., "weight": ..., "kwargs": {...}}`` or ``None``
    denoise: dict | None = None
    #: also compute :func:`slice_quality` metrics per slice
    qc: bool = False
    #: filled by :func:`acquire_stack`: denoised slices, in slice order
    denoised: list[np.ndarray] | None = None
    #: filled by :func:`acquire_stack`: per-slice QC metric dicts
    qc_metrics: list[dict[str, float]] | None = None


def _image_shots_fused(
    shots: list[_SliceShot],
    sem: SemParameters,
    denoise: dict | None,
    qc: bool,
) -> list[tuple[np.ndarray, np.ndarray | None, dict[str, float] | None]]:
    """Image + fused downstream kernels for one batch (runs in workers).

    Returns ``(image, denoised | None, qc_metrics | None)`` per shot.
    Pure per shot, like :func:`_image_shots`; the denoise/QC kernels are
    imported lazily to keep :mod:`repro.imaging` free of a hard pipeline
    dependency.
    """
    out: list[tuple[np.ndarray, np.ndarray | None, dict[str, float] | None]] = []
    for shot in shots:
        rng = np.random.default_rng(shot.noise_seed)
        img = _shift_image(image_cross_section(shot.face, sem, rng), shot.dx, shot.dz)
        den = None
        if denoise is not None:
            from repro.pipeline.denoise import denoise_one

            den = denoise_one(
                img, denoise["method"], denoise["weight"], denoise["kwargs"]
            )
        met = None
        if qc:
            from repro.pipeline.stack import slice_quality

            met = slice_quality(img)
        out.append((img, den, met))
    return out


def acquire_stack(
    volume: VoxelVolume,
    campaign: FibSemCampaign | None = None,
    y_start_nm: float | None = None,
    y_stop_nm: float | None = None,
    x_start_nm: float | None = None,
    x_stop_nm: float | None = None,
    injector: "FaultInjector | None" = None,
    shard: "ShardPlan | None" = None,
    fuse: FusedSliceWork | None = None,
) -> SliceStack:
    """Run a FIB/SEM campaign over *volume* and return the slice stack.

    Each slice aggregates ``slice_thickness/voxel`` material columns (the
    exposed face after milling), forms the SEM image, then applies the
    accumulated drift for that slice.

    ``x_start_nm``/``x_stop_nm`` restrict the imaging field of view along
    the bitline direction — the paper scans 30–100 µm² *between two
    adjacent MATs*, not across them, so a campaign normally covers just the
    ROI that :func:`repro.imaging.roi.identify_roi` returned.  The returned
    stack's :attr:`SliceStack.x_offset_nm` records the crop origin.

    ``injector`` (a :class:`repro.faults.FaultInjector`) corrupts the
    acquisition with seeded defects.  It never consumes this function's
    own RNG: an injector whose plan has every rate at 0 yields output
    bit-identical to ``injector=None``.  Injected drift spikes move the
    *accumulated* walk (and show up in ``true_drift_px``), milling
    overshoot permanently advances the exposed face, and frame-level
    defects are applied after the drift shift, exactly where a detector
    would introduce them.

    ``shard`` (a :class:`repro.pipeline.config.ShardPlan`) parallelises
    the imaging phase across slice batches.  The acquisition runs in two
    phases: a cheap serial pass walks the drift/milling state (inherently
    sequential) into per-slice :class:`_SliceShot` orders, then the
    expensive SEM imaging — independent per slice thanks to the
    counter-based noise streams — is dispatched through
    :func:`repro.runtime.shard.shard_map`.  Output is bit-identical to
    the serial path for every shard configuration.  An *active* fault
    plan forces the serial path (frame defects such as blur bursts carry
    sequential cross-slice state) and is counted as a shard fallback.

    ``fuse`` (a :class:`FusedSliceWork`) additionally runs the requested
    downstream per-slice kernels (denoise, QC metrics) inside the same
    sharded pool trip and returns their results on the ``fuse`` object —
    only when the sharded, unfaulted imaging path actually ran, so
    callers must treat ``fuse.denoised is None`` as "run the standalone
    stage".  Fused or not, every produced value is bit-identical.
    """
    campaign = campaign or FibSemCampaign()
    vox = volume.voxel_nm
    ny = volume.data.shape[1]
    nx = volume.data.shape[0]
    j_start = 0 if y_start_nm is None else max(0, volume.y_to_index(y_start_nm))
    j_stop = ny if y_stop_nm is None else min(ny, volume.y_to_index(y_stop_nm))
    if j_stop <= j_start:
        raise AcquisitionError("empty y range for acquisition", stage="acquire")
    i_start = 0 if x_start_nm is None else max(0, volume.x_to_index(x_start_nm))
    i_stop = nx if x_stop_nm is None else min(nx, volume.x_to_index(x_stop_nm))
    if i_stop <= i_start:
        raise AcquisitionError("empty x range for acquisition", stage="acquire")

    cols_per_slice = max(1, int(round(campaign.slice_thickness_nm / vox)))
    with kernel_scope(
        "acquire_stack", faulted=injector is not None
    ) as scope:
        # Phase 1 (serial, cheap): drift walk + milling plan.  Drift and
        # spikes accumulate across slices, so this pass cannot shard — but
        # it draws two scalars per slice, a vanishing fraction of the cost.
        drift_rng = np.random.default_rng((campaign.seed, _DRIFT_STREAM))
        shots: list[_SliceShot] = []
        drifts: list[tuple[int, int]] = []
        ys: list[float] = []

        drift_x = 0.0
        drift_z = 0.0
        overshoot_cols = 0  # milled-away material never comes back
        spiked = False
        for slice_index, j in enumerate(range(j_start, j_stop, cols_per_slice)):
            if injector is not None:
                overshoot_cols += injector.overshoot_slices(slice_index) * cols_per_slice
            j_face = min(j + overshoot_cols, ny - 1)

            drift_x += drift_rng.normal(0.0, campaign.drift_step_px)
            drift_z += drift_rng.normal(0.0, campaign.drift_step_px * 0.5)
            if injector is not None:
                spike = injector.drift_spike(slice_index)
                if spike is not None:
                    drift_x += spike[0]
                    drift_z += spike[1]
                    spiked = True
            # Once a spike has fired, the clip window widens to the spike so
            # the jump stays visible to QC (real stage jumps are exactly the
            # excursions the controller failed to contain).  Until then the
            # clean clamp applies, keeping a zero-rate plan bit-identical.
            max_px = campaign.max_drift_px
            if spiked:
                max_px = max(max_px, int(np.ceil(injector.plan.drift_spike_px)))
            dx = int(np.clip(round(drift_x), -max_px, max_px))
            dz = int(np.clip(round(drift_z), -max_px, max_px))
            shots.append(_SliceShot(
                # copy: the view pins the whole volume when pickled to workers
                face=np.ascontiguousarray(volume.data[i_start:i_stop, j_face, :]),
                noise_seed=(campaign.seed, _NOISE_STREAM, slice_index),
                dx=dx,
                dz=dz,
            ))
            drifts.append((dx, dz))
            ys.append(volume.index_to_y(j))

        # Phase 2: SEM imaging — the expensive part, pure per shot.
        faulted = injector is not None and injector.plan.active
        if shard is not None and shard.engaged(len(shots)) and not faulted:
            from repro.runtime.shard import shard_map

            fused = fuse is not None and (fuse.denoise is not None or fuse.qc)
            if fused:
                triples = shard_map(
                    "acquire",
                    partial(
                        _image_shots_fused,
                        sem=campaign.sem,
                        denoise=fuse.denoise,
                        qc=fuse.qc,
                    ),
                    shots,
                    shard,
                )
                images = [t[0] for t in triples]
                if fuse.denoise is not None:
                    fuse.denoised = [t[1] for t in triples]
                if fuse.qc:
                    fuse.qc_metrics = [t[2] for t in triples]
            else:
                images = shard_map(
                    "acquire", partial(_image_shots, sem=campaign.sem), shots, shard
                )
        else:
            if shard is not None and shard.engaged(len(shots)) and faulted:
                from repro.runtime.shard import note_shard_fallback

                note_shard_fallback("acquire", "active-fault-plan")
            images = _image_shots(shots, campaign.sem)

        # Phase 3 (serial): frame-level defects, in slice order — blur
        # bursts persist across slices, so this pass stays sequential.
        if injector is not None and injector.plan.active:
            images = [
                injector.apply(img, slice_index)
                for slice_index, img in enumerate(images)
            ]

        scope.set_pixels(sum(int(img.size) for img in images))
        scope.set(
            slices=len(images),
            faults=len(injector.events) if injector is not None else 0,
        )
        return SliceStack(
            images=images,
            slice_thickness_nm=cols_per_slice * vox,
            pixel_nm=vox,
            true_drift_px=drifts,
            slice_y_nm=ys,
            sem=campaign.sem,
            x_offset_nm=i_start * vox,
            fault_events=list(injector.events) if injector is not None else [],
        )


def alignment_noise_budget(wire_height_nm: float, cross_section_height_nm: float) -> float:
    """The §IV-C tolerance: wire height / cross-section height.

    For B5 the paper measures 30 nm wires against a cross-section ~130×
    taller, giving the 0.77 % (1/130) budget.  The same formula applied to
    a simulated stack gives the budget its alignment must meet.
    """
    if cross_section_height_nm <= 0:
        raise AcquisitionError("cross-section height must be positive", stage="acquire")
    return wire_height_nm / cross_section_height_nm
