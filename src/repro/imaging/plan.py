"""Acquisition planning: the §IV-B parameter choices as a procedure.

The paper picked its acquisition parameters per sample: SE for vendor A's
process (good contrast), BSE for vendors B and C; 3 µs dwell where the
detector is efficient, 6 µs where it is not; 10 or 20 nm slices.  This
module turns a chip record into the campaign that images it, plus the
rationale — so the end-to-end examples and benches can run each chip
"the way the paper did".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.chips import Chip, chip as get_chip
from repro.imaging.fib import FibSemCampaign
from repro.imaging.sem import Detector, SemParameters


@dataclass(frozen=True)
class AcquisitionPlan:
    """A campaign plus the reasons for its parameters."""

    chip_id: str
    campaign: FibSemCampaign
    rationale: tuple[str, ...]


def plan_for(chip_or_id: Chip | str, seed: int = 2024) -> AcquisitionPlan:
    """Build the §IV-B acquisition plan for one studied chip."""
    chip = get_chip(chip_or_id) if isinstance(chip_or_id, str) else chip_or_id
    rationale: list[str] = []

    detector = Detector(chip.detector)
    se_friendly = chip.vendor == "A"
    if detector is Detector.SE:
        rationale.append(
            f"vendor {chip.vendor}'s process gives SE good contrast — SE used"
        )
    else:
        rationale.append(
            f"SE lacks contrast on vendor {chip.vendor}'s process — switched to BSE"
        )

    rationale.append(
        f"dwell {chip.dwell_time_us:.0f} us (paper's Table/§IV-B choice for "
        f"{chip.chip_id}); higher dwell costs machine time"
    )
    rationale.append(f"slices of {chip.slice_thickness_nm:.0f} nm (30 kV Ga beam, 90 pA)")

    sem = SemParameters(
        detector=detector,
        dwell_time_us=chip.dwell_time_us,
        pixel_nm=chip.pixel_resolution_nm,
        se_friendly_process=se_friendly,
    )
    campaign = FibSemCampaign(
        slice_thickness_nm=chip.slice_thickness_nm,
        sem=sem,
        seed=seed,
    )
    return AcquisitionPlan(
        chip_id=chip.chip_id, campaign=campaign, rationale=tuple(rationale)
    )


def all_plans() -> dict[str, AcquisitionPlan]:
    """Plans for every Table I chip."""
    from repro.core.chips import CHIPS

    return {chip_id: plan_for(chip_id) for chip_id in CHIPS}
