"""Material segmentation of planar views.

§V-A step (i): "we determine color intensities that correspond to gates,
wires and vias".  Concretely: threshold each layer's planar view into a
foreground mask.  Otsu's criterion picks the threshold; a multi-level
variant separates several materials sharing a view (e.g. the tungsten
contacts against poly in the GATE z-range).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.errors import PipelineError


def otsu_threshold(image: np.ndarray, bins: int = 128) -> float:
    """Otsu's threshold: maximise inter-class variance of the histogram."""
    if image.size == 0:
        raise PipelineError("empty image")
    hist, edges = np.histogram(image.ravel(), bins=bins)
    centers = (edges[:-1] + edges[1:]) / 2
    total = hist.sum()
    if total == 0:
        raise PipelineError("degenerate histogram")

    weight_bg = np.cumsum(hist)
    weight_fg = total - weight_bg
    cum_mean = np.cumsum(hist * centers)
    grand_mean = cum_mean[-1]

    with np.errstate(divide="ignore", invalid="ignore"):
        mean_bg = cum_mean / weight_bg
        mean_fg = (grand_mean - cum_mean) / weight_fg
        between = weight_bg * weight_fg * (mean_bg - mean_fg) ** 2
    between = np.nan_to_num(between)
    # For well-separated modes the criterion plateaus across the whole gap;
    # take the middle of the plateau (the conventional tie-break).
    best = np.flatnonzero(between >= between.max() * (1 - 1e-9))
    return float(centers[int(best[(len(best) - 1) // 2])])


def multi_otsu(image: np.ndarray, classes: int = 3, bins: int = 96) -> list[float]:
    """Multi-level Otsu via exhaustive search (small class counts only).

    Returns ``classes − 1`` thresholds in increasing order.
    """
    if classes < 2:
        raise PipelineError("need at least two classes")
    if classes > 4:
        raise PipelineError("multi_otsu supports up to 4 classes")
    hist, edges = np.histogram(image.ravel(), bins=bins)
    centers = (edges[:-1] + edges[1:]) / 2
    prob = hist / max(hist.sum(), 1)

    # Precompute zeroth and first cumulative moments.
    p = np.concatenate(([0.0], np.cumsum(prob)))
    m = np.concatenate(([0.0], np.cumsum(prob * centers)))

    def class_var(i: int, j: int) -> float:
        w = p[j] - p[i]
        if w <= 0:
            return -np.inf
        mu = (m[j] - m[i]) / w
        return w * mu * mu

    best: tuple[float, tuple[int, ...]] = (-np.inf, ())
    if classes == 2:
        for t1 in range(1, bins):
            score = class_var(0, t1) + class_var(t1, bins)
            if score > best[0]:
                best = (score, (t1,))
    elif classes == 3:
        for t1 in range(1, bins - 1):
            v1 = class_var(0, t1)
            for t2 in range(t1 + 1, bins):
                score = v1 + class_var(t1, t2) + class_var(t2, bins)
                if score > best[0]:
                    best = (score, (t1, t2))
    else:
        for t1 in range(1, bins - 2):
            v1 = class_var(0, t1)
            for t2 in range(t1 + 1, bins - 1):
                v2 = v1 + class_var(t1, t2)
                for t3 in range(t2 + 1, bins):
                    score = v2 + class_var(t2, t3) + class_var(t3, bins)
                    if score > best[0]:
                        best = (score, (t1, t2, t3))
    return [float(centers[t]) for t in best[1]]


def foreground_mask(
    image: np.ndarray,
    threshold: float | None = None,
    min_area_px: int = 4,
) -> np.ndarray:
    """Boolean foreground mask: Otsu threshold + speckle removal.

    Specks smaller than *min_area_px* are removed (residual noise after TV
    denoising); holes of one pixel are closed so thin wires stay connected.
    """
    t = otsu_threshold(image) if threshold is None else threshold
    mask = image > t
    mask = ndimage.binary_closing(mask, structure=np.ones((2, 2), dtype=bool))
    labels, count = ndimage.label(mask)
    if count:
        areas = ndimage.sum_labels(mask, labels, index=np.arange(1, count + 1))
        small = np.flatnonzero(areas < min_area_px) + 1
        if small.size:
            mask[np.isin(labels, small)] = False
    return mask


def segment_materials(
    views: dict,
    min_area_px: int = 4,
) -> dict:
    """Segment every layer's planar view into a foreground mask.

    Input/output keyed by :class:`~repro.layout.elements.Layer`.  Layers
    whose view shows no bimodal structure (empty regions) come back as
    all-False masks rather than noise.
    """
    masks = {}
    for layer, view in views.items():
        t = otsu_threshold(view)
        mask = foreground_mask(view, threshold=t, min_area_px=min_area_px)
        # Sanity: a threshold in a unimodal (empty) view marks huge areas of
        # background as foreground; reject masks with implausible coverage
        # or negligible contrast across the threshold.
        fg = view[mask]
        bg = view[~mask]
        if fg.size == 0 or bg.size == 0 or float(fg.mean() - bg.mean()) < 0.05:
            mask = np.zeros_like(mask)
        masks[layer] = mask
    return masks
