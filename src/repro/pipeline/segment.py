"""Material segmentation of planar views.

§V-A step (i): "we determine color intensities that correspond to gates,
wires and vias".  Concretely: threshold each layer's planar view into a
foreground mask.  Otsu's criterion picks the threshold; a multi-level
variant separates several materials sharing a view (e.g. the tungsten
contacts against poly in the GATE z-range).
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.errors import SegmentationError
from repro.obs import kernel_scope


def otsu_threshold(image: np.ndarray, bins: int = 128) -> float:
    """Otsu's threshold: maximise inter-class variance of the histogram."""
    if image.size == 0:
        raise SegmentationError("empty image", stage="reveng")
    hist, edges = np.histogram(image.ravel(), bins=bins)
    centers = (edges[:-1] + edges[1:]) / 2
    total = hist.sum()
    if total == 0:
        raise SegmentationError("degenerate histogram", stage="reveng")

    weight_bg = np.cumsum(hist)
    weight_fg = total - weight_bg
    cum_mean = np.cumsum(hist * centers)
    grand_mean = cum_mean[-1]

    with np.errstate(divide="ignore", invalid="ignore"):
        mean_bg = cum_mean / weight_bg
        mean_fg = (grand_mean - cum_mean) / weight_fg
        between = weight_bg * weight_fg * (mean_bg - mean_fg) ** 2
    between = np.nan_to_num(between)
    # For well-separated modes the criterion plateaus across the whole gap;
    # take the middle of the plateau (the conventional tie-break).
    best = np.flatnonzero(between >= between.max() * (1 - 1e-9))
    return float(centers[int(best[(len(best) - 1) // 2])])


def _multi_otsu_moments(
    image: np.ndarray, bins: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Histogram bin centers plus cumulative zeroth/first moments."""
    hist, edges = np.histogram(image.ravel(), bins=bins)
    centers = (edges[:-1] + edges[1:]) / 2
    prob = hist / max(hist.sum(), 1)
    p = np.concatenate(([0.0], np.cumsum(prob)))
    m = np.concatenate(([0.0], np.cumsum(prob * centers)))
    return centers, p, m


def multi_otsu(image: np.ndarray, classes: int = 3, bins: int = 96) -> list[float]:
    """Multi-level Otsu: exhaustive threshold search, vectorised.

    Returns ``classes − 1`` thresholds in increasing order.  The O(bins³)
    Python loops of the original search are replaced by broadcast sums
    over a precomputed ``class_var(i, j)`` table built from the cumulative
    moments; the additions happen in the loop's exact order and ties still
    resolve to the lexicographically first threshold tuple, so the result
    is identical to the retained :func:`_reference_multi_otsu`.
    """
    if classes < 2:
        raise SegmentationError("need at least two classes", stage="reveng")
    if classes > 4:
        raise SegmentationError("multi_otsu supports up to 4 classes", stage="reveng")
    centers, p, m = _multi_otsu_moments(image, bins)

    # V[i, j] = class_var(i, j): weight * mean², −inf for empty spans.
    W = p[None, :] - p[:, None]
    M = m[None, :] - m[:, None]
    with np.errstate(divide="ignore", invalid="ignore"):
        MU = M / W
        V = W * MU
        V *= MU
    V[~(W > 0)] = -np.inf

    if classes == 2:
        t1s = np.arange(1, bins)
        scores = V[0, t1s] + V[t1s, bins]
        if scores.size == 0:
            return []
        flat = int(np.argmax(scores))
        if scores.flat[flat] == -np.inf:
            return []
        thresholds = (int(t1s[flat]),)
    elif classes == 3:
        t1s = np.arange(1, bins - 1)
        t2s = np.arange(2, bins)
        scores = (V[0, t1s][:, None] + V[np.ix_(t1s, t2s)]) + V[t2s, bins][None, :]
        if scores.size == 0:
            return []
        scores[t2s[None, :] <= t1s[:, None]] = -np.inf
        flat = int(np.argmax(scores))
        if scores.flat[flat] == -np.inf:
            return []
        i1, i2 = np.unravel_index(flat, scores.shape)
        thresholds = (int(t1s[i1]), int(t2s[i2]))
    else:
        t1s = np.arange(1, bins - 2)
        t2s = np.arange(2, bins - 1)
        t3s = np.arange(3, bins)
        scores = (
            (V[0, t1s][:, None, None] + V[np.ix_(t1s, t2s)][:, :, None])
            + V[np.ix_(t2s, t3s)][None, :, :]
        ) + V[t3s, bins][None, None, :]
        if scores.size == 0:
            return []
        invalid = (
            (t2s[None, :, None] <= t1s[:, None, None])
            | (t3s[None, None, :] <= t2s[None, :, None])
        )
        scores[invalid] = -np.inf
        flat = int(np.argmax(scores))
        if scores.flat[flat] == -np.inf:
            return []
        i1, i2, i3 = np.unravel_index(flat, scores.shape)
        thresholds = (int(t1s[i1]), int(t2s[i2]), int(t3s[i3]))
    return [float(centers[t]) for t in thresholds]


def _reference_multi_otsu(image: np.ndarray, classes: int = 3, bins: int = 96) -> list[float]:
    """The original O(bins³) exhaustive multi-Otsu search.

    Retained as ground truth for the vectorised :func:`multi_otsu` —
    equality tests compare the two threshold for threshold, and the perf
    harness reports the vectorisation speedup.
    """
    if classes < 2:
        raise SegmentationError("need at least two classes", stage="reveng")
    if classes > 4:
        raise SegmentationError("multi_otsu supports up to 4 classes", stage="reveng")
    centers, p, m = _multi_otsu_moments(image, bins)

    def class_var(i: int, j: int) -> float:
        w = p[j] - p[i]
        if w <= 0:
            return -np.inf
        mu = (m[j] - m[i]) / w
        return w * mu * mu

    best: tuple[float, tuple[int, ...]] = (-np.inf, ())
    if classes == 2:
        for t1 in range(1, bins):
            score = class_var(0, t1) + class_var(t1, bins)
            if score > best[0]:
                best = (score, (t1,))
    elif classes == 3:
        for t1 in range(1, bins - 1):
            v1 = class_var(0, t1)
            for t2 in range(t1 + 1, bins):
                score = v1 + class_var(t1, t2) + class_var(t2, bins)
                if score > best[0]:
                    best = (score, (t1, t2))
    else:
        for t1 in range(1, bins - 2):
            v1 = class_var(0, t1)
            for t2 in range(t1 + 1, bins - 1):
                v2 = v1 + class_var(t1, t2)
                for t3 in range(t2 + 1, bins):
                    score = v2 + class_var(t2, t3) + class_var(t3, bins)
                    if score > best[0]:
                        best = (score, (t1, t2, t3))
    return [float(centers[t]) for t in best[1]]


def foreground_mask(
    image: np.ndarray,
    threshold: float | None = None,
    min_area_px: int = 4,
) -> np.ndarray:
    """Boolean foreground mask: Otsu threshold + speckle removal.

    Specks smaller than *min_area_px* are removed (residual noise after TV
    denoising); holes of one pixel are closed so thin wires stay connected.
    """
    t = otsu_threshold(image) if threshold is None else threshold
    mask = image > t
    mask = ndimage.binary_closing(mask, structure=np.ones((2, 2), dtype=bool))
    labels, count = ndimage.label(mask)
    if count:
        areas = ndimage.sum_labels(mask, labels, index=np.arange(1, count + 1))
        small = np.flatnonzero(areas < min_area_px) + 1
        if small.size:
            mask[np.isin(labels, small)] = False
    return mask


def segment_materials(
    views: dict,
    min_area_px: int = 4,
) -> dict:
    """Segment every layer's planar view into a foreground mask.

    Input/output keyed by :class:`~repro.layout.elements.Layer`.  Layers
    whose view shows no bimodal structure (empty regions) come back as
    all-False masks rather than noise.
    """
    with kernel_scope(
        "segment_materials",
        pixels=sum(int(v.size) for v in views.values()),
        layers=len(views),
    ):
        masks = {}
        for layer, view in views.items():
            t = otsu_threshold(view)
            mask = foreground_mask(view, threshold=t, min_area_px=min_area_px)
            # Sanity: a threshold in a unimodal (empty) view marks huge areas of
            # background as foreground; reject masks with implausible coverage
            # or negligible contrast across the threshold.
            fg = view[mask]
            bg = view[~mask]
            if fg.size == 0 or bg.size == 0 or float(fg.mean() - bg.mean()) < 0.05:
                mask = np.zeros_like(mask)
            masks[layer] = mask
        return masks
